//! The DAG engine: compiles a `State` tree into an explicit leaf DAG and
//! replays it on the simcore timeline.
//!
//! Three invariants drive the implementation (DESIGN.md §14):
//!
//! 1. **Identity-keyed randomness.** Each leaf's burst seed comes from the
//!    `workflow-leaf` RNG lane indexed by a hash of `(state name,
//!    occurrence ordinal)` — see [`leaf_seed`] — so the seed is a function
//!    of *which* leaf runs, never of *when* it became ready. Reordering
//!    `Parallel` branches cannot perturb any timeline.
//! 2. **Canonical event order.** Whenever several leaves unblock at once
//!    (workflow launch, or one completion releasing several successors),
//!    their Ready events are scheduled in `(name, ordinal)` order, so the
//!    engine's event sequence — simcore's tiebreaker for equal timestamps
//!    — is independent of declaration order.
//! 3. **`f64` time accounting.** Stage starts and finishes are computed
//!    from burst reports in plain `f64` (`start = max(pred finishes)`);
//!    the sim clock only sequences events. A single-Task workflow is
//!    therefore bit-identical to the flat pooled burst it reduces to.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;

use propack_model::cache::ModelCache;
use propack_model::optimizer::Objective;
use propack_model::propack::Propack;
use propack_orchestrator::{MapPacking, State};
use propack_platform::{
    BurstRequest, FaultSummary, MixSpec, MixedBurstSpec, ServerlessPlatform, WarmPool, WorkProfile,
};
use propack_simcore::rng::lanes;
use propack_simcore::{EventState, RngStreams, Sim, SimTime};
use rand::RngCore;

use crate::report::{CriticalHop, StageKind, StageRow, WorkflowRunReport};
use crate::spec::{CoPack, WorkflowSpec};
use crate::WorkflowRunError;

/// The burst seed of the leaf `(name, ordinal)` in a workflow rooted at
/// `workflow_seed`.
///
/// Derived from the `workflow-leaf` RNG lane indexed by an FNV-1a hash of
/// the leaf identity, so it depends only on the workflow seed and on which
/// leaf is running — not on DAG position, sibling order, or arrival time.
/// Public so reduction tests can replay a leaf's burst flat.
pub fn leaf_seed(workflow_seed: u64, name: &str, ordinal: u64) -> u64 {
    let mut rng = RngStreams::new(workflow_seed)
        .stream_indexed(lanes::WORKFLOW_LEAF, leaf_index(name, ordinal));
    rng.next_u64()
}

/// FNV-1a over the leaf name continued with the ordinal bytes (continuing
/// the hash domain-separates `("a", 1)` from `("a1", 0)`-style collisions
/// an XOR fold would allow).
fn leaf_index(name: &str, ordinal: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in name.bytes().chain(ordinal.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// One leaf (Task or Map state) of the compiled DAG.
#[derive(Debug, Clone)]
struct LeafNode {
    name: String,
    /// Occurrence ordinal among same-named leaves, in pre-order.
    ordinal: u64,
    work: WorkProfile,
    concurrency: u32,
    packing: MapPacking,
    is_map: bool,
    preds: Vec<u32>,
    succs: Vec<u32>,
    /// Index into [`Dag::groups`] when this leaf co-packs with siblings.
    group: Option<u32>,
}

impl LeafNode {
    fn key(&self) -> (&str, u64) {
        (&self.name, self.ordinal)
    }
}

#[derive(Debug, Clone, Default)]
struct Dag {
    nodes: Vec<LeafNode>,
    /// Co-pack groups: member node ids in canonical `(name, ordinal)`
    /// order.
    groups: Vec<Vec<u32>>,
}

/// Compile the state tree into a leaf DAG. Returns the node list plus
/// co-pack groups (direct Task/Map children of each `Parallel`, when
/// co-packing is on and the `Parallel` has at least two such leaves).
fn compile(root: &State, co_pack: bool) -> Result<Dag, WorkflowRunError> {
    let mut dag = Dag::default();
    let mut ordinals: BTreeMap<String, u64> = BTreeMap::new();
    walk(root, &mut dag, &mut ordinals, co_pack)?;
    Ok(dag)
}

/// Recursive DAG construction. Returns `(sources, sinks)` of the subtree:
/// the leaves with no predecessor inside it, and the leaves nothing inside
/// it depends on.
#[allow(clippy::type_complexity)]
fn walk(
    state: &State,
    dag: &mut Dag,
    ordinals: &mut BTreeMap<String, u64>,
    co_pack: bool,
) -> Result<(Vec<u32>, Vec<u32>), WorkflowRunError> {
    let leaf = |dag: &mut Dag,
                ordinals: &mut BTreeMap<String, u64>,
                name: &str,
                work: &WorkProfile,
                concurrency: u32,
                packing: MapPacking,
                is_map: bool|
     -> u32 {
        let ordinal = ordinals.entry(name.to_string()).or_insert(0);
        let id = dag.nodes.len() as u32;
        dag.nodes.push(LeafNode {
            name: name.to_string(),
            ordinal: *ordinal,
            work: work.clone(),
            concurrency,
            packing,
            is_map,
            preds: Vec::new(),
            succs: Vec::new(),
            group: None,
        });
        *ordinal += 1;
        id
    };
    match state {
        State::Task { name, work } => {
            let id = leaf(dag, ordinals, name, work, 1, MapPacking::None, false);
            Ok((vec![id], vec![id]))
        }
        State::Map {
            name,
            work,
            concurrency,
            packing,
        } => {
            if *concurrency == 0 {
                return Err(WorkflowRunError::EmptyMap {
                    state: name.clone(),
                });
            }
            let id = leaf(
                dag,
                ordinals,
                name,
                work,
                *concurrency,
                packing.clone(),
                true,
            );
            Ok((vec![id], vec![id]))
        }
        State::Sequence(children) => {
            if children.is_empty() {
                return Err(WorkflowRunError::EmptyWorkflow);
            }
            let mut sources: Vec<u32> = Vec::new();
            let mut prev_sinks: Vec<u32> = Vec::new();
            for (i, child) in children.iter().enumerate() {
                let (child_sources, child_sinks) = walk(child, dag, ordinals, co_pack)?;
                if i == 0 {
                    sources = child_sources;
                } else {
                    for &a in &prev_sinks {
                        for &b in &child_sources {
                            dag.nodes[a as usize].succs.push(b);
                            dag.nodes[b as usize].preds.push(a);
                        }
                    }
                }
                prev_sinks = child_sinks;
            }
            Ok((sources, prev_sinks))
        }
        State::Parallel(children) => {
            if children.is_empty() {
                return Err(WorkflowRunError::EmptyWorkflow);
            }
            let mut sources = Vec::new();
            let mut sinks = Vec::new();
            let mut direct_leaves = Vec::new();
            for child in children {
                let is_leaf = matches!(child, State::Task { .. } | State::Map { .. });
                let (child_sources, child_sinks) = walk(child, dag, ordinals, co_pack)?;
                if is_leaf && co_pack {
                    direct_leaves.extend_from_slice(&child_sources);
                }
                sources.extend(child_sources);
                sinks.extend(child_sinks);
            }
            if co_pack && direct_leaves.len() >= 2 {
                let gid = dag.groups.len() as u32;
                direct_leaves.sort_by(|&a, &b| {
                    dag.nodes[a as usize]
                        .key()
                        .cmp(&dag.nodes[b as usize].key())
                });
                for &id in &direct_leaves {
                    dag.nodes[id as usize].group = Some(gid);
                }
                dag.groups.push(direct_leaves);
            }
            Ok((sources, sinks))
        }
    }
}

/// Per-node runtime bookkeeping.
#[derive(Debug, Clone, Default)]
struct NodeRun {
    pending: usize,
    started: bool,
    done: bool,
    finish: f64,
    critical_pred: Option<u32>,
    row: Option<StageRow>,
}

/// Events on the workflow timeline.
enum WfEvent {
    /// A lone leaf became ready: run its burst.
    Ready(u32),
    /// Every member of a co-pack group became ready: run the fused burst.
    GroupReady(u32),
    /// A leaf's burst finished.
    Done(u32),
}

/// The sim state: the DAG plus everything needed to run leaves.
struct Engine<'a, P: ServerlessPlatform + ?Sized> {
    platform: &'a P,
    models: &'a ModelCache,
    spec: &'a WorkflowSpec,
    dag: Dag,
    seeds: Vec<u64>,
    runs: Vec<NodeRun>,
    group_pending: Vec<usize>,
    pool: WarmPool,
    charged: BTreeSet<String>,
    overhead_usd: f64,
    overhead_hours: f64,
    fault_totals: FaultSummary,
    error: Option<WorkflowRunError>,
}

impl<P: ServerlessPlatform + ?Sized> Engine<'_, P> {
    /// ProPack model for `work` from the shared cache; profiling overhead
    /// is charged once per distinct workload per run — whether the fit was
    /// cold or a cache hit — so a pre-warmed cache cannot change the
    /// report (only how fast it is produced).
    fn propack_for(&mut self, work: &WorkProfile) -> Result<Arc<Propack>, WorkflowRunError> {
        let pp = self
            .models
            .fit(self.platform, work, &self.spec.fit_config)
            .map_err(|e| WorkflowRunError::Planning(e.to_string()))?;
        if self.charged.insert(work.name.clone()) {
            self.overhead_usd += pp.overhead.expense_usd;
            self.overhead_hours += pp.overhead.function_hours;
        }
        Ok(pp)
    }

    /// Packing degree for one leaf under its Map policy.
    fn degree_for(&mut self, idx: usize) -> Result<u32, WorkflowRunError> {
        let node = &self.dag.nodes[idx];
        match node.packing.clone() {
            MapPacking::None => Ok(1),
            MapPacking::Fixed(p) => Ok(p.max(1)),
            MapPacking::ProPack { w_s } => {
                let (work, concurrency) = (node.work.clone(), node.concurrency);
                Ok(self
                    .propack_for(&work)?
                    .plan(concurrency, Objective::Joint { w_s })
                    .map_err(|e| WorkflowRunError::Planning(e.to_string()))?
                    .packing_degree)
            }
        }
    }

    /// Start offset of a leaf: the max of its predecessors' finish times
    /// (pure `f64`, never the sim clock). Also records which predecessor
    /// realized that max — ties broken toward the smaller canonical key —
    /// for critical-path recovery.
    fn start_of(&mut self, idx: usize) -> f64 {
        let mut start = 0.0_f64;
        let mut critical: Option<u32> = None;
        for &p in &self.dag.nodes[idx].preds {
            let f = self.runs[p as usize].finish;
            let better = match critical {
                None => true,
                Some(c) => {
                    f > start
                        || (f == start
                            && self.dag.nodes[p as usize].key() < self.dag.nodes[c as usize].key())
                }
            };
            if better {
                start = f;
                critical = Some(p);
            }
        }
        self.runs[idx].critical_pred = critical;
        start
    }

    /// Run a lone leaf's burst. Returns its service duration so the caller
    /// can schedule the Done event.
    fn exec_leaf(&mut self, id: u32) -> Result<f64, WorkflowRunError> {
        let idx = id as usize;
        let start = self.start_of(idx);
        let degree = self.degree_for(idx)?;
        let (leaf_work, concurrency) = {
            let node = &self.dag.nodes[idx];
            (node.work.clone(), node.concurrency)
        };
        let run = BurstRequest::new(leaf_work, concurrency, degree)
            .with_seed(self.seeds[idx])
            .with_faults(self.spec.faults.clone())
            .with_retry(self.spec.retry.clone())
            .run_pooled(self.platform, &mut self.pool, start)?;
        let faults = run.faults();
        let duration = run.total_service_secs();
        self.fault_totals.merge(&faults);
        let (name, ordinal, is_map) = {
            let node = &self.dag.nodes[idx];
            (node.name.clone(), node.ordinal, node.is_map)
        };
        self.runs[idx].started = true;
        self.runs[idx].finish = start + duration;
        self.runs[idx].row = Some(StageRow {
            name,
            ordinal,
            kind: if is_map {
                StageKind::Map
            } else {
                StageKind::Task
            },
            start_secs: start,
            duration_secs: duration,
            concurrency,
            packing_degree: degree,
            instances: run.instances(),
            expense_usd: run.expense_usd(),
            function_hours: run.function_hours(),
            warm_grants: run.warm_grants,
            retries: faults.retries,
            abandoned_functions: run.abandoned_functions,
            on_critical_path: false,
        });
        Ok(duration)
    }

    /// Run a co-pack group as one fused heterogeneous burst. Returns each
    /// member's `(id, duration)` so the caller can schedule Done events.
    ///
    /// Instance count: start from the widest member's homogeneous plan
    /// (`max_i ceil(C_i / P_i)`), then add instances until the combined
    /// per-instance footprint fits the platform memory limit (more
    /// instances → fewer copies of each function per instance). Fused
    /// bursts bypass the warm pool and run fault-free: the mixed-burst
    /// primitive models interference, not faults — a documented limit of
    /// the co-packing path.
    fn exec_group(&mut self, gid: u32) -> Result<Vec<(u32, f64)>, WorkflowRunError> {
        let members = self.dag.groups[gid as usize].clone();
        let mut degrees = Vec::with_capacity(members.len());
        for &m in &members {
            degrees.push(self.degree_for(m as usize)?);
        }
        let mut start = 0.0_f64;
        for &m in &members {
            start = start.max(self.start_of(m as usize));
        }
        let mem_limit = self.platform.limits().mem_gb;
        let max_c = members
            .iter()
            .map(|&m| self.dag.nodes[m as usize].concurrency)
            .max()
            .unwrap_or(1);
        let mut instances = members
            .iter()
            .zip(&degrees)
            .map(|(&m, &p)| self.dag.nodes[m as usize].concurrency.div_ceil(p.max(1)))
            .max()
            .unwrap_or(1)
            .max(1);
        let copies = loop {
            let copies: Vec<u32> = members
                .iter()
                .map(|&m| self.dag.nodes[m as usize].concurrency.div_ceil(instances))
                .collect();
            let mem: f64 = members
                .iter()
                .zip(&copies)
                .map(|(&m, &n)| self.dag.nodes[m as usize].work.mem_gb * f64::from(n))
                .sum();
            if mem <= mem_limit || instances >= max_c {
                break copies;
            }
            instances += 1;
        };
        let parts: Vec<(WorkProfile, u32)> = members
            .iter()
            .zip(&copies)
            .map(|(&m, &n)| (self.dag.nodes[m as usize].work.clone(), n))
            .collect();
        let interference = match &self.spec.co_pack {
            CoPack::Siblings(m) => m.clone(),
            CoPack::Disabled => unreachable!("groups only exist when co-packing is enabled"),
        };
        let seed = self.seeds[members[0] as usize];
        let outcome = self.platform.run_mixed(
            &MixedBurstSpec::new(MixSpec { parts }, instances)
                .with_seed(seed)
                .with_interference(interference),
        )?;
        // Compute + request fees are billed per fused instance, not per
        // part (the per-app reports carry only their own storage/network).
        // Attribute that shared residual in proportion to each part's
        // billed seconds × copies.
        let per_app_direct: f64 = outcome.per_app.iter().map(|r| r.expense.total_usd()).sum();
        let residual = outcome.expense.total_usd() - per_app_direct;
        let weights: Vec<f64> = outcome
            .per_app
            .iter()
            .zip(&copies)
            .map(|(r, &n)| f64::from(n) * r.instances.iter().map(|i| i.billed_secs).sum::<f64>())
            .collect();
        let total_weight: f64 = weights.iter().sum();
        let mut durations = Vec::with_capacity(members.len());
        for (j, &m) in members.iter().enumerate() {
            let idx = m as usize;
            let report = &outcome.per_app[j];
            let share = if total_weight > 0.0 {
                weights[j] / total_weight
            } else {
                1.0 / members.len() as f64
            };
            let duration = report.total_service_time();
            let (name, ordinal, concurrency) = {
                let node = &self.dag.nodes[idx];
                (node.name.clone(), node.ordinal, node.concurrency)
            };
            self.runs[idx].started = true;
            self.runs[idx].finish = start + duration;
            self.runs[idx].row = Some(StageRow {
                name,
                ordinal,
                kind: StageKind::CoPacked,
                start_secs: start,
                duration_secs: duration,
                concurrency,
                packing_degree: copies[j],
                instances,
                expense_usd: report.expense.total_usd() + residual * share,
                function_hours: report.function_hours(),
                warm_grants: 0,
                retries: 0,
                abandoned_functions: 0,
                on_critical_path: false,
            });
            durations.push((m, duration));
        }
        Ok(durations)
    }

    /// Record a completion and return the events to schedule *now*, in
    /// canonical `(name, ordinal)` order: Ready for lone leaves whose
    /// predecessors all finished, GroupReady for groups whose last member
    /// just unblocked.
    fn complete(&mut self, id: u32) -> Vec<WfEvent> {
        let idx = id as usize;
        self.runs[idx].done = true;
        let succs = self.dag.nodes[idx].succs.clone();
        let mut unblocked: Vec<u32> = Vec::new();
        for s in succs {
            let run = &mut self.runs[s as usize];
            run.pending -= 1;
            if run.pending == 0 {
                unblocked.push(s);
            }
        }
        self.ready_events(unblocked)
    }

    /// Canonically order freshly-unblocked leaves and fold co-pack group
    /// members into a single GroupReady fired when the last member
    /// unblocks.
    fn ready_events(&mut self, mut unblocked: Vec<u32>) -> Vec<WfEvent> {
        unblocked.sort_by(|&a, &b| {
            self.dag.nodes[a as usize]
                .key()
                .cmp(&self.dag.nodes[b as usize].key())
        });
        let mut events = Vec::new();
        for id in unblocked {
            match self.dag.nodes[id as usize].group {
                Some(g) => {
                    let slot = &mut self.group_pending[g as usize];
                    *slot -= 1;
                    if *slot == 0 {
                        events.push(WfEvent::GroupReady(g));
                    }
                }
                None => events.push(WfEvent::Ready(id)),
            }
        }
        events
    }
}

impl<P: ServerlessPlatform + ?Sized> EventState for Engine<'_, P> {
    type Event = WfEvent;

    fn handle(sim: &mut Sim<Self>, event: WfEvent) {
        if sim.state().error.is_some() {
            return;
        }
        match event {
            WfEvent::Ready(id) => match sim.state_mut().exec_leaf(id) {
                Ok(duration) => sim.schedule_event_in(duration, WfEvent::Done(id)),
                Err(e) => sim.state_mut().error = Some(e),
            },
            WfEvent::GroupReady(g) => match sim.state_mut().exec_group(g) {
                Ok(durations) => {
                    for (id, duration) in durations {
                        sim.schedule_event_in(duration, WfEvent::Done(id));
                    }
                }
                Err(e) => sim.state_mut().error = Some(e),
            },
            WfEvent::Done(id) => {
                for ev in sim.state_mut().complete(id) {
                    sim.schedule_event_in(0.0, ev);
                }
            }
        }
    }
}

/// Replay `spec` on `platform`, drawing ProPack fits from (and
/// contributing them to) the shared `models` cache.
///
/// Deterministic: equal inputs produce a bit-identical
/// [`WorkflowRunReport`] regardless of cache contents or host parallelism
/// (the engine itself is single-threaded; the sweep layer runs many
/// workflows in parallel and relies on this).
pub fn run_workflow<P: ServerlessPlatform + ?Sized>(
    platform: &P,
    spec: &WorkflowSpec,
    models: &ModelCache,
) -> Result<WorkflowRunReport, WorkflowRunError> {
    let dag = compile(&spec.workflow.root, spec.co_pack.interference().is_some())?;
    if dag.nodes.is_empty() {
        return Err(WorkflowRunError::EmptyWorkflow);
    }
    let seeds: Vec<u64> = dag
        .nodes
        .iter()
        .map(|n| leaf_seed(spec.seed, &n.name, n.ordinal))
        .collect();
    let runs: Vec<NodeRun> = dag
        .nodes
        .iter()
        .map(|n| NodeRun {
            pending: n.preds.len(),
            ..NodeRun::default()
        })
        .collect();
    let group_pending: Vec<usize> = dag.groups.iter().map(Vec::len).collect();
    let roots: Vec<u32> = dag
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.preds.is_empty())
        .map(|(i, _)| i as u32)
        .collect();
    let pool = WarmPool::new(spec.pool_config(platform.placement_secs()));
    let engine = Engine {
        platform,
        models,
        spec,
        dag,
        seeds,
        runs,
        group_pending,
        pool,
        charged: BTreeSet::new(),
        overhead_usd: 0.0,
        overhead_hours: 0.0,
        fault_totals: FaultSummary::default(),
        error: None,
    };
    let mut sim = Sim::new(engine);
    let launch = sim.state_mut().ready_events(roots);
    for ev in launch {
        sim.schedule_event(SimTime::ZERO, ev);
    }
    sim.run();
    let state = sim.into_state();
    if let Some(e) = state.error {
        return Err(e);
    }
    let mut stages: Vec<StageRow> = Vec::with_capacity(state.dag.nodes.len());
    // Recover the critical path: back-walk from the leaf that realized the
    // makespan (ties toward the smaller canonical key) through each
    // stage's recorded critical predecessor.
    let mut end: Option<usize> = None;
    for (i, run) in state.runs.iter().enumerate() {
        debug_assert!(run.done, "sim drained with unfinished leaves");
        let better = match end {
            None => true,
            Some(e) => {
                run.finish > state.runs[e].finish
                    || (run.finish == state.runs[e].finish
                        && state.dag.nodes[i].key() < state.dag.nodes[e].key())
            }
        };
        if better {
            end = Some(i);
        }
    }
    let mut on_path = vec![false; state.dag.nodes.len()];
    let mut critical_path = Vec::new();
    let mut cursor = end;
    while let Some(i) = cursor {
        on_path[i] = true;
        cursor = state.runs[i].critical_pred.map(|p| p as usize);
    }
    let makespan = end.map(|e| state.runs[e].finish).unwrap_or(0.0);
    for (i, run) in state.runs.iter().enumerate() {
        if let Some(mut row) = run.row.clone() {
            row.on_critical_path = on_path[i];
            stages.push(row);
        }
    }
    stages.sort_by(|a, b| {
        a.start_secs
            .total_cmp(&b.start_secs)
            .then_with(|| a.name.cmp(&b.name))
            .then_with(|| a.ordinal.cmp(&b.ordinal))
    });
    for row in &stages {
        if row.on_critical_path {
            critical_path.push(CriticalHop {
                name: row.name.clone(),
                ordinal: row.ordinal,
                start_secs: row.start_secs,
                duration_secs: row.duration_secs,
            });
        }
    }
    let expense_usd = stages.iter().map(|s| s.expense_usd).sum::<f64>() + state.overhead_usd;
    let function_hours =
        stages.iter().map(|s| s.function_hours).sum::<f64>() + state.overhead_hours;
    let co_packed = stages.iter().any(|s| s.kind == StageKind::CoPacked);
    Ok(WorkflowRunReport {
        name: spec.workflow.name.clone(),
        platform: platform.name(),
        seed: spec.seed,
        keepalive: spec.keepalive.label(),
        co_packed,
        makespan_secs: makespan,
        expense_usd,
        function_hours,
        model_overhead_usd: state.overhead_usd,
        stages,
        critical_path,
        faults: state.fault_totals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_orchestrator::Workflow;
    use propack_platform::prelude::*;

    fn aws() -> CloudPlatform {
        PlatformBuilder::aws().build()
    }

    fn work(name: &str) -> WorkProfile {
        WorkProfile::synthetic(name, 1.0, 60.0).with_storage(0.02, 3)
    }

    fn spec_of(root: State) -> WorkflowSpec {
        WorkflowSpec::new(Workflow::new("test", root)).with_seed(11)
    }

    #[test]
    fn leaf_seed_depends_on_identity_only() {
        assert_eq!(leaf_seed(7, "a", 0), leaf_seed(7, "a", 0));
        assert_ne!(leaf_seed(7, "a", 0), leaf_seed(7, "a", 1));
        assert_ne!(leaf_seed(7, "a", 0), leaf_seed(7, "b", 0));
        assert_ne!(leaf_seed(7, "a", 0), leaf_seed(8, "a", 0));
        // Continued-hash domain separation: ("a1", 0) vs ("a", 1) shifted
        // name/ordinal boundaries must not alias.
        assert_ne!(leaf_seed(7, "a1", 0), leaf_seed(7, "a", 1));
    }

    #[test]
    fn single_task_reduces_to_flat_pooled_burst() {
        let platform = aws();
        let models = ModelCache::new();
        let spec = spec_of(State::Task {
            name: "solo".into(),
            work: work("solo"),
        });
        let report = run_workflow(&platform, &spec, &models).unwrap();

        let mut pool = WarmPool::new(spec.pool_config(platform.placement_secs()));
        let flat = BurstRequest::new(work("solo"), 1, 1)
            .with_seed(leaf_seed(spec.seed, "solo", 0))
            .with_faults(spec.faults.clone())
            .with_retry(spec.retry.clone())
            .run_pooled(&platform, &mut pool, 0.0)
            .unwrap();

        assert_eq!(report.stages.len(), 1);
        assert_eq!(
            report.makespan_secs.to_bits(),
            flat.total_service_secs().to_bits()
        );
        assert_eq!(report.expense_usd.to_bits(), flat.expense_usd().to_bits());
        assert_eq!(
            report.function_hours.to_bits(),
            flat.function_hours().to_bits()
        );
    }

    #[test]
    fn sequence_chains_and_parallel_overlaps() {
        let platform = aws();
        let models = ModelCache::new();
        let seq = run_workflow(
            &platform,
            &spec_of(State::Sequence(vec![
                State::Task {
                    name: "a".into(),
                    work: work("a"),
                },
                State::Task {
                    name: "b".into(),
                    work: work("b"),
                },
            ])),
            &models,
        )
        .unwrap();
        assert_eq!(seq.stages.len(), 2);
        let a = &seq.stages[0];
        let b = &seq.stages[1];
        assert_eq!(a.name, "a");
        assert_eq!(b.start_secs.to_bits(), a.finish_secs().to_bits());
        assert_eq!(seq.makespan_secs.to_bits(), b.finish_secs().to_bits());
        assert!(a.on_critical_path && b.on_critical_path);

        let par = run_workflow(
            &platform,
            &spec_of(State::Parallel(vec![
                State::Task {
                    name: "a".into(),
                    work: work("a"),
                },
                State::Task {
                    name: "b".into(),
                    work: work("b"),
                },
            ])),
            &models,
        )
        .unwrap();
        assert_eq!(par.stages.len(), 2);
        assert!(par.stages.iter().all(|s| s.start_secs == 0.0));
        let slowest = par
            .stages
            .iter()
            .map(|s| s.duration_secs)
            .fold(0.0_f64, f64::max);
        assert_eq!(par.makespan_secs.to_bits(), slowest.to_bits());
        assert_eq!(
            par.critical_path.len(),
            1,
            "one branch realizes the makespan"
        );
        assert!(par.makespan_secs < seq.makespan_secs);
    }

    #[test]
    fn parallel_branch_order_is_irrelevant() {
        let platform = aws();
        let models = ModelCache::new();
        let branches = |flip: bool| {
            let mut v = vec![
                State::Map {
                    name: "left".into(),
                    work: work("left"),
                    concurrency: 40,
                    packing: MapPacking::Fixed(4),
                },
                State::Map {
                    name: "right".into(),
                    work: work("right"),
                    concurrency: 24,
                    packing: MapPacking::None,
                },
            ];
            if flip {
                v.reverse();
            }
            State::Sequence(vec![
                State::Task {
                    name: "head".into(),
                    work: work("head"),
                },
                State::Parallel(v),
                State::Task {
                    name: "tail".into(),
                    work: work("tail"),
                },
            ])
        };
        let fwd = run_workflow(&platform, &spec_of(branches(false)), &models).unwrap();
        let rev = run_workflow(&platform, &spec_of(branches(true)), &models).unwrap();
        assert_eq!(fwd, rev, "branch declaration order must not matter");
        assert_eq!(fwd.render(), rev.render());
    }

    #[test]
    fn duplicate_names_get_distinct_ordinals_and_seeds() {
        let platform = aws();
        let models = ModelCache::new();
        let report = run_workflow(
            &platform,
            &spec_of(State::Sequence(vec![
                State::Task {
                    name: "stage".into(),
                    work: work("w"),
                },
                State::Task {
                    name: "stage".into(),
                    work: work("w"),
                },
            ])),
            &models,
        )
        .unwrap();
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].ordinal, 0);
        assert_eq!(report.stages[1].ordinal, 1);
    }

    #[test]
    fn propack_map_plans_through_shared_cache() {
        let platform = aws();
        let models = ModelCache::new();
        let root = State::Sequence(vec![
            State::Map {
                name: "m1".into(),
                work: work("same"),
                concurrency: 500,
                packing: MapPacking::ProPack { w_s: 0.5 },
            },
            State::Map {
                name: "m2".into(),
                work: work("same"),
                concurrency: 800,
                packing: MapPacking::ProPack { w_s: 0.5 },
            },
        ]);
        let report = run_workflow(&platform, &spec_of(root), &models).unwrap();
        assert_eq!(models.misses(), 1, "one profile → one fit, shared");
        assert!(report.model_overhead_usd > 0.0);
        assert!(report.stages.iter().all(|s| s.packing_degree > 1));

        // A second run against the same cache hits and reports identically.
        let report2 = run_workflow(
            &platform,
            &spec_of(State::Map {
                name: "m1".into(),
                work: work("same"),
                concurrency: 500,
                packing: MapPacking::ProPack { w_s: 0.5 },
            }),
            &models,
        )
        .unwrap();
        assert_eq!(models.misses(), 1);
        assert!(report2.model_overhead_usd > 0.0, "overhead charged per run");
    }

    #[test]
    fn co_packed_diamond_fuses_siblings() {
        let platform = aws();
        let models = ModelCache::new();
        let spec =
            crate::spec::from_shape("mixed:cpu+io", &work("payload"), 64, MapPacking::Fixed(4))
                .unwrap()
                .with_seed(11);
        let report = run_workflow(&platform, &spec, &models).unwrap();
        assert!(report.co_packed);
        let fused: Vec<_> = report
            .stages
            .iter()
            .filter(|s| s.kind == StageKind::CoPacked)
            .collect();
        assert_eq!(fused.len(), 2, "both branches ran co-packed");
        assert_eq!(
            fused[0].instances, fused[1].instances,
            "fused members share instances"
        );
        assert!(
            fused[0].start_secs.to_bits() == fused[1].start_secs.to_bits(),
            "fused members launch together"
        );

        // The same diamond without co-packing runs each branch alone.
        let solo_spec =
            crate::spec::from_shape("diamond", &work("payload"), 64, MapPacking::Fixed(4))
                .unwrap()
                .with_seed(11);
        let solo = run_workflow(&platform, &solo_spec, &models).unwrap();
        assert!(!solo.co_packed);
        assert!(solo.stages.iter().all(|s| s.kind != StageKind::CoPacked));
    }

    #[test]
    fn errors_surface_from_compile_and_platform() {
        let platform = aws();
        let models = ModelCache::new();
        let empty = run_workflow(&platform, &spec_of(State::Sequence(vec![])), &models);
        assert_eq!(empty, Err(WorkflowRunError::EmptyWorkflow));

        let zero_map = run_workflow(
            &platform,
            &spec_of(State::Map {
                name: "z".into(),
                work: work("z"),
                concurrency: 0,
                packing: MapPacking::None,
            }),
            &models,
        );
        assert!(matches!(zero_map, Err(WorkflowRunError::EmptyMap { .. })));

        // An oversized fixed degree violates the platform memory limit at
        // burst time; the error must propagate out of the event loop.
        let over = run_workflow(
            &platform,
            &spec_of(State::Map {
                name: "fat".into(),
                work: WorkProfile::synthetic("fat", 6.0, 30.0),
                concurrency: 8,
                packing: MapPacking::Fixed(4),
            }),
            &models,
        );
        assert!(matches!(over, Err(WorkflowRunError::Platform(_))));
    }
}
