//! Offline stub for `crossbeam`: only `crossbeam::thread::scope`, mapped
//! onto `std::thread::scope` (available since Rust 1.63). The closure-arg
//! shape is preserved: crossbeam spawns take `FnOnce(&Scope) -> T`.

pub mod thread {
    use std::any::Any;

    /// Result alias matching `crossbeam::thread::scope`'s return.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Scoped-spawn handle wrapper so call sites keep `handle.join()?`-style
    /// semantics.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.0.join()
        }
    }

    /// Crossbeam-shaped scope: spawn closures receive the scope reference.
    pub struct Scope<'env, 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'env, 'scope> Scope<'env, 'scope> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'env, 'scope>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    /// Run `f` with a thread scope; all spawned threads are joined before
    /// returning. Unlike crossbeam, a panicking child propagates when
    /// joined via std's scope drop — matching call sites that `.unwrap()`
    /// the scope result.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'env, 'scope>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}
