//! In-instance execution: the packing interference model.
//!
//! One function instance is a microVM with `cores` vCPUs and `mem_gb` of
//! memory. Packing `P` functions into it as threads (the paper's §2.6
//! realization) makes them contend on two axes:
//!
//! * **Memory-system contention** — each co-resident copy adds cache and
//!   memory-bandwidth pressure proportional to its footprint. Per copy the
//!   slowdown compounds multiplicatively, giving the factor
//!   `exp(contention_per_gb · mem_gb · (P − 1))`. This is the mechanism
//!   behind the paper's empirical Eq. 1 `ET = e^{M_func·α·P}`: fitting a
//!   log-linear model to our mechanism recovers `α ≈ contention_per_gb`
//!   exactly, and the `M_func` dependence is explicit.
//! * **Core time-slicing** — once `P` exceeds the vCPU count, threads
//!   time-share cores; each excess function adds `timeslice_penalty` of
//!   relative overhead. This term is small (scheduler overhead, not the
//!   1/P share — of *throughput* each function still gets its fair share,
//!   it just takes longer wall-clock, which the contention factor already
//!   carries at calibrated magnitude).
//!
//! The result is convex-exponential in `P` over the feasible range, flat in
//! the concurrency level (isolated microVMs), and < 5 % noisy — the three
//! properties Figs. 4–5 establish.

use crate::profile::InstanceProfile;
use crate::work::WorkProfile;
use propack_simcore::rng::jitter;
use rand::Rng;

/// Deterministic (noise-free) execution time of one instance running
/// `packing_degree` copies of `work`, in seconds.
///
/// All packed functions run concurrently as threads and finish together
/// (same code, same input size — the paper packs instances of one
/// application), so the instance execution time equals the per-function
/// time under contention.
pub fn packed_exec_secs(inst: &InstanceProfile, work: &WorkProfile, packing_degree: u32) -> f64 {
    debug_assert!(packing_degree >= 1);
    let p = packing_degree as f64;
    let contention = (work.contention_per_gb * work.mem_gb * (p - 1.0)).exp();
    let excess = (p - inst.cores as f64).max(0.0);
    let timeslice = 1.0 + inst.timeslice_penalty * excess;
    let colocation = if packing_degree > 1 {
        inst.colocation_penalty
    } else {
        1.0
    };
    work.base_exec_secs * contention * timeslice * colocation
}

/// Execution time with measurement noise from the instance's RNG stream.
pub fn sampled_exec_secs<R: Rng>(
    inst: &InstanceProfile,
    work: &WorkProfile,
    packing_degree: u32,
    rng: &mut R,
) -> f64 {
    packed_exec_secs(inst, work, packing_degree) * jitter(rng, inst.exec_jitter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PlatformProfile;

    fn aws_inst() -> InstanceProfile {
        PlatformProfile::aws_lambda().instance
    }

    fn work(mem: f64, contention: f64) -> WorkProfile {
        WorkProfile::synthetic("w", mem, 100.0).with_contention(contention)
    }

    #[test]
    fn degree_one_is_base_time() {
        let t = packed_exec_secs(&aws_inst(), &work(0.25, 0.2), 1);
        assert_eq!(t, 100.0);
    }

    #[test]
    fn monotone_increasing_in_degree() {
        let inst = aws_inst();
        let w = work(0.25, 0.2);
        let mut prev = 0.0;
        for p in 1..=40 {
            let t = packed_exec_secs(&inst, &w, p);
            assert!(t > prev, "ET({p}) = {t} not increasing");
            prev = t;
        }
    }

    #[test]
    fn exec_time_grows_sublinearly_for_calibrated_apps() {
        // §4 (Fig. 11 discussion): "the execution time of each function
        // instance increases in a sub-linear manner with an increase in
        // packing degree" — i.e. ET(P)/P falls, which is what makes packing
        // cheaper. Check over the Video-like calibration (α·M ≈ 0.05).
        let inst = aws_inst();
        let w = work(0.25, 0.2); // rate = 0.05 per degree
        let per_fn_1 = packed_exec_secs(&inst, &w, 1);
        let per_fn_10 = packed_exec_secs(&inst, &w, 10) / 10.0;
        assert!(per_fn_10 < per_fn_1);
    }

    #[test]
    fn log_linear_in_degree_below_core_count() {
        // Below the core count the mechanism is exactly exponential, so
        // log-spacing must be constant — this is what makes ProPack's Eq. 1
        // fit the simulator with χ² ≈ 0.
        let inst = aws_inst();
        let w = work(0.5, 0.1);
        let ratios: Vec<f64> = (1..6)
            .map(|p| packed_exec_secs(&inst, &w, p + 1) / packed_exec_secs(&inst, &w, p))
            .collect();
        for r in &ratios {
            assert!((r - ratios[0]).abs() < 1e-12);
        }
        assert!((ratios[0] - (0.05f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn memory_footprint_scales_contention() {
        // Eq. 1 carries M_func explicitly: same α, heavier function, more
        // interference.
        let inst = aws_inst();
        let light = work(0.25, 0.2);
        let heavy = work(0.5, 0.2);
        let s_light = packed_exec_secs(&inst, &light, 10) / 100.0;
        let s_heavy = packed_exec_secs(&inst, &heavy, 10) / 100.0;
        assert!(s_heavy > s_light);
    }

    #[test]
    fn timeslice_penalty_kicks_in_past_core_count() {
        let inst = aws_inst();
        let w = work(0.25, 0.0); // isolate the timeslice term
        assert_eq!(packed_exec_secs(&inst, &w, 6), 100.0 * 1.0);
        let t7 = packed_exec_secs(&inst, &w, 7);
        assert!((t7 - 100.0 * (1.0 + inst.timeslice_penalty)).abs() < 1e-9);
    }

    #[test]
    fn colocation_penalty_applies_only_when_packed() {
        let mut inst = aws_inst();
        inst.colocation_penalty = 1.12;
        let w = work(0.25, 0.0);
        assert_eq!(packed_exec_secs(&inst, &w, 1), 100.0);
        assert!(
            (packed_exec_secs(&inst, &w, 2) / packed_exec_secs(&inst, &w, 1) - 1.12).abs() < 0.02
        );
    }

    #[test]
    fn sampled_noise_within_jitter_band() {
        let inst = aws_inst();
        let w = work(0.25, 0.2);
        let streams = propack_simcore::RngStreams::new(11);
        let mut rng = streams.stream(propack_simcore::rng::lanes::EXEC);
        let base = packed_exec_secs(&inst, &w, 5);
        for _ in 0..1000 {
            let t = sampled_exec_secs(&inst, &w, 5, &mut rng);
            assert!(t >= base * (1.0 - inst.exec_jitter) - 1e-9);
            assert!(t <= base * (1.0 + inst.exec_jitter) + 1e-9);
        }
    }
}
