//! Library half of the `propack` CLI: argument parsing and command
//! execution, separated from `main` so every path is unit-testable.
//!
//! Commands:
//!
//! ```text
//! propack plan    --app <name> --concurrency <C> [--platform <p>] [--objective <o>]
//! propack run     --app <name> --concurrency <C> [--platform <p>] [--objective <o>] [--seed <s>]
//! propack compare --app <name> --concurrency <C> [--platform <p>]
//! propack apps
//! propack platforms
//! ```
//!
//! Apps are the five paper benchmarks (`video`, `sort`, `stateless`,
//! `smith-waterman`, `xapian`); platforms are `aws`, `google`, `azure`,
//! `funcx`.

use propack_baselines::{NoPacking, Pywren, Strategy};
use propack_funcx::FuncXPlatform;
use propack_model::optimizer::Objective;
use propack_model::propack::{ProPackConfig, Propack};
use propack_platform::profile::PlatformProfile;
use propack_platform::{ServerlessPlatform, WorkProfile};
use propack_workloads::all_benchmarks;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print the packing plan without executing.
    Plan(RunArgs),
    /// Execute the packed burst and report.
    Run(RunArgs),
    /// Compare no-packing / Pywren / ProPack side by side.
    Compare(RunArgs),
    /// List known applications.
    Apps,
    /// List known platforms.
    Platforms,
    /// Print usage.
    Help,
}

/// Shared arguments of plan/run/compare.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Benchmark key (`video`, `sort`, …).
    pub app: String,
    /// Concurrency level `C`.
    pub concurrency: u32,
    /// Platform key (`aws`, `google`, `azure`, `funcx`).
    pub platform: String,
    /// Objective key (`joint`, `service`, `expense`).
    pub objective: String,
    /// RNG seed.
    pub seed: u64,
    /// Save the fitted model snapshot to this path after building.
    pub save_model: Option<String>,
    /// Load a previously saved model snapshot instead of profiling.
    pub load_model: Option<String>,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            app: String::new(),
            concurrency: 0,
            platform: "aws".into(),
            objective: "joint".into(),
            seed: 42,
            save_model: None,
            load_model: None,
        }
    }
}

/// Parse errors with user-facing messages.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parse an argument vector (without the binary name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "apps" => Ok(Command::Apps),
        "platforms" => Ok(Command::Platforms),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "plan" | "run" | "compare" => {
            let mut ra = RunArgs::default();
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .cloned()
                        .ok_or_else(|| ParseError(format!("{flag} needs a value")))
                };
                match flag.as_str() {
                    "--app" => ra.app = value()?,
                    "--concurrency" | "-c" => {
                        ra.concurrency = value()?
                            .parse()
                            .map_err(|e| ParseError(format!("bad concurrency: {e}")))?
                    }
                    "--platform" => ra.platform = value()?,
                    "--objective" => ra.objective = value()?,
                    "--seed" => {
                        ra.seed = value()?
                            .parse()
                            .map_err(|e| ParseError(format!("bad seed: {e}")))?
                    }
                    "--save" => ra.save_model = Some(value()?),
                    "--model" => ra.load_model = Some(value()?),
                    other => return Err(ParseError(format!("unknown flag {other}"))),
                }
            }
            if ra.app.is_empty() {
                return Err(ParseError("--app is required".into()));
            }
            if ra.concurrency == 0 {
                return Err(ParseError("--concurrency must be ≥ 1".into()));
            }
            Ok(match cmd.as_str() {
                "plan" => Command::Plan(ra),
                "run" => Command::Run(ra),
                _ => Command::Compare(ra),
            })
        }
        other => Err(ParseError(format!(
            "unknown command {other}; try `propack help`"
        ))),
    }
}

/// Resolve an application key to its work profile.
pub fn resolve_app(key: &str) -> Result<WorkProfile, ParseError> {
    let canonical = key.to_ascii_lowercase();
    for bench in all_benchmarks() {
        let name = bench.name().to_ascii_lowercase().replace(' ', "-");
        if name == canonical || name.starts_with(&canonical) {
            return Ok(bench.profile());
        }
    }
    Err(ParseError(format!(
        "unknown app '{key}'; see `propack apps`"
    )))
}

/// Resolve a platform key.
pub fn resolve_platform(key: &str) -> Result<Box<dyn ServerlessPlatform>, ParseError> {
    Ok(match key.to_ascii_lowercase().as_str() {
        "aws" | "lambda" => Box::new(PlatformProfile::aws_lambda().into_platform()),
        "google" | "gcf" => Box::new(PlatformProfile::google_cloud_functions().into_platform()),
        "azure" => Box::new(PlatformProfile::azure_functions().into_platform()),
        "funcx" => Box::new(FuncXPlatform::default()),
        other => return Err(ParseError(format!("unknown platform '{other}'"))),
    })
}

/// Resolve an objective key.
pub fn resolve_objective(key: &str) -> Result<Objective, ParseError> {
    Ok(match key.to_ascii_lowercase().as_str() {
        "joint" => Objective::default(),
        "service" | "service-time" => Objective::ServiceTime,
        "expense" | "cost" => Objective::Expense,
        other => {
            // `joint:0.7` sets an explicit service weight.
            if let Some(w) = other.strip_prefix("joint:") {
                let w_s: f64 = w
                    .parse()
                    .map_err(|e| ParseError(format!("bad weight: {e}")))?;
                Objective::Joint {
                    w_s: w_s.clamp(0.0, 1.0),
                }
            } else {
                return Err(ParseError(format!("unknown objective '{other}'")));
            }
        }
    })
}

/// Execute a parsed command, writing human-readable output to `out`.
pub fn execute(
    cmd: Command,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        Command::Help => {
            writeln!(
                out,
                "propack — pack concurrent serverless functions faster and cheaper"
            )?;
            writeln!(out, "usage:")?;
            writeln!(out, "  propack plan    --app <name> -c <C> [--platform aws|google|azure|funcx] [--objective joint|service|expense|joint:<w>]")?;
            writeln!(
                out,
                "  propack run     --app <name> -c <C> [...] [--seed <n>]"
            )?;
            writeln!(
                out,
                "  propack plan    ... --save model.json   # persist the fitted model"
            )?;
            writeln!(
                out,
                "  propack plan    ... --model model.json  # reuse it, skipping profiling"
            )?;
            writeln!(out, "  propack compare --app <name> -c <C> [...]")?;
            writeln!(out, "  propack apps | platforms | help")?;
        }
        Command::Apps => {
            for bench in all_benchmarks() {
                let p = bench.profile();
                writeln!(
                    out,
                    "{:<16} mem {:.2} GB, isolated {:.0}s, max degree {}",
                    bench.name().to_ascii_lowercase().replace(' ', "-"),
                    p.mem_gb,
                    p.base_exec_secs,
                    p.max_packing_degree(10.0)
                )?;
            }
        }
        Command::Platforms => {
            for key in ["aws", "google", "azure", "funcx"] {
                let p = resolve_platform(key)?;
                let lim = p.limits();
                writeln!(
                    out,
                    "{:<8} {} ({} GB / {} cores per instance)",
                    key,
                    p.name(),
                    lim.mem_gb,
                    lim.cores
                )?;
            }
        }
        Command::Plan(ra) => {
            let (pp, _platform, objective) = build(&ra)?;
            let plan = pp.plan(ra.concurrency, objective);
            writeln!(out, "app:       {} on {}", pp.work.name, pp.platform_name)?;
            writeln!(
                out,
                "model:     ET(P) = {:.2}·e^({:.4}·P)s; scaling β=({:.2e}, {:.3}, {:.1})",
                pp.model.interference.base,
                pp.model.interference.rate,
                pp.model.scaling.beta1,
                pp.model.scaling.beta2,
                pp.model.scaling.beta3
            )?;
            writeln!(
                out,
                "plan:      degree {} → {} instances",
                plan.packing_degree, plan.instances
            )?;
            writeln!(
                out,
                "predicted: service {:.0}s, expense ${:.2}",
                plan.predicted_service_secs, plan.predicted_expense_usd
            )?;
            writeln!(
                out,
                "overhead:  {} probe bursts, ${:.2}",
                pp.overhead.bursts, pp.overhead.expense_usd
            )?;
        }
        Command::Run(ra) => {
            let (pp, platform, objective) = build(&ra)?;
            let outcome = pp.execute(platform.as_ref(), ra.concurrency, objective, ra.seed)?;
            writeln!(
                out,
                "ran {} × {} packed at degree {} on {}",
                outcome.plan.instances, pp.work.name, outcome.plan.packing_degree, pp.platform_name
            )?;
            writeln!(
                out,
                "service:  {:.0}s total ({:.0}s scaling)",
                outcome.report.total_service_time(),
                outcome.report.scaling_time()
            )?;
            writeln!(
                out,
                "expense:  ${:.2} (incl. ${:.2} profiling overhead)",
                outcome.expense_with_overhead_usd(),
                outcome.overhead.expense_usd
            )?;
        }
        Command::Compare(ra) => {
            let (pp, platform, objective) = build(&ra)?;
            let work = pp.work.clone();
            writeln!(
                out,
                "{:<12} {:>12} {:>12} {:>8}",
                "strategy", "service (s)", "expense ($)", "degree"
            )?;
            let base = NoPacking.run(platform.as_ref(), &work, ra.concurrency, ra.seed)?;
            writeln!(
                out,
                "{:<12} {:>12.0} {:>12.2} {:>8}",
                "no-packing",
                base.total_service_secs(),
                base.expense_usd,
                1
            )?;
            let pywren =
                Pywren::default().run(platform.as_ref(), &work, ra.concurrency, ra.seed)?;
            writeln!(
                out,
                "{:<12} {:>12.0} {:>12.2} {:>8}",
                "pywren",
                pywren.total_service_secs(),
                pywren.expense_usd,
                1
            )?;
            let outcome = pp.execute(platform.as_ref(), ra.concurrency, objective, ra.seed)?;
            writeln!(
                out,
                "{:<12} {:>12.0} {:>12.2} {:>8}",
                "propack",
                outcome.report.total_service_time(),
                outcome.expense_with_overhead_usd(),
                outcome.plan.packing_degree
            )?;
        }
    }
    Ok(())
}

/// The fully-resolved execution context of a plan/run/compare invocation.
type BuiltContext = (Propack, Box<dyn ServerlessPlatform>, Objective);

fn build(ra: &RunArgs) -> Result<BuiltContext, Box<dyn std::error::Error>> {
    let work = resolve_app(&ra.app)?;
    let platform = resolve_platform(&ra.platform)?;
    let objective = resolve_objective(&ra.objective)?;
    let pp = match &ra.load_model {
        // Restore a saved snapshot: no profiling runs at all.
        Some(path) => Propack::from_json(&std::fs::read_to_string(path)?)?,
        None => Propack::build(platform.as_ref(), &work, &ProPackConfig::default())?,
    };
    if let Some(path) = &ra.save_model {
        std::fs::write(path, pp.to_json()?)?;
    }
    Ok((pp, platform, objective))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_plan() {
        let cmd = parse(&s(&["plan", "--app", "sort", "-c", "2000"])).unwrap();
        match cmd {
            Command::Plan(ra) => {
                assert_eq!(ra.app, "sort");
                assert_eq!(ra.concurrency, 2000);
                assert_eq!(ra.platform, "aws");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_full_run() {
        let cmd = parse(&s(&[
            "run",
            "--app",
            "video",
            "--concurrency",
            "5000",
            "--platform",
            "google",
            "--objective",
            "expense",
            "--seed",
            "7",
        ]))
        .unwrap();
        match cmd {
            Command::Run(ra) => {
                assert_eq!(ra.platform, "google");
                assert_eq!(ra.objective, "expense");
                assert_eq!(ra.seed, 7);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_required_args() {
        assert!(parse(&s(&["plan", "-c", "100"])).is_err());
        assert!(parse(&s(&["plan", "--app", "sort"])).is_err());
        assert!(parse(&s(&["plan", "--app", "sort", "-c", "zero"])).is_err());
        assert!(parse(&s(&["frobnicate"])).is_err());
        assert!(parse(&s(&["plan", "--bogus", "x"])).is_err());
    }

    #[test]
    fn empty_args_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn resolves_all_apps_and_platforms() {
        for key in [
            "video",
            "sort",
            "stateless-cost",
            "smith-waterman",
            "xapian",
        ] {
            assert!(resolve_app(key).is_ok(), "{key}");
        }
        assert!(resolve_app("nope").is_err());
        for key in ["aws", "google", "azure", "funcx"] {
            assert!(resolve_platform(key).is_ok(), "{key}");
        }
        assert!(resolve_platform("ibm").is_err());
    }

    #[test]
    fn resolves_objectives() {
        assert_eq!(
            resolve_objective("joint").unwrap(),
            Objective::Joint { w_s: 0.5 }
        );
        assert_eq!(
            resolve_objective("service").unwrap(),
            Objective::ServiceTime
        );
        assert_eq!(resolve_objective("expense").unwrap(), Objective::Expense);
        assert_eq!(
            resolve_objective("joint:0.7").unwrap(),
            Objective::Joint { w_s: 0.7 }
        );
        assert!(resolve_objective("fastest").is_err());
    }

    #[test]
    fn plan_command_end_to_end() {
        let cmd = parse(&s(&["plan", "--app", "sort", "-c", "1000"])).unwrap();
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("degree"), "{text}");
        assert!(text.contains("predicted"), "{text}");
    }

    #[test]
    fn listing_commands_render() {
        for cmd in [Command::Apps, Command::Platforms, Command::Help] {
            let mut buf = Vec::new();
            execute(cmd, &mut buf).unwrap();
            assert!(!buf.is_empty());
        }
    }
}

#[cfg(test)]
mod persist_cli_tests {
    use super::*;

    #[test]
    fn save_then_load_round_trips_through_files() {
        let dir = std::env::temp_dir().join("propack-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let path_str = path.to_str().unwrap().to_string();

        let save = Command::Plan(RunArgs {
            app: "sort".into(),
            concurrency: 1000,
            save_model: Some(path_str.clone()),
            ..RunArgs::default()
        });
        let mut out = Vec::new();
        execute(save, &mut out).unwrap();
        assert!(path.exists());

        let load = Command::Plan(RunArgs {
            app: "sort".into(),
            concurrency: 1000,
            load_model: Some(path_str),
            ..RunArgs::default()
        });
        let mut out2 = Vec::new();
        execute(load, &mut out2).unwrap();
        // Same model → identical plan line.
        let plan_line = |bytes: &[u8]| {
            String::from_utf8_lossy(bytes)
                .lines()
                .find(|l| l.starts_with("plan:"))
                .unwrap()
                .to_string()
        };
        assert_eq!(plan_line(&out), plan_line(&out2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_save_and_model_flags() {
        let args: Vec<String> = ["plan", "--app", "sort", "-c", "100", "--save", "m.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match parse(&args).unwrap() {
            Command::Plan(ra) => assert_eq!(ra.save_model.as_deref(), Some("m.json")),
            other => panic!("{other:?}"),
        }
        let args: Vec<String> = ["run", "--app", "sort", "-c", "100", "--model", "m.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match parse(&args).unwrap() {
            Command::Run(ra) => assert_eq!(ra.load_model.as_deref(), Some("m.json")),
            other => panic!("{other:?}"),
        }
    }
}
