//! The sweep engine's headline guarantee, tested end to end: the same
//! `SweepSpec` rendered at `--threads 1`, `--threads 4`, and `--threads 8`
//! is byte-identical, and the memoized model-fit cache is invisible in the
//! output (a cache hit produces the same packing decisions as a cold fit).

use propack_repro::prelude::*;
use propack_repro::propack::optimizer::Objective;
use propack_repro::propack::propack::{ProPackConfig, Propack};
use propack_repro::workloads::Benchmarks;

fn grid() -> SweepSpec {
    SweepSpec::new("determinism")
        .platforms([PlatformAxis::Aws, PlatformAxis::Google, PlatformAxis::FuncX])
        .workloads(
            Benchmarks::primary()
                .into_iter()
                .take(2)
                .map(|b| b.profile()),
        )
        .concurrency([100, 1000])
        .policies([
            PackingPolicy::NoPacking,
            PackingPolicy::Pywren,
            PackingPolicy::Fixed(4),
            PackingPolicy::propack_default(),
        ])
        .seeds([11, 12])
}

#[test]
fn threads_1_4_8_render_byte_identically() {
    let spec = grid();
    let reference = SweepRunner::new().run(&spec).unwrap().render();
    assert!(reference.lines().count() > spec.cell_count());
    for threads in [4, 8] {
        let rendered = SweepRunner::new()
            .threads(threads)
            .run(&spec)
            .unwrap()
            .render();
        assert_eq!(
            reference.as_bytes(),
            rendered.as_bytes(),
            "threads={threads} output diverged from serial"
        );
    }
}

#[test]
fn repeated_runs_are_reproducible() {
    let spec = grid();
    let a = SweepRunner::new().threads(4).run(&spec).unwrap().render();
    let b = SweepRunner::new().threads(4).run(&spec).unwrap().render();
    assert_eq!(a, b);
}

#[test]
fn cache_hit_matches_cold_fit_packing_decisions() {
    let platform = PlatformBuilder::aws().build();
    let work = Benchmarks::primary()[0].profile();
    let cfg = ProPackConfig::default();

    let cache = ModelCache::new();
    let first = cache.fit(&platform, &work, &cfg).unwrap();
    let hit = cache.fit(&platform, &work, &cfg).unwrap();
    assert_eq!(cache.hits(), 1, "second fit must be served from the cache");

    let cold = Propack::build(&platform, &work, &cfg).unwrap();
    for c in [50, 500, 5000] {
        for objective in [
            Objective::ServiceTime,
            Objective::Expense,
            Objective::default(),
        ] {
            assert_eq!(hit.plan(c, objective), cold.plan(c, objective));
            assert_eq!(first.plan(c, objective), cold.plan(c, objective));
        }
    }
}

/// The kernel's cohort fast path (fault-free, first-attempt instances whose
/// lifecycle is finished arithmetically) must be invisible in results.
/// Tracing disables the fast path — every instance then simulates its
/// execution individually through scheduled events — so a traced burst
/// exercises the slow path the fast path replaced. Both must agree
/// bit-for-bit, across fault-free, straggler, and crash-retry bursts (the
/// latter mixing fast-path and individually-simulated instances).
#[test]
fn cohort_fast_path_matches_individual_simulation() {
    let platform = PlatformBuilder::aws().build();
    let work = Benchmarks::primary()[0].profile();
    let specs = [
        BurstSpec::packed(work.clone(), 500, 4).with_seed(21),
        BurstSpec::packed(work.clone(), 1000, 25)
            .with_seed(22)
            .with_warm_fraction(0.3),
        BurstSpec::packed(work.clone(), 400, 4)
            .with_seed(23)
            .with_faults(FaultSpec::none().with_straggler(0.05, 3.0)),
        BurstSpec::packed(work, 400, 4)
            .with_seed(24)
            .with_faults(FaultSpec::none().with_crash_rate(0.02))
            .with_retry(RetryPolicy::default()),
    ];
    for spec in specs {
        let fast = platform.run_burst(&spec).unwrap();
        let (individual, trace) = platform.run_burst_traced(&spec).unwrap();
        assert!(!trace.is_empty(), "traced run must actually trace");
        assert_eq!(
            fast.canonical_text(),
            individual.canonical_text(),
            "cohort-batched and individually-simulated bursts diverged (seed {})",
            spec.seed
        );
        assert_eq!(fast, individual);
    }
}
