//! Golden replay tests: the kernel-optimization safety net.
//!
//! Each fixture in `tests/golden/` pins the **bit-exact** `RunReport` of one
//! burst configuration, rendered with [`RunReport::canonical_text`] (every
//! `f64` as its IEEE-754 bit pattern). The fixtures were generated with the
//! pre-optimization kernel (PR 3); the current kernel — pooled event queue,
//! cohort batching, typed events — must reproduce every one of them byte for
//! byte. A single-ULP drift in any timestamp, bill, or fault counter fails
//! the test with a pointer to the first diverging line.
//!
//! Grid: {aws, funcx} × {Sort, Video} × {fault-free, crash=0.01} ×
//! C ∈ {500, 1000}, seed 42 (the CI smoke-sweep seed) — 16 fixtures.
//!
//! Regenerate (only when *intentionally* changing simulated behaviour, never
//! as part of a performance PR):
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release --test golden_replay
//! ```

use propack_repro::funcx::{FuncXConfig, FuncXPlatform};
use propack_repro::platform::prelude::*;
use propack_repro::workloads::Benchmarks;
use std::fs;
use std::path::PathBuf;

const SEED: u64 = 42;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn platform(key: &str) -> Box<dyn ServerlessPlatform> {
    match key {
        "aws" => Box::new(PlatformBuilder::aws().build()),
        "funcx" => Box::new(FuncXPlatform::new(FuncXConfig::default())),
        other => panic!("unknown platform key {other}"),
    }
}

fn workload(key: &str) -> WorkProfile {
    Benchmarks::resolve(key)
        .unwrap_or_else(|| panic!("unknown workload key {key}"))
        .profile()
}

fn spec(work: &WorkProfile, concurrency: u32, faults: &str) -> BurstSpec {
    let base = BurstSpec::new(work.clone(), concurrency, 1).with_seed(SEED);
    match faults {
        "fault-free" => base,
        "crash001" => base
            .with_faults(FaultSpec::none().with_crash_rate(0.01))
            .with_retry(RetryPolicy::default()),
        other => panic!("unknown fault scenario {other}"),
    }
}

/// All 16 golden cases as (fixture-name, platform, workload, C, faults).
fn cases() -> Vec<(String, &'static str, &'static str, u32, &'static str)> {
    let mut v = Vec::new();
    for plat in ["aws", "funcx"] {
        for work in ["sort", "video"] {
            for faults in ["fault-free", "crash001"] {
                for c in [500u32, 1000] {
                    let name = format!("{plat}_{work}_{faults}_c{c}.txt");
                    v.push((name, plat, work, c, faults));
                }
            }
        }
    }
    v
}

fn render_case(plat: &str, work: &str, c: u32, faults: &str) -> String {
    let p = platform(plat);
    let w = workload(work);
    let report = p
        .run_burst(&spec(&w, c, faults))
        .unwrap_or_else(|e| panic!("{plat}/{work}/c{c}/{faults}: {e:?}"));
    report.canonical_text()
}

/// Point at the first diverging line so a ULP drift is debuggable.
fn first_divergence(golden: &str, current: &str) -> String {
    for (n, (g, c)) in golden.lines().zip(current.lines()).enumerate() {
        if g != c {
            return format!(
                "first divergence at line {}:\n  golden:  {g}\n  current: {c}",
                n + 1
            );
        }
    }
    format!(
        "line counts differ: golden {} vs current {}",
        golden.lines().count(),
        current.lines().count()
    )
}

#[test]
fn golden_replay_bit_identical() {
    let dir = golden_dir();
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    if update {
        fs::create_dir_all(&dir).expect("create tests/golden");
    }
    let mut missing = Vec::new();
    for (name, plat, work, c, faults) in cases() {
        let current = render_case(plat, work, c, faults);
        let path = dir.join(&name);
        if update {
            fs::write(&path, &current).expect("write golden fixture");
            continue;
        }
        let golden = match fs::read_to_string(&path) {
            Ok(s) => s,
            Err(_) => {
                missing.push(name);
                continue;
            }
        };
        assert_eq!(
            golden,
            current,
            "golden replay diverged for {name}: {}",
            first_divergence(&golden, &current)
        );
    }
    assert!(
        missing.is_empty(),
        "missing golden fixtures (run with UPDATE_GOLDEN=1 to generate): {missing:?}"
    );
}

/// The warm-pool redesign's backward-compatibility contract: submitting the
/// same bursts through the [`BurstRequest`] + `ColdAlways` [`WarmPool`] path
/// must reproduce every golden fixture byte for byte. A cold pool grants
/// nothing, so round 0 of the pooled run is the plain burst, down to the
/// last ULP.
#[test]
fn cold_pool_request_path_reproduces_golden_fixtures() {
    let dir = golden_dir();
    for (name, plat, work, c, faults) in cases() {
        let Ok(golden) = fs::read_to_string(dir.join(&name)) else {
            continue; // golden_replay_bit_identical reports missing fixtures
        };
        let p = platform(plat);
        let w = workload(work);
        let mut request = BurstRequest::new(w, c, 1).with_seed(SEED);
        if faults == "crash001" {
            request = request
                .with_faults(FaultSpec::none().with_crash_rate(0.01))
                .with_retry(RetryPolicy::default());
        }
        let mut pool = WarmPool::new(WarmPoolConfig::cold());
        let run = request
            .run_pooled(p.as_ref(), &mut pool, 0.0)
            .unwrap_or_else(|e| panic!("{name}: {e:?}"));
        assert_eq!(run.warm_instances(), 0, "{name}: cold pool granted warmth");
        assert_eq!(run.warm_credit_usd, 0.0, "{name}: cold pool earned credit");
        let current = run.rounds[0].canonical_text();
        assert_eq!(
            golden,
            current,
            "cold-pool replay diverged for {name}: {}",
            first_divergence(&golden, &current)
        );
    }
}

/// The crash-fault fixtures must actually contain faults — otherwise the
/// crash scenario silently degenerated into the fault-free one and the
/// golden grid lost half its coverage.
#[test]
fn crash_fixtures_exercise_the_fault_path() {
    for (plat, work) in [("aws", "sort"), ("funcx", "video")] {
        let p = platform(plat);
        let w = workload(work);
        let report = p
            .run_burst(&spec(&w, 1000, "crash001"))
            .expect("crash burst");
        assert!(
            report.faults.crashes > 0,
            "{plat}/{work} crash=0.01 burst recorded no crashes"
        );
    }
}
