//! Generates `BENCH_kernel.json`: kernel cell-throughput on the fixed grid,
//! with a bit-exact `outputs_identical` check against `tests/golden/`.
//!
//! ```text
//! kernel_bench [--out BENCH_kernel.json] [--reps 3]
//!              [--baseline crates/bench/baselines/kernel_pr3.json]
//! ```
//!
//! With `--baseline`, per-policy speedups over the committed baseline are
//! embedded in the output (this is how the tentpole's ≥3× claim for the
//! propack-joint cells is recorded).

use propack_bench::kernel;
use std::path::PathBuf;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_kernel.json".to_string());
    let reps: usize = arg_value(&args, "--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let baseline = arg_value(&args, "--baseline");

    // Repo root = two levels up from this crate's manifest.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let golden_dir = root.join("tests").join("golden");

    eprintln!(
        "kernel_bench: checking golden outputs against {}",
        golden_dir.display()
    );
    let divergences = kernel::golden_divergences(&golden_dir).expect("golden replay");
    if !divergences.is_empty() {
        eprintln!("kernel_bench: OUTPUT DIVERGENCE in {divergences:?}");
    }

    eprintln!("kernel_bench: measuring ({reps} reps + warmup, threads=1)");
    let measurement = kernel::measure(reps).expect("kernel grid");
    if !measurement.faulted_day_exact {
        eprintln!("kernel_bench: OUTPUT DIVERGENCE: faulted day batched != event path");
    }
    let outputs_identical = divergences.is_empty() && measurement.faulted_day_exact;
    let groups = measurement.groups;
    for g in &groups {
        let err = g
            .max_rel_err
            .map(|e| format!("  max_rel_err {e:.4}"))
            .unwrap_or_default();
        eprintln!(
            "  {:<20} {:>3} cells  {:>9.4}s  {:>10.2} cells/s{err}",
            g.policy, g.cells, g.wall_secs, g.cells_per_sec
        );
    }

    let speedups: Option<(String, Vec<(String, f64)>)> = baseline.map(|path| {
        let text = std::fs::read_to_string(root.join(&path))
            .unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let base = kernel::parse_cells_per_sec(&text);
        let sp = groups
            .iter()
            .filter_map(|g| {
                base.iter().find(|(p, _)| *p == g.policy).map(|(_, b)| {
                    (
                        g.policy.clone(),
                        if *b > 0.0 {
                            g.cells_per_sec / b
                        } else {
                            f64::INFINITY
                        },
                    )
                })
            })
            .collect();
        (path, sp)
    });
    if let Some((_, sp)) = &speedups {
        for (policy, s) in sp {
            eprintln!("  speedup vs baseline: {policy:<20} {s:.2}x");
        }
    }

    let json = kernel::render_json(
        &groups,
        reps,
        outputs_identical,
        speedups
            .as_ref()
            .map(|(src, sp)| (src.as_str(), sp.as_slice())),
    );
    std::fs::write(root.join(&out), &json).expect("write BENCH_kernel.json");
    eprintln!("kernel_bench: wrote {out}");
    if !outputs_identical {
        std::process::exit(1);
    }
}
