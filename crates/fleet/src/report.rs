//! Fleet replay reports: per-tenant and fleet-level accounting.
//!
//! Same contract as the sweep and replay reports: [`FleetReport::render`]
//! contains only simulated results at fixed precision and must be
//! byte-identical across re-runs, `--threads N`, and tenant input order.
//! Host timing (`fit_ms`, per-epoch `run_ms`) is captured for
//! `BENCH_fleet.json` but never rendered.

use propack_replay::{EpochResult, ReplayReport};

/// One tenant's accumulated outcome over the whole replay, in tenant-id
/// (name) order in [`FleetReport::tenants`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRow {
    /// Tenant name (by convention `app/function`).
    pub name: String,
    /// The tenant's trace name (usually equal to `name`).
    pub trace: String,
    /// Workload profile name.
    pub workload: String,
    /// Controller label, e.g. `propack-ewma`.
    pub controller: String,
    /// The tenant's private base seed.
    pub seed: u64,
    /// Invocations that arrived over the horizon.
    pub arrivals: u64,
    /// Invocations admitted past fleet-capacity throttling.
    pub admitted: u64,
    /// Invocations rejected because the shared fleet was saturated.
    pub throttled: u64,
    /// Instances spawned (all retry rounds).
    pub instances: u64,
    /// Realized service time, seconds.
    pub service_secs: f64,
    /// Realized tail (p95) latency, seconds, summed across epochs.
    pub tail_secs: f64,
    /// Billed expense, USD (excludes the shared model overhead, reported
    /// fleet-level; `model_overhead_usd` here is the tenant's share for a
    /// solo-replay reconstruction).
    pub expense_usd: f64,
    /// The profiling cost this tenant's plans rely on, USD — what a solo
    /// replay of this tenant would have paid. Coalesced tenants all record
    /// the same figure; the fleet pays it once (see
    /// [`FleetReport::model_overhead_usd`]).
    pub model_overhead_usd: f64,
    /// Billed compute, function-hours.
    pub function_hours: f64,
    /// Retries consumed by fault recovery.
    pub retries: u64,
    /// Functions abandoned after the retry budget.
    pub failed_functions: u64,
    /// Warm (same-function keep-alive) grants from the shared pool.
    pub warm_grants: u64,
    /// Re-specialized shared-donor grants from the shared pool.
    pub shared_grants: u64,
    /// Epochs whose tail latency violated the QoS bound.
    pub qos_violations: u32,
    /// Largest packing degree any epoch used.
    pub max_degree: u32,
    /// Arrivals-weighted modal packing degree ("chosen P"); 1 when the
    /// tenant never saw an arrival.
    pub dominant_degree: u32,
    /// Sum of |forecast − arrivals| over forecasted epochs.
    pub forecast_abs_err_sum: f64,
    /// Number of forecasted epochs.
    pub forecast_epochs: u64,
    /// Epochs that failed to plan or run.
    pub errors: u32,
}

impl TenantRow {
    /// Mean absolute forecast error, functions; `None` when the tenant's
    /// controller never forecast.
    pub fn mean_abs_forecast_error(&self) -> Option<f64> {
        if self.forecast_epochs == 0 {
            None
        } else {
            Some(self.forecast_abs_err_sum / self.forecast_epochs as f64)
        }
    }
}

/// One epoch of fleet-level admission and occupancy.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetEpochRow {
    /// Epoch index.
    pub epoch: u32,
    /// Epoch start, seconds on the sim clock.
    pub start_secs: f64,
    /// Invocations that arrived fleet-wide in this window.
    pub arrivals: u64,
    /// Invocations admitted after capacity throttling.
    pub admitted: u64,
    /// Invocations throttled by fleet saturation.
    pub throttled: u64,
    /// Instance slots the tenants asked for.
    pub demand_instances: u64,
    /// Instance slots the fleet granted (= concurrently reserved during
    /// the epoch; slots are freed at the epoch boundary).
    pub granted_instances: u64,
    /// Warm pool grants consumed this epoch.
    pub warm_grants: u64,
    /// Shared-donor pool grants consumed this epoch.
    pub shared_grants: u64,
    /// `granted_instances / capacity`.
    pub utilization: f64,
    /// Maximum per-server occupancy while the epoch's placements were live.
    pub peak_occupancy: u32,
    /// Host milliseconds spent in the parallel burst phase (timing only,
    /// not rendered).
    pub run_ms: f64,
}

/// Accumulated outcome of replaying a multi-tenant fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Platform display name.
    pub platform: String,
    /// Controller summary: the shared label when every tenant runs the
    /// same policy, `mixed` otherwise.
    pub controller: String,
    /// Epoch width, seconds.
    pub epoch_secs: f64,
    /// Base seed (warm pool; tenants carry their own).
    pub seed: u64,
    /// QoS bound on per-epoch tail latency, if one was set.
    pub qos_secs: Option<f64>,
    /// Keep-alive policy label.
    pub keepalive: String,
    /// Total fleet slots.
    pub capacity: u64,
    /// Per-tenant rows, in tenant-id (name) order.
    pub tenants: Vec<TenantRow>,
    /// Per-epoch fleet rows, in epoch order.
    pub epochs: Vec<FleetEpochRow>,
    /// Per-tenant per-epoch rows (index-aligned with `tenants`), kept only
    /// when [`crate::FleetSpec::keep_tenant_epochs`] is set — the
    /// single-tenant ≡ `ReplayEngine` bit-identity check reads these.
    pub tenant_epochs: Option<Vec<Vec<EpochResult>>>,
    /// Model-building expense the *fleet* paid, USD: one charge per
    /// distinct (platform, workload, config) fit, however many tenants
    /// share it.
    pub model_overhead_usd: f64,
    /// Distinct model fits paid (coalesced across tenants).
    pub distinct_fits: u64,
    /// Host milliseconds fitting models (timing only, not rendered).
    pub fit_ms: f64,
}

impl FleetReport {
    /// Total invocations that arrived.
    pub fn total_arrivals(&self) -> u64 {
        self.tenants.iter().map(|t| t.arrivals).sum()
    }

    /// Total invocations admitted.
    pub fn total_admitted(&self) -> u64 {
        self.tenants.iter().map(|t| t.admitted).sum()
    }

    /// Total invocations throttled by fleet saturation.
    pub fn total_throttled(&self) -> u64 {
        self.tenants.iter().map(|t| t.throttled).sum()
    }

    /// Fleet contention: the throttled share of arrivals (0 on an idle or
    /// amply-provisioned fleet).
    pub fn contention(&self) -> f64 {
        let arrivals = self.total_arrivals();
        if arrivals == 0 {
            0.0
        } else {
            self.total_throttled() as f64 / arrivals as f64
        }
    }

    /// Total realized service time, seconds.
    pub fn total_service_secs(&self) -> f64 {
        self.tenants.iter().map(|t| t.service_secs).sum()
    }

    /// Total billed expense including the coalesced model overhead, USD.
    pub fn total_expense_usd(&self) -> f64 {
        self.model_overhead_usd + self.tenants.iter().map(|t| t.expense_usd).sum::<f64>()
    }

    /// Total billed compute, function-hours.
    pub fn total_function_hours(&self) -> f64 {
        self.tenants.iter().map(|t| t.function_hours).sum()
    }

    /// Total instances spawned.
    pub fn total_instances(&self) -> u64 {
        self.tenants.iter().map(|t| t.instances).sum()
    }

    /// QoS violations across all tenants and epochs.
    pub fn qos_violations(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| u64::from(t.qos_violations))
            .sum()
    }

    /// Total retries across the fleet.
    pub fn total_retries(&self) -> u64 {
        self.tenants.iter().map(|t| t.retries).sum()
    }

    /// Total abandoned functions across the fleet.
    pub fn total_failed(&self) -> u64 {
        self.tenants.iter().map(|t| t.failed_functions).sum()
    }

    /// Total warm grants across the fleet.
    pub fn total_warm_grants(&self) -> u64 {
        self.tenants.iter().map(|t| t.warm_grants).sum()
    }

    /// Total shared-donor grants across the fleet.
    pub fn total_shared_grants(&self) -> u64 {
        self.tenants.iter().map(|t| t.shared_grants).sum()
    }

    /// Instance slots granted across all epochs.
    pub fn total_granted_instances(&self) -> u64 {
        self.epochs.iter().map(|e| e.granted_instances).sum()
    }

    /// Cold-start rate: the share of granted instances that were *not*
    /// served warm or shared from the pool. 1.0 when nothing ran (an idle
    /// fleet is all-cold by convention) or when no pool is configured.
    pub fn cold_start_rate(&self) -> f64 {
        let granted = self.total_granted_instances();
        if granted == 0 {
            return 1.0;
        }
        let pooled = self.total_warm_grants() + self.total_shared_grants();
        1.0 - (pooled.min(granted) as f64 / granted as f64)
    }

    /// Mean per-epoch fleet utilization.
    pub fn mean_utilization(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|e| e.utilization).sum::<f64>() / self.epochs.len() as f64
    }

    /// Peak per-epoch fleet utilization.
    pub fn peak_utilization(&self) -> f64 {
        self.epochs
            .iter()
            .map(|e| e.utilization)
            .fold(0.0, f64::max)
    }

    /// Epochs that failed to plan or run, across all tenants.
    pub fn error_count(&self) -> u64 {
        self.tenants.iter().map(|t| u64::from(t.errors)).sum()
    }

    /// Reconstruct the [`ReplayReport`] tenant `idx` (tenant-id order)
    /// would have produced as a solo replay: same per-epoch rows, the
    /// tenant's own seed and model overhead. `None` unless the run kept
    /// tenant epochs. The single-tenant fleet ≡ `ReplayEngine` bit-identity
    /// suite diffs this against the real engine's output.
    pub fn tenant_replay_report(&self, idx: usize) -> Option<ReplayReport> {
        let rows = self.tenant_epochs.as_ref()?.get(idx)?;
        let t = self.tenants.get(idx)?;
        Some(ReplayReport {
            trace: t.trace.clone(),
            platform: self.platform.clone(),
            workload: t.workload.clone(),
            controller: t.controller.clone(),
            epoch_secs: self.epoch_secs,
            seed: t.seed,
            qos_secs: self.qos_secs,
            keepalive: self.keepalive.clone(),
            epochs: rows.clone(),
            model_overhead_usd: t.model_overhead_usd,
            fit_ms: self.fit_ms,
        })
    }

    /// The deterministic text report: fixed precision, no host timing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet on {}: tenants={} controller={} epochs={} epoch_s={:.1} seed={} capacity={} keepalive={} qos_s={}\n",
            self.platform,
            self.tenants.len(),
            self.controller,
            self.epochs.len(),
            self.epoch_secs,
            self.seed,
            self.capacity,
            self.keepalive,
            match self.qos_secs {
                Some(q) => format!("{q:.3}"),
                None => "-".to_string(),
            },
        ));
        out.push_str(
            "epoch\tstart_s\tarrivals\tadmitted\tthrottled\tdemand\tgranted\twarm\tshared\tutil\tpeak\n",
        );
        for e in &self.epochs {
            out.push_str(&format!(
                "{}\t{:.1}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.4}\t{}\n",
                e.epoch,
                e.start_secs,
                e.arrivals,
                e.admitted,
                e.throttled,
                e.demand_instances,
                e.granted_instances,
                e.warm_grants,
                e.shared_grants,
                e.utilization,
                e.peak_occupancy,
            ));
        }
        out.push_str(
            "tenant\tworkload\tcontroller\tarrivals\tadmitted\tthrottled\tP*\tPmax\tinstances\tservice_s\ttail_s\texpense_usd\tfn_hours\tretries\tfailed\twarm\tqos\tmae\terrors\n",
        );
        for t in &self.tenants {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.3}\t{:.3}\t{:.6}\t{:.4}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                t.name,
                t.workload,
                t.controller,
                t.arrivals,
                t.admitted,
                t.throttled,
                t.dominant_degree,
                t.max_degree,
                t.instances,
                t.service_secs,
                t.tail_secs,
                t.expense_usd,
                t.function_hours,
                t.retries,
                t.failed_functions,
                t.warm_grants,
                t.qos_violations,
                match t.mean_abs_forecast_error() {
                    Some(m) => format!("{m:.2}"),
                    None => "-".to_string(),
                },
                t.errors,
            ));
        }
        out.push_str(&format!(
            "total: arrivals={} admitted={} throttled={} service_s={:.3} expense_usd={:.6} (model_overhead_usd={:.6} fits={}) fn_hours={:.4} retries={} failed={} qos_violations={} errors={}\n",
            self.total_arrivals(),
            self.total_admitted(),
            self.total_throttled(),
            self.total_service_secs(),
            self.total_expense_usd(),
            self.model_overhead_usd,
            self.distinct_fits,
            self.total_function_hours(),
            self.total_retries(),
            self.total_failed(),
            self.qos_violations(),
            self.error_count(),
        ));
        out.push_str(&format!(
            "fleet: utilization={:.4} peak_util={:.4} cold_start_rate={:.4} contention={:.4} warm_grants={} shared_grants={}\n",
            self.mean_utilization(),
            self.peak_utilization(),
            self.cold_start_rate(),
            self.contention(),
            self.total_warm_grants(),
            self.total_shared_grants(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(name: &str, arrivals: u64, throttled: u64) -> TenantRow {
        TenantRow {
            name: name.to_string(),
            trace: name.to_string(),
            workload: "fleet-p0".to_string(),
            controller: "propack-ewma".to_string(),
            seed: 7,
            arrivals,
            admitted: arrivals - throttled,
            throttled,
            instances: arrivals / 4,
            service_secs: 12.0,
            tail_secs: 9.5,
            expense_usd: 0.01,
            model_overhead_usd: 0.005,
            function_hours: 0.2,
            retries: 1,
            failed_functions: 0,
            warm_grants: 3,
            shared_grants: 1,
            qos_violations: 2,
            max_degree: 8,
            dominant_degree: 4,
            forecast_abs_err_sum: 50.0,
            forecast_epochs: 10,
            errors: 0,
        }
    }

    fn report() -> FleetReport {
        FleetReport {
            platform: "AWS Lambda".into(),
            controller: "propack-ewma".into(),
            epoch_secs: 60.0,
            seed: 42,
            qos_secs: Some(30.0),
            keepalive: "cold".into(),
            capacity: 1000,
            tenants: vec![tenant("a00/f0", 100, 0), tenant("a01/f0", 200, 40)],
            epochs: vec![
                FleetEpochRow {
                    epoch: 0,
                    start_secs: 0.0,
                    arrivals: 150,
                    admitted: 130,
                    throttled: 20,
                    demand_instances: 40,
                    granted_instances: 35,
                    warm_grants: 2,
                    shared_grants: 0,
                    utilization: 0.035,
                    peak_occupancy: 3,
                    run_ms: 4.0,
                },
                FleetEpochRow {
                    epoch: 1,
                    start_secs: 60.0,
                    arrivals: 150,
                    admitted: 130,
                    throttled: 20,
                    demand_instances: 42,
                    granted_instances: 40,
                    warm_grants: 4,
                    shared_grants: 2,
                    utilization: 0.04,
                    peak_occupancy: 4,
                    run_ms: 5.0,
                },
            ],
            tenant_epochs: None,
            model_overhead_usd: 0.005,
            distinct_fits: 1,
            fit_ms: 11.0,
        }
    }

    #[test]
    fn totals_and_fleet_metrics_accumulate() {
        let r = report();
        assert_eq!(r.total_arrivals(), 300);
        assert_eq!(r.total_throttled(), 40);
        assert!((r.contention() - 40.0 / 300.0).abs() < 1e-12);
        assert_eq!(r.total_granted_instances(), 75);
        // 8 pooled grants (tenant rows: 2·(3+1)) over 75 granted.
        assert!((r.cold_start_rate() - (1.0 - 8.0 / 75.0)).abs() < 1e-12);
        assert!((r.mean_utilization() - 0.0375).abs() < 1e-12);
        assert!((r.peak_utilization() - 0.04).abs() < 1e-12);
        assert_eq!(r.qos_violations(), 4);
        // Overhead is paid once, not per tenant.
        assert!((r.total_expense_usd() - (0.005 + 0.02)).abs() < 1e-12);
    }

    #[test]
    fn render_excludes_host_timing() {
        let a = report();
        let mut b = report();
        b.fit_ms = 1e9;
        for e in &mut b.epochs {
            e.run_ms = 1e9;
        }
        assert_eq!(a.render(), b.render());
        let mut c = report();
        c.tenants[0].service_secs += 0.001;
        assert_ne!(a.render(), c.render());
    }

    #[test]
    fn idle_fleet_metrics_are_well_defined() {
        let mut r = report();
        r.tenants.clear();
        r.epochs.clear();
        assert_eq!(r.contention(), 0.0);
        assert_eq!(r.cold_start_rate(), 1.0);
        assert_eq!(r.mean_utilization(), 0.0);
        assert_eq!(r.peak_utilization(), 0.0);
    }

    #[test]
    fn tenant_replay_reconstruction_needs_kept_epochs() {
        let r = report();
        assert!(r.tenant_replay_report(0).is_none());
        let mut kept = report();
        kept.tenant_epochs = Some(vec![Vec::new(), Vec::new()]);
        let solo = kept.tenant_replay_report(1).expect("kept");
        assert_eq!(solo.trace, "a01/f0");
        assert_eq!(solo.seed, 7);
        assert_eq!(solo.controller, "propack-ewma");
        assert!((solo.model_overhead_usd - 0.005).abs() < 1e-12);
    }
}
