//! # propack-sweep — the parallel deterministic sweep engine
//!
//! Every experiment in the reproduction is a *grid*: platforms ×
//! workloads × concurrency levels × packing policies × seeds × fault
//! scenarios × replay controllers × keep-alive policies × workflow
//! shapes. This crate
//! is the single way to run such grids. You describe the experiment as a
//! declarative [`SweepSpec`], hand it to a [`SweepRunner`], and get back a
//! [`SweepReport`] whose rendered output is **byte-identical for every
//! `--threads` value** — parallelism is purely a wall-clock optimization,
//! never a source of nondeterminism.
//!
//! Three properties make that hold:
//!
//! 1. **Cell independence.** Each grid cell runs a fresh platform and a
//!    fresh seeded DES timeline; nothing mutable is shared between cells.
//! 2. **Deterministic reduce.** Results are merged in [`CellKey`] order,
//!    never completion order.
//! 3. **Invisible memoization.** ProPack model fits are shared through a
//!    [`ModelCache`], and a cached fit is bit-identical to a cold one, so
//!    caching changes throughput, not results.
//!
//! Scheduling is work-stealing over per-worker deques (own front, steal
//! back), which keeps workers busy even when cell costs are skewed —
//! e.g. `C = 10 000` cells next to `C = 100` cells.
//!
//! ```
//! use propack_sweep::prelude::*;
//! use propack_platform::WorkProfile;
//!
//! let spec = SweepSpec::new("doc")
//!     .platforms([PlatformAxis::Aws])
//!     .workloads([WorkProfile::synthetic("w", 0.25, 30.0).with_contention(0.2)])
//!     .concurrency([200])
//!     .policies([PackingPolicy::NoPacking, PackingPolicy::propack_default()])
//!     .seeds([7]);
//! let serial = SweepRunner::new().run(&spec).unwrap();
//! let parallel = SweepRunner::new().threads(2).run(&spec).unwrap();
//! assert_eq!(serial.render(), parallel.render());
//! ```

pub mod cell;
pub mod engine;
pub mod faults;
pub mod fleet_bench;
pub mod keepalive;
pub mod replay_bench;
pub mod report;
pub mod spec;
pub mod workflow_bench;

pub use cell::{Cell, CellKey, CellResult};
pub use engine::SweepRunner;
pub use faults::{FaultScenario, FaultScenarioSpec};
pub use fleet_bench::{fleet_bench_json, timed_fleet};
pub use keepalive::KeepAliveScenario;
pub use replay_bench::{replay_bench_json, timed_replay};
pub use report::{bench_json, speedup, RunTiming, SweepReport};
pub use spec::{PackingPolicy, PlatformAxis, ReplayGrid, SweepError, SweepSpec};
pub use workflow_bench::workflow_bench_json;

/// Everything needed to define and run a sweep.
pub mod prelude {
    pub use crate::cell::{CellKey, CellResult};
    pub use crate::engine::SweepRunner;
    pub use crate::faults::{FaultScenario, FaultScenarioSpec};
    pub use crate::keepalive::KeepAliveScenario;
    pub use crate::replay_bench::{replay_bench_json, timed_replay};
    pub use crate::report::{bench_json, RunTiming, SweepReport};
    pub use crate::spec::{PackingPolicy, PlatformAxis, ReplayGrid, SweepError, SweepSpec};
    pub use crate::workflow_bench::workflow_bench_json;
    pub use propack_model::cache::ModelCache;
    pub use propack_replay::{ArrivalTrace, Controller, ReplayEngine, ReplaySpec};
}
