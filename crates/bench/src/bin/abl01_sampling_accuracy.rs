//! Ablation: §2.1's alternate-point sampling claim, quantified.
//!
//! The paper argues the interference curve is monotone, so ProPack can
//! "approximate the curve by skipping alternate points and limiting the
//! number of sample points" without hurting the decision. This binary
//! profiles each primary benchmark at degree steps 1 / 2 / 4, then compares
//! the fitted rate, the joint plan at C = 5000, and the profiling expense.

use propack_bench::table::{usd, Table};
use propack_bench::Ctx;
use propack_model::optimizer::Objective;
use propack_model::propack::ProPackConfig;
use propack_model::propack::Propack;

fn main() {
    let ctx = Ctx::default();
    let mut t = Table::new(
        "abl01",
        "Alternate-point sampling ablation (C=5000 joint plan per degree step)",
        &[
            "app",
            "step",
            "probe bursts",
            "probe cost",
            "fitted rate",
            "plan degree",
        ],
    );
    let mut agree = true;
    for work in ctx.primary_profiles() {
        let mut degrees = Vec::new();
        for step in [1u32, 2, 4] {
            let cfg = ProPackConfig {
                degree_step: step,
                ..ProPackConfig::default()
            };
            let pp = Propack::build(&ctx.aws, &work, &cfg).expect("build");
            let plan = pp.plan(5000, Objective::default()).expect("plan");
            degrees.push(plan.packing_degree);
            t.row(vec![
                work.name.clone(),
                step.to_string(),
                pp.overhead.bursts.to_string(),
                usd(pp.overhead.expense_usd),
                format!("{:.4}", pp.model.interference.rate),
                plan.packing_degree.to_string(),
            ]);
        }
        agree &= degrees.iter().all(|&d| d.abs_diff(degrees[0]) <= 1);
        let full = degrees[0];
        t.note(format!(
            "{}: plans at steps 1/2/4 = {:?} (full-sampling plan {})",
            work.name, degrees, full
        ));
    }
    t.note(format!(
        "paper claim (§2.1): skipping alternate points does not change the decision; plans within ±1 across steps: {agree}"
    ));
    t.note(
        "cost of full sampling vs alternate: see probe-cost column — step 2 roughly halves the campaign, step 4 quarters it"
            .to_string(),
    );
    let json = std::env::args().any(|a| a == "--json");
    if json {
        println!("{}", t.to_json());
    } else {
        t.print();
    }
}
