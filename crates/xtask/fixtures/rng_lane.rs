//! simlint fixture: lane discipline at `stream(…)`/`stream_indexed(…)`
//! call sites (4 violations). Analyzed together with `lanes_registry.rs`,
//! which declares the registry (`ALPHA` is registered, `NOT_REGISTERED`
//! is not).

use propack_simcore::rng::lanes;

pub fn draws(streams: &RngStreams, lane_var: &str) {
    // A registered constant: clean.
    let _a = streams.stream(lanes::ALPHA);
    // Raw string literals bypass the registry: flagged, even when the
    // text happens to match a registered lane's value.
    let _b = streams.stream("alpha");
    let _c = streams.stream_indexed("beta", 3);
    // A computed lane name defeats the collision audit: flagged.
    let _d = streams.stream(lane_var);
    // simlint: allow(rng-lane): "fixture: registry-iteration pattern, every value is a lane const"
    let _e = streams.stream(lane_var);
    // A constant that is not in the registry: flagged cross-file.
    let _f = streams.stream(lanes::NOT_REGISTERED);
}
