//! The declarative description of an experiment grid.
//!
//! A [`SweepSpec`] is the cross product of nine axes — platform ×
//! workload × concurrency × packing policy × seed × fault scenario ×
//! replay controller × keep-alive policy × workflow shape — and is the
//! single entry point for multi-run experiments: every figure grid in the
//! reproduction is one of these. The spec is pure data; handing it to a
//! [`crate::SweepRunner`] produces one independent seeded simulation per
//! cell. The fault axis defaults to the single fault-free scenario, the
//! controller axis to the single `off` value, the keep-alive axis to the
//! single pool-free `cold` scenario, and the workflow axis to the single
//! classic flat-burst cell kind, so specs that never mention them keep
//! their exact legacy grids.

use std::sync::Arc;

use propack_funcx::{FuncXConfig, FuncXPlatform};

use crate::faults::FaultScenario;
use crate::keepalive::KeepAliveScenario;
use propack_model::optimizer::Objective;
use propack_model::propack::ProPackConfig;
use propack_platform::{CloudPlatform, PlatformProfile, Provider, ServerlessPlatform};
use propack_replay::{ArrivalTrace, Controller};
use propack_workflow::MapPacking;

/// One point on the platform axis.
///
/// Cells hold an *axis value*, not a live platform: each worker thread
/// builds its platform fresh from the axis when it runs the cell, so the
/// spec stays plain data and nothing shared crosses threads except the
/// model cache.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformAxis {
    /// AWS Lambda preset.
    Aws,
    /// Google Cloud Functions preset.
    Google,
    /// Azure Functions preset.
    Azure,
    /// FuncX on-prem cluster (default configuration).
    FuncX,
    /// A hand-tuned cloud calibration.
    Custom(Box<PlatformProfile>),
}

impl PlatformAxis {
    /// The three commercial clouds of Figs. 1 and 21.
    pub fn clouds() -> Vec<PlatformAxis> {
        vec![PlatformAxis::Aws, PlatformAxis::Google, PlatformAxis::Azure]
    }

    /// Stable label used in cell keys and rendered output.
    pub fn label(&self) -> String {
        match self {
            PlatformAxis::Aws => "aws".to_string(),
            PlatformAxis::Google => "google".to_string(),
            PlatformAxis::Azure => "azure".to_string(),
            PlatformAxis::FuncX => "funcx".to_string(),
            PlatformAxis::Custom(profile) => {
                format!("custom:{}", profile.provider.name())
            }
        }
    }

    /// Instantiate a fresh platform for one cell.
    pub fn build(&self) -> Box<dyn ServerlessPlatform> {
        match self {
            PlatformAxis::Aws => Box::new(CloudPlatform::new(PlatformProfile::aws_lambda())),
            PlatformAxis::Google => {
                Box::new(CloudPlatform::new(PlatformProfile::google_cloud_functions()))
            }
            PlatformAxis::Azure => Box::new(CloudPlatform::new(PlatformProfile::azure_functions())),
            PlatformAxis::FuncX => Box::new(FuncXPlatform::new(FuncXConfig::default())),
            PlatformAxis::Custom(profile) => Box::new(CloudPlatform::new(*profile.clone())),
        }
    }

    /// Axis value for a provider preset.
    pub fn preset(provider: Provider) -> PlatformAxis {
        match provider {
            Provider::AwsLambda => PlatformAxis::Aws,
            Provider::GoogleCloudFunctions => PlatformAxis::Google,
            Provider::AzureFunctions => PlatformAxis::Azure,
            Provider::FuncX => PlatformAxis::FuncX,
        }
    }
}

/// One point on the policy axis: how each burst packs its functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PackingPolicy {
    /// The traditional baseline: one function per instance.
    NoPacking,
    /// A fixed packing degree (ablation axis).
    Fixed(u32),
    /// Pywren-style warm pool reuse, no packing.
    Pywren,
    /// ProPack: profile (via the shared model cache), plan, execute.
    Propack {
        /// The optimization objective for the planner.
        objective: Objective,
    },
}

impl PackingPolicy {
    /// ProPack with the paper's default joint objective.
    pub fn propack_default() -> PackingPolicy {
        PackingPolicy::Propack {
            objective: Objective::default(),
        }
    }

    /// Stable label used in cell keys and rendered output.
    pub fn label(&self) -> String {
        match self {
            PackingPolicy::NoPacking => "no-packing".to_string(),
            PackingPolicy::Fixed(p) => format!("fixed-{p}"),
            PackingPolicy::Pywren => "pywren".to_string(),
            PackingPolicy::Propack { objective } => match objective {
                Objective::ServiceTime => "propack-service".to_string(),
                Objective::Expense => "propack-expense".to_string(),
                Objective::Joint { w_s } => format!("propack-joint-{w_s}"),
            },
        }
    }
}

/// The replay configuration shared by every replay cell: the arrival trace
/// plus the control-loop parameters. The *axis* is the controller list
/// ([`SweepSpec::controllers`]); the grid stays plain data because the
/// trace sits behind an [`Arc`] that worker threads share read-only.
#[derive(Debug, Clone)]
pub struct ReplayGrid {
    /// Arrival trace every replay cell replays.
    pub trace: Arc<ArrivalTrace>,
    /// Epoch (control window) width, seconds.
    pub epoch_secs: f64,
    /// Objective the planning controllers (`oracle`, `propack:*`) optimize.
    pub objective: Objective,
    /// Per-epoch tail-latency QoS bound, seconds, if violations should be
    /// counted.
    pub qos_secs: Option<f64>,
}

impl ReplayGrid {
    /// A grid over `trace` with `epoch_secs` windows; controllers optimize
    /// service time (the replay experiments' figure of merit) and no QoS
    /// bound is tracked.
    pub fn new(trace: ArrivalTrace, epoch_secs: f64) -> Self {
        ReplayGrid {
            trace: Arc::new(trace),
            epoch_secs,
            objective: Objective::ServiceTime,
            qos_secs: None,
        }
    }

    /// Set the planning objective.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Track per-epoch tail-latency violations against `qos_secs`.
    pub fn qos_secs(mut self, qos_secs: f64) -> Self {
        self.qos_secs = Some(qos_secs);
        self
    }
}

/// A declarative experiment grid (see module docs).
///
/// ```
/// use propack_sweep::{PackingPolicy, PlatformAxis, SweepSpec};
/// use propack_platform::WorkProfile;
///
/// let spec = SweepSpec::new("demo")
///     .platforms([PlatformAxis::Aws])
///     .workloads([WorkProfile::synthetic("w", 0.25, 60.0).with_contention(0.2)])
///     .concurrency([500, 1000])
///     .policies([PackingPolicy::NoPacking, PackingPolicy::propack_default()])
///     .seeds([7]);
/// assert_eq!(spec.cell_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Experiment name (used in reports and `BENCH_sweep.json`).
    pub name: String,
    /// Platform axis.
    pub platforms: Vec<PlatformAxis>,
    /// Workload axis (simulator profiles).
    pub workloads: Vec<propack_platform::WorkProfile>,
    /// Concurrency axis (the paper's `C`).
    pub concurrency: Vec<u32>,
    /// Packing-policy axis.
    pub policies: Vec<PackingPolicy>,
    /// Seed axis (one independent replication per seed).
    pub seeds: Vec<u64>,
    /// Fault-scenario axis; defaults to the single fault-free scenario.
    pub faults: Vec<FaultScenario>,
    /// Replay-controller axis (the seventh axis); empty by default, which
    /// means replay is off and every cell is a classic single-burst cell.
    /// Non-empty controllers require a [`ReplayGrid`] and turn every cell
    /// into a trace replay under that controller.
    pub controllers: Vec<Controller>,
    /// The shared replay configuration (trace, epoch width, objective, QoS)
    /// when the controller axis is in use.
    pub replay: Option<ReplayGrid>,
    /// Keep-alive axis; defaults to the single pool-free `cold` scenario.
    /// Warm reuse accrues across epochs, so non-cold scenarios change
    /// replay-cell results; classic single-burst cells start each cell from
    /// an empty pool and keep their cold numbers under any policy.
    pub keepalive: Vec<KeepAliveScenario>,
    /// Workflow-shape axis (see [`propack_workflow::spec::from_shape`]);
    /// empty by default, which means every cell runs one flat burst.
    /// Non-empty shapes turn every cell into a DAG workflow replay: the
    /// concurrency axis becomes the Map fan-out and the policy axis maps
    /// onto [`propack_workflow::MapPacking`] for every Map state.
    pub workflows: Vec<String>,
    /// Profiling configuration for ProPack cells (part of the model-cache
    /// key, so every cell sharing it shares one fit per workload; profiling
    /// itself always runs fault-free, whatever the fault axis says).
    pub fit_config: ProPackConfig,
}

impl SweepSpec {
    /// An empty spec named `name`; populate the axes with the builder
    /// methods. Defaults: no axis values, default [`ProPackConfig`].
    pub fn new(name: impl Into<String>) -> Self {
        SweepSpec {
            name: name.into(),
            platforms: Vec::new(),
            workloads: Vec::new(),
            concurrency: Vec::new(),
            policies: Vec::new(),
            seeds: Vec::new(),
            faults: vec![FaultScenario::none()],
            controllers: Vec::new(),
            replay: None,
            keepalive: vec![KeepAliveScenario::cold()],
            workflows: Vec::new(),
            fit_config: ProPackConfig::default(),
        }
    }

    /// Set the platform axis.
    pub fn platforms(mut self, axis: impl IntoIterator<Item = PlatformAxis>) -> Self {
        self.platforms = axis.into_iter().collect();
        self
    }

    /// Set the workload axis.
    pub fn workloads(
        mut self,
        axis: impl IntoIterator<Item = propack_platform::WorkProfile>,
    ) -> Self {
        self.workloads = axis.into_iter().collect();
        self
    }

    /// Set the concurrency axis.
    pub fn concurrency(mut self, axis: impl IntoIterator<Item = u32>) -> Self {
        self.concurrency = axis.into_iter().collect();
        self
    }

    /// Set the policy axis.
    pub fn policies(mut self, axis: impl IntoIterator<Item = PackingPolicy>) -> Self {
        self.policies = axis.into_iter().collect();
        self
    }

    /// Set the seed axis.
    pub fn seeds(mut self, axis: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = axis.into_iter().collect();
        self
    }

    /// Set the fault-scenario axis (replacing the fault-free default).
    pub fn faults(mut self, axis: impl IntoIterator<Item = FaultScenario>) -> Self {
        self.faults = axis.into_iter().collect();
        self
    }

    /// Set the replay-controller axis (requires [`SweepSpec::replay`]).
    pub fn controllers(mut self, axis: impl IntoIterator<Item = Controller>) -> Self {
        self.controllers = axis.into_iter().collect();
        self
    }

    /// Set the shared replay configuration for the controller axis.
    pub fn replay(mut self, grid: ReplayGrid) -> Self {
        self.replay = Some(grid);
        self
    }

    /// Set the keep-alive axis (replacing the pool-free `cold` default).
    pub fn keepalive(mut self, axis: impl IntoIterator<Item = KeepAliveScenario>) -> Self {
        self.keepalive = axis.into_iter().collect();
        self
    }

    /// Set the workflow-shape axis (turning every cell into a DAG replay).
    pub fn workflows<S: Into<String>>(mut self, axis: impl IntoIterator<Item = S>) -> Self {
        self.workflows = axis.into_iter().map(Into::into).collect();
        self
    }

    /// Set the ProPack profiling configuration.
    pub fn fit_config(mut self, config: ProPackConfig) -> Self {
        self.fit_config = config;
        self
    }

    /// Grid size.
    pub fn cell_count(&self) -> usize {
        self.platforms.len()
            * self.workloads.len()
            * self.concurrency.len()
            * self.policies.len()
            * self.seeds.len()
            * self.faults.len()
            * self.controllers.len().max(1)
            * self.keepalive.len()
            * self.workflows.len().max(1)
    }

    /// Check the spec describes a runnable, non-degenerate grid.
    pub fn validate(&self) -> Result<(), SweepError> {
        let axes = [
            ("platforms", self.platforms.len()),
            ("workloads", self.workloads.len()),
            ("concurrency", self.concurrency.len()),
            ("policies", self.policies.len()),
            ("seeds", self.seeds.len()),
            ("faults", self.faults.len()),
            ("keepalive", self.keepalive.len()),
        ];
        for (name, len) in axes {
            if len == 0 {
                return Err(SweepError::EmptyAxis { axis: name });
            }
        }
        for scenario in &self.faults {
            scenario.validate()?;
        }
        for scenario in &self.keepalive {
            scenario.validate()?;
        }
        if let Some(&c) = self.concurrency.iter().find(|&&c| c == 0) {
            return Err(SweepError::InvalidValue {
                what: "concurrency",
                value: c.to_string(),
            });
        }
        if let Some(p) = self.policies.iter().find_map(|p| match p {
            PackingPolicy::Fixed(0) => Some(0u32),
            _ => None,
        }) {
            return Err(SweepError::InvalidValue {
                what: "fixed packing degree",
                value: p.to_string(),
            });
        }
        self.validate_replay()?;
        self.validate_workflows()
    }

    /// The replay-axis invariants: controllers and a [`ReplayGrid`] come
    /// together, the grid is non-degenerate, and the classic policy /
    /// concurrency axes are pinned to single placeholder values (replay
    /// cells draw their load from the trace, so extra values would only
    /// duplicate cells).
    fn validate_replay(&self) -> Result<(), SweepError> {
        let Some(grid) = &self.replay else {
            if self.controllers.is_empty() {
                return Ok(());
            }
            return Err(SweepError::InvalidValue {
                what: "controllers",
                value: "set without a replay grid (call .replay(..))".to_string(),
            });
        };
        if self.controllers.is_empty() {
            return Err(SweepError::EmptyAxis {
                axis: "controllers",
            });
        }
        if !(grid.epoch_secs.is_finite() && grid.epoch_secs > 0.0) {
            return Err(SweepError::InvalidValue {
                what: "replay epoch width",
                value: grid.epoch_secs.to_string(),
            });
        }
        if grid.trace.is_empty() {
            return Err(SweepError::InvalidValue {
                what: "replay trace",
                value: format!("`{}` has no invocations", grid.trace.name()),
            });
        }
        if self.policies.len() > 1 {
            return Err(SweepError::InvalidValue {
                what: "policies",
                value: format!(
                    "{} values; replay grids pin the policy axis to one placeholder",
                    self.policies.len()
                ),
            });
        }
        if self.concurrency.len() > 1 {
            return Err(SweepError::InvalidValue {
                what: "concurrency",
                value: format!(
                    "{} values; replay cells draw concurrency from the trace",
                    self.concurrency.len()
                ),
            });
        }
        Ok(())
    }

    /// The workflow-axis invariants: workflow cells are classic (not
    /// replay) cells, every shape string must parse, and every policy must
    /// have a [`propack_workflow::MapPacking`] equivalent (Pywren's warm
    /// reuse has no per-Map packing meaning).
    fn validate_workflows(&self) -> Result<(), SweepError> {
        if self.workflows.is_empty() {
            return Ok(());
        }
        if !self.controllers.is_empty() || self.replay.is_some() {
            return Err(SweepError::InvalidValue {
                what: "workflows",
                value: "set together with a replay grid; the axes are exclusive".to_string(),
            });
        }
        if self.policies.contains(&PackingPolicy::Pywren) {
            return Err(SweepError::InvalidValue {
                what: "policies",
                value: "pywren has no workflow equivalent (burst-only baseline)".to_string(),
            });
        }
        let probe = propack_platform::WorkProfile::synthetic("probe", 0.25, 60.0);
        for shape in &self.workflows {
            if let Err(e) =
                propack_workflow::WorkflowSpec::from_shape(shape, &probe, 1, MapPacking::None)
            {
                return Err(SweepError::InvalidValue {
                    what: "workflow shape",
                    value: e.to_string(),
                });
            }
        }
        Ok(())
    }
}

/// Spec-level failures (individual cell failures are recorded per cell,
/// not raised).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// An axis has no values, so the grid is empty.
    EmptyAxis {
        /// Which axis.
        axis: &'static str,
    },
    /// An axis value is outside its domain.
    InvalidValue {
        /// Which quantity.
        what: &'static str,
        /// The offending value.
        value: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::EmptyAxis { axis } => write!(f, "sweep axis `{axis}` is empty"),
            SweepError::InvalidValue { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
        }
    }
}

impl std::error::Error for SweepError {}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_platform::WorkProfile;

    fn work() -> WorkProfile {
        WorkProfile::synthetic("w", 0.25, 60.0).with_contention(0.2)
    }

    #[test]
    fn cell_count_is_axis_product() {
        let spec = SweepSpec::new("x")
            .platforms(PlatformAxis::clouds())
            .workloads([work(), work()])
            .concurrency([100, 200, 300])
            .policies([PackingPolicy::NoPacking])
            .seeds([1, 2]);
        assert_eq!(spec.cell_count(), 3 * 2 * 3 * 2);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn empty_axis_rejected() {
        let spec = SweepSpec::new("x")
            .platforms([PlatformAxis::Aws])
            .workloads([work()])
            .policies([PackingPolicy::NoPacking])
            .seeds([1]);
        assert_eq!(
            spec.validate(),
            Err(SweepError::EmptyAxis {
                axis: "concurrency"
            })
        );
    }

    #[test]
    fn zero_values_rejected() {
        let base = SweepSpec::new("x")
            .platforms([PlatformAxis::Aws])
            .workloads([work()])
            .concurrency([100])
            .policies([PackingPolicy::NoPacking])
            .seeds([1]);
        assert!(base.clone().concurrency([0]).validate().is_err());
        assert!(base.policies([PackingPolicy::Fixed(0)]).validate().is_err());
    }

    #[test]
    fn fault_axis_multiplies_the_grid_and_is_validated() {
        let base = SweepSpec::new("x")
            .platforms([PlatformAxis::Aws])
            .workloads([work()])
            .concurrency([100])
            .policies([PackingPolicy::NoPacking])
            .seeds([1]);
        // The implicit default axis is the single fault-free scenario.
        assert_eq!(base.cell_count(), 1);
        let two = base.clone().faults([
            FaultScenario::none(),
            FaultScenario::parse("crash=0.01").unwrap(),
        ]);
        assert_eq!(two.cell_count(), 2);
        assert!(two.validate().is_ok());
        assert_eq!(
            base.clone().faults([]).validate(),
            Err(SweepError::EmptyAxis { axis: "faults" })
        );
        let bad = FaultScenario::explicit(
            "bad",
            propack_platform::FaultSpec::none().with_crash_rate(7.0),
            propack_platform::RetryPolicy::default(),
        );
        assert!(base.faults([bad]).validate().is_err());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PlatformAxis::Aws.label(), "aws");
        assert_eq!(
            PlatformAxis::Custom(Box::new(PlatformProfile::azure_functions())).label(),
            "custom:Azure Functions"
        );
        assert_eq!(PackingPolicy::Fixed(8).label(), "fixed-8");
        assert_eq!(
            PackingPolicy::propack_default().label(),
            "propack-joint-0.5"
        );
    }

    #[test]
    fn controller_axis_multiplies_the_grid_and_needs_a_replay_grid() {
        let base = SweepSpec::new("x")
            .platforms([PlatformAxis::Aws])
            .workloads([work()])
            .concurrency([100])
            .policies([PackingPolicy::NoPacking])
            .seeds([1, 2]);
        // Empty controller axis: replay off, grid unchanged.
        assert_eq!(base.cell_count(), 2);
        assert!(base.validate().is_ok());

        let trace = ArrivalTrace::poisson("w", 0.5, 120.0, 7).expect("trace");
        let replayed = base
            .clone()
            .replay(ReplayGrid::new(trace, 60.0))
            .controllers([
                Controller::Fixed(4),
                Controller::Oracle,
                Controller::parse("propack:ewma").expect("controller"),
            ]);
        assert_eq!(replayed.cell_count(), 6);
        assert!(replayed.validate().is_ok());

        // Controllers without a grid, or a grid without controllers, fail.
        let orphan = base.clone().controllers([Controller::Oracle]);
        assert!(matches!(
            orphan.validate(),
            Err(SweepError::InvalidValue {
                what: "controllers",
                ..
            })
        ));
        let empty = replayed.clone().controllers([]);
        assert_eq!(
            empty.validate(),
            Err(SweepError::EmptyAxis {
                axis: "controllers"
            })
        );
        // Replay pins the classic policy / concurrency axes to one value.
        let multi = replayed
            .clone()
            .policies([PackingPolicy::NoPacking, PackingPolicy::Fixed(4)]);
        assert!(multi.validate().is_err());
        let multi_c = replayed.concurrency([100, 200]);
        assert!(multi_c.validate().is_err());
    }

    #[test]
    fn degenerate_replay_grids_are_rejected() {
        let trace = ArrivalTrace::poisson("w", 0.5, 120.0, 7).expect("trace");
        let base = SweepSpec::new("x")
            .platforms([PlatformAxis::Aws])
            .workloads([work()])
            .concurrency([100])
            .policies([PackingPolicy::NoPacking])
            .seeds([1])
            .controllers([Controller::Oracle]);
        let zero_epoch = base.clone().replay(ReplayGrid::new(trace, 0.0));
        assert!(matches!(
            zero_epoch.validate(),
            Err(SweepError::InvalidValue {
                what: "replay epoch width",
                ..
            })
        ));
        let empty_trace =
            ArrivalTrace::from_timestamps("quiet", vec![], 100.0).expect("empty trace");
        let no_arrivals = base.replay(ReplayGrid::new(empty_trace, 60.0));
        assert!(matches!(
            no_arrivals.validate(),
            Err(SweepError::InvalidValue {
                what: "replay trace",
                ..
            })
        ));
    }

    #[test]
    fn workflow_axis_multiplies_the_grid_and_is_validated() {
        let base = SweepSpec::new("x")
            .platforms([PlatformAxis::Aws])
            .workloads([work()])
            .concurrency([100])
            .policies([PackingPolicy::NoPacking])
            .seeds([1, 2]);
        // The implicit default axis is the single classic cell kind.
        assert_eq!(base.cell_count(), 2);
        let wf = base.clone().workflows(["task", "seq-map", "diamond"]);
        assert_eq!(wf.cell_count(), 6);
        assert!(wf.validate().is_ok());
        // Unknown shapes are caught up front, not per cell.
        let bad = base.clone().workflows(["triangle"]);
        assert!(matches!(
            bad.validate(),
            Err(SweepError::InvalidValue {
                what: "workflow shape",
                ..
            })
        ));
        // Pywren has no per-Map packing meaning.
        let pywren = base
            .clone()
            .policies([PackingPolicy::Pywren])
            .workflows(["map"]);
        assert!(pywren.validate().is_err());
        // Workflow and replay axes are exclusive.
        let trace = ArrivalTrace::poisson("w", 0.5, 120.0, 7).expect("trace");
        let both = base
            .workflows(["task"])
            .replay(ReplayGrid::new(trace, 60.0))
            .controllers([Controller::Oracle]);
        assert!(matches!(
            both.validate(),
            Err(SweepError::InvalidValue {
                what: "workflows",
                ..
            })
        ));
    }

    #[test]
    fn axis_platforms_build() {
        for axis in [
            PlatformAxis::Aws,
            PlatformAxis::Google,
            PlatformAxis::Azure,
            PlatformAxis::FuncX,
        ] {
            let p = axis.build();
            assert!(!p.name().is_empty());
            assert!(p.limits().mem_gb > 0.0);
        }
    }
}
