//! Failure-path integration tests: constraint violations and degraded
//! conditions must fail loudly and recoverably, never silently — and the
//! injected-fault machinery (crash/provision/stall/straggler lanes with
//! retry/backoff) must stay deterministic under them.

use propack_repro::funcx::{FuncXConfig, FuncXPlatform};
use propack_repro::platform::PlatformBuilder;
use propack_repro::platform::{
    BurstSpec, FaultSpec, PlatformError, RetryPolicy, ServerlessPlatform, WorkProfile,
};
use propack_repro::propack::propack::{ProPackConfig, Propack};
use propack_repro::propack::ModelError;
use propack_repro::sweep::{FaultScenario, PackingPolicy, PlatformAxis, SweepRunner, SweepSpec};

#[test]
fn memory_cap_rejects_oversized_packs_on_every_platform() {
    let heavy = WorkProfile::synthetic("heavy", 4.0, 50.0);
    let platforms: Vec<Box<dyn ServerlessPlatform>> = vec![
        Box::new(PlatformBuilder::aws().build()),
        Box::new(PlatformBuilder::google().build()),
        Box::new(PlatformBuilder::azure().build()),
        Box::new(FuncXPlatform::default()),
    ];
    for p in &platforms {
        // One degree past each platform's own memory cap must be rejected;
        // the cap itself must be accepted.
        let fits = (p.limits().mem_gb / heavy.mem_gb).floor() as u32;
        let err = p
            .run_burst(&BurstSpec::new(heavy.clone(), 4, fits + 1))
            .unwrap_err();
        assert!(
            matches!(err, PlatformError::MemoryLimitExceeded { .. }),
            "{}: wrong error {err:?}",
            p.name()
        );
        assert!(
            p.run_burst(&BurstSpec::new(heavy.clone(), 4, fits)).is_ok(),
            "{}",
            p.name()
        );
    }
}

#[test]
fn execution_cap_truncates_propack_plans_instead_of_failing() {
    // A slow, contention-heavy function cannot pack far before the 900s
    // Lambda cap; ProPack must discover the feasible ceiling during
    // profiling and never plan beyond it.
    let platform = PlatformBuilder::aws().build();
    let slow = WorkProfile::synthetic("slow", 0.25, 400.0).with_contention(0.6);
    let pp = Propack::build(&platform, &slow, &ProPackConfig::default()).unwrap();
    assert!(pp.model.p_max < slow.max_packing_degree(10.0));
    for c in [100u32, 1000, 5000] {
        let plan = pp.plan(c, Default::default()).unwrap();
        assert!(plan.packing_degree <= pp.model.p_max);
        // And the planned burst actually executes.
        assert!(pp.execute(&platform, c, Default::default(), 3).is_ok());
    }
}

#[test]
fn profiling_fails_cleanly_when_nothing_fits() {
    // A function whose very first packed degree times out leaves too few
    // samples to fit Eq. 1 — build must report it, not panic.
    let platform = PlatformBuilder::aws().build();
    let hopeless = WorkProfile::synthetic("hopeless", 0.25, 895.0).with_contention(3.0);
    let err = Propack::build(&platform, &hopeless, &ProPackConfig::default()).unwrap_err();
    assert!(
        matches!(err, ModelError::NotEnoughSamples { .. }),
        "wrong error: {err:?}"
    );
}

#[test]
fn saturated_funcx_cluster_serializes_into_waves() {
    // 8 slots, 64 workers: four-plus waves of queueing. The platform must
    // still complete every worker and keep lifecycle order intact.
    let fx = FuncXPlatform::new(FuncXConfig {
        nodes: 2,
        worker_slots_per_node: 4,
        ..FuncXConfig::default()
    });
    let work = WorkProfile::synthetic("w", 0.25, 20.0);
    let report = fx
        .run_burst(&BurstSpec::new(work, 64, 1).with_seed(9))
        .unwrap();
    assert_eq!(report.instances.len(), 64);
    // Makespan must reflect at least 64/8 = 8 serialized waves.
    assert!(
        report.total_service_time() > 7.0 * 20.0,
        "{}",
        report.total_service_time()
    );
    for r in &report.instances {
        assert!(r.finished_at > r.started_at);
    }
}

#[test]
fn infeasible_qos_bound_reports_best_achievable_tail() {
    let platform = PlatformBuilder::aws().build();
    let work = WorkProfile::synthetic("svc", 0.4, 50.0).with_contention(0.125);
    let pp = Propack::build(&platform, &work, &ProPackConfig::default()).unwrap();
    match pp.plan_with_qos(5000, 0.5) {
        Err(ModelError::QosInfeasible {
            bound_secs,
            best_tail_secs,
        }) => {
            assert_eq!(bound_secs, 0.5);
            assert!(best_tail_secs > 50.0, "tail must include execution time");
        }
        other => panic!("expected QosInfeasible, got {other:?}"),
    }
}

#[test]
fn zero_sized_bursts_rejected_everywhere() {
    let work = WorkProfile::synthetic("w", 0.25, 10.0);
    let aws = PlatformBuilder::aws().build();
    let fx = FuncXPlatform::default();
    for (inst, deg) in [(0u32, 1u32), (1, 0), (0, 0)] {
        assert!(matches!(
            aws.run_burst(&BurstSpec::new(work.clone(), inst, deg)),
            Err(PlatformError::EmptyBurst)
        ));
        assert!(matches!(
            fx.run_burst(&BurstSpec::new(work.clone(), inst, deg)),
            Err(PlatformError::EmptyBurst)
        ));
    }
}

#[test]
fn faulted_burst_completes_through_retries() {
    // A 10% crash rate with three attempts per instance: crashes happen,
    // retries absorb them, and every function still completes. The partial
    // crashed attempts are billed, so the faulted run costs strictly more
    // than the fault-free run of the same burst.
    let platform = PlatformBuilder::aws().build();
    let work = WorkProfile::synthetic("w", 0.25, 40.0).with_contention(0.2);
    let clean = platform
        .run_burst(&BurstSpec::packed(work.clone(), 400, 4).with_seed(5))
        .unwrap();
    let faulted = platform
        .run_burst(
            &BurstSpec::packed(work.clone(), 400, 4)
                .with_seed(5)
                .with_faults(FaultSpec::none().with_crash_rate(0.1))
                .with_retry(RetryPolicy::default()),
        )
        .unwrap();
    assert!(
        faulted.faults.crashes > 0,
        "10% over 100 instances must crash"
    );
    assert!(faulted.faults.retries > 0);
    assert_eq!(
        faulted.faults.failed_functions, 0,
        "retries must absorb every crash"
    );
    assert!(faulted.expense.total_usd() > clean.expense.total_usd());
    assert!(faulted.total_service_time() > clean.total_service_time());
}

#[test]
fn exhausted_retry_budget_reports_partial_completion() {
    // Certain crashes with a single attempt and no budget: nothing can
    // complete, and the report must say so rather than pretend success.
    let platform = PlatformBuilder::aws().build();
    let work = WorkProfile::synthetic("w", 0.25, 40.0).with_contention(0.2);
    let report = platform
        .run_burst(
            &BurstSpec::packed(work, 200, 4)
                .with_seed(6)
                .with_faults(FaultSpec::none().with_crash_rate(1.0))
                .with_retry(RetryPolicy::no_retries()),
        )
        .unwrap();
    assert!(report.is_partial());
    assert_eq!(report.completed_functions(), 0);
    assert_eq!(report.faults.failed_functions, report.total_functions());
    // Abandoned work is still billed for the attempts it made.
    assert!(report.expense.total_usd() > 0.0);
}

#[test]
fn faulted_cohort_batching_matches_the_event_path_across_the_fault_matrix() {
    // The tentpole equivalence matrix: every fault process × retry depth ×
    // packing shape, each asserting the cohort-batched fast path reproduces
    // the per-event simulation byte-for-byte. `with_batching(false)` forces
    // the event path the fast path claims to replicate; equal `Debug`
    // renders compare every f64 at full round-trip precision.
    let batched = PlatformBuilder::aws().build();
    let event = PlatformBuilder::aws().build().with_batching(false);
    assert!(batched.batching_enabled() && !event.batching_enabled());
    let work = WorkProfile::synthetic("w", 0.25, 30.0).with_contention(0.2);
    let matrix: [(&str, FaultSpec); 5] = [
        ("crash", FaultSpec::none().with_crash_rate(0.08)),
        (
            "provision",
            FaultSpec::none().with_provision_failure_rate(0.06),
        ),
        ("ship-stall", FaultSpec::none().with_ship_stall(0.1, 4.0)),
        ("straggler", FaultSpec::none().with_straggler(0.1, 3.0)),
        (
            "mixed",
            FaultSpec::none()
                .with_crash_rate(0.05)
                .with_provision_failure_rate(0.04)
                .with_ship_stall(0.05, 4.0)
                .with_straggler(0.05, 3.0),
        ),
    ];
    let mut faulted_cells = 0u32;
    for (name, faults) in matrix {
        for max_attempts in [1u32, 2, 5] {
            for degree in [1u32, 4] {
                let spec = BurstSpec::packed(work.clone(), 240, degree)
                    .with_seed(97)
                    .with_faults(faults)
                    .with_retry(RetryPolicy {
                        max_attempts,
                        ..RetryPolicy::default()
                    });
                let a = batched.run_burst(&spec).unwrap();
                let b = event.run_burst(&spec).unwrap();
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "{name} × attempts={max_attempts} × P={degree} diverged"
                );
                if a.faults.total_faults() > 0 {
                    faulted_cells += 1;
                }
            }
        }
    }
    assert!(
        faulted_cells >= 25,
        "matrix must actually exercise faults, only {faulted_cells}/30 cells faulted"
    );
}

#[test]
fn cohort_batching_equivalence_holds_across_a_seed_sweep() {
    // Property-style: many seeds, a mixed fault process, warm fractions, and
    // tight retry budgets (forcing the fast path's no-exhaustion gate to
    // toggle) — the batched and per-event reports must stay byte-identical
    // in every drawn configuration.
    let batched = PlatformBuilder::aws().build();
    let event = PlatformBuilder::aws().build().with_batching(false);
    let work = WorkProfile::synthetic("w", 0.25, 25.0).with_contention(0.15);
    let faults = FaultSpec::none()
        .with_crash_rate(0.12)
        .with_provision_failure_rate(0.05)
        .with_straggler(0.06, 2.5);
    for seed in 0..24u64 {
        // Small budgets on odd seeds exhaust mid-burst and push the run
        // back onto the event path; even seeds stay batched.
        let budget = if seed % 2 == 0 { u32::MAX } else { 3 };
        let warm = f64::from(u32::try_from(seed % 3).unwrap()) * 0.25;
        let spec = BurstSpec::packed(work.clone(), 120, 3)
            .with_seed(seed)
            .with_warm_fraction(warm)
            .with_faults(faults)
            .with_retry(RetryPolicy {
                max_attempts: 3,
                retry_budget: budget,
                ..RetryPolicy::default()
            });
        let a = batched.run_burst(&spec).unwrap();
        let b = event.run_burst(&spec).unwrap();
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "seed {seed} (budget {budget}, warm {warm}) diverged"
        );
    }
}

#[test]
fn fault_draws_replay_bit_identically_across_thread_counts() {
    // The determinism contract with faults *on*: a sweep whose every cell
    // injects faults renders byte-identically at --threads 1, 4, and 8.
    let spec = SweepSpec::new("faulted-determinism")
        .platforms([PlatformAxis::Aws, PlatformAxis::FuncX])
        .workloads([WorkProfile::synthetic("w", 0.25, 30.0).with_contention(0.2)])
        .concurrency([100, 400])
        .policies([PackingPolicy::NoPacking, PackingPolicy::Fixed(4)])
        .seeds([11, 12])
        .faults([
            FaultScenario::parse("default").unwrap(),
            FaultScenario::parse("crash=0.05,straggler=0.1").unwrap(),
        ]);
    let reference = SweepRunner::new().run(&spec).unwrap().render();
    // Sanity: the grid actually exercised the fault machinery.
    assert!(reference.contains("crash=0.05"));
    for threads in [4, 8] {
        let rendered = SweepRunner::new()
            .threads(threads)
            .run(&spec)
            .unwrap()
            .render();
        assert_eq!(
            reference.as_bytes(),
            rendered.as_bytes(),
            "threads={threads} diverged with faults enabled"
        );
    }
}

#[test]
fn baseline_times_out_where_packed_run_would_not() {
    // §4's remark inverted: with a long per-function execution time, high
    // packing degrees exceed the platform cap while modest ones fit — the
    // planner must respect the boundary exactly.
    let platform = PlatformBuilder::aws().build();
    let work = WorkProfile::synthetic("long", 0.25, 700.0).with_contention(0.12);
    // Degree 1 fits (700 < 900); degree 12 exceeds the cap.
    assert!(platform
        .run_burst(&BurstSpec::new(work.clone(), 10, 1))
        .is_ok());
    assert!(matches!(
        platform.run_burst(&BurstSpec::new(work.clone(), 10, 12)),
        Err(PlatformError::ExecutionTimeout { .. })
    ));
    let pp = Propack::build(&platform, &work, &ProPackConfig::default()).unwrap();
    let projected = platform.nominal_exec_secs(&work, pp.model.p_max) * 1.02;
    assert!(
        projected <= 900.0,
        "feasible cap leaks past the limit: {projected}"
    );
}
