//! Bench harness for `propack workflow`: compose `BENCH_workflow.json`.
//!
//! Workflow cells run through the ordinary sweep engine (the workflow axis
//! is just the ninth grid axis), so the timing evidence is the sweep's own
//! thread-ladder `RunTiming`s. What this module adds is the *group* view
//! the `cargo xtask benchdiff` gate consumes: one JSON object per
//! (shape, policy) pair, written on a single line with a `"policy"` key of
//! the form `workflow-<shape>-<policy>` and a `"cells_per_sec"` figure, the
//! exact line grammar `benchdiff` parses. Per-group throughput is derived
//! from the per-cell `wall_ms` the runner stamps, so a regression in one
//! shape's lowering (say, the diamond join) fails its own group instead of
//! hiding in the grid average.

use std::collections::BTreeMap;

use crate::cell::CellResult;
use crate::report::{escape_json, json_f64, speedup, RunTiming, SweepReport};

/// One aggregated (shape, policy) group of workflow cells.
#[derive(Debug)]
struct WorkflowGroup<'a> {
    cells: Vec<&'a CellResult>,
}

impl WorkflowGroup<'_> {
    fn wall_ms(&self) -> f64 {
        self.cells.iter().map(|c| c.wall_ms).sum()
    }

    fn cells_per_sec(&self) -> f64 {
        self.cells.len() as f64 / (self.wall_ms() / 1000.0).max(1e-9)
    }

    fn mean(&self, f: impl Fn(&CellResult) -> f64) -> f64 {
        let n = self.cells.len().max(1) as f64;
        self.cells.iter().map(|c| f(c)).sum::<f64>() / n
    }
}

/// Compose `BENCH_workflow.json` from a workflow sweep plus the timings of
/// its thread-ladder runs (same warmup convention as `BENCH_sweep.json`:
/// the caller runs one untimed warmup pass and reports only timed runs).
///
/// Only cells with a non-empty workflow axis are grouped; a mixed grid's
/// classic cells still count in the header totals but get no group line.
/// `outputs_identical` reports whether every run rendered byte-identically
/// (`None` when only one run was made).
pub fn workflow_bench_json(
    report: &SweepReport,
    runs: &[RunTiming],
    outputs_identical: Option<bool>,
) -> String {
    let mut groups: BTreeMap<(String, String), WorkflowGroup> = BTreeMap::new();
    for cell in &report.cells {
        if cell.key.workflow.is_empty() {
            continue;
        }
        groups
            .entry((cell.key.workflow.clone(), cell.key.policy.clone()))
            .or_insert_with(|| WorkflowGroup { cells: Vec::new() })
            .cells
            .push(cell);
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"workflow\",\n");
    out.push_str(&format!(
        "  \"sweep\": \"{}\",\n",
        escape_json(&report.name)
    ));
    out.push_str(&format!("  \"cells\": {},\n", report.cells.len()));
    out.push_str(&format!("  \"ok\": {},\n", report.ok_count()));
    out.push_str(&format!("  \"failed\": {},\n", report.error_count()));
    out.push_str(&format!("  \"fitted_models\": {},\n", report.fitted_models));

    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"threads\": {}, \"wall_secs\": {}, \"cells_per_sec\": {}}}{}\n",
            run.threads,
            json_f64(run.wall_secs),
            json_f64(report.cells.len() as f64 / run.wall_secs.max(1e-9)),
            comma,
        ));
    }
    out.push_str("  ],\n");

    match speedup(runs) {
        Some(s) => out.push_str(&format!(
            "  \"speedup_parallel_vs_serial\": {},\n",
            json_f64(s)
        )),
        None => out.push_str("  \"speedup_parallel_vs_serial\": null,\n"),
    }
    match outputs_identical {
        Some(b) => out.push_str(&format!("  \"outputs_identical\": {b},\n")),
        None => out.push_str("  \"outputs_identical\": null,\n"),
    }

    out.push_str("  \"groups\": [\n");
    let total = groups.len();
    for (i, ((shape, policy), group)) in groups.iter().enumerate() {
        let comma = if i + 1 < total { "," } else { "" };
        out.push_str(&format!(
            "    {{\"policy\": \"workflow-{}-{}\", \"cells\": {}, \"wall_ms\": {}, \"cells_per_sec\": {}, \"mean_makespan_secs\": {}, \"mean_expense_usd\": {}}}{}\n",
            escape_json(shape),
            escape_json(policy),
            group.cells.len(),
            json_f64(group.wall_ms()),
            json_f64(group.cells_per_sec()),
            json_f64(group.mean(|c| c.service_secs)),
            json_f64(group.mean(|c| c.expense_usd)),
            comma,
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SweepRunner;
    use crate::spec::{PackingPolicy, PlatformAxis, SweepSpec};
    use propack_platform::WorkProfile;

    fn workflow_report() -> SweepReport {
        let spec = SweepSpec::new("wf-bench")
            .platforms([PlatformAxis::Aws])
            .workloads([WorkProfile::synthetic("w", 0.25, 30.0).with_contention(0.2)])
            .concurrency([200])
            .policies([PackingPolicy::NoPacking, PackingPolicy::propack_default()])
            .seeds([7])
            .workflows(["task", "diamond"]);
        SweepRunner::new().run(&spec).expect("workflow sweep")
    }

    #[test]
    fn workflow_bench_json_is_wellformed_enough() {
        let report = workflow_report();
        let runs = [
            RunTiming {
                threads: 1,
                wall_secs: 1.0,
            },
            RunTiming {
                threads: 4,
                wall_secs: 0.5,
            },
        ];
        let json = workflow_bench_json(&report, &runs, Some(true));
        assert!(json.contains("\"bench\": \"workflow\""));
        assert!(json.contains("\"outputs_identical\": true"));
        assert!(json.contains("\"speedup_parallel_vs_serial\": 2"));
        // One benchdiff-parsable group line per (shape, policy) pair.
        for group in [
            "workflow-task-no-packing",
            "workflow-task-propack-joint-0.5",
            "workflow-diamond-no-packing",
            "workflow-diamond-propack-joint-0.5",
        ] {
            let line = json
                .lines()
                .find(|l| l.contains(&format!("\"policy\": \"{group}\"")))
                .unwrap_or_else(|| panic!("missing group {group}"));
            assert!(line.contains("\"cells_per_sec\": "), "{line}");
            assert!(line.contains("\"cells\": 1"), "{line}");
        }
        let group_lines = json
            .lines()
            .filter(|l| l.contains("\"policy\": \"workflow-"))
            .count();
        assert_eq!(group_lines, 4);
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    #[test]
    fn classic_cells_get_no_group_line() {
        let spec = SweepSpec::new("classic")
            .platforms([PlatformAxis::Aws])
            .workloads([WorkProfile::synthetic("w", 0.25, 30.0).with_contention(0.2)])
            .concurrency([100])
            .policies([PackingPolicy::NoPacking])
            .seeds([1]);
        let report = SweepRunner::new().run(&spec).expect("classic sweep");
        let json = workflow_bench_json(
            &report,
            &[RunTiming {
                threads: 1,
                wall_secs: 0.1,
            }],
            None,
        );
        assert!(!json.contains("\"policy\": \"workflow-"));
        assert!(json.contains("\"cells\": 1,"), "header still counts cells");
        assert!(json.contains("\"speedup_parallel_vs_serial\": null"));
    }
}
