//! Tenants and the deterministic synthetic fleet generator.
//!
//! A tenant is one (app, function) arrival stream with its own controller
//! and RNG seed. The generator reproduces the shape of the Azure Functions
//! 2019 trace (Shahrad et al., ATC '20) that motivates ProPack's
//! concurrency regime: many apps, a small number of functions per app
//! (`M_func`), a handful of distinct resource profiles, and a heavy-tailed
//! invocation-rate distribution where a few functions dominate the day.
//!
//! Determinism: fleet *structure* (function counts, profile assignment,
//! rate weights) is sampled on the [`lanes::FLEET_GEN`] stream; each
//! tenant's private seed comes from [`lanes::FLEET_TENANT`] indexed by the
//! tenant ordinal, so tenant simulations are decorrelated from each other
//! and from the structure draws. Given the same [`SyntheticFleetConfig`],
//! the generated fleet is bit-identical across runs and platforms.

use std::sync::Arc;

use propack_platform::WorkProfile;
use propack_replay::{ArrivalTrace, Controller, ForecasterKind, TraceError};
use propack_simcore::rng::lanes;
use propack_simcore::RngStreams;
use rand::{Rng, RngCore};

/// One tenant of the shared fleet: an arrival stream, the workload profile
/// it invokes (an `Arc` so identical profiles share one model fit through
/// the [`propack_model::cache::ModelCache`]), the packing controller that
/// plans for it, and a private seed for its epoch bursts.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Unique tenant name, by convention `app/function` (the 4-field Azure
    /// CSV loader produces exactly this shape).
    pub name: String,
    /// The function profile this tenant invokes. Tenants with the same
    /// profile (same `Arc` or same profile name) coalesce into one model
    /// fit during fleet replay.
    pub workload: Arc<WorkProfile>,
    /// The tenant's arrival stream. May be empty (a silent app): the
    /// tenant then contributes zero rows but still appears in the report.
    pub trace: ArrivalTrace,
    /// Packing policy planning this tenant's epochs.
    pub controller: Controller,
    /// Private base seed; epoch `k` of this tenant derives its burst seed
    /// via [`propack_replay::epoch_seed`] exactly as a solo replay would.
    pub seed: u64,
}

/// Configuration for [`synthetic_fleet`].
#[derive(Debug, Clone)]
pub struct SyntheticFleetConfig {
    /// Number of applications. Each app owns 1..=`max_funcs_per_app`
    /// functions; the tenant count is the realized function total.
    pub apps: u32,
    /// Seed for the `fleet-gen` / `fleet-tenant` lanes.
    pub seed: u64,
    /// Trace horizon, seconds (86 400 = one day).
    pub horizon_secs: f64,
    /// Number of distinct function profiles shared across the fleet. The
    /// Azure trace clusters into a few behavioral archetypes; keeping this
    /// small is also what makes the `ModelCache` coalesce fleet fits.
    pub profiles: u32,
    /// Upper bound on functions per app (`M_func` is uniform on
    /// `1..=max_funcs_per_app`).
    pub max_funcs_per_app: u32,
    /// Expected total invocations over the horizon, split across tenants
    /// by the heavy-tailed rate weights. The realized Poisson total varies
    /// by O(√N) around this.
    pub daily_invocations: f64,
    /// Controller assigned to every generated tenant (callers re-map per
    /// tenant afterwards for mixed-policy fleets).
    pub controller: Controller,
}

impl Default for SyntheticFleetConfig {
    fn default() -> Self {
        Self {
            apps: 100,
            seed: 42,
            horizon_secs: 86_400.0,
            profiles: 5,
            max_funcs_per_app: 3,
            daily_invocations: 100_000.0,
            controller: Controller::Propack(ForecasterKind::Ewma { alpha: 0.5 }),
        }
    }
}

/// Errors from the synthetic generator.
#[derive(Debug)]
pub enum FleetGenError {
    /// A zero dimension (`apps`, `profiles`, or `max_funcs_per_app`).
    EmptyFleet,
    /// The invocation target or horizon is non-positive or non-finite.
    InvalidLoad,
    /// Trace synthesis failed (degenerate rate or horizon).
    Trace(TraceError),
}

impl std::fmt::Display for FleetGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetGenError::EmptyFleet => {
                write!(f, "fleet needs at least one app, profile, and function")
            }
            FleetGenError::InvalidLoad => {
                write!(
                    f,
                    "daily_invocations and horizon_secs must be positive and finite"
                )
            }
            FleetGenError::Trace(e) => write!(f, "trace synthesis failed: {e}"),
        }
    }
}

impl std::error::Error for FleetGenError {}

impl From<TraceError> for FleetGenError {
    fn from(e: TraceError) -> Self {
        FleetGenError::Trace(e)
    }
}

/// The five behavioral archetypes the fleet cycles through:
/// `(mem_gb, base_exec_secs)`. Small-memory short glue functions dominate
/// the Azure population; a few heavy profiles carry the long tail.
const PROFILE_SHAPES: &[(f64, f64)] = &[
    (0.125, 8.0),
    (0.25, 45.0),
    (0.5, 20.0),
    (1.0, 90.0),
    (2.0, 30.0),
];

/// Pareto tail index for the per-function rate weights. α ≤ 1 has an
/// infinite mean (one tenant would swallow the whole day); 1.5 gives the
/// skew the Azure trace reports — a small head of functions carrying most
/// invocations — with a finite normalizable total.
const RATE_TAIL_ALPHA: f64 = 1.5;

/// The shared profile templates for a `profiles`-way fleet. Distinct names
/// (`fleet-p0`…) keep the `ModelCache` keys distinct; cycling past the five
/// base shapes bumps memory so every template stays unique.
pub fn fleet_profiles(profiles: u32) -> Vec<Arc<WorkProfile>> {
    (0..profiles)
        .map(|i| {
            let shape = PROFILE_SHAPES[(i as usize) % PROFILE_SHAPES.len()];
            let cycle = (i as usize / PROFILE_SHAPES.len()) as u32;
            Arc::new(WorkProfile::synthetic(
                &format!("fleet-p{i}"),
                shape.0 * f64::from(cycle + 1),
                shape.1,
            ))
        })
        .collect()
}

/// Sample a uniform index in `0..n` from the bit-exact `f64` draw (the
/// offline rand stub has no `random_range`; the 53-bit multiply draw is
/// identical under the real crate, so fleets generated either way match).
fn uniform_index<R: Rng>(rng: &mut R, n: u32) -> u32 {
    let u: f64 = rng.random();
    // u·n < n ≤ u32::MAX by construction; min() guards the u = 1-ulp edge.
    ((u * f64::from(n)) as u32).min(n - 1)
}

/// Generate a deterministic synthetic multi-tenant fleet.
///
/// Structure (how many functions each app has, which profile each function
/// uses, how hot it is) comes from the `fleet-gen` lane; per-tenant seeds
/// come from the indexed `fleet-tenant` lane. Rate weights are Pareto
/// (heavy-tailed) and normalized so the *expected* invocation total over
/// the horizon equals `daily_invocations`.
pub fn synthetic_fleet(cfg: &SyntheticFleetConfig) -> Result<Vec<TenantSpec>, FleetGenError> {
    if cfg.apps == 0 || cfg.profiles == 0 || cfg.max_funcs_per_app == 0 {
        return Err(FleetGenError::EmptyFleet);
    }
    if !(cfg.daily_invocations > 0.0 && cfg.daily_invocations.is_finite())
        || !(cfg.horizon_secs > 0.0 && cfg.horizon_secs.is_finite())
    {
        return Err(FleetGenError::InvalidLoad);
    }
    let profiles = fleet_profiles(cfg.profiles);
    let streams = RngStreams::new(cfg.seed);
    let mut structure = streams.stream(lanes::FLEET_GEN);

    // Pass 1: fleet structure on the single structure stream.
    struct Draft {
        app: u32,
        func: u32,
        profile: usize,
        weight: f64,
    }
    let mut drafts = Vec::new();
    for app in 0..cfg.apps {
        let m_func = 1 + uniform_index(&mut structure, cfg.max_funcs_per_app);
        for func in 0..m_func {
            let profile = uniform_index(&mut structure, cfg.profiles) as usize;
            // Pareto(α) via inverse transform on the unit draw; u ∈ [0,1)
            // keeps 1-u in (0,1], so the weight is finite and ≥ 1.
            let u: f64 = structure.random();
            let weight = (1.0 - u).powf(-1.0 / RATE_TAIL_ALPHA);
            drafts.push(Draft {
                app,
                func,
                profile,
                weight,
            });
        }
    }
    let total_weight: f64 = drafts.iter().map(|d| d.weight).sum();

    // Pass 2: one decorrelated lane per tenant ordinal for its seed and
    // trace, so adding app N+1 never perturbs apps 0..N.
    let mut tenants = Vec::with_capacity(drafts.len());
    for (ordinal, d) in drafts.iter().enumerate() {
        let mut lane = streams.stream_indexed(lanes::FLEET_TENANT, ordinal as u64);
        let tenant_seed = lane.next_u64();
        let trace_seed = lane.next_u64();
        let rate = (d.weight / total_weight) * cfg.daily_invocations / cfg.horizon_secs;
        let name = format!("a{:04}/f{}", d.app, d.func);
        let trace = ArrivalTrace::poisson(&name, rate, cfg.horizon_secs, trace_seed)?;
        tenants.push(TenantSpec {
            name,
            workload: Arc::clone(&profiles[d.profile]),
            trace,
            controller: cfg.controller.clone(),
            seed: tenant_seed,
        });
    }
    Ok(tenants)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_order_stable() {
        let cfg = SyntheticFleetConfig {
            apps: 20,
            daily_invocations: 2_000.0,
            horizon_secs: 1_800.0,
            ..SyntheticFleetConfig::default()
        };
        let a = synthetic_fleet(&cfg).expect("generates");
        let b = synthetic_fleet(&cfg).expect("generates");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.workload.name, y.workload.name);
            assert_eq!(x.trace.arrivals(), y.trace.arrivals());
        }
        // Names are unique and already in sorted (app, func) order.
        let names: Vec<&str> = a.iter().map(|t| t.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "names unique and sorted");
    }

    #[test]
    fn rates_hit_the_invocation_target_in_expectation() {
        let cfg = SyntheticFleetConfig {
            apps: 200,
            daily_invocations: 50_000.0,
            horizon_secs: 86_400.0,
            ..SyntheticFleetConfig::default()
        };
        let fleet = synthetic_fleet(&cfg).expect("generates");
        let realized: usize = fleet.iter().map(|t| t.trace.len()).sum();
        // Poisson with mean 50k: ±3σ ≈ ±670. Allow a wide 5% band.
        let lo = 47_500;
        let hi = 52_500;
        assert!(
            (lo..=hi).contains(&realized),
            "realized {realized} outside [{lo}, {hi}]"
        );
        // Heavy tail: the hottest tenant carries well over its uniform share.
        let hottest = fleet.iter().map(|t| t.trace.len()).max().unwrap_or(0);
        assert!(
            hottest > 2 * realized / fleet.len(),
            "hot tenant {hottest} not skewed vs mean {}",
            realized / fleet.len()
        );
    }

    #[test]
    fn profiles_are_shared_arcs_across_tenants() {
        let cfg = SyntheticFleetConfig {
            apps: 50,
            profiles: 3,
            daily_invocations: 1_000.0,
            horizon_secs: 600.0,
            ..SyntheticFleetConfig::default()
        };
        let fleet = synthetic_fleet(&cfg).expect("generates");
        let mut distinct = std::collections::BTreeSet::new();
        for t in &fleet {
            distinct.insert(t.workload.name.clone());
        }
        assert_eq!(distinct.len(), 3, "exactly the 3 profile templates");
        // Sharing is by Arc identity, not just name equality.
        let by_name = |name: &str| {
            fleet
                .iter()
                .filter(|t| t.workload.name == name)
                .collect::<Vec<_>>()
        };
        for name in &distinct {
            let group = by_name(name);
            for pair in group.windows(2) {
                assert!(Arc::ptr_eq(&pair[0].workload, &pair[1].workload));
            }
        }
    }

    #[test]
    fn per_tenant_lanes_are_decorrelated_from_structure() {
        // Growing the fleet must not change the tenants that already
        // existed: structure draws are sequential, but seeds/traces are
        // indexed per ordinal.
        let small = synthetic_fleet(&SyntheticFleetConfig {
            apps: 10,
            max_funcs_per_app: 1,
            daily_invocations: 1_000.0,
            horizon_secs: 600.0,
            ..SyntheticFleetConfig::default()
        })
        .expect("small");
        let large = synthetic_fleet(&SyntheticFleetConfig {
            apps: 20,
            max_funcs_per_app: 1,
            daily_invocations: 2_000.0,
            horizon_secs: 600.0,
            ..SyntheticFleetConfig::default()
        })
        .expect("large");
        for (s, l) in small.iter().zip(&large) {
            assert_eq!(s.name, l.name);
            assert_eq!(s.seed, l.seed, "tenant seed stable under fleet growth");
        }
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        for cfg in [
            SyntheticFleetConfig {
                apps: 0,
                ..SyntheticFleetConfig::default()
            },
            SyntheticFleetConfig {
                profiles: 0,
                ..SyntheticFleetConfig::default()
            },
            SyntheticFleetConfig {
                daily_invocations: 0.0,
                ..SyntheticFleetConfig::default()
            },
            SyntheticFleetConfig {
                horizon_secs: f64::NAN,
                ..SyntheticFleetConfig::default()
            },
        ] {
            assert!(synthetic_fleet(&cfg).is_err());
        }
    }
}
