//! Concrete spawning strategies: the baseline and the alternatives the
//! paper evaluates or dismisses.

use crate::outcome::StrategyOutcome;
use propack_platform::billing::WARM_REUSE_STORAGE_DISCOUNT;
use propack_platform::warmpool::DEFAULT_POOL_CAPACITY;
use propack_platform::{
    BurstSpec, FaultSpec, PlatformError, RetryPolicy, ServerlessPlatform, WarmPool, WorkProfile,
};

/// A way to execute `C` concurrent functions on a platform.
pub trait Strategy {
    /// Display name for figures.
    fn name(&self) -> String;

    /// Execute `c` functions of `work` and report the outcome.
    ///
    /// Fault-free convenience wrapper around [`Strategy::run_faulted`].
    fn run(
        &self,
        platform: &dyn ServerlessPlatform,
        work: &WorkProfile,
        c: u32,
        seed: u64,
    ) -> Result<StrategyOutcome, PlatformError> {
        self.run_faulted(
            platform,
            work,
            c,
            seed,
            FaultSpec::none(),
            RetryPolicy::no_retries(),
        )
    }

    /// Execute `c` functions of `work` under a fault process and report the
    /// outcome. Baselines face the same fault environment as ProPack in
    /// comparative experiments — each strategy threads `faults`/`retry`
    /// through to every burst it launches.
    fn run_faulted(
        &self,
        platform: &dyn ServerlessPlatform,
        work: &WorkProfile,
        c: u32,
        seed: u64,
        faults: FaultSpec,
        retry: RetryPolicy,
    ) -> Result<StrategyOutcome, PlatformError>;
}

/// The traditional baseline: spawn all `C` functions as separate instances
/// at once (packing degree = 1). Every "% improvement over no packing"
/// number in the paper is relative to this.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPacking;

impl Strategy for NoPacking {
    fn name(&self) -> String {
        "No Packing".to_string()
    }

    fn run_faulted(
        &self,
        platform: &dyn ServerlessPlatform,
        work: &WorkProfile,
        c: u32,
        seed: u64,
        faults: FaultSpec,
        retry: RetryPolicy,
    ) -> Result<StrategyOutcome, PlatformError> {
        let report = platform.run_burst(
            &BurstSpec::new(work.clone(), c, 1)
                .with_seed(seed)
                .with_faults(faults)
                .with_retry(retry),
        )?;
        Ok(StrategyOutcome::from_report(self.name(), &report))
    }
}

/// Serial batching: split the burst into batches of `batch_size` and launch
/// batch `k+1` only when batch `k` has completed. Reduces the concurrency
/// the platform sees (so each batch scales quickly), but §1's objection
/// holds: the batches serialize, destroying turnaround time and denying the
/// application simultaneous execution.
#[derive(Debug, Clone, Copy)]
pub struct SerialBatching {
    /// Functions per batch.
    pub batch_size: u32,
}

impl Strategy for SerialBatching {
    fn name(&self) -> String {
        format!("Serial Batching ({})", self.batch_size)
    }

    fn run_faulted(
        &self,
        platform: &dyn ServerlessPlatform,
        work: &WorkProfile,
        c: u32,
        seed: u64,
        faults: FaultSpec,
        retry: RetryPolicy,
    ) -> Result<StrategyOutcome, PlatformError> {
        assert!(self.batch_size > 0, "batch size must be positive");
        let work = std::sync::Arc::new(work.clone());
        let mut waves = Vec::new();
        let mut offset = 0.0;
        let mut remaining = c;
        let mut k = 0u64;
        while remaining > 0 {
            let batch = remaining.min(self.batch_size);
            let report = platform.run_burst(
                &BurstSpec::new(std::sync::Arc::clone(&work), batch, 1)
                    .with_seed(seed ^ (k << 17))
                    .with_faults(faults)
                    .with_retry(retry),
            )?;
            let makespan = report.total_service_time();
            waves.push((offset, report));
            offset += makespan;
            remaining -= batch;
            k += 1;
        }
        Ok(StrategyOutcome::merge_waves(self.name(), &waves))
    }
}

/// Staggered spawning: waves of `wave_size` instances submitted every
/// `gap_secs`, regardless of completion. The latency-hiding technique §4
/// dismisses: "such techniques result in severe service degradation due to
/// inserted delays and are unsuitable for workloads that need synchronous
/// progress".
#[derive(Debug, Clone, Copy)]
pub struct Staggered {
    /// Instances per wave.
    pub wave_size: u32,
    /// Fixed delay between wave submissions (seconds).
    pub gap_secs: f64,
}

impl Strategy for Staggered {
    fn name(&self) -> String {
        format!("Staggered ({} every {:.0}s)", self.wave_size, self.gap_secs)
    }

    fn run_faulted(
        &self,
        platform: &dyn ServerlessPlatform,
        work: &WorkProfile,
        c: u32,
        seed: u64,
        faults: FaultSpec,
        retry: RetryPolicy,
    ) -> Result<StrategyOutcome, PlatformError> {
        assert!(self.wave_size > 0 && self.gap_secs >= 0.0);
        let work = std::sync::Arc::new(work.clone());
        let mut waves = Vec::new();
        let mut remaining = c;
        let mut k = 0u64;
        while remaining > 0 {
            let wave = remaining.min(self.wave_size);
            let report = platform.run_burst(
                &BurstSpec::new(std::sync::Arc::clone(&work), wave, 1)
                    .with_seed(seed ^ (k << 13))
                    .with_faults(faults)
                    .with_retry(retry),
            )?;
            waves.push((k as f64 * self.gap_secs, report));
            remaining -= wave;
            k += 1;
        }
        Ok(StrategyOutcome::merge_waves(self.name(), &waves))
    }
}

/// Pywren-style workload manager (Jonas et al., SoCC '17) — Fig. 19's
/// comparison point. Pywren's optimizations, per §4:
///
/// * **instance reuse** — a large fraction of invocations land on warm
///   containers, avoiding cold starts and dependency loading
///   (`warm_fraction`);
/// * **optimized data movement** — common-storage staging cuts the
///   application's storage bill (`storage_discount`).
///
/// What Pywren does *not* do is pack: every function still occupies its own
/// instance, so the scheduler still places all `C` of them and the
/// quadratic scaling term survives — "these optimizations … do not directly
/// aim to solve the main source of inefficiency".
#[derive(Debug, Clone, Copy)]
pub struct Pywren {
    /// Size of Pywren's maintained instance pool: invocations up to this
    /// count land on reused (warm) instances; beyond it, the overflow pays
    /// full cold starts. This is why Pywren shines at low concurrency and
    /// fades at high concurrency (§1). Defaults to the platform's
    /// [`DEFAULT_POOL_CAPACITY`] — the single source of truth shared with
    /// `propack_platform::warmpool`.
    pub pool_size: u32,
    /// Fractional storage-bill reduction from data-movement optimization.
    /// Defaults to the platform's [`WARM_REUSE_STORAGE_DISCOUNT`] — warm
    /// reuse and common-storage staging are the same mechanism, so they
    /// share one calibration constant.
    pub storage_discount: f64,
}

impl Default for Pywren {
    fn default() -> Self {
        Pywren {
            pool_size: DEFAULT_POOL_CAPACITY,
            storage_discount: WARM_REUSE_STORAGE_DISCOUNT,
        }
    }
}

impl Strategy for Pywren {
    fn name(&self) -> String {
        "Pywren".to_string()
    }

    fn run_faulted(
        &self,
        platform: &dyn ServerlessPlatform,
        work: &WorkProfile,
        c: u32,
        seed: u64,
        faults: FaultSpec,
        retry: RetryPolicy,
    ) -> Result<StrategyOutcome, PlatformError> {
        // Pywren's private reuse pool is the platform-level WarmPool,
        // pre-warmed with `pool_size` containers of this function (Pywren
        // actively maintains its pool, so the keep-alive is unbounded). The
        // acquisition size is the historical scalar warm count — computed
        // with the same float expression the warm-fraction path used — so
        // pre-pool timelines replay bit-identically.
        let want = ((self.pool_size as f64 / c as f64).min(1.0) * c as f64).floor() as u32;
        let mut pool = WarmPool::pywren_prewarmed(&work.name, self.pool_size);
        let grants = pool.acquire(&work.name, want, 0.0);
        let report = platform.run_burst(
            &BurstSpec::new(work.clone(), c, 1)
                .with_seed(seed)
                .with_warm_starts(grants)
                .with_faults(faults)
                .with_retry(retry),
        )?;
        let mut outcome = StrategyOutcome::from_report(self.name(), &report);
        // Data-movement optimization: staged reads/writes through common
        // storage cut the storage component of the bill.
        outcome.expense_usd -= report.expense.storage_usd * self.storage_discount;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_platform::CloudPlatform;
    use propack_platform::PlatformBuilder;
    use propack_stats::percentile::Percentile;

    fn aws() -> CloudPlatform {
        PlatformBuilder::aws().build()
    }

    fn work() -> WorkProfile {
        WorkProfile::synthetic("w", 0.25, 100.0)
            .with_contention(0.2)
            .with_storage(0.1, 8)
            .with_dependency_load(10.0)
    }

    #[test]
    fn no_packing_runs_c_instances() {
        let o = NoPacking.run(&aws(), &work(), 500, 1).unwrap();
        assert_eq!(o.completion_times.len(), 500);
        assert_eq!(o.packing_degree, 1);
    }

    #[test]
    fn batching_reduces_scaling_but_serializes_turnaround() {
        // §1's argument against batching, quantitatively: batches cut the
        // per-burst scaling time but the serialized makespan is worse than
        // the baseline's.
        let platform = aws();
        let w = work();
        let base = NoPacking.run(&platform, &w, 2000, 3).unwrap();
        let batched = SerialBatching { batch_size: 500 }
            .run(&platform, &w, 2000, 3)
            .unwrap();
        assert!(batched.total_service_secs() > base.total_service_secs());
        assert_eq!(batched.completion_times.len(), 2000);
    }

    #[test]
    fn staggering_degrades_service() {
        // §4: inserted delays cause severe service degradation.
        let platform = aws();
        let w = work();
        let base = NoPacking.run(&platform, &w, 1000, 5).unwrap();
        let staggered = Staggered {
            wave_size: 100,
            gap_secs: 60.0,
        }
        .run(&platform, &w, 1000, 5)
        .unwrap();
        assert!(staggered.total_service_secs() > base.total_service_secs());
    }

    #[test]
    fn pywren_beats_baseline_at_low_concurrency() {
        // §1: Pywren "makes it useful at a low concurrency level".
        let platform = aws();
        let w = work();
        let base = NoPacking.run(&platform, &w, 200, 7).unwrap();
        let pywren = Pywren::default().run(&platform, &w, 200, 7).unwrap();
        assert!(pywren.total_service_secs() < base.total_service_secs());
        assert!(pywren.expense_usd < base.expense_usd);
    }

    #[test]
    fn pywren_gain_shrinks_at_high_concurrency() {
        // §1/§4: warm starts help less and less as the quadratic
        // scheduling term dominates. Compare the *relative* service gain
        // at C = 500 vs C = 5000.
        let platform = aws();
        let w = work();
        let gain = |c: u32| {
            let base = NoPacking.run(&platform, &w, c, 11).unwrap();
            let py = Pywren::default().run(&platform, &w, c, 11).unwrap();
            py.improvement_over(&base, |o| o.total_service_secs())
        };
        let low = gain(500);
        let high = gain(5000);
        assert!(
            high < low,
            "Pywren's relative gain must shrink with concurrency: {low:.1}% → {high:.1}%"
        );
    }

    #[test]
    fn pywren_pool_path_matches_legacy_warm_fraction() {
        // The WarmPool-backed Pywren must reproduce the pre-pool
        // warm-fraction timeline bit-for-bit, including at a concurrency
        // that does not divide the pool size.
        let platform = aws();
        let w = work();
        for c in [200u32, 3000, 5000] {
            let pooled = Pywren::default().run(&platform, &w, c, 13).unwrap();
            let warm = (Pywren::default().pool_size as f64 / c as f64).min(1.0);
            let legacy = platform
                .run_burst(
                    &BurstSpec::new(w.clone(), c, 1)
                        .with_seed(13)
                        .with_warm_fraction(warm),
                )
                .unwrap();
            let mut want = StrategyOutcome::from_report("Pywren", &legacy);
            want.expense_usd -= legacy.expense.storage_usd * WARM_REUSE_STORAGE_DISCOUNT;
            assert_eq!(pooled, want, "c = {c}");
        }
    }

    #[test]
    fn pywren_storage_discount_applies() {
        let platform = aws();
        let w = work();
        let no_discount = Pywren {
            storage_discount: 0.0,
            ..Pywren::default()
        }
        .run(&platform, &w, 300, 2)
        .unwrap();
        let with_discount = Pywren::default().run(&platform, &w, 300, 2).unwrap();
        assert!(with_discount.expense_usd < no_discount.expense_usd);
    }

    #[test]
    fn strategies_thread_faults_through_every_burst() {
        // Every strategy must expose the fault environment: under a nonzero
        // crash rate the aggregated counters are nonzero and the bill grows.
        let platform = aws();
        let w = work();
        let faults = propack_platform::FaultSpec::none().with_crash_rate(0.05);
        let retry = propack_platform::RetryPolicy::default();
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(NoPacking),
            Box::new(SerialBatching { batch_size: 200 }),
            Box::new(Staggered {
                wave_size: 200,
                gap_secs: 10.0,
            }),
            Box::new(Pywren::default()),
        ];
        for s in &strategies {
            let clean = s.run(&platform, &w, 600, 9).unwrap();
            let faulted = s.run_faulted(&platform, &w, 600, 9, faults, retry).unwrap();
            assert_eq!(clean.faults, Default::default(), "{}", s.name());
            assert!(faulted.faults.crashes > 0, "{}", s.name());
            assert!(faulted.faults.retries > 0, "{}", s.name());
            assert!(faulted.expense_usd > clean.expense_usd, "{}", s.name());
        }
    }

    #[test]
    fn batching_covers_non_divisible_counts() {
        let o = SerialBatching { batch_size: 300 }
            .run(&aws(), &work(), 1000, 1)
            .unwrap();
        assert_eq!(o.completion_times.len(), 1000);
    }

    #[test]
    fn strategies_report_consistent_metrics() {
        let o = Staggered {
            wave_size: 200,
            gap_secs: 30.0,
        }
        .run(&aws(), &work(), 600, 1)
        .unwrap();
        assert!(o.service_secs(Percentile::Median) <= o.service_secs(Percentile::Total));
        assert!(o.function_hours > 0.0);
    }
}
