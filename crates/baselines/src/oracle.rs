//! The Oracle: exhaustive brute-force search for the optimal packing degree.
//!
//! §3: *"We perform an exhaustive brute force search to determine the
//! optimal packing degree (Oracle packing degree)."* The Oracle actually
//! runs the application at **every** feasible packing degree and picks the
//! best by direct measurement — exactly what ProPack's analytical model
//! exists to avoid. Figures 8, 15, and 20(a) compare ProPack's predicted
//! degrees against these Oracle degrees.

use crate::outcome::StrategyOutcome;
use propack_platform::{BurstSpec, PlatformError, ServerlessPlatform, WorkProfile};
use propack_stats::percentile::Percentile;

/// What the Oracle optimizes, mirroring ProPack's objectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OracleObjective {
    /// Minimize observed service time at a figure of merit.
    ServiceTime(Percentile),
    /// Minimize observed expense.
    Expense,
    /// Minimize the joint fractional objective (Eqs. 5–7 evaluated on
    /// observations) at the given service-time weight and figure of merit.
    Joint {
        /// Service-time weight `W_S`.
        w_s: f64,
        /// Figure of merit for the service term.
        metric: Percentile,
    },
}

/// Brute-force search result.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleResult {
    /// The winning packing degree.
    pub packing_degree: u32,
    /// Outcome at the winning degree.
    pub outcome: StrategyOutcome,
    /// Every degree's `(degree, service, expense)` for diagnostics.
    pub sweep: Vec<(u32, f64, f64)>,
}

/// The Oracle searcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct Oracle;

impl Oracle {
    /// Run the application at every feasible degree `1..=p_max` and return
    /// the best by `objective`. Degrees rejected by the platform (execution
    /// cap) are skipped, mirroring how a practitioner's search would treat
    /// timeouts.
    pub fn search(
        &self,
        platform: &dyn ServerlessPlatform,
        work: &WorkProfile,
        c: u32,
        objective: OracleObjective,
        seed: u64,
    ) -> Result<OracleResult, PlatformError> {
        let p_max = work.max_packing_degree(platform.limits().mem_gb);
        let metric = match objective {
            OracleObjective::ServiceTime(m) => m,
            OracleObjective::Joint { metric, .. } => metric,
            OracleObjective::Expense => Percentile::Total,
        };

        let work = std::sync::Arc::new(work.clone());
        let mut candidates: Vec<(u32, StrategyOutcome)> = Vec::new();
        let mut sweep = Vec::new();
        for p in 1..=p_max {
            let spec = BurstSpec::packed(std::sync::Arc::clone(&work), c, p)
                .with_seed(seed ^ (p as u64) << 20);
            match platform.run_burst(&spec) {
                Ok(report) => {
                    let outcome = StrategyOutcome::from_report(format!("Oracle (P={p})"), &report);
                    sweep.push((p, outcome.service_secs(metric), outcome.expense_usd));
                    candidates.push((p, outcome));
                }
                Err(PlatformError::ExecutionTimeout { .. }) => break,
                Err(e) => return Err(e),
            }
        }
        assert!(!candidates.is_empty(), "degree 1 must always be feasible");

        let best_idx = match objective {
            OracleObjective::ServiceTime(m) => argmin(&candidates, |o| o.service_secs(m)),
            OracleObjective::Expense => argmin(&candidates, |o| o.expense_usd),
            OracleObjective::Joint { w_s, metric } => {
                let w_s = w_s.clamp(0.0, 1.0);
                let s_best = candidates
                    .iter()
                    .map(|(_, o)| o.service_secs(metric))
                    .fold(f64::INFINITY, f64::min);
                let e_best = candidates
                    .iter()
                    .map(|(_, o)| o.expense_usd)
                    .fold(f64::INFINITY, f64::min);
                argmin(&candidates, |o| {
                    w_s * (o.service_secs(metric) - s_best) / s_best
                        + (1.0 - w_s) * (o.expense_usd - e_best) / e_best
                })
            }
        };
        let (packing_degree, outcome) = candidates.swap_remove(best_idx);
        Ok(OracleResult {
            packing_degree,
            outcome,
            sweep,
        })
    }
}

fn argmin(candidates: &[(u32, StrategyOutcome)], f: impl Fn(&StrategyOutcome) -> f64) -> usize {
    let mut best = (0usize, f64::INFINITY);
    for (i, (_, o)) in candidates.iter().enumerate() {
        let v = f(o);
        if v < best.1 {
            best = (i, v);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_platform::CloudPlatform;
    use propack_platform::PlatformBuilder;

    fn aws() -> CloudPlatform {
        PlatformBuilder::aws().build()
    }

    fn work() -> WorkProfile {
        // Sort-like: p_max = 15 keeps the brute force cheap in tests.
        WorkProfile::synthetic("w", 0.64, 100.0).with_contention(0.1406)
    }

    #[test]
    fn oracle_degree_grows_with_concurrency() {
        // Fig. 8, observation (1).
        let platform = aws();
        let w = work();
        let o = Oracle;
        let d500 = o
            .search(
                &platform,
                &w,
                500,
                OracleObjective::ServiceTime(Percentile::Total),
                1,
            )
            .unwrap()
            .packing_degree;
        let d5000 = o
            .search(
                &platform,
                &w,
                5000,
                OracleObjective::ServiceTime(Percentile::Total),
                1,
            )
            .unwrap()
            .packing_degree;
        assert!(d5000 > d500, "oracle degrees: {d500} → {d5000}");
    }

    #[test]
    fn expense_oracle_packs_at_least_as_much_as_service_oracle() {
        // Fig. 15: expense minimization favours higher degrees.
        let platform = aws();
        let w = work();
        let o = Oracle;
        let c = 2000;
        let p_s = o
            .search(
                &platform,
                &w,
                c,
                OracleObjective::ServiceTime(Percentile::Total),
                2,
            )
            .unwrap()
            .packing_degree;
        let p_e = o
            .search(&platform, &w, c, OracleObjective::Expense, 2)
            .unwrap()
            .packing_degree;
        assert!(p_e >= p_s, "{p_e} vs {p_s}");
    }

    #[test]
    fn joint_oracle_falls_between_extremes() {
        // Fig. 8 / Fig. 15: the joint degree lies between the two
        // single-objective degrees.
        let platform = aws();
        let w = work();
        let o = Oracle;
        let c = 2000;
        let p_s = o
            .search(
                &platform,
                &w,
                c,
                OracleObjective::ServiceTime(Percentile::Total),
                3,
            )
            .unwrap()
            .packing_degree;
        let p_e = o
            .search(&platform, &w, c, OracleObjective::Expense, 3)
            .unwrap()
            .packing_degree;
        let p_j = o
            .search(
                &platform,
                &w,
                c,
                OracleObjective::Joint {
                    w_s: 0.5,
                    metric: Percentile::Total,
                },
                3,
            )
            .unwrap()
            .packing_degree;
        assert!(
            p_j >= p_s.min(p_e) && p_j <= p_s.max(p_e),
            "{p_s} ≤ {p_j} ≤ {p_e}"
        );
    }

    #[test]
    fn sweep_covers_every_feasible_degree() {
        let platform = aws();
        let w = work();
        let r = Oracle
            .search(&platform, &w, 1000, OracleObjective::Expense, 4)
            .unwrap();
        assert_eq!(r.sweep.len(), 15);
        assert_eq!(r.sweep[0].0, 1);
        assert_eq!(r.sweep[14].0, 15);
    }

    #[test]
    fn oracle_beats_or_matches_every_sweep_point() {
        let platform = aws();
        let w = work();
        let r = Oracle
            .search(&platform, &w, 1500, OracleObjective::Expense, 5)
            .unwrap();
        for &(p, _, expense) in &r.sweep {
            assert!(
                r.outcome.expense_usd <= expense + 1e-9,
                "degree {p} beats the oracle: {expense} < {}",
                r.outcome.expense_usd
            );
        }
    }
}
