//! Next-epoch concurrency forecasters.
//!
//! The online controller must choose a packing degree for epoch `k+1`
//! *before* seeing epoch `k+1`'s arrivals. Everything it knows is the
//! realized per-epoch counts so far; a [`Forecaster`] turns that history
//! into a point prediction. Two classics are provided: EWMA (smooth
//! tracker, lags a trend by roughly `1/alpha` epochs) and sliding-window
//! max (conservative envelope, over-provisions on the way down but never
//! under-forecasts a recent peak).

use std::fmt;

/// A point forecaster over a stream of per-epoch invocation counts.
pub trait Forecaster {
    /// Record the realized count of the epoch that just closed.
    fn observe(&mut self, actual: u32);

    /// Predicted count for the next epoch; `None` before any observation
    /// (the controller treats a cold start as "no information — don't pack").
    fn forecast(&self) -> Option<u32>;

    /// Stable display label, e.g. `ewma` or `window:3`.
    fn label(&self) -> String;
}

/// Exponentially weighted moving average: `level ← α·x + (1-α)·level`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ewma {
    alpha: f64,
    level: Option<f64>,
}

impl Ewma {
    /// Default smoothing factor.
    pub const DEFAULT_ALPHA: f64 = 0.5;

    /// Build with smoothing factor `alpha` in (0, 1].
    pub fn new(alpha: f64) -> Option<Self> {
        if !alpha.is_finite() || alpha <= 0.0 || alpha > 1.0 {
            return None;
        }
        Some(Self { alpha, level: None })
    }
}

impl Forecaster for Ewma {
    fn observe(&mut self, actual: u32) {
        let x = f64::from(actual);
        self.level = Some(match self.level {
            None => x,
            Some(level) => self.alpha * x + (1.0 - self.alpha) * level,
        });
    }

    fn forecast(&self) -> Option<u32> {
        self.level.map(|l| l.round().max(0.0) as u32)
    }

    fn label(&self) -> String {
        if self.alpha == Self::DEFAULT_ALPHA {
            "ewma".to_string()
        } else {
            format!("ewma:{}", self.alpha)
        }
    }
}

/// Maximum over the last `window` observed epochs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlidingWindowMax {
    window: usize,
    history: Vec<u32>,
}

impl SlidingWindowMax {
    /// Default window length, epochs.
    pub const DEFAULT_WINDOW: usize = 3;

    /// Build with a window of at least one epoch.
    pub fn new(window: usize) -> Option<Self> {
        if window == 0 {
            return None;
        }
        Some(Self {
            window,
            history: Vec::new(),
        })
    }
}

impl Forecaster for SlidingWindowMax {
    fn observe(&mut self, actual: u32) {
        self.history.push(actual);
        if self.history.len() > self.window {
            self.history.remove(0);
        }
    }

    fn forecast(&self) -> Option<u32> {
        self.history.iter().copied().max()
    }

    fn label(&self) -> String {
        if self.window == Self::DEFAULT_WINDOW {
            "window".to_string()
        } else {
            format!("window:{}", self.window)
        }
    }
}

/// A parsed forecaster choice — the value stored in controller specs so a
/// fresh stateful [`Forecaster`] can be instantiated per replay run.
#[derive(Debug, Clone, PartialEq)]
pub enum ForecasterKind {
    /// EWMA with the given smoothing factor.
    Ewma {
        /// Smoothing factor in (0, 1].
        alpha: f64,
    },
    /// Sliding-window max with the given window length (epochs).
    WindowMax {
        /// Window length, epochs (≥ 1).
        window: usize,
    },
}

impl ForecasterKind {
    /// Parse `ewma`, `ewma:0.3`, `window`, or `window:5`.
    pub fn parse(input: &str) -> Result<Self, String> {
        let input = input.trim();
        let (kind, param) = match input.split_once(':') {
            Some((k, p)) => (k.trim(), Some(p.trim())),
            None => (input, None),
        };
        match kind {
            "ewma" => {
                let alpha = match param {
                    None => Ewma::DEFAULT_ALPHA,
                    Some(p) => p
                        .parse::<f64>()
                        .map_err(|_| format!("ewma alpha `{p}` is not a number"))?,
                };
                Ewma::new(alpha)
                    .map(|_| ForecasterKind::Ewma { alpha })
                    .ok_or_else(|| format!("ewma alpha {alpha} must be in (0, 1]"))
            }
            "window" => {
                let window = match param {
                    None => SlidingWindowMax::DEFAULT_WINDOW,
                    Some(p) => p
                        .parse::<usize>()
                        .map_err(|_| format!("window length `{p}` is not an integer"))?,
                };
                SlidingWindowMax::new(window)
                    .map(|_| ForecasterKind::WindowMax { window })
                    .ok_or_else(|| "window length must be at least 1".to_string())
            }
            other => Err(format!(
                "unknown forecaster `{other}` (expected ewma[:alpha] or window[:len])"
            )),
        }
    }

    /// Instantiate a fresh, empty forecaster of this kind.
    pub fn build(&self) -> Box<dyn Forecaster + Send> {
        match *self {
            ForecasterKind::Ewma { alpha } => Box::new(Ewma::new(alpha).unwrap_or(Ewma {
                alpha: Ewma::DEFAULT_ALPHA,
                level: None,
            })),
            ForecasterKind::WindowMax { window } => {
                Box::new(SlidingWindowMax::new(window).unwrap_or(SlidingWindowMax {
                    window: SlidingWindowMax::DEFAULT_WINDOW,
                    history: Vec::new(),
                }))
            }
        }
    }

    /// Stable display label (matches the built forecaster's label).
    pub fn label(&self) -> String {
        self.build().label()
    }
}

impl fmt::Display for ForecasterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_to_a_constant_signal() {
        let mut f = Ewma::new(0.5).expect("valid alpha");
        assert_eq!(f.forecast(), None);
        for _ in 0..20 {
            f.observe(120);
        }
        assert_eq!(f.forecast(), Some(120));
    }

    #[test]
    fn ewma_lags_a_step_by_roughly_one_over_alpha() {
        let mut f = Ewma::new(0.5).expect("valid alpha");
        for _ in 0..10 {
            f.observe(10);
        }
        f.observe(100);
        // One step after the jump: 0.5*100 + 0.5*10 = 55.
        assert_eq!(f.forecast(), Some(55));
        for _ in 0..20 {
            f.observe(100);
        }
        assert_eq!(f.forecast(), Some(100));
    }

    #[test]
    fn window_max_tracks_a_step_function() {
        let mut f = SlidingWindowMax::new(3).expect("valid window");
        assert_eq!(f.forecast(), None);
        for x in [5, 5, 5, 50, 50] {
            f.observe(x);
        }
        assert_eq!(f.forecast(), Some(50));
        // Step back down: the peak persists for exactly `window` epochs.
        f.observe(5);
        assert_eq!(f.forecast(), Some(50), "peak still inside the window");
        f.observe(5);
        f.observe(5);
        assert_eq!(f.forecast(), Some(5), "peak aged out of the window");
    }

    #[test]
    fn kind_parsing_accepts_defaults_params_and_rejects_junk() {
        assert_eq!(
            ForecasterKind::parse("ewma").expect("parses"),
            ForecasterKind::Ewma { alpha: 0.5 }
        );
        assert_eq!(
            ForecasterKind::parse("ewma:0.25").expect("parses"),
            ForecasterKind::Ewma { alpha: 0.25 }
        );
        assert_eq!(
            ForecasterKind::parse("window:5").expect("parses"),
            ForecasterKind::WindowMax { window: 5 }
        );
        assert!(ForecasterKind::parse("ewma:1.5").is_err());
        assert!(ForecasterKind::parse("ewma:x").is_err());
        assert!(ForecasterKind::parse("window:0").is_err());
        assert!(ForecasterKind::parse("holt").is_err());
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for text in ["ewma", "ewma:0.25", "window", "window:5"] {
            let kind = ForecasterKind::parse(text).expect("parses");
            assert_eq!(kind.label(), text);
            assert_eq!(
                ForecasterKind::parse(&kind.label()).expect("label reparses"),
                kind
            );
        }
    }
}
