//! `cargo xtask` — workspace automation for the ProPack reproduction.
//!
//! Two tasks:
//!
//! * `simlint` — a repo-specific static-analysis pass enforcing the
//!   determinism and robustness invariants described in DESIGN.md §7.
//!   Sources are parsed into token-tree forests and analyzed per file and
//!   across files (RNG-lane registry, banned-type aliases, panic-wrapper
//!   macros); files the parser rejects fall back to the v1 lexer rules:
//!
//!   ```text
//!   cargo xtask simlint [--root <workspace-root>] \
//!       [--format text|json|github] [--self-check]
//!   ```
//!
//!   `--format json` prints the stable v2 schema on stdout (for CI
//!   artifacts); `--format github` prints one `::error` workflow command
//!   per finding (PR annotations); `--self-check` ignores the workspace
//!   and instead verifies every compiled-in fixture still produces its
//!   pinned findings — the linter's own regression gate.
//!
//! * `benchdiff` — the kernel-throughput regression gate: compares a fresh
//!   `BENCH_kernel.json` against the committed baseline and fails when any
//!   policy group's `cells_per_sec` regressed by more than the tolerance
//!   (default 30 %). A baseline group may carry its own `"tolerance"`
//!   (overriding the global default for that group) and a
//!   `"max_rel_err_bound"` that the current run's measured `"max_rel_err"`
//!   must stay under — this is how fluid-approximation cells gate on both
//!   speedup *and* fidelity:
//!
//!   ```text
//!   cargo xtask benchdiff [--current BENCH_kernel.json] \
//!       [--baseline crates/bench/baselines/kernel_baseline.json] \
//!       [--tolerance 0.30]
//!   ```
//!
//! Exit status: 0 when clean, 1 when violations/regressions were found, 2 on
//! usage or I/O errors. Diagnostics are `file:line`-style lines on stderr.

mod ast;
mod benchdiff;
mod lexer;
mod rules;
mod selfcheck;
mod walk;

use std::process::ExitCode;

/// Output format for `simlint` reports.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let task = args.next();
    match task.as_deref() {
        Some("simlint") => {
            let mut root: Option<std::path::PathBuf> = None;
            let mut format = Format::Text;
            let mut self_check = false;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => match args.next() {
                        Some(p) => root = Some(p.into()),
                        None => return usage("--root requires a path"),
                    },
                    "--format" => match args.next().as_deref() {
                        Some("text") => format = Format::Text,
                        Some("json") => format = Format::Json,
                        Some("github") => format = Format::Github,
                        _ => return usage("--format requires text, json, or github"),
                    },
                    "--self-check" => self_check = true,
                    other => return usage(&format!("unknown simlint option `{other}`")),
                }
            }
            if self_check {
                return simlint_self_check();
            }
            let root = root.unwrap_or_else(default_root);
            simlint(&root, format)
        }
        Some("benchdiff") => {
            let mut current = std::path::PathBuf::from("BENCH_kernel.json");
            let mut baseline =
                std::path::PathBuf::from("crates/bench/baselines/kernel_baseline.json");
            let mut tolerance = 0.30f64;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--current" => match args.next() {
                        Some(p) => current = p.into(),
                        None => return usage("--current requires a path"),
                    },
                    "--baseline" => match args.next() {
                        Some(p) => baseline = p.into(),
                        None => return usage("--baseline requires a path"),
                    },
                    "--tolerance" => match args.next().and_then(|t| t.parse().ok()) {
                        Some(t) => tolerance = t,
                        None => return usage("--tolerance requires a fraction (e.g. 0.30)"),
                    },
                    other => return usage(&format!("unknown benchdiff option `{other}`")),
                }
            }
            benchdiff::run(&current, &baseline, tolerance)
        }
        Some(other) => usage(&format!("unknown task `{other}`")),
        None => usage("no task given"),
    }
}

/// The workspace root, assuming this binary is built in-tree at
/// `crates/xtask`. Overridable with `--root` (used by CI and tests).
fn default_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

fn simlint(root: &std::path::Path, format: Format) -> ExitCode {
    let walked = match walk::workspace_sources(root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("error: cannot walk workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let mut files = Vec::with_capacity(walked.len());
    for file in walked {
        match std::fs::read_to_string(&file.abs_path) {
            Ok(src) => files.push((src, file.ctx)),
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", file.abs_path.display());
                return ExitCode::from(2);
            }
        }
    }
    let report = ast::analyze_files(&files);
    match format {
        // Text keeps the v1 contract: diagnostics on stderr.
        Format::Text => eprint!("{}", report.render_text()),
        // Machine formats go to stdout so CI can redirect them to files.
        Format::Json => print!("{}", report.render_json()),
        Format::Github => print!("{}", report.render_github()),
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `simlint --self-check`: verify the fixture expectation table.
fn simlint_self_check() -> ExitCode {
    let failures = selfcheck::run();
    if failures.is_empty() {
        eprintln!("simlint: self-check passed (all fixture expectations hold)");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("{f}");
        }
        eprintln!("simlint: self-check FAILED ({} case(s))", failures.len());
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "error: {err}\n\nUsage:\n  cargo xtask simlint [--root <workspace-root>] \
         [--format text|json|github] [--self-check]\n  \
         cargo xtask benchdiff [--current <json>] [--baseline <json>] [--tolerance <frac>]"
    );
    ExitCode::from(2)
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_file, FileCtx, Violation};

    fn ctx(crate_name: &str, rel_path: &str) -> FileCtx {
        FileCtx {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            test_target: false,
        }
    }

    fn rules_hit(violations: &[Violation]) -> Vec<&'static str> {
        let mut rules: Vec<&'static str> = violations.iter().map(|v| v.rule).collect();
        rules.dedup();
        rules
    }

    #[test]
    fn fixture_hash_map_flagged_in_sim_crates_only() {
        let src = include_str!("../fixtures/hash_map.rs");
        let v = lint_file(src, &ctx("workloads", "crates/workloads/src/bad.rs"));
        assert_eq!(rules_hit(&v), ["hash-map"]);
        assert_eq!(v.len(), 3, "use + two sites: {v:?}");
        // Same source in a non-simulation crate is fine.
        let v = lint_file(src, &ctx("bench", "crates/bench/src/bad.rs"));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn fixture_wall_clock_flagged_outside_executor() {
        let src = include_str!("../fixtures/wall_clock.rs");
        let v = lint_file(src, &ctx("simcore", "crates/simcore/src/bad.rs"));
        assert_eq!(rules_hit(&v), ["wall-clock"]);
        assert_eq!(v.len(), 4, "{v:?}");
        let v = lint_file(src, &ctx("executor", "crates/executor/src/ok.rs"));
        assert!(v.is_empty(), "executor may use wall-clock: {v:?}");
    }

    #[test]
    fn fixture_panic_path_flagged_outside_tests() {
        let src = include_str!("../fixtures/panic_path.rs");
        let v = lint_file(src, &ctx("platform", "crates/platform/src/bad.rs"));
        assert_eq!(rules_hit(&v), ["panic-path"]);
        // unwrap, expect, panic!, todo! in library code; the cfg(test) mod's
        // unwrap and the unwrap_or/expect_fn idents are exempt.
        assert_eq!(v.len(), 4, "{v:?}");
        let v = lint_file(src, &ctx("cli", "crates/cli/src/ok.rs"));
        assert!(v.is_empty(), "cli is not a panic-free crate: {v:?}");
    }

    #[test]
    fn fixture_float_eq_flagged() {
        let src = include_str!("../fixtures/float_eq.rs");
        let v = lint_file(src, &ctx("stats", "crates/stats/src/bad.rs"));
        assert_eq!(rules_hit(&v), ["float-eq"]);
        assert_eq!(v.len(), 2, "{v:?}");
        let v = lint_file(src, &ctx("simcore", "crates/simcore/src/ok.rs"));
        assert!(v.is_empty(), "float-eq scoped to stats/propack: {v:?}");
    }

    #[test]
    fn fixture_const_doc_flagged_in_platform_profile_only() {
        let src = include_str!("../fixtures/const_doc.rs");
        let v = lint_file(src, &ctx("platform", "crates/platform/src/profile.rs"));
        assert_eq!(rules_hit(&v), ["const-doc"]);
        // UNDOCUMENTED and WRONG_DOC lack citations; CITED and the private
        // const are fine.
        assert_eq!(v.len(), 2, "{v:?}");
        let v = lint_file(src, &ctx("platform", "crates/platform/src/fleet.rs"));
        assert!(v.is_empty(), "const-doc scoped to profile.rs: {v:?}");
    }

    #[test]
    fn fixture_thread_spawn_flagged_outside_sweep_and_executor() {
        let src = include_str!("../fixtures/thread_spawn.rs");
        let v = lint_file(src, &ctx("propack", "crates/propack/src/bad.rs"));
        assert_eq!(rules_hit(&v), ["thread-spawn"]);
        // `std::thread::spawn` + `thread::scope`; the inner `s.spawn` and
        // `available_parallelism` are not separate violations.
        assert_eq!(v.len(), 2, "{v:?}");
        for krate in ["sweep", "executor"] {
            let v = lint_file(src, &ctx(krate, "crates/x/src/ok.rs"));
            assert!(v.is_empty(), "{krate} may spawn threads: {v:?}");
        }
    }

    #[test]
    fn fixture_fault_rng_flagged_in_fault_files_of_sim_crates_only() {
        let src = include_str!("../fixtures/fault_rng.rs");
        let v = lint_file(src, &ctx("simcore", "crates/simcore/src/fault.rs"));
        assert_eq!(rules_hit(&v), ["fault-rng"]);
        // `ChaCha8Rng` in the use + the call site, plus `seed_from_u64`.
        assert_eq!(v.len(), 3, "{v:?}");
        // The seeded-stream implementation itself lives in rng.rs and is
        // the one legitimate construction site.
        let v = lint_file(src, &ctx("simcore", "crates/simcore/src/rng.rs"));
        assert!(v.is_empty(), "rng.rs may construct generators: {v:?}");
        // Non-simulation crates are out of scope whatever the file name.
        let v = lint_file(src, &ctx("bench", "crates/bench/src/fault.rs"));
        assert!(v.is_empty(), "{v:?}");
        // The real fault-lane implementation must satisfy its own rule.
        let real = include_str!("../../simcore/src/fault.rs");
        let v = lint_file(real, &ctx("simcore", "crates/simcore/src/fault.rs"));
        assert!(v.is_empty(), "shipped fault.rs violates fault-rng: {v:?}");
    }

    #[test]
    fn replay_crate_is_covered_by_sim_rules() {
        // `replay` joined SIM_CRATES: hash-map applies, wall-clock applies
        // (replay is not exempt — host timing is injected from `sweep`),
        // and the fault-rng rule now also matches `*trace*.rs` files.
        let src = include_str!("../fixtures/fault_rng.rs");
        let v = lint_file(src, &ctx("replay", "crates/replay/src/trace.rs"));
        assert_eq!(rules_hit(&v), ["fault-rng"], "{v:?}");
        let src = include_str!("../fixtures/hash_map.rs");
        let v = lint_file(src, &ctx("replay", "crates/replay/src/engine.rs"));
        assert_eq!(rules_hit(&v), ["hash-map"], "{v:?}");
        let src = include_str!("../fixtures/wall_clock.rs");
        let v = lint_file(src, &ctx("replay", "crates/replay/src/engine.rs"));
        assert_eq!(rules_hit(&v), ["wall-clock"], "{v:?}");
        // The shipped arrival-trace generators must satisfy the extended
        // fault-rng scope: every draw goes through `RngStreams` lanes.
        let real = include_str!("../../replay/src/trace.rs");
        let v = lint_file(real, &ctx("replay", "crates/replay/src/trace.rs"));
        assert!(
            v.is_empty(),
            "shipped replay trace.rs violates simlint: {v:?}"
        );
        // simcore's RNG-free `Tracer` (also `trace.rs`) stays clean too.
        let real = include_str!("../../simcore/src/trace.rs");
        let v = lint_file(real, &ctx("simcore", "crates/simcore/src/trace.rs"));
        assert!(v.is_empty(), "simcore tracer flagged by trace scope: {v:?}");
    }

    #[test]
    fn fixture_event_alloc_flagged_outside_simcore() {
        let src = include_str!("../fixtures/event_alloc.rs");
        let v = lint_file(src, &ctx("platform", "crates/platform/src/bad.rs"));
        assert_eq!(rules_hit(&v), ["event-alloc"]);
        // Two boxed closures in library code; the typed-event calls, the
        // non-schedule Box, the justified allow, and the cfg(test) closure
        // are all exempt.
        assert_eq!(v.len(), 2, "{v:?}");
        // simcore owns the closure fallback and may exercise it.
        let v = lint_file(src, &ctx("simcore", "crates/simcore/src/ok.rs"));
        assert!(v.is_empty(), "simcore may box scheduler closures: {v:?}");
        // Non-simulation crates are out of scope.
        let v = lint_file(src, &ctx("bench", "crates/bench/src/ok.rs"));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn fixture_allows_suppress_with_justification() {
        let src = include_str!("../fixtures/allowed.rs");
        let v = lint_file(src, &ctx("stats", "crates/stats/src/ok.rs"));
        assert!(v.is_empty(), "justified allows must suppress: {v:?}");
    }

    #[test]
    fn fixture_bare_allow_is_itself_a_violation() {
        let src = include_str!("../fixtures/allow_missing_justification.rs");
        let v = lint_file(src, &ctx("stats", "crates/stats/src/bad.rs"));
        let rules = rules_hit(&v);
        assert!(rules.contains(&"bad-allow"), "{v:?}");
        assert!(
            rules.contains(&"float-eq"),
            "an unjustified allow must not suppress: {v:?}"
        );
    }

    #[test]
    fn fixture_clean_passes_everywhere() {
        let src = include_str!("../fixtures/clean.rs");
        for krate in ["simcore", "platform", "propack", "stats", "workloads"] {
            let v = lint_file(src, &ctx(krate, "crates/x/src/clean.rs"));
            assert!(v.is_empty(), "clean fixture flagged in {krate}: {v:?}");
        }
    }

    #[test]
    fn test_targets_are_exempt_from_panic_path() {
        let src = "fn helper() { Some(1).unwrap(); }\n";
        let mut c = ctx("platform", "crates/platform/tests/it.rs");
        c.test_target = true;
        assert!(lint_file(src, &c).is_empty());
        c.test_target = false;
        assert_eq!(lint_file(src, &c).len(), 1);
    }

    /// Run the AST engine over fixture sources under given identities.
    fn analyze(files: &[(&str, &str, &str)]) -> crate::ast::report::Report {
        let owned: Vec<(String, FileCtx)> = files
            .iter()
            .map(|(src, krate, path)| ((*src).to_string(), ctx(krate, path)))
            .collect();
        crate::ast::analyze_files(&owned)
    }

    /// Acceptance: an aliased `HashMap` import is invisible to the v1
    /// token scan (no `HashMap` ident at the use sites) but caught by the
    /// workspace alias table.
    #[test]
    fn aliased_hash_map_missed_by_lexer_caught_by_ast() {
        let def = include_str!("../fixtures/alias_hash_map.rs");
        let user = include_str!("../fixtures/alias_hash_map_use.rs");
        // v1 lexer path: the using file lints clean — the false negative.
        let v = lint_file(user, &ctx("platform", "crates/platform/src/uses_alias.rs"));
        assert!(v.is_empty(), "lexer should miss aliases: {v:?}");
        // AST path over the pair: the use decl re-exporting the alias plus
        // every aliased usage site.
        let report = analyze(&[
            (def, "bench", "crates/bench/src/alias.rs"),
            (user, "platform", "crates/platform/src/uses_alias.rs"),
        ]);
        assert_eq!(report.violations.len(), 6, "{:?}", report.violations);
        assert!(report.violations.iter().all(|v| v.rule == "hash-map"));
        assert!(report
            .violations
            .iter()
            .all(|v| v.rel_path == "crates/platform/src/uses_alias.rs"));
    }

    /// Acceptance: a panic hidden behind a `macro_rules!` wrapper is
    /// invisible to the v1 scan at the invocation site but caught by the
    /// transitive wrapper closure.
    #[test]
    fn panic_wrapper_missed_by_lexer_caught_by_ast() {
        let def = include_str!("../fixtures/panic_wrapper.rs");
        let user = include_str!("../fixtures/panic_wrapper_use.rs");
        let v = lint_file(user, &ctx("platform", "crates/platform/src/uses_macros.rs"));
        assert!(v.is_empty(), "lexer should miss wrapped panics: {v:?}");
        let report = analyze(&[
            (def, "workloads", "crates/workloads/src/macros.rs"),
            (user, "platform", "crates/platform/src/uses_macros.rs"),
        ]);
        assert_eq!(report.violations.len(), 2, "{:?}", report.violations);
        assert!(report.violations.iter().all(|v| v.rule == "panic-path"));
        // One direct wrapper, one transitive (die_faster → die_fast →
        // panic!).
        assert!(report
            .violations
            .iter()
            .any(|v| v.message.contains("die_fast!")));
        assert!(report
            .violations
            .iter()
            .any(|v| v.message.contains("die_faster!")));
    }

    /// Acceptance: a stale allow rots silently under v1 (the lexer cannot
    /// prove an allow useless) but is a finding under the AST audit.
    #[test]
    fn stale_allow_missed_by_lexer_caught_by_ast() {
        let src = include_str!("../fixtures/stale_allow.rs");
        let v = lint_file(src, &ctx("stats", "crates/stats/src/bad.rs"));
        assert!(v.is_empty(), "lexer accepts stale allows: {v:?}");
        let report = analyze(&[(src, "stats", "crates/stats/src/bad.rs")]);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].rule, "stale-allow");
        assert_eq!(report.violations[0].line, 12);
    }

    /// The rng-lane fixture pair: literals, a dynamic expression, an
    /// unregistered constant, and a dead registry lane — each classified.
    #[test]
    fn rng_lane_findings_are_classified() {
        let report = analyze(&[
            (
                include_str!("../fixtures/lanes_registry.rs"),
                "simcore",
                "crates/simcore/src/rng.rs",
            ),
            (
                include_str!("../fixtures/rng_lane.rs"),
                "platform",
                "crates/platform/src/draws.rs",
            ),
        ]);
        assert!(report.violations.iter().all(|v| v.rule == "rng-lane"));
        let msgs: Vec<&str> = report
            .violations
            .iter()
            .map(|v| v.message.as_str())
            .collect();
        assert_eq!(msgs.len(), 5, "{msgs:#?}");
        assert_eq!(
            msgs.iter()
                .filter(|m| m.contains("raw string literal"))
                .count(),
            2,
            "{msgs:#?}"
        );
        assert!(msgs.iter().any(|m| m.contains("non-constant")), "{msgs:#?}");
        assert!(
            msgs.iter().any(|m| m.contains("NOT_REGISTERED")),
            "{msgs:#?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("registered but never passed")),
            "{msgs:#?}"
        );
    }

    /// The acceptance bar for the workspace migration: the shipped tree
    /// analyzes clean under the AST engine — no raw-string lane call
    /// sites, no stale allows, every file tree-parses (no lexer
    /// fallback).
    #[test]
    fn shipped_workspace_is_clean_under_ast_engine() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap();
        let walked = crate::walk::workspace_sources(root).expect("walk workspace");
        let files: Vec<(String, FileCtx)> = walked
            .into_iter()
            .map(|f| {
                let src = std::fs::read_to_string(&f.abs_path).expect("read source");
                (src, f.ctx)
            })
            .collect();
        let report = crate::ast::analyze_files(&files);
        assert!(
            report.violations.is_empty(),
            "workspace must lint clean:\n{}",
            report.render_text()
        );
        assert!(
            report.fallback_files.is_empty(),
            "all shipped sources must tree-parse: {:?}",
            report.fallback_files
        );
    }

    #[test]
    fn walker_maps_paths_to_crates_and_skips_fixtures() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap();
        let files = crate::walk::workspace_sources(root).expect("walk workspace");
        assert!(
            files.iter().any(|f| f.ctx.crate_name == "simcore"),
            "workspace walk must reach crates/simcore"
        );
        assert!(
            files.iter().all(|f| !f.ctx.rel_path.contains("fixtures")),
            "fixtures must not be linted as workspace sources"
        );
        let it = files
            .iter()
            .find(|f| f.ctx.rel_path.starts_with("tests/"))
            .expect("root integration tests are walked");
        assert!(it.ctx.test_target);
    }
}
