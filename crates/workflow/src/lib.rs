//! Deterministic DAG workflow execution over the platform simulator.
//!
//! The orchestrator crate defines the *state language* (Task / Map /
//! Sequence / Parallel) and a recursive interpreter that adds and maxes
//! durations. This crate is the **engine** underneath that abstraction: it
//! compiles a [`propack_orchestrator::State`] tree into an explicit leaf
//! DAG and replays it on the simcore event timeline, so that
//!
//! * every Task/Map leaf becomes a scheduled event with a concrete start
//!   time (the max of its predecessors' finish times),
//! * Map fan-outs are planned by ProPack through a **shared**
//!   [`ModelCache`](propack_model::cache::ModelCache) — one probe campaign
//!   per distinct profile anywhere in the process,
//! * sibling Map leaves of a `Parallel` node can be **co-packed** into one
//!   heterogeneous burst ([`propack_platform::MixedBurstSpec`]) under a
//!   pairwise interference model, and
//! * the realized **critical path** (which chain of leaves determined the
//!   makespan) is recovered and reported, so experiments can show packing
//!   *shifting* the critical path rather than just shrinking one stage.
//!
//! # Determinism
//!
//! The engine is deterministic by construction (DESIGN.md §14):
//!
//! * Every leaf burst draws its seed from the `workflow-leaf` RNG lane,
//!   indexed by a hash of the leaf's *identity* (state name + occurrence
//!   ordinal) — never by arrival order. Shuffling the branches of a
//!   `Parallel` therefore cannot change any leaf's timeline.
//! * Ready events for simultaneously-unblocked leaves are scheduled in
//!   canonical `(name, ordinal)` order, so event sequence numbers — the
//!   simcore tiebreaker — are themselves canonical.
//! * All reported times are computed in `f64` from burst reports
//!   (`start = max(pred finishes)`, `finish = start + service`); the sim
//!   clock only orders events. A single-Task workflow therefore reproduces
//!   the flat [`BurstRequest::run_pooled`](propack_platform::BurstRequest)
//!   burst bit-for-bit — the same reduction argument the fleet engine
//!   makes for single-tenant replay.

pub mod engine;
pub mod report;
pub mod spec;

pub use engine::{leaf_seed, run_workflow};
pub use report::{CriticalHop, StageRow, WorkflowRunReport};
pub use spec::{CoPack, WorkflowSpec};

// The state language is the orchestrator's; re-export the pieces needed to
// build workflow specs so downstream crates depend on one surface.
pub use propack_orchestrator::{MapPacking, State, Workflow};

/// Errors from compiling or executing a workflow DAG.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkflowRunError {
    /// A burst failed on the platform.
    Platform(propack_platform::PlatformError),
    /// ProPack model fitting or planning failed for a Map state.
    Planning(String),
    /// The workflow has no leaf states (empty Sequence/Parallel).
    EmptyWorkflow,
    /// A Map state requested zero concurrency.
    EmptyMap {
        /// Name of the offending state.
        state: String,
    },
    /// An unrecognized workflow shape string (see
    /// [`spec::known_shapes`]).
    UnknownShape(String),
}

impl std::fmt::Display for WorkflowRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowRunError::Platform(e) => write!(f, "platform error: {e}"),
            WorkflowRunError::Planning(msg) => write!(f, "planning error: {msg}"),
            WorkflowRunError::EmptyWorkflow => write!(f, "workflow has no leaf states"),
            WorkflowRunError::EmptyMap { state } => {
                write!(f, "map state '{state}' has zero concurrency")
            }
            WorkflowRunError::UnknownShape(s) => write!(
                f,
                "unknown workflow shape '{s}' (known: {})",
                spec::known_shapes().join(", ")
            ),
        }
    }
}

impl std::error::Error for WorkflowRunError {}

impl From<propack_platform::PlatformError> for WorkflowRunError {
    fn from(e: propack_platform::PlatformError) -> Self {
        WorkflowRunError::Platform(e)
    }
}
