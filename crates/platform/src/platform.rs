//! The [`ServerlessPlatform`] trait and the cloud implementation.
//!
//! [`CloudPlatform::run_burst`] drives each function instance through the
//! full control-plane pipeline as discrete events on `propack-simcore`:
//!
//! ```text
//! invoke ──► schedule (central scheduler, search cost grows with occupancy)
//!        ──► build    (image server, finite build bandwidth)
//!        ──► ship     (fabric, finite link bandwidth)
//!        ──► provision (microVM boot, parallel across servers)
//!        ──► execute  (packing interference, then billing stops)
//! ```
//!
//! Warm instances (Pywren-style reuse) skip build/ship/provision.
//!
//! ## Kernel fast paths
//!
//! The pipeline runs on `propack-simcore`'s pooled typed-event queue: every
//! stage transition is a [`BurstEvent`] (a small enum recycled through a
//! slab), not a boxed closure, and the t = 0 fan-out enqueues all `C`
//! invocations in one [`Sim::schedule_batch`] call. On top of that,
//! every instance takes a *cohort* shortcut through its execution phase:
//! once an instance clears the shared control plane (scheduler, build/ship
//! pipes, provision — which all consume the sequential control-plane RNG
//! and therefore must stay in event order), everything that remains touches
//! only per-instance state. The burst pre-evaluates its whole
//! [`CohortOutcomes`] batch (survivor set, crash chains, severity factors)
//! up front, and when the cohort's total retry demand fits the burst's
//! retry budget — so no grant/deny decision can depend on event
//! interleaving — each instance's full crash/retry/finish chain is
//! replayed arithmetically at control-plane time instead of dispatching
//! `RunAttempt`/`Crashed`/`Finish` events through the heap. This is
//! bit-identical to the event-by-event timeline (asserted by the golden
//! replay tests and the faulted equivalence matrix) because the arithmetic
//! replays the exact f64 operation chain the events would have performed
//! on the exact same pure fault draws. Traced runs, and bursts whose retry
//! demand exceeds their budget (where grant order *does* matter), still
//! simulate event-by-event.
//!
//! ## Fluid approximation
//!
//! On explicit opt-in ([`BurstSpec::with_fluid`]) very large cohorts skip
//! the event heap entirely: the shared control plane collapses to its
//! mean-field wave (every control-plane jitter at its mean of 1, pipes as
//! running maxima), while fault and execution draws stay exact. Every
//! timestamp is a monotone function of the jitter draws, so the fluid
//! timeline's relative error is bounded by the profile's control jitter
//! amplitude — measured and gated in the bench harness. Exact paths are
//! never affected: fluid runs only when asked, and never under tracing.

use crate::billing::{bill_burst, Expense};
use crate::burst::BurstSpec;
use crate::error::PlatformError;
use crate::fleet::Fleet;
use crate::instance::packed_exec_secs;
use crate::profile::{PlatformProfile, PriceSheet};
use crate::report::{FaultSummary, InstanceRecord, RunReport, ScalingBreakdown};
use propack_simcore::rng::{jitter, jitter_value, lanes};
use propack_simcore::{
    BandwidthPipe, CohortOutcomes, EventState, FaultPlan, FaultSpec, FifoResource, RetryPolicy,
    RngStreams, Sim, SimTime, Tracer,
};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Instance shape limits exposed to planners (ProPack reads these to bound
/// the packing degree).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceLimits {
    /// Maximum instance memory in GB (`M_platform`).
    pub mem_gb: f64,
    /// vCPU cores per instance.
    pub cores: u32,
    /// Maximum execution seconds per instance.
    pub max_exec_secs: f64,
}

/// Anything that can execute a concurrent burst of function instances.
///
/// Implemented by [`CloudPlatform`] (AWS/Google/Azure presets) and by
/// `propack-funcx`'s on-prem cluster. ProPack, the baselines, and the Oracle
/// are all generic over this trait, which is the repo's equivalent of "runs
/// on multiple serverless platforms".
pub trait ServerlessPlatform {
    /// Display name for figure output.
    fn name(&self) -> String;

    /// Instance shape limits.
    fn limits(&self) -> InstanceLimits;

    /// The platform's price sheet.
    fn prices(&self) -> PriceSheet;

    /// Execute a burst and report timestamps and billing.
    fn run_burst(&self, spec: &BurstSpec) -> Result<RunReport, PlatformError>;

    /// Deterministic (noise-free) execution time of one instance at the
    /// given packing degree — what a careful profiling run converges to.
    fn nominal_exec_secs(&self, work: &crate::WorkProfile, packing_degree: u32) -> f64;

    /// The fault rates this platform exhibits in practice (used by
    /// `--faults default` scenarios). Fault-free unless the implementation
    /// overrides it with calibrated per-provider rates.
    fn default_faults(&self) -> FaultSpec {
        FaultSpec::none()
    }

    /// Per-placement scheduler latency: the linear control-plane cost every
    /// placement pays whether it starts warm or cold. Pool-aware planners
    /// charge it to warm instances — the fitted model's linear coefficient
    /// conflates it with build/ship costs that warm starts skip, so it must
    /// be surfaced separately. Zero unless the implementation knows it.
    fn placement_secs(&self) -> f64 {
        0.0
    }

    /// Execute a heterogeneous co-packed burst ([`crate::mixed`]): unlike
    /// functions sharing each instance under a pairwise interference model.
    /// Platforms without a mixed-instance model reject the request — the
    /// workflow engine then falls back to per-stage homogeneous bursts
    /// rather than silently simulating co-location it cannot model.
    fn run_mixed(
        &self,
        _spec: &crate::mixed::MixedBurstSpec,
    ) -> Result<crate::mixed::MixedRunOutcome, PlatformError> {
        Err(PlatformError::MixedBurstsUnsupported {
            platform: self.name(),
        })
    }
}

/// A commercial-cloud serverless platform driven by a calibration profile.
#[derive(Debug, Clone)]
pub struct CloudPlatform {
    profile: PlatformProfile,
    tracing: bool,
    batching: bool,
}

impl CloudPlatform {
    /// Build a platform from a calibration profile. Prefer
    /// [`crate::builder::PlatformBuilder`] when starting from a preset.
    pub fn new(profile: PlatformProfile) -> Self {
        CloudPlatform {
            profile,
            tracing: false,
            batching: true,
        }
    }

    /// Set whether [`Self::run_burst_observed`] traces by default.
    pub fn with_tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Enable or disable cohort batching (on by default). With batching
    /// off, every instance simulates event-by-event — the pre-cohort
    /// kernel. Results are bit-identical either way (the fast paths
    /// replay the exact event arithmetic); the toggle exists so benches
    /// and equivalence tests can measure one path against the other.
    pub fn with_batching(mut self, enabled: bool) -> Self {
        self.batching = enabled;
        self
    }

    /// Whether cohort batching is enabled (see [`Self::with_batching`]).
    pub fn batching_enabled(&self) -> bool {
        self.batching
    }

    /// Whether this platform traces lifecycle events by default.
    pub fn tracing_enabled(&self) -> bool {
        self.tracing
    }

    /// A tracer matching this platform's configured default.
    pub fn tracer(&self) -> Tracer {
        if self.tracing {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        }
    }

    /// The underlying calibration.
    pub fn profile(&self) -> &PlatformProfile {
        &self.profile
    }
}

/// DES state for one burst.
struct BurstState {
    profile: PlatformProfile,
    tracer: Tracer,
    fleet: Fleet,
    placements: Vec<u32>,
    peak_occupancy: u32,
    work: Arc<crate::WorkProfile>,
    packing_degree: u32,
    /// Per-instance warm-start latencies granted by a `WarmPool`; instances
    /// beyond the list (but under `warm_fraction`) use the legacy constant.
    warm_starts: Vec<f64>,
    /// Cohort-shared interference term: `packed_exec_secs` is a pure
    /// function of (instance shape, workload, degree), all constant within
    /// a burst, so it is computed once here instead of once per attempt.
    base_exec_secs: f64,
    scheduler: FifoResource,
    builder: BandwidthPipe,
    shipper: BandwidthPipe,
    admitted: u64,
    /// Instances the fleet could not place. Admission control sizes bursts
    /// against fleet capacity, so this stays 0; if it ever doesn't, the run
    /// returns `FleetSaturated` instead of panicking mid-simulation.
    place_failures: u32,
    records: Vec<InstanceRecord>,
    ctrl_rng: ChaCha8Rng,
    streams: RngStreams,
    /// Seeded fault draws (lanes independent of `ctrl_rng`/`exec`, so a
    /// fault-free spec replays the historical timeline bit-identically).
    fault_plan: FaultPlan,
    /// Pre-evaluated batch of the burst's fault draws (empty when cohort
    /// batching is off — the accessors are total, so an empty batch just
    /// reads as "no faults anywhere").
    cohort: CohortOutcomes,
    /// Whether the cohort chain fast path is active: batching is on, the
    /// run is untraced, and the cohort's retry demand fits the budget (so
    /// grant order cannot matter and chains replay order-independently).
    cohort_enabled: bool,
    retry: RetryPolicy,
    /// Burst-wide retry budget; consumed in deterministic event order.
    retry_budget_left: u32,
    faults: FaultSummary,
}

/// One pooled DES event of the burst pipeline. Each variant is a stage
/// transition of instance `i`; the engine recycles their slab slots, so a
/// 5000-instance burst allocates a handful of vectors, not tens of
/// thousands of boxed closures.
#[derive(Debug, Clone, Copy)]
enum BurstEvent {
    /// Instance `i` invokes at t = 0 (Step-Functions-style fan-out).
    Invoke { i: u32, warm: bool },
    /// The central scheduler finished its placement search for `i`.
    Placed { i: u32, warm: bool },
    /// The image server finished forming `i`'s container.
    Built { i: u32 },
    /// `i`'s container arrived at its server.
    Shipped { i: u32 },
    /// Boot `attempt` of `i` surfaced its failure (after consuming the
    /// cold-start time).
    ProvisionFailed { i: u32, attempt: u32 },
    /// Reboot `i` after backoff.
    Reprovision { i: u32, attempt: u32 },
    /// Execution attempt `attempt` of `i` begins.
    RunAttempt { i: u32, attempt: u32 },
    /// The running attempt (started at `attempt_start`) completes.
    Finish { i: u32, attempt_start: f64 },
    /// The running attempt (number `attempt`) dies mid-execution.
    Crashed {
        i: u32,
        attempt: u32,
        attempt_start: f64,
    },
}

impl EventState for BurstState {
    type Event = BurstEvent;

    fn handle(sim: &mut Sim<Self>, event: BurstEvent) {
        match event {
            BurstEvent::Invoke { i, warm } => schedule_placement(sim, i, warm),
            BurstEvent::Placed { i, warm } => place_instance(sim, i, warm),
            BurstEvent::Built { i } => container_built(sim, i),
            BurstEvent::Shipped { i } => container_shipped(sim, i),
            BurstEvent::ProvisionFailed { i, attempt } => provision_failed(sim, i, attempt),
            BurstEvent::Reprovision { i, attempt } => provision(sim, i, attempt),
            BurstEvent::RunAttempt { i, attempt } => run_attempt(sim, i, attempt),
            BurstEvent::Finish { i, attempt_start } => finish_attempt(sim, i, attempt_start),
            BurstEvent::Crashed {
                i,
                attempt,
                attempt_start,
            } => crash_attempt(sim, i, attempt, attempt_start),
        }
    }
}

fn pending_record(index: u32) -> InstanceRecord {
    InstanceRecord {
        index,
        scheduled_at: 0.0,
        built_at: 0.0,
        shipped_at: 0.0,
        started_at: 0.0,
        finished_at: 0.0,
        warm: false,
        billed_secs: 0.0,
        failed: false,
    }
}

impl ServerlessPlatform for CloudPlatform {
    fn name(&self) -> String {
        self.profile.provider.name().to_string()
    }

    fn limits(&self) -> InstanceLimits {
        InstanceLimits {
            mem_gb: self.profile.instance.mem_gb,
            cores: self.profile.instance.cores,
            max_exec_secs: self.profile.instance.max_exec_secs,
        }
    }

    fn prices(&self) -> PriceSheet {
        self.profile.prices
    }

    fn placement_secs(&self) -> f64 {
        self.profile.control.sched_base_secs
    }

    fn nominal_exec_secs(&self, work: &crate::WorkProfile, packing_degree: u32) -> f64 {
        packed_exec_secs(&self.profile.instance, work, packing_degree)
    }

    fn run_burst(&self, spec: &BurstSpec) -> Result<RunReport, PlatformError> {
        self.run_burst_with_tracer(spec, Tracer::disabled())
            .map(|(r, _)| r)
    }

    fn default_faults(&self) -> FaultSpec {
        self.profile.default_faults()
    }

    fn run_mixed(
        &self,
        spec: &crate::mixed::MixedBurstSpec,
    ) -> Result<crate::mixed::MixedRunOutcome, PlatformError> {
        // The inherent method (crates/platform/src/mixed.rs) — inherent
        // resolution wins, so this is not a recursive call.
        CloudPlatform::run_mixed(self, spec)
    }
}

impl CloudPlatform {
    /// Run a burst and capture a full lifecycle trace (one [`Tracer`]
    /// event per stage transition of every instance). `run_burst` is this
    /// with tracing disabled.
    pub fn run_burst_traced(&self, spec: &BurstSpec) -> Result<(RunReport, Tracer), PlatformError> {
        self.run_burst_with_tracer(spec, Tracer::enabled())
    }

    /// Run a burst under the platform's *configured* tracing default (see
    /// [`crate::builder::PlatformBuilder::tracing`]): the returned tracer is
    /// populated when tracing is on and empty (zero-allocation) when off.
    /// The report is identical either way — tracing is observation-only.
    pub fn run_burst_observed(
        &self,
        spec: &BurstSpec,
    ) -> Result<(RunReport, Tracer), PlatformError> {
        self.run_burst_with_tracer(spec, self.tracer())
    }

    fn run_burst_with_tracer(
        &self,
        spec: &BurstSpec,
        tracer: Tracer,
    ) -> Result<(RunReport, Tracer), PlatformError> {
        validate(&self.profile, spec)?;

        let n = spec.instances;
        let streams = RngStreams::new(spec.seed);
        let fault_plan = FaultPlan::new(&streams, spec.faults);
        // Warm-pool grants pin the warm count exactly; fraction-driven
        // specs keep the legacy floor arithmetic.
        let warm_count = if spec.warm_starts.is_empty() {
            (spec.warm_fraction * n as f64).floor() as u32
        } else {
            (spec.warm_starts.len() as u32).min(n)
        };
        // Pre-evaluate the cohort's fault draws in bulk. The chain fast
        // path is sound only when every retry the cohort could ask for is
        // guaranteed a grant: then no instance's chain depends on global
        // event interleaving, and per-instance replay is order-free.
        let batching = self.batching && !tracer.is_enabled();
        let cohort = if batching {
            fault_plan.cohort_outcomes(n, warm_count, &spec.retry)
        } else {
            CohortOutcomes::default()
        };
        let cohort_enabled =
            batching && cohort.retry_demand() <= u64::from(spec.retry.retry_budget);
        if cohort_enabled && spec.fluid_min_cohort.is_some_and(|min| n >= min) {
            return self.run_burst_fluid(spec, tracer, &streams, &cohort, warm_count);
        }
        let state = BurstState {
            profile: self.profile,
            tracer,
            fleet: Fleet::new(
                self.profile.control.fleet_servers,
                self.profile.control.fleet_slots,
            ),
            placements: vec![0; n as usize],
            peak_occupancy: 0,
            work: Arc::clone(&spec.workload),
            packing_degree: spec.packing_degree,
            warm_starts: spec.warm_starts.clone(),
            base_exec_secs: packed_exec_secs(
                &self.profile.instance,
                &spec.workload,
                spec.packing_degree,
            ),
            scheduler: FifoResource::new(),
            builder: BandwidthPipe::new(self.profile.control.build_bytes_per_sec),
            shipper: BandwidthPipe::new(self.profile.control.ship_bytes_per_sec),
            admitted: 0,
            place_failures: 0,
            records: (0..n).map(pending_record).collect(),
            ctrl_rng: streams.stream(lanes::CONTROL_PLANE),
            fault_plan,
            cohort,
            cohort_enabled,
            retry: spec.retry,
            retry_budget_left: spec.retry.retry_budget,
            faults: FaultSummary::default(),
            streams,
        };

        let mut sim = Sim::new(state);
        // All invocations arrive at t = 0, enqueued as one batch (instance
        // order is preserved — consecutive sequence numbers).
        sim.schedule_batch(
            SimTime::ZERO,
            (0..n).map(|i| BurstEvent::Invoke {
                i,
                warm: i < warm_count,
            }),
        );
        sim.run();

        let state = sim.into_state();
        if state.place_failures > 0 {
            let capacity =
                self.profile.control.fleet_servers as u64 * self.profile.control.fleet_slots as u64;
            return Err(PlatformError::FleetSaturated {
                requested: n,
                capacity,
            });
        }
        let scaling = breakdown(&state);
        // Billing counts every attempt (crashed partial runs included) but
        // never the backoff gaps — that is what `billed_secs` accumulates.
        let billed_secs: Vec<f64> = state.records.iter().map(|r| r.billed_secs).collect();
        let expense = compute_expense(&self.profile, spec, &billed_secs);

        Ok((
            RunReport {
                platform: self.name(),
                workload: spec.workload.name.clone(),
                instances_requested: n,
                packing_degree: spec.packing_degree,
                instances: state.records,
                scaling,
                expense,
                faults: state.faults,
            },
            state.tracer,
        ))
    }

    /// The fluid fast path: the shared control plane collapses to its
    /// mean-field wave (every `ctrl_rng` jitter replaced by its mean of 1)
    /// and each instance's timeline is computed in one O(n) sweep with no
    /// event heap at all. Fault outcomes and execution draws are the exact
    /// per-instance values the event path would use, so billing and the
    /// survivor set match the exact run up to float rounding; timestamps
    /// are monotone in the suppressed jitter draws, so their relative
    /// error is bounded by the profile's control jitter amplitude.
    ///
    /// Only reachable when the spec opted in ([`BurstSpec::with_fluid`]),
    /// tracing is off, and the cohort's retry demand fits its budget.
    fn run_burst_fluid(
        &self,
        spec: &BurstSpec,
        tracer: Tracer,
        streams: &RngStreams,
        cohort: &CohortOutcomes,
        warm_count: u32,
    ) -> Result<(RunReport, Tracer), PlatformError> {
        let n = spec.instances;
        let ctrl = self.profile.control;
        let exec_jitter = self.profile.instance.exec_jitter;
        let base_exec =
            packed_exec_secs(&self.profile.instance, &spec.workload, spec.packing_degree);
        let cold_secs = ctrl.cold_start_secs + spec.workload.dependency_load_secs;
        let tau_build = ctrl.image_bytes / ctrl.build_bytes_per_sec;
        let max_attempts = spec.retry.max_attempts;
        let mut faults = FaultSummary::default();
        let mut records: Vec<InstanceRecord> = (0..n).map(pending_record).collect();
        // Exact per-instance execution jitters, swept eight stream heads at
        // a time — the same values `stream_indexed(EXEC, i)` would draw.
        let mut exec_jitters: Vec<f64> = Vec::with_capacity(n as usize);
        let mut i = 0u32;
        while i < n {
            let k = (n - i).min(8);
            let indices = [0u32, 1, 2, 3, 4, 5, 6, 7].map(|j| u64::from(i + j.min(k - 1)));
            let heads = streams.head_indexed8(lanes::EXEC, indices);
            for head in heads.iter().take(k as usize) {
                exec_jitters.push(jitter_value(head.f64_draw(0), exec_jitter));
            }
            i += k;
        }
        // Pipe frontiers: when the scheduler / build pipe / ship fabric
        // next falls idle. All arrivals are at t = 0 and the stages are
        // FIFO, so each is a running maximum over instance order.
        let mut sched_done = 0.0f64;
        let mut build_free = 0.0f64;
        let mut ship_free = 0.0f64;
        let mut build_busy = 0.0f64;
        let mut ship_busy = 0.0f64;
        for i in 0..n {
            sched_done += ctrl.sched_base_secs + ctrl.sched_per_inflight_secs * f64::from(i);
            let warm = i < warm_count;
            {
                let rec = &mut records[i as usize];
                rec.scheduled_at = sched_done;
                rec.warm = warm;
            }
            // Control plane: warm containers are already built, shipped and
            // provisioned; cold ones queue through the build and ship pipes
            // and boot (possibly several times) at the mean cold-start.
            let started = if warm {
                let rec = &mut records[i as usize];
                rec.built_at = sched_done;
                rec.shipped_at = sched_done;
                let latency = spec
                    .warm_starts
                    .get(i as usize)
                    .copied()
                    .unwrap_or(crate::warmpool::WARM_START_SECS);
                sched_done + latency
            } else {
                let built = sched_done.max(build_free) + tau_build;
                build_busy += tau_build;
                build_free = built;
                let mut ship_bytes = ctrl.image_bytes;
                if let Some(factor) = cohort.ship_stall(i) {
                    faults.ship_stalls += 1;
                    ship_bytes *= factor;
                }
                let tau_ship = ship_bytes / ctrl.ship_bytes_per_sec;
                let shipped = built.max(ship_free) + tau_ship;
                ship_busy += tau_ship;
                ship_free = shipped;
                let rec = &mut records[i as usize];
                rec.built_at = built;
                rec.shipped_at = shipped;
                let fails = cohort.provision_failures(i);
                faults.provision_failures += u64::from(fails);
                let mut boot_at = shipped;
                if !cohort.provisions(i) {
                    // Terminal provision failure: every boot consumed its
                    // cold-start time, all but the last earned a retry.
                    for attempt in 1..fails {
                        boot_at += cold_secs + spec.retry.backoff_secs(attempt);
                        faults.retries += 1;
                    }
                    let abandoned_at = boot_at + cold_secs;
                    rec.started_at = abandoned_at;
                    rec.finished_at = abandoned_at;
                    rec.failed = true;
                    faults.failed_functions += u64::from(spec.packing_degree);
                    continue;
                }
                for attempt in 1..=fails {
                    boot_at += cold_secs + spec.retry.backoff_secs(attempt);
                    faults.retries += 1;
                }
                boot_at + cold_secs
            };
            // Execution phase: exact per-instance draws, exact crash-chain
            // arithmetic — identical to the cohort chain fast path, just
            // anchored on the fluid control-plane start instant.
            let mut exec = base_exec * exec_jitters[i as usize];
            if let Some(factor) = cohort.straggler(i) {
                faults.stragglers += 1;
                exec *= factor;
            }
            let rec = &mut records[i as usize];
            rec.started_at = started;
            let mut t = started;
            let mut abandoned = false;
            for attempt in 1..=cohort.crash_count(i) {
                let crashed = t + exec * cohort.crash_chain(i)[(attempt - 1) as usize];
                faults.crashes += 1;
                rec.billed_secs += crashed - t;
                if attempt < max_attempts {
                    faults.retries += 1;
                    t = crashed + spec.retry.backoff_secs(attempt);
                } else {
                    rec.finished_at = crashed;
                    rec.failed = true;
                    faults.failed_functions += u64::from(spec.packing_degree);
                    abandoned = true;
                    break;
                }
            }
            if !abandoned {
                let finished = t + exec;
                rec.billed_secs += finished - t;
                rec.finished_at = finished;
            }
        }
        let max_of = |f: fn(&InstanceRecord) -> f64| records.iter().map(f).fold(0.0, f64::max);
        let started_max = max_of(|r| r.started_at);
        let shipped_max = max_of(|r| r.shipped_at);
        let scaling = ScalingBreakdown {
            scheduling_secs: max_of(|r| r.scheduled_at),
            startup_secs: build_busy,
            shipping_secs: ship_busy,
            provisioning_secs: (started_max - shipped_max).max(0.0),
            total_secs: started_max,
        };
        let billed_secs: Vec<f64> = records.iter().map(|r| r.billed_secs).collect();
        let expense = compute_expense(&self.profile, spec, &billed_secs);
        Ok((
            RunReport {
                platform: self.name(),
                workload: spec.workload.name.clone(),
                instances_requested: n,
                packing_degree: spec.packing_degree,
                instances: records,
                scaling,
                expense,
                faults,
            },
            tracer,
        ))
    }
}

fn validate(profile: &PlatformProfile, spec: &BurstSpec) -> Result<(), PlatformError> {
    if spec.instances == 0 || spec.packing_degree == 0 {
        return Err(PlatformError::EmptyBurst);
    }
    let capacity = profile.control.fleet_servers as u64 * profile.control.fleet_slots as u64;
    if spec.instances as u64 > capacity {
        return Err(PlatformError::FleetSaturated {
            requested: spec.instances,
            capacity,
        });
    }
    let needed = spec.packing_degree as f64 * spec.workload.mem_gb;
    if needed > profile.instance.mem_gb + 1e-9 {
        return Err(PlatformError::MemoryLimitExceeded {
            packing_degree: spec.packing_degree,
            mem_gb: spec.workload.mem_gb,
            limit_gb: profile.instance.mem_gb,
        });
    }
    let projected = packed_exec_secs(&profile.instance, &spec.workload, spec.packing_degree)
        * (1.0 + profile.instance.exec_jitter);
    if projected > profile.instance.max_exec_secs {
        return Err(PlatformError::ExecutionTimeout {
            projected_secs: projected,
            limit_secs: profile.instance.max_exec_secs,
        });
    }
    Ok(())
}

/// Stage 1: the central scheduler searches for a placement. Its service
/// time grows with the number of placements already admitted in this burst
/// (occupancy bookkeeping scan) — the quadratic mechanism of Eq. 2.
fn schedule_placement(sim: &mut Sim<BurstState>, i: u32, warm: bool) {
    let now = sim.now();
    let s = sim.state_mut();
    let ctrl = s.profile.control;
    let service = (ctrl.sched_base_secs + ctrl.sched_per_inflight_secs * s.admitted as f64)
        * jitter(&mut s.ctrl_rng, ctrl.jitter);
    s.admitted += 1;
    let (_, done) = s.scheduler.request(now, service);
    s.records[i as usize].warm = warm;
    sim.schedule_event(done, BurstEvent::Placed { i, warm });
}

/// The placement the scheduler's search decided on: a slot on the
/// least-loaded server (capacity was validated at admission, so `place`
/// only fails if that invariant broke — recorded and surfaced after the
/// run rather than aborting the simulation).
fn place_instance(sim: &mut Sim<BurstState>, i: u32, warm: bool) {
    let now = sim.now();
    let at = now.as_secs();
    let s = sim.state_mut();
    let placement = match s.fleet.place_with(warm) {
        Some(p) => p,
        None => {
            s.place_failures += 1;
            s.tracer.record(now, i as u64, "place-failed");
            return;
        }
    };
    s.placements[i as usize] = placement.server;
    s.peak_occupancy = s.peak_occupancy.max(s.fleet.peak_occupancy());
    s.records[i as usize].scheduled_at = at;
    s.tracer.record(now, i as u64, "scheduled");
    if warm {
        // Warm container: already built, shipped, and provisioned —
        // warm starts cannot suffer provision faults. The start latency is
        // the pool's per-instance grant when one exists, otherwise the
        // legacy constant (Pywren-style `warm_fraction` bursts).
        let s = sim.state_mut();
        s.records[i as usize].built_at = at;
        s.records[i as usize].shipped_at = at;
        let latency = s
            .warm_starts
            .get(i as usize)
            .copied()
            .unwrap_or(crate::warmpool::WARM_START_SECS);
        start_execution(sim, i, latency, 1);
    } else {
        build_container(sim, i);
    }
}

/// Stage 2: the image server forms the container (downloads + installs the
/// runtime and dependencies) at finite build bandwidth — linear in the
/// number of containers.
fn build_container(sim: &mut Sim<BurstState>, i: u32) {
    let now = sim.now();
    let s = sim.state_mut();
    let bytes = s.profile.control.image_bytes * jitter(&mut s.ctrl_rng, s.profile.control.jitter);
    let (_, done) = s.builder.transfer(now, bytes);
    sim.schedule_event(done, BurstEvent::Built { i });
}

fn container_built(sim: &mut Sim<BurstState>, i: u32) {
    let now = sim.now();
    let s = sim.state_mut();
    s.records[i as usize].built_at = now.as_secs();
    s.tracer.record(now, i as u64, "built");
    ship_container(sim, i);
}

/// Stage 3: the formed container ships across the fabric to the server the
/// scheduler chose — again bandwidth-bound and linear in count. A stalled
/// transfer (fault lane `fault-ship`) moves its bytes at a fraction of the
/// fabric rate, occupying the shared pipe for longer.
fn ship_container(sim: &mut Sim<BurstState>, i: u32) {
    let now = sim.now();
    let s = sim.state_mut();
    let mut bytes =
        s.profile.control.image_bytes * jitter(&mut s.ctrl_rng, s.profile.control.jitter);
    if let Some(factor) = s.fault_plan.ship_stall(i) {
        s.faults.ship_stalls += 1;
        s.tracer.record(now, i as u64, "ship-stalled");
        bytes *= factor;
    }
    let (_, done) = s.shipper.transfer(now, bytes);
    sim.schedule_event(done, BurstEvent::Shipped { i });
}

fn container_shipped(sim: &mut Sim<BurstState>, i: u32) {
    let now = sim.now();
    let s = sim.state_mut();
    s.records[i as usize].shipped_at = now.as_secs();
    s.tracer.record(now, i as u64, "shipped");
    provision(sim, i, 1);
}

/// Stage 4: cold provisioning — microVM boot plus runtime/dependency
/// initialization (unbilled; parallel across servers, so not a shared
/// resource; warm containers skip it). A boot can fail (fault lane
/// `fault-provision`); a failed boot still consumes its cold-start time,
/// then backs off and reboots until attempts or the burst retry budget run
/// out, at which point the instance abandons its functions.
fn provision(sim: &mut Sim<BurstState>, i: u32, attempt: u32) {
    let s = sim.state_mut();
    let cold = (s.profile.control.cold_start_secs + s.work.dependency_load_secs)
        * jitter(&mut s.ctrl_rng, s.profile.control.jitter);
    if !s.fault_plan.provision_fails(i, attempt) {
        start_execution(sim, i, cold, 1);
        return;
    }
    // The boot fails only after consuming its cold-start time.
    sim.schedule_event_in(cold, BurstEvent::ProvisionFailed { i, attempt });
}

fn provision_failed(sim: &mut Sim<BurstState>, i: u32, attempt: u32) {
    let now = sim.now();
    let s = sim.state_mut();
    s.faults.provision_failures += 1;
    s.tracer.record(now, i as u64, "provision-failed");
    if attempt < s.retry.max_attempts && s.retry_budget_left > 0 {
        s.retry_budget_left -= 1;
        s.faults.retries += 1;
        let backoff = s.retry.backoff_secs(attempt);
        sim.schedule_event_in(
            backoff,
            BurstEvent::Reprovision {
                i,
                attempt: attempt + 1,
            },
        );
    } else {
        abandon(sim, i);
    }
}

/// Stage 5: execution under packing interference. Execution time is
/// independent of how many sibling instances run concurrently (Fig. 5a):
/// each microVM has reserved cores and memory. The sampled duration comes
/// from the per-instance `exec` stream, so every retry re-executes the
/// same work for the same duration; straggler and crash draws come from
/// their own fault lanes.
fn start_execution(sim: &mut Sim<BurstState>, i: u32, provision_secs: f64, attempt: u32) {
    let s = sim.state_mut();
    // Cohort fast path: an instance entering its execution phase touches
    // only per-instance state from here on (the exec draw comes from the
    // instance's own RNG stream, straggler/crash draws are pure functions
    // of the fault lanes, and fleet release order is report-invisible), so
    // its whole crash/retry/finish chain can be computed arithmetically
    // instead of dispatching RunAttempt/Crashed/Finish through the queue —
    // provided the cohort's retry demand fits the budget, which guarantees
    // every retry in the chain is granted regardless of how the event path
    // would have interleaved grants. Traced runs stay on the event path so
    // the tracer observes every transition in chronological order, and a
    // budget-constrained burst falls back to the crash-free-only shortcut
    // (grant order matters there, so crashing chains must run as events).
    if attempt == 1 && !s.tracer.is_enabled() {
        if s.cohort_enabled {
            finish_chain_arithmetically(sim, i, provision_secs);
            return;
        }
        if s.fault_plan.crash_point(i, 1).is_none() {
            finish_arithmetically(sim, i, provision_secs);
            return;
        }
    }
    let started = sim.now() + provision_secs;
    sim.schedule_event(started, BurstEvent::RunAttempt { i, attempt });
}

/// The fast path's arithmetic replay of `RunAttempt` + `Finish` for a
/// crash-free first attempt. Every f64 operation matches the event path
/// exactly: `started = now + provision_secs` (the instant `RunAttempt`
/// would have fired), `finished = started + exec` (the instant `Finish`
/// would have fired), and billing accumulates the same
/// `finished − started` difference of the rounded second values.
fn finish_arithmetically(sim: &mut Sim<BurstState>, i: u32, provision_secs: f64) {
    let started = sim.now() + provision_secs;
    let started_secs = started.as_secs();
    let s = sim.state_mut();
    let exec_head = s.streams.head_indexed(lanes::EXEC, u64::from(i));
    let mut exec =
        s.base_exec_secs * jitter_value(exec_head.f64_draw(0), s.profile.instance.exec_jitter);
    if let Some(factor) = s.fault_plan.straggler(i) {
        s.faults.stragglers += 1;
        exec *= factor;
    }
    let finished = started + exec;
    let finished_secs = finished.as_secs();
    let record = &mut s.records[i as usize];
    record.started_at = started_secs;
    record.finished_at = finished_secs;
    record.billed_secs += finished_secs - started_secs;
    let server = s.placements[i as usize];
    s.fleet.release(server);
}

/// The cohort fast path's arithmetic replay of the *entire* execution
/// phase — attempt 1 through every crash, backoff and retry, to the final
/// finish or abandonment — using the pre-evaluated [`CohortOutcomes`]
/// chain. Each step performs exactly the f64 operations the event path
/// would: attempts fire at `SimTime` instants built by the same
/// `time + delay` additions, billing accumulates the same differences of
/// the same rounded second values, and fault counters advance by the same
/// amounts (order-invisible sums; every retry here is pre-guaranteed a
/// budget grant, so the chronological budget race the event path runs
/// cannot change any decision).
fn finish_chain_arithmetically(sim: &mut Sim<BurstState>, i: u32, provision_secs: f64) {
    let mut t = sim.now() + provision_secs;
    let s = sim.state_mut();
    let started_secs = t.as_secs();
    let exec_head = s.streams.head_indexed(lanes::EXEC, u64::from(i));
    let mut exec =
        s.base_exec_secs * jitter_value(exec_head.f64_draw(0), s.profile.instance.exec_jitter);
    if let Some(factor) = s.cohort.straggler(i) {
        s.faults.stragglers += 1;
        exec *= factor;
    }
    s.records[i as usize].started_at = started_secs;
    for attempt in 1..=s.cohort.crash_count(i) {
        // The attempt dies after completing its drawn fraction; the
        // partial run is billed (the provider metered it).
        let crashed = t + exec * s.cohort.crash_chain(i)[(attempt - 1) as usize];
        s.faults.crashes += 1;
        s.records[i as usize].billed_secs += crashed.as_secs() - t.as_secs();
        if attempt < s.retry.max_attempts {
            s.retry_budget_left -= 1;
            s.faults.retries += 1;
            t = crashed + s.retry.backoff_secs(attempt);
        } else {
            // Out of attempts: abandon at the crash instant, exactly as
            // the event path's `abandon` would.
            let record = &mut s.records[i as usize];
            if record.started_at <= 0.0 {
                record.started_at = crashed.as_secs();
            }
            record.finished_at = crashed.as_secs();
            record.failed = true;
            s.faults.failed_functions += u64::from(s.packing_degree);
            let server = s.placements[i as usize];
            s.fleet.release(server);
            return;
        }
    }
    let finished = t + exec;
    let record = &mut s.records[i as usize];
    record.finished_at = finished.as_secs();
    record.billed_secs += finished.as_secs() - t.as_secs();
    let server = s.placements[i as usize];
    s.fleet.release(server);
}

/// One execution attempt of instance `i`. A crashed attempt bills its
/// partial run, then backs off and re-executes until attempts or the burst
/// retry budget run out.
fn run_attempt(sim: &mut Sim<BurstState>, i: u32, attempt: u32) {
    let now = sim.now();
    let s = sim.state_mut();
    if attempt == 1 {
        s.records[i as usize].started_at = now.as_secs();
        s.tracer.record(now, i as u64, "started");
    }
    let mut exec_rng = s.streams.stream_indexed(lanes::EXEC, i as u64);
    let mut exec = s.base_exec_secs * jitter(&mut exec_rng, s.profile.instance.exec_jitter);
    if let Some(factor) = s.fault_plan.straggler(i) {
        if attempt == 1 {
            s.faults.stragglers += 1;
            s.tracer.record(now, i as u64, "straggler");
        }
        exec *= factor;
    }
    let attempt_start = now.as_secs();
    match s.fault_plan.crash_point(i, attempt) {
        None => {
            sim.schedule_event_in(exec, BurstEvent::Finish { i, attempt_start });
        }
        Some(fraction) => {
            // The instance dies after completing `fraction` of the attempt;
            // the partial run is billed (the provider metered it).
            sim.schedule_event_in(
                exec * fraction,
                BurstEvent::Crashed {
                    i,
                    attempt,
                    attempt_start,
                },
            );
        }
    }
}

fn finish_attempt(sim: &mut Sim<BurstState>, i: u32, attempt_start: f64) {
    let now = sim.now();
    let s = sim.state_mut();
    s.records[i as usize].finished_at = now.as_secs();
    s.records[i as usize].billed_secs += now.as_secs() - attempt_start;
    let server = s.placements[i as usize];
    s.fleet.release(server);
    s.tracer.record(now, i as u64, "finished");
}

fn crash_attempt(sim: &mut Sim<BurstState>, i: u32, attempt: u32, attempt_start: f64) {
    let now = sim.now();
    let s = sim.state_mut();
    s.faults.crashes += 1;
    s.records[i as usize].billed_secs += now.as_secs() - attempt_start;
    s.tracer.record(now, i as u64, "crashed");
    if attempt < s.retry.max_attempts && s.retry_budget_left > 0 {
        s.retry_budget_left -= 1;
        s.faults.retries += 1;
        let backoff = s.retry.backoff_secs(attempt);
        sim.schedule_event_in(
            backoff,
            BurstEvent::RunAttempt {
                i,
                attempt: attempt + 1,
            },
        );
    } else {
        abandon(sim, i);
    }
}

/// Terminal failure: the instance ran out of attempts or the burst ran out
/// of retry budget. Its functions are reported as failed (partial
/// completion) rather than silently completed; partial attempts stay
/// billed, and the slot returns to the fleet.
fn abandon(sim: &mut Sim<BurstState>, i: u32) {
    let now = sim.now();
    let s = sim.state_mut();
    let record = &mut s.records[i as usize];
    if record.started_at <= 0.0 {
        // Provision exhaustion: execution never began, so pin the span to
        // the abandon instant (zero observed execution, zero billing).
        record.started_at = now.as_secs();
    }
    record.finished_at = now.as_secs();
    record.failed = true;
    s.faults.failed_functions += s.packing_degree as u64;
    let server = s.placements[i as usize];
    s.fleet.release(server);
    s.tracer.record(now, i as u64, "abandoned");
}

/// Decompose the scaling time into the paper's Fig. 2 components:
/// per-stage aggregate service times (the stages pipeline, so the
/// end-to-end total is the measured last start, not the component sum).
fn breakdown(state: &BurstState) -> ScalingBreakdown {
    let records = &state.records;
    let max_of = |f: fn(&InstanceRecord) -> f64| records.iter().map(f).fold(0.0, f64::max);
    let sched = max_of(|r| r.scheduled_at);
    let shipped = max_of(|r| r.shipped_at);
    let started = max_of(|r| r.started_at);
    ScalingBreakdown {
        scheduling_secs: sched,
        startup_secs: state.builder.busy_seconds(),
        shipping_secs: state.shipper.busy_seconds(),
        provisioning_secs: (started - shipped).max(0.0),
        total_secs: started,
    }
}

fn compute_expense(profile: &PlatformProfile, spec: &BurstSpec, billed_secs: &[f64]) -> Expense {
    bill_burst(
        &profile.prices,
        &spec.workload,
        profile.instance.mem_gb,
        billed_secs,
        spec.packing_degree,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::work::WorkProfile;
    use propack_stats::percentile::Percentile;

    fn aws() -> CloudPlatform {
        PlatformBuilder::aws().build()
    }

    fn work() -> WorkProfile {
        WorkProfile::synthetic("w", 0.25, 100.0).with_contention(0.2)
    }

    #[test]
    fn burst_produces_consistent_lifecycle() {
        let r = aws()
            .run_burst(&BurstSpec::new(work(), 200, 1).with_seed(3))
            .unwrap();
        assert_eq!(r.instances.len(), 200);
        for rec in &r.instances {
            assert!(rec.scheduled_at >= 0.0);
            assert!(rec.built_at >= rec.scheduled_at);
            assert!(rec.shipped_at >= rec.built_at);
            assert!(rec.started_at >= rec.shipped_at);
            assert!(rec.finished_at > rec.started_at);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = aws()
            .run_burst(&BurstSpec::new(work(), 100, 2).with_seed(9))
            .unwrap();
        let b = aws()
            .run_burst(&BurstSpec::new(work(), 100, 2).with_seed(9))
            .unwrap();
        assert_eq!(a, b);
        let c = aws()
            .run_burst(&BurstSpec::new(work(), 100, 2).with_seed(10))
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn scaling_time_grows_superlinearly_with_concurrency() {
        let p = aws();
        let s500 = p
            .run_burst(&BurstSpec::new(work(), 500, 1))
            .unwrap()
            .scaling_time();
        let s2000 = p
            .run_burst(&BurstSpec::new(work(), 2000, 1))
            .unwrap()
            .scaling_time();
        let s5000 = p
            .run_burst(&BurstSpec::new(work(), 5000, 1))
            .unwrap()
            .scaling_time();
        assert!(
            s2000 > 4.0 * s500,
            "quadratic term should dominate: {s500} {s2000}"
        );
        assert!(s5000 > 2.0 * s2000, "{s2000} {s5000}");
    }

    #[test]
    fn scaling_dominates_service_time_at_high_concurrency() {
        // Fig. 1: > 80 % of service time is scaling at C = 5000.
        let r = aws().run_burst(&BurstSpec::new(work(), 5000, 1)).unwrap();
        assert!(
            r.scaling_fraction() > 0.8,
            "fraction = {}",
            r.scaling_fraction()
        );
    }

    #[test]
    fn exec_time_flat_in_concurrency() {
        // Fig. 5a: mean execution time varies < 5 % from C = 500 to 5000.
        let p = aws();
        let m500 = p
            .run_burst(&BurstSpec::new(work(), 500, 1))
            .unwrap()
            .exec_summary()
            .mean();
        let m5000 = p
            .run_burst(&BurstSpec::new(work(), 5000, 1))
            .unwrap()
            .exec_summary()
            .mean();
        assert!((m500 - m5000).abs() / m500 < 0.05, "{m500} vs {m5000}");
    }

    #[test]
    fn packing_reduces_scaling_time() {
        // Fig. 6: at fixed C, scaling time falls with packing degree.
        let p = aws();
        let c = 2000u32;
        let mut prev = f64::INFINITY;
        for deg in [1u32, 2, 5, 10, 20] {
            let spec = BurstSpec::packed(work(), c, deg);
            let s = p.run_burst(&spec).unwrap().scaling_time();
            assert!(s < prev, "scaling at degree {deg} = {s} not smaller");
            prev = s;
        }
    }

    #[test]
    fn packing_increases_exec_time() {
        let p = aws();
        let e1 = p
            .run_burst(&BurstSpec::new(work(), 50, 1))
            .unwrap()
            .exec_summary()
            .mean();
        let e10 = p
            .run_burst(&BurstSpec::new(work(), 50, 10))
            .unwrap()
            .exec_summary()
            .mean();
        assert!(e10 > e1);
    }

    #[test]
    fn warm_instances_start_faster() {
        let p = aws();
        let cold = p
            .run_burst(&BurstSpec::new(work(), 500, 1).with_seed(4))
            .unwrap();
        let warm = p
            .run_burst(
                &BurstSpec::new(work(), 500, 1)
                    .with_seed(4)
                    .with_warm_fraction(1.0),
            )
            .unwrap();
        assert!(warm.scaling_time() < cold.scaling_time());
        assert!(warm.instances.iter().all(|r| r.warm));
    }

    #[test]
    fn memory_limit_enforced() {
        let heavy = WorkProfile::synthetic("heavy", 3.0, 10.0);
        let err = aws().run_burst(&BurstSpec::new(heavy, 10, 4)).unwrap_err();
        assert!(matches!(err, PlatformError::MemoryLimitExceeded { .. }));
    }

    #[test]
    fn execution_cap_enforced() {
        let slow = WorkProfile::synthetic("slow", 0.25, 800.0).with_contention(0.5);
        // Degree 1 fits under 900 s; degree 10 explodes past it.
        assert!(aws()
            .run_burst(&BurstSpec::new(slow.clone(), 10, 1))
            .is_ok());
        let err = aws().run_burst(&BurstSpec::new(slow, 10, 10)).unwrap_err();
        assert!(matches!(err, PlatformError::ExecutionTimeout { .. }));
    }

    #[test]
    fn empty_burst_rejected() {
        assert!(matches!(
            aws().run_burst(&BurstSpec::new(work(), 0, 1)),
            Err(PlatformError::EmptyBurst)
        ));
        assert!(matches!(
            aws().run_burst(&BurstSpec::new(work(), 10, 0)),
            Err(PlatformError::EmptyBurst)
        ));
    }

    #[test]
    fn service_time_metrics_ordered() {
        let r = aws().run_burst(&BurstSpec::new(work(), 1000, 1)).unwrap();
        let total = r.service_time(Percentile::Total);
        let tail = r.service_time(Percentile::Tail95);
        let med = r.service_time(Percentile::Median);
        assert!(total >= tail && tail >= med && med > 0.0);
    }

    #[test]
    fn expense_independent_of_scaling() {
        // Same exec profile at two very different concurrency levels must
        // bill proportionally to instance count only.
        let p = aws();
        let e500 = p
            .run_burst(&BurstSpec::new(work(), 500, 1))
            .unwrap()
            .expense
            .total_usd();
        let e5000 = p
            .run_burst(&BurstSpec::new(work(), 5000, 1))
            .unwrap()
            .expense
            .total_usd();
        let ratio = e5000 / e500;
        assert!((ratio - 10.0).abs() < 0.2, "ratio = {ratio}");
    }

    #[test]
    fn nominal_exec_matches_instance_model() {
        let p = aws();
        let w = work();
        assert_eq!(
            p.nominal_exec_secs(&w, 7),
            packed_exec_secs(&p.profile().instance, &w, 7)
        );
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::work::WorkProfile;

    fn aws() -> CloudPlatform {
        PlatformBuilder::aws().build()
    }

    fn work() -> WorkProfile {
        WorkProfile::synthetic("w", 0.25, 60.0).with_contention(0.2)
    }

    #[test]
    fn fault_free_spec_reproduces_legacy_timeline() {
        // The fault subsystem must be invisible when disabled: a spec that
        // never mentions faults matches one that explicitly disables them.
        let base = BurstSpec::new(work(), 150, 2).with_seed(11);
        let explicit = base
            .clone()
            .with_faults(FaultSpec::none())
            .with_retry(RetryPolicy::no_retries());
        let a = aws().run_burst(&base).unwrap();
        let b = aws().run_burst(&explicit).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.faults, FaultSummary::default());
        assert!(!a.is_partial());
    }

    #[test]
    fn crashes_are_retried_and_billed() {
        let spec = BurstSpec::packed(work(), 600, 4)
            .with_seed(11)
            .with_faults(FaultSpec::none().with_crash_rate(0.05));
        let clean = aws()
            .run_burst(&BurstSpec::packed(work(), 600, 4).with_seed(11))
            .unwrap();
        let faulted = aws().run_burst(&spec).unwrap();
        assert!(faulted.faults.crashes > 0);
        assert!(faulted.faults.retries > 0);
        // Retries cost real money: crashed partial attempts are billed on
        // top of the eventual successful run.
        assert!(faulted.expense.total_usd() > clean.expense.total_usd());
        assert!(faulted.function_hours() > clean.function_hours());
        // And real time: the retried instances finish later.
        assert!(faulted.total_service_time() > clean.total_service_time());
    }

    #[test]
    fn retry_exhaustion_reports_partial_completion() {
        // Certain crash + no retries: every instance abandons.
        let spec = BurstSpec::packed(work(), 40, 4)
            .with_seed(3)
            .with_faults(FaultSpec::none().with_crash_rate(1.0))
            .with_retry(RetryPolicy::no_retries());
        let r = aws().run_burst(&spec).unwrap();
        assert!(r.is_partial());
        assert_eq!(r.faults.failed_functions, r.total_functions());
        assert_eq!(r.completed_functions(), 0);
        assert_eq!(r.faults.retries, 0);
        assert!(r.instances.iter().all(|i| i.failed));
        // The partial runs are still billed.
        assert!(r.expense.total_usd() > 0.0);
    }

    #[test]
    fn retry_budget_caps_total_retries() {
        let spec = BurstSpec::packed(work(), 400, 4)
            .with_seed(5)
            .with_faults(FaultSpec::none().with_crash_rate(0.9))
            .with_retry(RetryPolicy {
                max_attempts: 10,
                backoff_base_secs: 0.5,
                backoff_cap_secs: 4.0,
                retry_budget: 16,
                max_rounds: 1,
            });
        let r = aws().run_burst(&spec).unwrap();
        assert_eq!(r.faults.retries, 16, "budget must bound retries");
        assert!(r.is_partial());
    }

    #[test]
    fn provision_failures_retry_with_backoff() {
        let spec = BurstSpec::new(work(), 300, 1)
            .with_seed(7)
            .with_faults(FaultSpec::none().with_provision_failure_rate(0.2))
            .with_retry(RetryPolicy {
                // Enough attempts that exhaustion (0.2^9) is implausible.
                max_attempts: 10,
                ..RetryPolicy::default()
            });
        let clean = aws()
            .run_burst(&BurstSpec::new(work(), 300, 1).with_seed(7))
            .unwrap();
        let r = aws().run_burst(&spec).unwrap();
        assert!(r.faults.provision_failures > 0);
        assert!(r.faults.retries > 0);
        // Reboots + backoff push the last start later.
        assert!(r.scaling_time() > clean.scaling_time());
        // Provisioning is never billed, so a successful reboot costs time,
        // not money (same billed seconds as the clean run's instances).
        assert!(!r.is_partial());
    }

    #[test]
    fn ship_stalls_slow_the_fabric() {
        let spec = BurstSpec::new(work(), 500, 1)
            .with_seed(9)
            .with_faults(FaultSpec::none().with_ship_stall(0.05, 8.0));
        let clean = aws()
            .run_burst(&BurstSpec::new(work(), 500, 1).with_seed(9))
            .unwrap();
        let r = aws().run_burst(&spec).unwrap();
        assert!(r.faults.ship_stalls > 0);
        assert!(r.scaling.shipping_secs > clean.scaling.shipping_secs);
    }

    #[test]
    fn stragglers_stretch_the_tail() {
        let spec = BurstSpec::new(work(), 400, 1)
            .with_seed(13)
            .with_faults(FaultSpec::none().with_straggler(0.05, 4.0));
        let clean = aws()
            .run_burst(&BurstSpec::new(work(), 400, 1).with_seed(13))
            .unwrap();
        let r = aws().run_burst(&spec).unwrap();
        assert!(r.faults.stragglers > 0);
        assert!(r.total_service_time() > clean.total_service_time());
        // Stragglers run longer, so they are billed longer.
        assert!(r.function_hours() > clean.function_hours());
    }

    #[test]
    fn faulted_runs_are_deterministic_under_seed() {
        let spec = BurstSpec::packed(work(), 500, 4).with_seed(21).with_faults(
            FaultSpec::none()
                .with_crash_rate(0.03)
                .with_provision_failure_rate(0.02)
                .with_ship_stall(0.02, 4.0)
                .with_straggler(0.02, 3.0),
        );
        let a = aws().run_burst(&spec).unwrap();
        let b = aws().run_burst(&spec).unwrap();
        assert_eq!(a, b);
        let c = aws().run_burst(&spec.clone().with_seed(22)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn warm_instances_skip_provision_faults() {
        // A fully warm burst cannot suffer provision failures or ship
        // stalls — those stages are skipped.
        let spec = BurstSpec::new(work(), 200, 1)
            .with_seed(17)
            .with_warm_fraction(1.0)
            .with_faults(
                FaultSpec::none()
                    .with_provision_failure_rate(1.0)
                    .with_ship_stall(1.0, 10.0),
            );
        let r = aws().run_burst(&spec).unwrap();
        assert_eq!(r.faults.provision_failures, 0);
        assert_eq!(r.faults.ship_stalls, 0);
        assert!(!r.is_partial());
    }

    #[test]
    fn crash_blast_radius_scales_with_packing_degree() {
        // The same abandoned instance takes P functions down with it —
        // the blast-radius concentration that makes faults matter more
        // under packing.
        let faults = FaultSpec::none().with_crash_rate(1.0);
        let no_retry = RetryPolicy::no_retries();
        let packed = aws()
            .run_burst(
                &BurstSpec::packed(work(), 120, 6)
                    .with_seed(2)
                    .with_faults(faults)
                    .with_retry(no_retry),
            )
            .unwrap();
        assert_eq!(packed.faults.failed_functions, 120);
        let unpacked = aws()
            .run_burst(
                &BurstSpec::packed(work(), 120, 1)
                    .with_seed(2)
                    .with_faults(faults)
                    .with_retry(no_retry),
            )
            .unwrap();
        assert_eq!(unpacked.faults.failed_functions, 120);
        assert_eq!(packed.instances.len(), 20);
        assert_eq!(unpacked.instances.len(), 120);
    }

    #[test]
    fn traced_faulted_burst_records_fault_events() {
        let p = PlatformBuilder::aws().build();
        let spec = BurstSpec::packed(work(), 100, 2)
            .with_seed(19)
            .with_faults(FaultSpec::none().with_crash_rate(0.2));
        let (report, trace) = p.run_burst_traced(&spec).unwrap();
        assert_eq!(
            trace.at_stage("crashed").count() as u64,
            report.faults.crashes
        );
        let abandoned = report.instances.iter().filter(|r| r.failed).count();
        assert_eq!(trace.at_stage("abandoned").count(), abandoned);
    }
}

#[cfg(test)]
mod fluid_tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::work::WorkProfile;

    fn aws() -> CloudPlatform {
        PlatformBuilder::aws().build()
    }

    fn work() -> WorkProfile {
        WorkProfile::synthetic("w", 0.25, 60.0).with_contention(0.2)
    }

    fn faulted_spec() -> BurstSpec {
        BurstSpec::packed(work(), 2000, 4)
            .with_seed(23)
            .with_faults(
                FaultSpec::none()
                    .with_crash_rate(0.04)
                    .with_provision_failure_rate(0.03)
                    .with_ship_stall(0.02, 5.0)
                    .with_straggler(0.02, 3.0),
            )
    }

    /// Max relative error of the fluid timeline against the exact one,
    /// over every per-instance timestamp.
    fn max_rel_err(exact: &RunReport, fluid: &RunReport) -> f64 {
        exact
            .instances
            .iter()
            .zip(&fluid.instances)
            .flat_map(|(e, f)| {
                [
                    (e.scheduled_at, f.scheduled_at),
                    (e.started_at, f.started_at),
                    (e.finished_at, f.finished_at),
                ]
            })
            .map(|(e, f)| (e - f).abs() / e)
            .fold(0.0, f64::max)
    }

    #[test]
    fn fluid_error_stays_under_the_jitter_bound() {
        let p = aws();
        let exact = p.run_burst(&faulted_spec()).unwrap();
        let fluid = p.run_burst(&faulted_spec().with_fluid(500)).unwrap();
        // Every timestamp is a monotone function of the suppressed
        // control-plane jitter draws (amplitude `amp`), so the fluid value
        // sits within a factor (1 ± amp) of the exact one — relative to
        // the exact timeline that is amp / (1 − amp).
        let amp = p.profile().control.jitter;
        let bound = amp / (1.0 - amp);
        let err = max_rel_err(&exact, &fluid);
        assert!(err <= bound, "fluid error {err} exceeds bound {bound}");
        assert!(err > 0.0, "fluid must actually approximate");
    }

    #[test]
    fn fluid_preserves_outcomes_and_billing() {
        let p = aws();
        let exact = p.run_burst(&faulted_spec()).unwrap();
        let fluid = p.run_burst(&faulted_spec().with_fluid(1)).unwrap();
        // Fault draws are exact in the fluid path: same counters, same
        // survivor set, same warm split.
        assert_eq!(exact.faults, fluid.faults);
        for (e, f) in exact.instances.iter().zip(&fluid.instances) {
            assert_eq!(e.failed, f.failed);
            assert_eq!(e.warm, f.warm);
            // Billing differences are pure float rounding (the billed spans
            // are the same exec sums anchored at different start instants).
            assert!((e.billed_secs - f.billed_secs).abs() <= 1e-6 * e.billed_secs.max(1.0));
        }
        let (e_usd, f_usd) = (exact.expense.total_usd(), fluid.expense.total_usd());
        assert!((e_usd - f_usd).abs() <= 1e-9 * e_usd.max(1.0));
    }

    #[test]
    fn fluid_is_deterministic_and_gated_by_cohort_size() {
        let p = aws();
        // Below the opt-in threshold the exact path runs: bit-identical to
        // a spec that never mentioned fluid at all.
        let exact = p.run_burst(&faulted_spec()).unwrap();
        let gated = p.run_burst(&faulted_spec().with_fluid(u32::MAX)).unwrap();
        assert_eq!(exact, gated);
        // At or above it, the approximation is itself deterministic.
        let a = p.run_burst(&faulted_spec().with_fluid(100)).unwrap();
        let b = p.run_burst(&faulted_spec().with_fluid(100)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, exact);
    }

    #[test]
    fn traced_runs_never_go_fluid() {
        let p = aws();
        let (exact, _) = p.run_burst_traced(&faulted_spec()).unwrap();
        let (traced, trace) = p.run_burst_traced(&faulted_spec().with_fluid(1)).unwrap();
        assert_eq!(exact, traced);
        assert!(!trace.is_empty());
    }

    #[test]
    fn fluid_covers_warm_and_partial_bursts() {
        // Warm grants, provision exhaustion and crash exhaustion all have
        // fluid equivalents; the report invariants hold on each.
        let p = aws();
        let spec = BurstSpec::packed(work(), 1200, 4)
            .with_seed(31)
            .with_warm_fraction(0.3)
            .with_faults(
                FaultSpec::none()
                    .with_crash_rate(0.6)
                    .with_provision_failure_rate(0.5),
            )
            .with_retry(RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            })
            .with_fluid(1);
        let exact_spec = BurstSpec {
            fluid_min_cohort: None,
            ..spec.clone()
        };
        let exact = p.run_burst(&exact_spec).unwrap();
        let fluid = p.run_burst(&spec).unwrap();
        assert_eq!(exact.faults, fluid.faults);
        assert!(fluid.is_partial());
        for (e, f) in exact.instances.iter().zip(&fluid.instances) {
            assert_eq!(e.failed, f.failed);
            assert!(f.finished_at >= f.started_at);
        }
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::work::WorkProfile;

    #[test]
    fn traced_burst_records_full_lifecycle() {
        let p = PlatformBuilder::aws().build();
        let spec = BurstSpec::new(WorkProfile::synthetic("w", 0.25, 10.0), 20, 1).with_seed(4);
        let (report, trace) = p.run_burst_traced(&spec).unwrap();
        // 5 stages per cold instance.
        assert_eq!(trace.len(), 5 * 20);
        for i in 0..20u64 {
            let stages: Vec<&str> = trace.for_entity(i).map(|e| e.stage).collect();
            assert_eq!(
                stages,
                vec!["scheduled", "built", "shipped", "started", "finished"]
            );
            // Trace timestamps agree with the report's records.
            let rec = &report.instances[i as usize];
            assert_eq!(trace.when(i, "started").unwrap().as_secs(), rec.started_at);
            assert_eq!(
                trace.when(i, "finished").unwrap().as_secs(),
                rec.finished_at
            );
        }
    }

    #[test]
    fn untraced_burst_matches_traced_report() {
        // Tracing must be observation-only: identical timeline either way.
        let p = PlatformBuilder::aws().build();
        let spec = BurstSpec::new(WorkProfile::synthetic("w", 0.25, 10.0), 50, 2).with_seed(6);
        let plain = p.run_burst(&spec).unwrap();
        let (traced, trace) = p.run_burst_traced(&spec).unwrap();
        assert_eq!(plain, traced);
        assert!(!trace.is_empty());
    }

    #[test]
    fn warm_instances_skip_build_and_ship_stages() {
        let p = PlatformBuilder::aws().build();
        let spec = BurstSpec::new(WorkProfile::synthetic("w", 0.25, 10.0), 10, 1)
            .with_seed(8)
            .with_warm_fraction(1.0);
        let (_, trace) = p.run_burst_traced(&spec).unwrap();
        assert_eq!(trace.at_stage("built").count(), 0);
        assert_eq!(trace.at_stage("shipped").count(), 0);
        assert_eq!(trace.at_stage("started").count(), 10);
    }
}

#[cfg(test)]
mod fleet_tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::work::WorkProfile;

    #[test]
    fn oversized_burst_rejected_at_admission() {
        // A fleet of 2000×16 slots admits at most 32 000 concurrent
        // instances; beyond that the platform throttles.
        let p = PlatformBuilder::aws().build();
        let w = WorkProfile::synthetic("w", 0.25, 1.0);
        let err = p.run_burst(&BurstSpec::new(w, 40_000, 1)).unwrap_err();
        assert!(matches!(
            err,
            PlatformError::FleetSaturated {
                capacity: 32_000,
                ..
            }
        ));
    }

    #[test]
    fn small_fleet_saturates_small() {
        let mut profile = PlatformProfile::aws_lambda();
        profile.control.fleet_servers = 10;
        profile.control.fleet_slots = 4;
        let p = CloudPlatform::new(profile);
        let w = WorkProfile::synthetic("w", 0.25, 1.0);
        assert!(p.run_burst(&BurstSpec::new(w.clone(), 40, 1)).is_ok());
        assert!(matches!(
            p.run_burst(&BurstSpec::new(w, 41, 1)),
            Err(PlatformError::FleetSaturated { .. })
        ));
    }

    #[test]
    fn placements_spread_across_the_fleet() {
        // Least-loaded placement keeps per-server occupancy near the
        // theoretical minimum — the isolation that makes Fig. 5a's flat
        // execution time possible.
        let mut profile = PlatformProfile::aws_lambda();
        profile.control.fleet_servers = 100;
        profile.control.fleet_slots = 16;
        let p = CloudPlatform::new(profile);
        let w = WorkProfile::synthetic("w", 0.25, 10.0);
        // 400 instances over 100 servers → peak occupancy should be ~4.
        let report = p
            .run_burst(&BurstSpec::new(w, 400, 1).with_seed(3))
            .unwrap();
        assert_eq!(report.instances.len(), 400);
    }
}
