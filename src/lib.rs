//! Umbrella crate for the ProPack (HPDC '23) reproduction.
//!
//! Re-exports the whole workspace behind stable module names so examples,
//! integration tests, and downstream users can write `use propack_repro::…`
//! without tracking individual crate names.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use propack_baselines as baselines;
pub use propack_executor as executor;
pub use propack_fleet as fleet;
pub use propack_funcx as funcx;
pub use propack_model as propack;
pub use propack_orchestrator as orchestrator;
pub use propack_platform as platform;
pub use propack_replay as replay;
pub use propack_simcore as simcore;
pub use propack_stats as stats;
pub use propack_sweep as sweep;
pub use propack_workflow as workflow;
pub use propack_workloads as workloads;

/// The experiment-facing surface: build a platform, describe a sweep, run
/// it. One import for examples and notebooks-style scripts.
pub mod prelude {
    pub use propack_platform::prelude::*;
    pub use propack_sweep::prelude::*;
}
