//! simlint fixture: uses aliased `HashMap`s in a simulation crate. The v1
//! token scan sees only innocent identifiers (`FastMap`, `SpeedyCache`)
//! and reports nothing; the AST pass joins them against the workspace
//! alias table from `alias_hash_map.rs` (6 violations).

use crate::alias::{FastMap, SpeedyCache};

pub fn index(keys: &[u32]) -> FastMap<u32, u32> {
    let mut m = FastMap::new();
    for (i, &k) in keys.iter().enumerate() {
        m.insert(k, i);
    }
    m
}

pub fn cache() -> SpeedyCache {
    SpeedyCache::default()
}
