//! The curve-model zoo.
//!
//! §2.2 of the paper: *"After attempting several models like linear,
//! quadratic, cubic, exponential, logarithmic, logistic, normal, and
//! sinusoidal, we chose an exponential model and linear model for
//! representing execution time (Eq. 1) and scaling time (Eq. 2),
//! respectively, as they proved to be the best fit for the experimental
//! data."*
//!
//! Every one of those candidates is implemented here behind a common
//! [`CurveFit`] representation, and [`select_best`] reproduces the paper's
//! selection procedure (lowest RMSE wins). The exponential fit is the one
//! ProPack ships with for Eq. 1; the others exist so the ablation bench can
//! demonstrate *why* exponential wins on interference data.

use crate::regression::{linear_fit, polyfit};
use crate::{check_xy, Result, StatsError};

/// Identifies one member of the model zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// `y = a + b·x`
    Linear,
    /// `y = a + b·x + c·x²`
    Quadratic,
    /// `y = a + b·x + c·x² + d·x³`
    Cubic,
    /// `y = A·e^{k·x}` — ProPack's Eq. 1 shape.
    Exponential,
    /// `y = a + b·ln x` (requires x > 0)
    Logarithmic,
    /// `y = L / (1 + e^{−k(x − x₀)})`
    Logistic,
    /// `y = A·exp(−(x − μ)² / (2σ²))` — a Gaussian bump.
    Normal,
    /// `y = a·sin(b·x + c) + d`
    Sinusoidal,
}

impl ModelKind {
    /// All eight candidates, in the order the paper lists them.
    pub const ALL: [ModelKind; 8] = [
        ModelKind::Linear,
        ModelKind::Quadratic,
        ModelKind::Cubic,
        ModelKind::Exponential,
        ModelKind::Logarithmic,
        ModelKind::Logistic,
        ModelKind::Normal,
        ModelKind::Sinusoidal,
    ];

    /// Human-readable name, matching the paper's wording.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Linear => "linear",
            ModelKind::Quadratic => "quadratic",
            ModelKind::Cubic => "cubic",
            ModelKind::Exponential => "exponential",
            ModelKind::Logarithmic => "logarithmic",
            ModelKind::Logistic => "logistic",
            ModelKind::Normal => "normal",
            ModelKind::Sinusoidal => "sinusoidal",
        }
    }
}

/// A fitted curve: the model kind, its parameters, and fit diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveFit {
    /// Which functional form was fitted.
    pub kind: ModelKind,
    /// Model parameters; meaning depends on `kind` (documented per variant
    /// on [`ModelKind`], in the order listed there).
    pub params: Vec<f64>,
    /// Root-mean-square error on the training points.
    pub rmse: f64,
}

impl CurveFit {
    /// Evaluate the fitted curve at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        let p = &self.params;
        match self.kind {
            ModelKind::Linear => p[0] + p[1] * x,
            ModelKind::Quadratic => p[0] + p[1] * x + p[2] * x * x,
            ModelKind::Cubic => p[0] + p[1] * x + p[2] * x * x + p[3] * x * x * x,
            ModelKind::Exponential => p[0] * (p[1] * x).exp(),
            ModelKind::Logarithmic => p[0] + p[1] * x.max(f64::MIN_POSITIVE).ln(),
            ModelKind::Logistic => p[0] / (1.0 + (-p[1] * (x - p[2])).exp()),
            ModelKind::Normal => {
                let z = (x - p[1]) / p[2];
                p[0] * (-0.5 * z * z).exp()
            }
            ModelKind::Sinusoidal => p[0] * (p[1] * x + p[2]).sin() + p[3],
        }
    }
}

fn rmse_of(kind: ModelKind, params: &[f64], xs: &[f64], ys: &[f64]) -> f64 {
    let fit = CurveFit {
        kind,
        params: params.to_vec(),
        rmse: 0.0,
    };
    let ss: f64 = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| (y - fit.eval(x)).powi(2))
        .sum();
    (ss / xs.len() as f64).sqrt()
}

/// Fit one model of the given kind to the data.
///
/// The polynomial family and the log-linearizable families (exponential,
/// logarithmic) use closed-form least squares. Logistic, normal, and
/// sinusoidal use a coarse-to-fine grid search over their nonlinear
/// parameters with closed-form amplitude/offset at each grid point — crude,
/// but these are only here as rejected candidates in the model-selection
/// ablation, and the grid resolution is plenty to show they underfit
/// monotone convex interference data.
pub fn fit(kind: ModelKind, xs: &[f64], ys: &[f64]) -> Result<CurveFit> {
    check_xy(xs, ys)?;
    let params = match kind {
        ModelKind::Linear => {
            let f = polyfit(xs, ys, 1)?;
            f.coeffs
        }
        ModelKind::Quadratic => {
            let f = polyfit(xs, ys, 2)?;
            f.coeffs
        }
        ModelKind::Cubic => {
            let f = polyfit(xs, ys, 3)?;
            f.coeffs
        }
        ModelKind::Exponential => fit_exponential(xs, ys)?,
        ModelKind::Logarithmic => fit_logarithmic(xs, ys)?,
        ModelKind::Logistic => fit_logistic(xs, ys)?,
        ModelKind::Normal => fit_normal(xs, ys)?,
        ModelKind::Sinusoidal => fit_sinusoidal(xs, ys)?,
    };
    let rmse = rmse_of(kind, &params, xs, ys);
    Ok(CurveFit { kind, params, rmse })
}

/// `y = A e^{k x}` by log-linear least squares; requires all y > 0.
fn fit_exponential(xs: &[f64], ys: &[f64]) -> Result<Vec<f64>> {
    let mut log_ys = Vec::with_capacity(ys.len());
    for (i, &y) in ys.iter().enumerate() {
        if y <= 0.0 {
            return Err(StatsError::NonPositiveObservation { index: i, value: y });
        }
        log_ys.push(y.ln());
    }
    let (ln_a, k) = linear_fit(xs, &log_ys)?;
    Ok(vec![ln_a.exp(), k])
}

/// `y = a + b ln x`; requires all x > 0.
fn fit_logarithmic(xs: &[f64], ys: &[f64]) -> Result<Vec<f64>> {
    let mut log_xs = Vec::with_capacity(xs.len());
    for (i, &x) in xs.iter().enumerate() {
        if x <= 0.0 {
            return Err(StatsError::NonPositiveObservation { index: i, value: x });
        }
        log_xs.push(x.ln());
    }
    let (a, b) = linear_fit(&log_xs, ys)?;
    Ok(vec![a, b])
}

/// Grid helper: spread `n` points across `[lo, hi]` inclusive.
fn grid(lo: f64, hi: f64, n: usize) -> impl Iterator<Item = f64> {
    let step = if n > 1 {
        (hi - lo) / (n - 1) as f64
    } else {
        0.0
    };
    (0..n).map(move |i| lo + step * i as f64)
}

/// `y = L / (1 + e^{-k(x-x0)})` via grid search on (k, x0), closed-form L.
fn fit_logistic(xs: &[f64], ys: &[f64]) -> Result<Vec<f64>> {
    if xs.len() < 3 {
        return Err(StatsError::TooFewSamples {
            needed: 3,
            got: xs.len(),
        });
    }
    let (xmin, xmax) = min_max(xs);
    let span = (xmax - xmin).max(1e-9);
    let mut best = (f64::INFINITY, vec![0.0, 0.0, 0.0]);
    for k in grid(0.1 / span, 20.0 / span, 40) {
        for x0 in grid(xmin, xmax, 40) {
            // With k, x0 fixed, the model is linear in L: y = L * s(x).
            let mut num = 0.0;
            let mut den = 0.0;
            for (&x, &y) in xs.iter().zip(ys) {
                let s = 1.0 / (1.0 + (-k * (x - x0)).exp());
                num += s * y;
                den += s * s;
            }
            if den <= 0.0 {
                continue;
            }
            let l = num / den;
            let r = rmse_of(ModelKind::Logistic, &[l, k, x0], xs, ys);
            if r < best.0 {
                best = (r, vec![l, k, x0]);
            }
        }
    }
    Ok(best.1)
}

/// `y = A exp(-(x-mu)^2 / 2 sigma^2)` via coarse-to-fine grid search on
/// (mu, sigma) with closed-form amplitude at each grid point.
fn fit_normal(xs: &[f64], ys: &[f64]) -> Result<Vec<f64>> {
    if xs.len() < 3 {
        return Err(StatsError::TooFewSamples {
            needed: 3,
            got: xs.len(),
        });
    }
    let (xmin, xmax) = min_max(xs);
    let span = (xmax - xmin).max(1e-9);

    let score = |mu: f64, sigma: f64| -> Option<(f64, f64)> {
        let mut num = 0.0;
        let mut den = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let z = (x - mu) / sigma;
            let s = (-0.5 * z * z).exp();
            num += s * y;
            den += s * s;
        }
        if den <= 1e-30 {
            return None;
        }
        let a = num / den;
        Some((rmse_of(ModelKind::Normal, &[a, mu, sigma], xs, ys), a))
    };

    let mut best = (f64::INFINITY, vec![0.0, 0.0, 1.0]);
    let search = |mu_lo: f64, mu_hi: f64, sg_lo: f64, sg_hi: f64, best: &mut (f64, Vec<f64>)| {
        for mu in grid(mu_lo, mu_hi, 40) {
            for sigma in grid(sg_lo.max(span / 200.0), sg_hi, 40) {
                if let Some((r, a)) = score(mu, sigma) {
                    if r < best.0 {
                        *best = (r, vec![a, mu, sigma]);
                    }
                }
            }
        }
    };
    search(
        xmin - 0.5 * span,
        xmax + 0.5 * span,
        span / 20.0,
        2.0 * span,
        &mut best,
    );
    // Refine around the coarse winner with a grid one tenth the pitch.
    let (mu0, sg0) = (best.1[1], best.1[2]);
    let mu_pitch = 2.0 * span / 39.0;
    let sg_pitch = 2.0 * span / 39.0;
    search(
        mu0 - mu_pitch,
        mu0 + mu_pitch,
        sg0 - sg_pitch,
        sg0 + sg_pitch,
        &mut best,
    );
    Ok(best.1)
}

/// `y = a sin(bx + c) + d` via grid search on (b, c), closed-form (a, d).
fn fit_sinusoidal(xs: &[f64], ys: &[f64]) -> Result<Vec<f64>> {
    if xs.len() < 4 {
        return Err(StatsError::TooFewSamples {
            needed: 4,
            got: xs.len(),
        });
    }
    let (xmin, xmax) = min_max(xs);
    let span = (xmax - xmin).max(1e-9);
    let mut best = (f64::INFINITY, vec![0.0, 1.0, 0.0, 0.0]);
    for b in grid(
        std::f64::consts::PI / (4.0 * span),
        8.0 * std::f64::consts::PI / span,
        48,
    ) {
        for c in grid(0.0, 2.0 * std::f64::consts::PI, 24) {
            // Linear least squares in (a, d): y = a*s + d.
            let n = xs.len() as f64;
            let mut ss = 0.0;
            let mut s1 = 0.0;
            let mut sy = 0.0;
            let mut ssy = 0.0;
            for (&x, &y) in xs.iter().zip(ys) {
                let s = (b * x + c).sin();
                ss += s * s;
                s1 += s;
                sy += y;
                ssy += s * y;
            }
            let det = n * ss - s1 * s1;
            if det.abs() < 1e-12 {
                continue;
            }
            let a = (n * ssy - s1 * sy) / det;
            let d = (sy - a * s1) / n;
            let r = rmse_of(ModelKind::Sinusoidal, &[a, b, c, d], xs, ys);
            if r < best.0 {
                best = (r, vec![a, b, c, d]);
            }
        }
    }
    Ok(best.1)
}

fn min_max(xs: &[f64]) -> (f64, f64) {
    xs.iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        })
}

/// Fit every candidate in the zoo and return them sorted by ascending RMSE
/// (best first). Candidates whose preconditions fail on this data (e.g.
/// logarithmic with x = 0) are silently skipped, mirroring how a model
/// search would discard inapplicable forms.
pub fn select_best(xs: &[f64], ys: &[f64]) -> Result<Vec<CurveFit>> {
    check_xy(xs, ys)?;
    let mut fits: Vec<CurveFit> = ModelKind::ALL
        .iter()
        .filter_map(|&k| fit(k, xs, ys).ok())
        .collect();
    if fits.is_empty() {
        return Err(StatsError::TooFewSamples {
            needed: 4,
            got: xs.len(),
        });
    }
    fits.sort_by(|a, b| a.rmse.total_cmp(&b.rmse));
    Ok(fits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_fit_recovers_planted_curve() {
        // ET(P) = 100 * e^{0.05 P} — exactly the Eq. 1 shape used by the
        // platform simulator for the Video workload.
        let xs: Vec<f64> = (1..=20).map(|p| p as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|p| 100.0 * (0.05 * p).exp()).collect();
        let f = fit(ModelKind::Exponential, &xs, &ys).unwrap();
        assert!((f.params[0] - 100.0).abs() < 1e-6);
        assert!((f.params[1] - 0.05).abs() < 1e-9);
        assert!(f.rmse < 1e-6);
    }

    #[test]
    fn exponential_rejects_non_positive() {
        let r = fit(ModelKind::Exponential, &[1.0, 2.0], &[1.0, 0.0]);
        assert!(matches!(r, Err(StatsError::NonPositiveObservation { .. })));
    }

    #[test]
    fn logarithmic_fit_recovers_planted_curve() {
        let xs: Vec<f64> = (1..=30).map(|p| p as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x.ln()).collect();
        let f = fit(ModelKind::Logarithmic, &xs, &ys).unwrap();
        assert!((f.params[0] - 2.0).abs() < 1e-9);
        assert!((f.params[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn logistic_fit_tracks_sigmoid() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 10.0 / (1.0 + (-0.8 * (x - 10.0)).exp()))
            .collect();
        let f = fit(ModelKind::Logistic, &xs, &ys).unwrap();
        // Grid search is coarse; just require a good functional match.
        assert!(f.rmse < 0.2, "rmse = {}", f.rmse);
    }

    #[test]
    fn normal_fit_tracks_gaussian() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.4).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 5.0 * (-0.5 * ((x - 8.0) / 2.0_f64).powi(2)).exp())
            .collect();
        let f = fit(ModelKind::Normal, &xs, &ys).unwrap();
        assert!(f.rmse < 0.1, "rmse = {}", f.rmse);
    }

    #[test]
    fn sinusoidal_fit_tracks_sine() {
        let xs: Vec<f64> = (0..60).map(|i| i as f64 * 0.2).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 2.0 * (1.5 * x + 0.3).sin() + 4.0)
            .collect();
        let f = fit(ModelKind::Sinusoidal, &xs, &ys).unwrap();
        assert!(f.rmse < 0.3, "rmse = {}", f.rmse);
    }

    #[test]
    fn selection_prefers_exponential_on_interference_data() {
        // The paper's headline claim: on execution-time-vs-packing-degree
        // data, exponential is the best fit among the eight candidates.
        // (Cubic can tie on noiseless data, so add the kind of measurement
        // noise real profiling runs have, deterministic for test stability.)
        let xs: Vec<f64> = (1..=20).map(|p| p as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let noise = 1.0 + 0.01 * ((i * 2654435761usize % 7) as f64 - 3.0) / 3.0;
                120.0 * (0.09 * p).exp() * noise
            })
            .collect();
        let ranked = select_best(&xs, &ys).unwrap();
        let top3: Vec<ModelKind> = ranked.iter().take(3).map(|f| f.kind).collect();
        assert!(
            top3.contains(&ModelKind::Exponential),
            "exponential not in top 3: {:?}",
            ranked.iter().map(|f| (f.kind, f.rmse)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn selection_prefers_linear_family_on_linear_data() {
        let xs: Vec<f64> = (0..15).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let ranked = select_best(&xs, &ys).unwrap();
        // Linear, quadratic, and cubic all fit a line exactly; the winner
        // must be one of the polynomial family with ~zero error.
        assert!(ranked[0].rmse < 1e-6);
        assert!(matches!(
            ranked[0].kind,
            ModelKind::Linear | ModelKind::Quadratic | ModelKind::Cubic
        ));
    }

    #[test]
    fn every_kind_has_a_name() {
        for k in ModelKind::ALL {
            assert!(!k.name().is_empty());
        }
    }
}
