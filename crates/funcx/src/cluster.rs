//! The FuncX cluster model: endpoint scheduler → pod spawner (with node-
//! local container cache) → worker slots → execution.

use propack_platform::billing::bill_burst;
use propack_platform::instance::{packed_exec_secs, sampled_exec_secs};
use propack_platform::profile::{PlatformProfile, PriceSheet};
use propack_platform::{
    BurstSpec, FaultSummary, InstanceLimits, InstanceRecord, PlatformError, RunReport,
    ScalingBreakdown, ServerlessPlatform, WorkProfile,
};
use propack_simcore::rng::{jitter, lanes};
use propack_simcore::{
    BandwidthPipe, EventState, FaultPlan, FaultSpec, FifoResource, MultiServer, RetryPolicy,
    RngStreams, Sim, SimTime,
};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Calibration for a FuncX deployment.
///
/// Defaults model the paper's §3 testbed: a 100-node EC2 cluster
/// (r5.2xlarge/r5.4xlarge, 1 000 cores total) running FuncX with Kubernetes
/// pods, sized so the Fig. 18 comparisons against AWS Lambda reproduce.
#[derive(Debug, Clone)]
pub struct FuncXConfig {
    /// Instance shape / isolation / pricing (the `funcx_cluster` preset).
    pub profile: PlatformProfile,
    /// Cluster nodes.
    pub nodes: u32,
    /// Concurrent worker slots per node.
    pub worker_slots_per_node: u32,
    /// Workers co-located per Kubernetes pod (the co-location that gives
    /// FuncX its scaling advantage, per Fig. 18's discussion).
    pub workers_per_pod: u32,
    /// Probability a pod's image pull hits the node-local container cache.
    pub cache_hit_rate: f64,
    /// Pod boot time once its image is present (seconds).
    pub pod_boot_secs: f64,
    /// Per-worker launch cost inside a ready pod (seconds).
    pub worker_launch_secs: f64,
    /// Container-registry bandwidth for cache misses (bytes/s).
    pub registry_bytes_per_sec: f64,
    /// Endpoint scheduler: fixed service per worker placement (seconds).
    pub sched_base_secs: f64,
    /// Endpoint scheduler: incremental service per already-admitted worker.
    pub sched_per_inflight_secs: f64,
}

impl Default for FuncXConfig {
    fn default() -> Self {
        FuncXConfig {
            profile: PlatformProfile::funcx_cluster(),
            nodes: 100,
            worker_slots_per_node: 64,
            workers_per_pod: 4,
            cache_hit_rate: 0.75,
            pod_boot_secs: 0.8,
            worker_launch_secs: 0.03,
            registry_bytes_per_sec: 1.5e9,
            sched_base_secs: 0.17,
            sched_per_inflight_secs: 3.9e-5,
        }
    }
}

/// A FuncX deployment implementing [`ServerlessPlatform`].
#[derive(Debug, Clone, Default)]
pub struct FuncXPlatform {
    config: FuncXConfig,
}

impl FuncXPlatform {
    /// Build a platform from an explicit configuration.
    pub fn new(config: FuncXConfig) -> Self {
        FuncXPlatform { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &FuncXConfig {
        &self.config
    }
}

struct PodState {
    ready_at: Option<SimTime>,
    cache_hit: bool,
}

struct ClusterState {
    config: FuncXConfig,
    work: Arc<WorkProfile>,
    packing_degree: u32,
    endpoint: FifoResource,
    registry: BandwidthPipe,
    slots: MultiServer,
    pods: Vec<PodState>,
    admitted: u64,
    records: Vec<InstanceRecord>,
    ctrl_rng: ChaCha8Rng,
    streams: RngStreams,
    /// Seeded fault draws. The cluster honors the crash and straggler
    /// lanes; provision-failure and ship-stall lanes are cloud-only stages
    /// (no microVM boot, no shipping fabric) and are ignored here.
    fault_plan: FaultPlan,
    retry: RetryPolicy,
    retry_budget_left: u32,
    faults: FaultSummary,
}

/// Pooled DES events of the cluster pipeline (see `propack-simcore`'s
/// typed-event queue). Execution itself needs no events: `claim_slot`
/// resolves the whole attempt sequence arithmetically and writes the
/// start/finish timestamps directly.
#[derive(Debug, Clone, Copy)]
enum WorkerEvent {
    /// Worker `i` invokes at t = 0.
    Invoke { i: u32 },
    /// The endpoint finished placing worker `i`.
    Scheduled { i: u32 },
    /// Worker `i`'s pod is ready; claim a cluster slot.
    ClaimSlot { i: u32 },
}

impl EventState for ClusterState {
    type Event = WorkerEvent;

    fn handle(sim: &mut Sim<Self>, event: WorkerEvent) {
        match event {
            WorkerEvent::Invoke { i } => schedule_worker(sim, i),
            WorkerEvent::Scheduled { i } => worker_scheduled(sim, i),
            WorkerEvent::ClaimSlot { i } => claim_slot(sim, i),
        }
    }
}

impl ServerlessPlatform for FuncXPlatform {
    fn name(&self) -> String {
        self.config.profile.provider.name().to_string()
    }

    fn limits(&self) -> InstanceLimits {
        InstanceLimits {
            mem_gb: self.config.profile.instance.mem_gb,
            cores: self.config.profile.instance.cores,
            max_exec_secs: self.config.profile.instance.max_exec_secs,
        }
    }

    fn prices(&self) -> PriceSheet {
        self.config.profile.prices
    }

    fn nominal_exec_secs(&self, work: &WorkProfile, packing_degree: u32) -> f64 {
        packed_exec_secs(&self.config.profile.instance, work, packing_degree)
    }

    fn default_faults(&self) -> FaultSpec {
        self.config.profile.default_faults()
    }

    fn placement_secs(&self) -> f64 {
        self.config.sched_base_secs
    }

    fn run_burst(&self, spec: &BurstSpec) -> Result<RunReport, PlatformError> {
        let cfg = &self.config;
        if spec.instances == 0 || spec.packing_degree == 0 {
            return Err(PlatformError::EmptyBurst);
        }
        let needed = spec.packing_degree as f64 * spec.workload.mem_gb;
        if needed > cfg.profile.instance.mem_gb + 1e-9 {
            return Err(PlatformError::MemoryLimitExceeded {
                packing_degree: spec.packing_degree,
                mem_gb: spec.workload.mem_gb,
                limit_gb: cfg.profile.instance.mem_gb,
            });
        }

        let n = spec.instances;
        let pod_count = n.div_ceil(cfg.workers_per_pod) as usize;
        let streams = RngStreams::new(spec.seed);
        let mut ctrl_rng = streams.stream(lanes::FUNCX_CONTROL);
        let pods = (0..pod_count)
            .map(|_| PodState {
                ready_at: None,
                cache_hit: ctrl_rng.random::<f64>() < cfg.cache_hit_rate,
            })
            .collect();
        let state = ClusterState {
            config: cfg.clone(),
            work: Arc::clone(&spec.workload),
            packing_degree: spec.packing_degree,
            endpoint: FifoResource::new(),
            registry: BandwidthPipe::new(cfg.registry_bytes_per_sec),
            slots: MultiServer::new((cfg.nodes * cfg.worker_slots_per_node) as usize),
            pods,
            admitted: 0,
            records: (0..n)
                .map(|i| InstanceRecord {
                    index: i,
                    scheduled_at: 0.0,
                    built_at: 0.0,
                    shipped_at: 0.0,
                    started_at: 0.0,
                    finished_at: 0.0,
                    warm: false,
                    billed_secs: 0.0,
                    failed: false,
                })
                .collect(),
            ctrl_rng,
            fault_plan: FaultPlan::new(&streams, spec.faults),
            retry: spec.retry,
            retry_budget_left: spec.retry.retry_budget,
            faults: FaultSummary::default(),
            streams,
        };

        let mut sim = Sim::new(state);
        sim.schedule_batch(SimTime::ZERO, (0..n).map(|i| WorkerEvent::Invoke { i }));
        sim.run();

        let state = sim.into_state();
        let scaling = breakdown(&state);
        // Bill every attempt (crashed partials included), never backoff.
        let billed_secs: Vec<f64> = state.records.iter().map(|r| r.billed_secs).collect();
        let expense = bill_burst(
            &cfg.profile.prices,
            &spec.workload,
            cfg.profile.instance.mem_gb,
            &billed_secs,
            spec.packing_degree,
        );

        Ok(RunReport {
            platform: self.name(),
            workload: spec.workload.name.clone(),
            instances_requested: n,
            packing_degree: spec.packing_degree,
            instances: state.records,
            scaling,
            expense,
            faults: state.faults,
        })
    }
}

/// Stage 1: the FuncX endpoint places the worker. Same occupancy-scan cost
/// model as the cloud scheduler, with cheaper constants (dedicated
/// cluster).
fn schedule_worker(sim: &mut Sim<ClusterState>, i: u32) {
    let now = sim.now();
    let s = sim.state_mut();
    let service = (s.config.sched_base_secs + s.config.sched_per_inflight_secs * s.admitted as f64)
        * jitter(&mut s.ctrl_rng, s.config.profile.control.jitter);
    s.admitted += 1;
    let (_, done) = s.endpoint.request(now, service);
    sim.schedule_event(done, WorkerEvent::Scheduled { i });
}

fn worker_scheduled(sim: &mut Sim<ClusterState>, i: u32) {
    let at = sim.now().as_secs();
    sim.state_mut().records[i as usize].scheduled_at = at;
    join_pod(sim, i);
}

/// Stage 2: the worker joins its pod. The first member to arrive triggers
/// the pod spawn: a cache-missing pod pulls its image through the shared
/// registry link; cache hits (and all boots) are node-local.
fn join_pod(sim: &mut Sim<ClusterState>, i: u32) {
    let now = sim.now();
    let pod_idx = (i / sim.state().config.workers_per_pod) as usize;
    let ready = sim.state().pods[pod_idx].ready_at;
    match ready {
        Some(ready_at) => {
            let at = ready_at.max(now);
            let (pull_done, boot_done) = (at.as_secs(), at.as_secs());
            let s = sim.state_mut();
            s.records[i as usize].built_at = pull_done;
            s.records[i as usize].shipped_at = boot_done;
            s.records[i as usize].warm = s.pods[pod_idx].cache_hit;
            sim.schedule_event(at, WorkerEvent::ClaimSlot { i });
        }
        None => {
            let s = sim.state_mut();
            let hit = s.pods[pod_idx].cache_hit;
            let image = s.config.profile.control.image_bytes;
            let pull_done = if hit {
                now // image already on the node
            } else {
                let (_, done) = s.registry.transfer(now, image);
                done
            };
            let boot =
                s.config.pod_boot_secs * jitter(&mut s.ctrl_rng, s.config.profile.control.jitter);
            let ready_at = pull_done + boot;
            s.pods[pod_idx].ready_at = Some(ready_at);
            s.records[i as usize].built_at = pull_done.as_secs();
            s.records[i as usize].shipped_at = ready_at.as_secs();
            s.records[i as usize].warm = hit;
            sim.schedule_event(ready_at, WorkerEvent::ClaimSlot { i });
        }
    }
}

/// Stage 3: the worker claims a cluster slot and executes. On a saturated
/// cluster, workers queue for slots — the capacity mechanism HTC users see
/// on small deployments.
///
/// Fault handling: crash and straggler draws are pure functions of
/// `(seed, instance, attempt)`, so the whole attempt sequence (crashes,
/// backoffs, the final successful run or abandonment) is resolved up front
/// and the worker holds its slot for the combined span — FuncX retries a
/// failed task on the same worker rather than rescheduling it.
fn claim_slot(sim: &mut Sim<ClusterState>, i: u32) {
    let now = sim.now();
    let s = sim.state_mut();
    let mut exec_rng = s.streams.stream_indexed(lanes::FUNCX_EXEC, i as u64);
    // Cache-miss pods load the runtime dependencies once per worker launch;
    // cached pods have them resident.
    let dep = if s.records[i as usize].warm {
        0.0
    } else {
        s.work.dependency_load_secs
    };
    let launch = s.config.worker_launch_secs + dep;
    let mut exec = sampled_exec_secs(
        &s.config.profile.instance,
        &s.work,
        s.packing_degree,
        &mut exec_rng,
    );
    if let Some(factor) = s.fault_plan.straggler(i) {
        s.faults.stragglers += 1;
        exec *= factor;
    }
    // Resolve the attempt sequence: billed seconds (all attempts, partial
    // crashes included) and slot occupancy (attempts + backoff gaps).
    let mut billed = 0.0;
    let mut occupancy = 0.0;
    let mut attempt = 1u32;
    let failed = loop {
        match s.fault_plan.crash_point(i, attempt) {
            None => {
                billed += exec;
                occupancy += exec;
                break false;
            }
            Some(fraction) => {
                let partial = exec * fraction;
                s.faults.crashes += 1;
                billed += partial;
                occupancy += partial;
                if attempt < s.retry.max_attempts && s.retry_budget_left > 0 {
                    s.retry_budget_left -= 1;
                    s.faults.retries += 1;
                    occupancy += s.retry.backoff_secs(attempt);
                    attempt += 1;
                } else {
                    break true;
                }
            }
        }
    };
    if failed {
        s.faults.failed_functions += s.packing_degree as u64;
    }
    let (_, slot_start, slot_end) = s.slots.request(now, launch + occupancy);
    let started = slot_start + launch;
    s.records[i as usize].billed_secs = billed;
    s.records[i as usize].failed = failed;
    // The start/finish instants are already fully determined (the slot
    // queue resolved them), and nothing downstream observes them during the
    // run — write the rounded timestamps directly instead of dispatching
    // two record-setting events. `as_secs()` at the scheduled instant is
    // exactly what the events would have recorded.
    s.records[i as usize].started_at = started.as_secs();
    s.records[i as usize].finished_at = slot_end.as_secs();
}

fn breakdown(state: &ClusterState) -> ScalingBreakdown {
    let records = &state.records;
    let max_of = |f: fn(&InstanceRecord) -> f64| records.iter().map(f).fold(0.0, f64::max);
    let sched = max_of(|r| r.scheduled_at);
    let shipped = max_of(|r| r.shipped_at);
    let started = max_of(|r| r.started_at);
    ScalingBreakdown {
        scheduling_secs: sched,
        // Start-up: aggregate registry pull time (cache misses only).
        startup_secs: state.registry.busy_seconds(),
        // Kubernetes nodes pull images directly; there is no separate
        // container-shipping stage.
        shipping_secs: 0.0,
        provisioning_secs: (started - shipped).max(0.0),
        total_secs: started,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_platform::PlatformBuilder;

    fn work() -> WorkProfile {
        WorkProfile::synthetic("w", 0.25, 100.0).with_contention(0.2)
    }

    #[test]
    fn burst_lifecycle_consistent() {
        let fx = FuncXPlatform::default();
        let r = fx
            .run_burst(&BurstSpec::new(work(), 500, 1).with_seed(2))
            .unwrap();
        assert_eq!(r.instances.len(), 500);
        for rec in &r.instances {
            assert!(rec.built_at >= 0.0);
            assert!(rec.shipped_at >= rec.built_at);
            assert!(rec.started_at >= rec.shipped_at - 1e-9);
            assert!(rec.finished_at > rec.started_at);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let fx = FuncXPlatform::default();
        let a = fx
            .run_burst(&BurstSpec::new(work(), 300, 2).with_seed(5))
            .unwrap();
        let b = fx
            .run_burst(&BurstSpec::new(work(), 300, 2).with_seed(5))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cache_hits_match_configured_rate() {
        let fx = FuncXPlatform::default();
        let r = fx
            .run_burst(&BurstSpec::new(work(), 4000, 1).with_seed(8))
            .unwrap();
        let hits = r.instances.iter().filter(|i| i.warm).count() as f64;
        let rate = hits / r.instances.len() as f64;
        assert!((rate - 0.75).abs() < 0.05, "cache rate {rate}");
    }

    #[test]
    fn scales_faster_than_lambda_at_5000() {
        // Fig. 18(a): FuncX ~15 % faster scaling at C = 5000.
        let fx = FuncXPlatform::default();
        let aws = PlatformBuilder::aws().build();
        let spec = BurstSpec::new(work(), 5000, 1).with_seed(1);
        let ratio = fx.run_burst(&spec).unwrap().scaling_time()
            / aws.run_burst(&spec).unwrap().scaling_time();
        assert!((0.75..0.95).contains(&ratio), "scaling ratio {ratio}");
    }

    #[test]
    fn packed_execution_slower_than_lambda() {
        // Fig. 18(b) mechanism: weaker pod isolation inflates packed
        // execution; unpacked execution is unaffected.
        let fx = FuncXPlatform::default();
        let aws = PlatformBuilder::aws().build();
        let w = work();
        let ratio = fx.nominal_exec_secs(&w, 10) / aws.nominal_exec_secs(&w, 10);
        assert!((1.25..1.45).contains(&ratio), "packed exec ratio {ratio}");
        assert_eq!(fx.nominal_exec_secs(&w, 1), aws.nominal_exec_secs(&w, 1));
    }

    #[test]
    fn saturated_cluster_queues_workers() {
        // A 2-node × 4-slot cluster running 32 workers must serialize into
        // waves: total service >> one execution.
        let cfg = FuncXConfig {
            nodes: 2,
            worker_slots_per_node: 4,
            ..FuncXConfig::default()
        };
        let fx = FuncXPlatform::new(cfg);
        let short = WorkProfile::synthetic("short", 0.25, 10.0);
        let r = fx
            .run_burst(&BurstSpec::new(short, 32, 1).with_seed(3))
            .unwrap();
        // 32 workers / 8 slots = 4 waves ≈ 40+ s of makespan.
        assert!(r.total_service_time() > 35.0, "{}", r.total_service_time());
    }

    #[test]
    fn no_execution_cap_on_prem() {
        // The 15-minute Lambda cap does not exist on FuncX.
        let slow = WorkProfile::synthetic("slow", 0.25, 2000.0);
        let fx = FuncXPlatform::default();
        assert!(fx.run_burst(&BurstSpec::new(slow, 4, 1)).is_ok());
    }

    #[test]
    fn memory_limit_still_enforced() {
        let heavy = WorkProfile::synthetic("heavy", 3.0, 10.0);
        let fx = FuncXPlatform::default();
        assert!(matches!(
            fx.run_burst(&BurstSpec::new(heavy, 4, 4)),
            Err(PlatformError::MemoryLimitExceeded { .. })
        ));
    }

    #[test]
    fn crash_faults_retry_and_bill_on_cluster() {
        let fx = FuncXPlatform::default();
        let clean = fx
            .run_burst(&BurstSpec::packed(work(), 800, 4).with_seed(6))
            .unwrap();
        let faulted = fx
            .run_burst(
                &BurstSpec::packed(work(), 800, 4)
                    .with_seed(6)
                    .with_faults(FaultSpec::none().with_crash_rate(0.05)),
            )
            .unwrap();
        assert!(faulted.faults.crashes > 0);
        assert!(faulted.faults.retries > 0);
        assert!(faulted.expense.total_usd() > clean.expense.total_usd());
        assert!(faulted.total_service_time() > clean.total_service_time());
        // Replay stability with faults enabled.
        let again = fx
            .run_burst(
                &BurstSpec::packed(work(), 800, 4)
                    .with_seed(6)
                    .with_faults(FaultSpec::none().with_crash_rate(0.05)),
            )
            .unwrap();
        assert_eq!(faulted, again);
    }

    #[test]
    fn cloud_only_fault_lanes_ignored_on_prem() {
        // Provision-failure and ship-stall lanes model microVM boots and a
        // shipping fabric the cluster does not have.
        let fx = FuncXPlatform::default();
        let spec = BurstSpec::new(work(), 200, 1).with_seed(4).with_faults(
            FaultSpec::none()
                .with_provision_failure_rate(1.0)
                .with_ship_stall(1.0, 10.0),
        );
        let r = fx.run_burst(&spec).unwrap();
        assert_eq!(r.faults.provision_failures, 0);
        assert_eq!(r.faults.ship_stalls, 0);
        assert!(!r.is_partial());
        assert_eq!(
            r,
            fx.run_burst(&BurstSpec::new(work(), 200, 1).with_seed(4))
                .unwrap()
        );
    }

    #[test]
    fn packing_reduces_funcx_scaling_time() {
        let fx = FuncXPlatform::default();
        let s1 = fx
            .run_burst(&BurstSpec::packed(work(), 2000, 1))
            .unwrap()
            .scaling_time();
        let s10 = fx
            .run_burst(&BurstSpec::packed(work(), 2000, 10))
            .unwrap()
            .scaling_time();
        assert!(s10 < s1 * 0.3, "packing should slash scaling: {s1} → {s10}");
    }
}
