//! The scaling-time model: Eq. 2 of the paper.
//!
//! `ScalingTime(C_eff) = β₁·C_eff² + β₂·C_eff − β₃` — a second-order
//! polynomial of the effective concurrency level, fitted once per platform
//! by polynomial regression over ~10 probe bursts (§2.2). The crucial
//! empirical fact (Fig. 5b) is that this curve is **application-
//! independent**: the probes spawn trivial functions, and the resulting
//! model applies to every application on that platform.

use crate::ModelError;
use propack_stats::polyfit;
use serde::{Deserialize, Serialize};

/// One probe observation: scaling time of a burst of `concurrency`
/// instances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingSample {
    /// Number of concurrent instances spawned.
    pub concurrency: u32,
    /// Observed scaling time (first provision → last start), seconds.
    pub scaling_secs: f64,
}

/// Fitted Eq. 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingModel {
    /// Quadratic coefficient β₁.
    pub beta1: f64,
    /// Linear coefficient β₂.
    pub beta2: f64,
    /// Constant offset β₃ (the paper writes the model as `… − β₃`).
    pub beta3: f64,
    /// R² of the regression.
    pub r_squared: f64,
}

impl ScalingModel {
    /// Fit the polynomial from probe samples (needs ≥ 3 distinct levels).
    pub fn fit(samples: &[ScalingSample]) -> Result<Self, ModelError> {
        // A quadratic has three coefficients: three samples at the *same*
        // concurrency pin only one point of the curve, so the count that
        // matters is distinct probe levels, not raw sample count.
        let mut levels: Vec<u32> = samples.iter().map(|s| s.concurrency).collect();
        levels.sort_unstable();
        levels.dedup();
        if levels.len() < 3 {
            return Err(ModelError::NotEnoughSamples {
                needed: 3,
                got: levels.len(),
            });
        }
        let xs: Vec<f64> = samples.iter().map(|s| s.concurrency as f64).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.scaling_secs).collect();
        let f = polyfit(&xs, &ys, 2)?;
        Ok(ScalingModel {
            beta1: f.coeffs[2],
            beta2: f.coeffs[1],
            beta3: -f.coeffs[0],
            r_squared: f.r_squared,
        })
    }

    /// Predicted scaling time at effective concurrency `c_eff` (Eq. 2),
    /// clamped at zero (a polynomial extrapolated to tiny bursts can dip
    /// negative; physical scaling time cannot).
    pub fn scaling_secs(&self, c_eff: f64) -> f64 {
        (self.beta1 * c_eff * c_eff + self.beta2 * c_eff - self.beta3).max(0.0)
    }

    /// Predicted time until a `q`-fraction of instances has started.
    ///
    /// The control-plane pipeline serves placements in order, so the time
    /// until the first `q·C_eff` instances are running is the scaling time
    /// of a burst of that size. This is how the model predicts the paper's
    /// tail (q = 0.95) and median (q = 0.5) service-time variants.
    pub fn scaling_secs_quantile(&self, c_eff: f64, q: f64) -> f64 {
        self.scaling_secs(c_eff * q.clamp(0.0, 1.0))
    }

    /// The placement-queue share of Eq. 2: the quadratic scheduler term
    /// `β₁·k²` alone, clamped at zero like the full polynomial.
    ///
    /// Every placement — warm or cold — waits behind the central
    /// scheduler's occupancy scan (the quadratic mechanism of Eq. 2); only
    /// the cold ones then pay the linear build/ship/provision terms and
    /// the `−β₃` offset. Warm-aware predictors charge pooled instances
    /// this share so a large warm head is not modeled as starting in
    /// near-constant time regardless of burst size.
    pub fn queue_secs(&self, k: f64) -> f64 {
        (self.beta1 * k * k).max(0.0)
    }

    /// Queue share of the first `q·k` placements (same order-preserving
    /// argument as [`ScalingModel::scaling_secs_quantile`]).
    pub fn queue_secs_quantile(&self, k: f64, q: f64) -> f64 {
        self.queue_secs(k * q.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples_from_curve(b1: f64, b2: f64, b3: f64, levels: &[u32]) -> Vec<ScalingSample> {
        levels
            .iter()
            .map(|&c| ScalingSample {
                concurrency: c,
                scaling_secs: b1 * (c as f64).powi(2) + b2 * c as f64 - b3,
            })
            .collect()
    }

    #[test]
    fn recovers_planted_coefficients() {
        // The paper's ten-sample probe design.
        let levels: Vec<u32> = (1..=10).map(|i| i * 500).collect();
        let s = samples_from_curve(3.0e-5, 0.04, 5.0, &levels);
        let m = ScalingModel::fit(&s).unwrap();
        assert!((m.beta1 - 3.0e-5).abs() < 1e-9);
        assert!((m.beta2 - 0.04).abs() < 1e-5);
        assert!((m.beta3 - 5.0).abs() < 1e-2);
        assert!(m.r_squared > 0.999_999);
    }

    #[test]
    fn prediction_interpolates_and_extrapolates() {
        let levels: Vec<u32> = (1..=10).map(|i| i * 500).collect();
        let s = samples_from_curve(2.4e-5, 0.05, 2.0, &levels);
        let m = ScalingModel::fit(&s).unwrap();
        for c in [750.0, 2250.0, 6000.0] {
            let want = 2.4e-5 * c * c + 0.05 * c - 2.0;
            assert!((m.scaling_secs(c) - want).abs() / want < 1e-4, "at C = {c}");
        }
    }

    #[test]
    fn negative_extrapolation_clamped() {
        let levels: Vec<u32> = (1..=5).map(|i| i * 1000).collect();
        let s = samples_from_curve(1e-5, 0.01, 50.0, &levels);
        let m = ScalingModel::fit(&s).unwrap();
        assert_eq!(m.scaling_secs(1.0), 0.0);
    }

    #[test]
    fn quantile_prediction_monotone() {
        let levels: Vec<u32> = (1..=10).map(|i| i * 500).collect();
        let s = samples_from_curve(2.4e-5, 0.05, 0.0, &levels);
        let m = ScalingModel::fit(&s).unwrap();
        let med = m.scaling_secs_quantile(4000.0, 0.5);
        let tail = m.scaling_secs_quantile(4000.0, 0.95);
        let total = m.scaling_secs_quantile(4000.0, 1.0);
        assert!(med < tail && tail < total);
        assert_eq!(total, m.scaling_secs(4000.0));
    }

    #[test]
    fn too_few_samples_rejected() {
        let s = samples_from_curve(1e-5, 0.01, 0.0, &[100, 200]);
        assert!(matches!(
            ScalingModel::fit(&s),
            Err(ModelError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn repeated_levels_do_not_count_as_distinct_samples() {
        // Five samples but only two distinct probe levels: a quadratic
        // through them is underdetermined and must be rejected, not fitted.
        let s = samples_from_curve(1e-5, 0.01, 0.0, &[100, 100, 100, 200, 200]);
        assert_eq!(s.len(), 5);
        match ScalingModel::fit(&s) {
            Err(ModelError::NotEnoughSamples { needed, got }) => {
                assert_eq!(needed, 3);
                assert_eq!(got, 2, "got must count distinct levels");
            }
            other => panic!("expected NotEnoughSamples, got {other:?}"),
        }
        // Adding one sample at a *third* level makes the fit well-posed.
        let mut s3 = s;
        s3.extend(samples_from_curve(1e-5, 0.01, 0.0, &[300]));
        assert!(ScalingModel::fit(&s3).is_ok());
    }
}
