//! Simulated time: a strongly-typed wrapper over `f64` seconds.
//!
//! Using a newtype (rather than bare `f64`) keeps wall-clock durations,
//! billing durations, and simulated instants from being mixed accidentally,
//! and gives us a total order (`total_cmp`) so times can live in the event
//! heap without `PartialOrd` pitfalls.

use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in seconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds. Panics (debug) on NaN — a NaN timestamp would
    /// corrupt the event heap's ordering invariants.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// Seconds since simulation start.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Duration from `earlier` to `self` in seconds (may be negative).
    #[inline]
    pub fn since(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, secs: f64) -> SimTime {
        SimTime::from_secs(self.0 + secs)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, secs: f64) {
        *self = *self + secs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    #[inline]
    fn sub(self, other: SimTime) -> f64 {
        self.0 - other.0
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + 1.5;
        assert_eq!(t.as_secs(), 1.5);
        let u = t + 2.5;
        assert_eq!(u - t, 2.5);
        assert_eq!(u.since(SimTime::ZERO), 4.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn add_assign() {
        let mut t = SimTime::ZERO;
        t += 3.0;
        assert_eq!(t.as_secs(), 3.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    #[cfg(debug_assertions)]
    fn nan_panics_in_debug() {
        let _ = SimTime::from_secs(f64::NAN);
    }
}
