//! Grid cells: the unit of work a sweep fans out.

use propack_replay::Controller;

use crate::faults::FaultScenario;
use crate::keepalive::KeepAliveScenario;
use crate::spec::{PackingPolicy, PlatformAxis, ReplayGrid, SweepSpec};

/// The identity of one grid cell, totally ordered.
///
/// The deterministic reduce sorts merged results by this key — never by
/// completion order — which is what makes `--threads N` output
/// byte-identical to `--threads 1`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellKey {
    /// Platform axis label.
    pub platform: String,
    /// Workload name.
    pub workload: String,
    /// Policy axis label.
    pub policy: String,
    /// Concurrency level `C`.
    pub concurrency: u32,
    /// Replication seed.
    pub seed: u64,
    /// Fault-scenario label (after seed in the sort order, so adding the
    /// fault axis appended to pre-fault grid orderings instead of
    /// reshuffling).
    pub faults: String,
    /// Replay-controller label, `off` for classic cells (after `faults` in
    /// the sort order for the same append-only reason).
    pub controller: String,
    /// Keep-alive scenario label, `cold` by default (after `controller` in
    /// the sort order, so adding the axis appended to pre-pool grid
    /// orderings instead of reshuffling).
    pub keepalive: String,
    /// Workflow shape label, empty for classic single-burst cells (last in
    /// the sort order for the same append-only reason).
    pub workflow: String,
}

impl CellKey {
    /// Compact single-string form, used in `BENCH_sweep.json`. The
    /// keep-alive and workflow segments appear only for non-default values,
    /// so pre-existing sweeps keep their compact keys byte-for-byte.
    pub fn compact(&self) -> String {
        let mut key = format!(
            "{}/{}/{}/c{}/s{}/f{}/r{}",
            self.platform,
            self.workload,
            self.policy,
            self.concurrency,
            self.seed,
            self.faults,
            self.controller
        );
        if self.keepalive != "cold" {
            key.push_str(&format!("/k{}", self.keepalive));
        }
        if !self.workflow.is_empty() {
            key.push_str(&format!("/w{}", self.workflow));
        }
        key
    }
}

/// One unit of work: a key plus everything needed to run it.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Sort/merge key.
    pub key: CellKey,
    /// Platform to instantiate.
    pub platform: PlatformAxis,
    /// Workload profile to run.
    pub work: propack_platform::WorkProfile,
    /// Concurrency level.
    pub concurrency: u32,
    /// Packing policy.
    pub policy: PackingPolicy,
    /// Seed for the cell's burst(s).
    pub seed: u64,
    /// Fault scenario to run the cell under.
    pub faults: FaultScenario,
    /// Replay controller, when the cell replays a trace instead of running
    /// one fixed-`C` burst.
    pub controller: Option<Controller>,
    /// The shared replay configuration for controller cells.
    pub replay: Option<ReplayGrid>,
    /// Keep-alive scenario the cell's warm pool runs under.
    pub keepalive: KeepAliveScenario,
    /// Workflow shape (see `propack_workflow::spec::from_shape`), when the
    /// cell replays a DAG workflow instead of running one flat burst.
    pub workflow: Option<String>,
}

/// Simulation results for one cell.
///
/// `wall_ms` is host timing: it is captured for `BENCH_sweep.json` but
/// excluded from the deterministic render and from equality, so identical
/// grids compare equal across runs and thread counts.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Which cell.
    pub key: CellKey,
    /// Packing degree the policy chose (1 for non-packing policies).
    pub packing_degree: u32,
    /// Instances the platform spawned.
    pub instances: u32,
    /// End-to-end service time, seconds (total metric: last completion).
    pub service_secs: f64,
    /// Scaling span, seconds.
    pub scaling_secs: f64,
    /// Bill in USD (for ProPack cells: including profiling overhead).
    pub expense_usd: f64,
    /// Billed compute in function-hours (ProPack: including overhead).
    pub function_hours: f64,
    /// In-burst retries the fault/retry machinery consumed.
    pub retries: u64,
    /// Functions still failed after all retries (partial completion).
    pub failed_functions: u64,
    /// Populated when the platform rejected the cell (the sweep continues;
    /// a rejection is data, e.g. "degree 40 exceeds the memory cap").
    pub error: Option<String>,
    /// Host milliseconds spent simulating this cell (timing only).
    pub wall_ms: f64,
    /// Host milliseconds of `wall_ms` spent fitting (or fetching) the
    /// ProPack model — 0 for non-ProPack policies and for cache hits, which
    /// cost microseconds. Timing only, like `wall_ms`.
    pub fit_ms: f64,
    /// Host milliseconds of `wall_ms` spent running the cell's burst(s)
    /// after model fitting (`wall_ms − fit_ms`). Timing only.
    pub run_ms: f64,
}

impl CellResult {
    /// Whether the cell ran to completion.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// The deterministic fields as one rendered line (fixed precision, no
    /// host timing). The `ka=` and `wf=` columns appear only for non-default
    /// axis values, so pre-existing sweeps render their lines byte-for-byte.
    pub fn render_line(&self) -> String {
        let k = &self.key;
        let mut ka = if k.keepalive == "cold" {
            String::new()
        } else {
            format!("\tka={}", k.keepalive)
        };
        if !k.workflow.is_empty() {
            ka.push_str(&format!("\twf={}", k.workflow));
        }
        match &self.error {
            Some(e) => format!(
                "{}\t{}\t{}\tC={}\tseed={}\tfaults={}\tctl={}{ka}\tERROR: {}",
                k.platform, k.workload, k.policy, k.concurrency, k.seed, k.faults, k.controller, e
            ),
            None => format!(
                "{}\t{}\t{}\tC={}\tseed={}\tfaults={}\tctl={}{ka}\tP={}\tinstances={}\tservice_s={:.3}\tscaling_s={:.3}\texpense_usd={:.6}\tfn_hours={:.6}\tretries={}\tfailed={}",
                k.platform,
                k.workload,
                k.policy,
                k.concurrency,
                k.seed,
                k.faults,
                k.controller,
                self.packing_degree,
                self.instances,
                self.service_secs,
                self.scaling_secs,
                self.expense_usd,
                self.function_hours,
                self.retries,
                self.failed_functions,
            ),
        }
    }
}

/// Expand a spec into its cells, in fixed grid order (platform-major,
/// workflow-minor). Workers may *run* cells in any order; merging
/// sorts by [`CellKey`], so enumeration order never shows in output.
/// An empty controller axis expands to the single `off` value (replay
/// disabled) and an empty workflow axis to the single classic
/// flat-burst cell kind.
pub fn expand(spec: &SweepSpec) -> Vec<Cell> {
    let controllers: Vec<Option<&Controller>> = if spec.controllers.is_empty() {
        vec![None]
    } else {
        spec.controllers.iter().map(Some).collect()
    };
    let workflows: Vec<Option<&String>> = if spec.workflows.is_empty() {
        vec![None]
    } else {
        spec.workflows.iter().map(Some).collect()
    };
    let mut cells = Vec::with_capacity(spec.cell_count());
    for platform in &spec.platforms {
        for work in &spec.workloads {
            for &concurrency in &spec.concurrency {
                for policy in &spec.policies {
                    for &seed in &spec.seeds {
                        for faults in &spec.faults {
                            for controller in &controllers {
                                for keepalive in &spec.keepalive {
                                    for workflow in &workflows {
                                        cells.push(Cell {
                                            key: CellKey {
                                                platform: platform.label(),
                                                workload: work.name.clone(),
                                                policy: policy.label(),
                                                concurrency,
                                                seed,
                                                faults: faults.label.clone(),
                                                controller: controller.map_or_else(
                                                    || "off".to_string(),
                                                    |c| c.label(),
                                                ),
                                                keepalive: keepalive.label.clone(),
                                                workflow: workflow
                                                    .map_or_else(String::new, |w| w.clone()),
                                            },
                                            platform: platform.clone(),
                                            work: work.clone(),
                                            concurrency,
                                            policy: *policy,
                                            seed,
                                            faults: faults.clone(),
                                            controller: controller.cloned(),
                                            replay: controller.and(spec.replay.clone()),
                                            keepalive: keepalive.clone(),
                                            workflow: workflow.cloned(),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_platform::WorkProfile;

    #[test]
    fn expansion_covers_the_grid_once() {
        let spec = SweepSpec::new("x")
            .platforms([PlatformAxis::Aws, PlatformAxis::Google])
            .workloads([WorkProfile::synthetic("w", 0.25, 60.0)])
            .concurrency([100, 200])
            .policies([PackingPolicy::NoPacking, PackingPolicy::Fixed(4)])
            .seeds([1])
            .faults([FaultScenario::none(), FaultScenario::provider_default()]);
        let cells = expand(&spec);
        assert_eq!(cells.len(), spec.cell_count());
        let mut keys: Vec<CellKey> = cells.iter().map(|c| c.key.clone()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), cells.len(), "duplicate cell keys");
    }

    #[test]
    fn keys_order_lexicographically() {
        let a = CellKey {
            platform: "aws".into(),
            workload: "w".into(),
            policy: "no-packing".into(),
            concurrency: 100,
            seed: 2,
            faults: "none".into(),
            controller: "off".into(),
            keepalive: "cold".into(),
            workflow: String::new(),
        };
        let mut b = a.clone();
        b.seed = 1;
        assert!(b < a);
        let mut c = a.clone();
        c.platform = "azure".into();
        assert!(c > a);
        let mut d = a.clone();
        d.faults = "crash=0.01".into();
        assert!(d < a, "fault label sorts after seed");
        let mut e = a.clone();
        e.controller = "fixed-4".into();
        assert!(e < a, "controller label sorts last, after faults");
        let mut f = a.clone();
        f.keepalive = "fixed:60".into();
        assert!(f > a, "keep-alive label sorts after controller");
        let mut g = a.clone();
        g.workflow = "diamond".into();
        assert!(g > a, "workflow label sorts last of all");
        // Default keys keep their legacy compact form; non-defaults append.
        assert_eq!(a.compact(), "aws/w/no-packing/c100/s2/fnone/roff");
        assert_eq!(f.compact(), "aws/w/no-packing/c100/s2/fnone/roff/kfixed:60");
        assert_eq!(g.compact(), "aws/w/no-packing/c100/s2/fnone/roff/wdiamond");
    }

    #[test]
    fn controller_axis_expands_innermost_with_the_shared_grid() {
        use propack_replay::ArrivalTrace;

        let trace = ArrivalTrace::poisson("w", 0.5, 120.0, 7).expect("trace");
        let spec = SweepSpec::new("x")
            .platforms([PlatformAxis::Aws])
            .workloads([WorkProfile::synthetic("w", 0.25, 60.0)])
            .concurrency([100])
            .policies([PackingPolicy::NoPacking])
            .seeds([1, 2])
            .replay(crate::spec::ReplayGrid::new(trace, 60.0))
            .controllers([Controller::Fixed(4), Controller::Oracle]);
        let cells = expand(&spec);
        assert_eq!(cells.len(), 4);
        // Controller is the innermost loop and lands in every key.
        let labels: Vec<&str> = cells.iter().map(|c| c.key.controller.as_str()).collect();
        assert_eq!(labels, vec!["fixed-4", "oracle", "fixed-4", "oracle"]);
        for cell in &cells {
            assert!(cell.controller.is_some());
            let grid = cell.replay.as_ref().expect("replay grid attached");
            assert_eq!(grid.trace.name(), "w");
        }
        // Classic expansion leaves both replay fields unset.
        let classic = expand(
            &SweepSpec::new("y")
                .platforms([PlatformAxis::Aws])
                .workloads([WorkProfile::synthetic("w", 0.25, 60.0)])
                .concurrency([100])
                .policies([PackingPolicy::NoPacking])
                .seeds([1]),
        );
        assert_eq!(classic.len(), 1);
        assert_eq!(classic[0].key.controller, "off");
        assert!(classic[0].controller.is_none() && classic[0].replay.is_none());
        // ... and the workflow axis off means classic flat-burst cells.
        assert_eq!(classic[0].key.workflow, "");
        assert!(classic[0].workflow.is_none());
    }

    #[test]
    fn workflow_axis_expands_innermost() {
        let spec = SweepSpec::new("x")
            .platforms([PlatformAxis::Aws])
            .workloads([WorkProfile::synthetic("w", 0.25, 60.0)])
            .concurrency([100])
            .policies([PackingPolicy::NoPacking])
            .seeds([1, 2])
            .workflows(["task", "diamond"]);
        let cells = expand(&spec);
        assert_eq!(cells.len(), 4);
        let labels: Vec<&str> = cells.iter().map(|c| c.key.workflow.as_str()).collect();
        assert_eq!(labels, vec!["task", "diamond", "task", "diamond"]);
        for cell in &cells {
            assert_eq!(cell.workflow.as_deref(), Some(cell.key.workflow.as_str()));
            assert!(cell.key.compact().contains("/w"));
        }
    }
}
