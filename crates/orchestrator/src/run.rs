//! Workflow execution over a [`ServerlessPlatform`].

use crate::retry::RetriedRun;
use crate::state::{MapPacking, State, Workflow};
use crate::WorkflowError;
use propack_model::cache::ModelCache;
use propack_model::optimizer::Objective;
use propack_model::propack::{ProPackConfig, Propack};
use propack_platform::{
    BurstRequest, FaultSpec, FaultSummary, RetryPolicy, ServerlessPlatform, WorkProfile,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Report for one leaf state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateReport {
    /// State name.
    pub name: String,
    /// Offset from workflow start when the state began (seconds).
    pub start_offset_secs: f64,
    /// Wall duration of the state (seconds).
    pub duration_secs: f64,
    /// Expense of the state (USD).
    pub expense_usd: f64,
    /// Billed compute (function-hours).
    pub function_hours: f64,
    /// Packing degree used (1 for tasks and unpacked maps).
    pub packing_degree: u32,
    /// Instances spawned.
    pub instances: u32,
    /// Retries consumed inside the state's bursts (platform-level attempt
    /// retries summed over all resubmission rounds).
    #[serde(default)]
    pub retries: u64,
    /// Functions still failed after every retry round — nonzero marks a
    /// partially-completed state.
    #[serde(default)]
    pub abandoned_functions: u64,
}

/// Report for a whole workflow execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowReport {
    /// Workflow name.
    pub name: String,
    /// End-to-end wall time (seconds).
    pub total_secs: f64,
    /// Total expense (USD), including any ProPack profiling overhead the
    /// orchestrator incurred to plan Map states.
    pub expense_usd: f64,
    /// Total billed compute (function-hours), including overhead.
    pub function_hours: f64,
    /// Leaf-state reports in execution order.
    pub states: Vec<StateReport>,
    /// Fault and retry counters merged across every burst the workflow ran
    /// (all-zero when faults are disabled).
    #[serde(default)]
    pub faults: FaultSummary,
}

impl WorkflowReport {
    /// Expense of one named state (first match).
    pub fn state(&self, name: &str) -> Option<&StateReport> {
        self.states.iter().find(|s| s.name == name)
    }

    /// True when any state abandoned functions after exhausting retries.
    pub fn is_partial(&self) -> bool {
        self.states.iter().any(|s| s.abandoned_functions > 0)
    }
}

/// Execution context: ProPack models come from a shared [`ModelCache`]
/// (one fit per distinct `(platform, workload, config)` anywhere in the
/// process — §2.2's amortization, generalized beyond a single workflow).
///
/// Profiling overhead is charged once per distinct workload *per
/// execution*, whether the model came from a cold fit or a cache hit: a
/// pre-warmed cache must not change what a workflow reports, only how fast
/// the report is produced.
struct ExecCtx<'a, P: ServerlessPlatform + ?Sized> {
    platform: &'a P,
    seed: u64,
    burst_counter: u64,
    models: &'a ModelCache,
    charged: BTreeSet<String>,
    overhead_usd: f64,
    overhead_hours: f64,
    reports: Vec<StateReport>,
    faults: FaultSpec,
    retry: RetryPolicy,
    fault_totals: FaultSummary,
}

impl<P: ServerlessPlatform + ?Sized> ExecCtx<'_, P> {
    fn next_seed(&mut self) -> u64 {
        self.burst_counter += 1;
        self.seed ^ (self.burst_counter.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn propack_for(&mut self, work: &WorkProfile) -> Result<Arc<Propack>, WorkflowError> {
        let pp = self
            .models
            .fit(self.platform, work, &ProPackConfig::default())
            .map_err(|e| WorkflowError::Planning(e.to_string()))?;
        if self.charged.insert(work.name.clone()) {
            self.overhead_usd += pp.overhead.expense_usd;
            self.overhead_hours += pp.overhead.function_hours;
        }
        Ok(pp)
    }

    /// Run one subtree starting at `offset`; returns its wall duration.
    fn run_state(&mut self, state: &State, offset: f64) -> Result<f64, WorkflowError> {
        match state {
            State::Task { name, work } => {
                let seed = self.next_seed();
                let run: RetriedRun = BurstRequest::new(work.clone(), 1, 1)
                    .with_seed(seed)
                    .with_faults(self.faults)
                    .with_retry(self.retry)
                    .run(self.platform)?
                    .into();
                let duration = run.total_service_secs();
                self.fault_totals.merge(&run.faults());
                self.reports.push(StateReport {
                    name: name.clone(),
                    start_offset_secs: offset,
                    duration_secs: duration,
                    expense_usd: run.expense_usd(),
                    function_hours: run.function_hours(),
                    packing_degree: 1,
                    instances: run.instances(),
                    retries: run.faults().retries,
                    abandoned_functions: run.abandoned_functions,
                });
                Ok(duration)
            }
            State::Map {
                name,
                work,
                concurrency,
                packing,
            } => {
                if *concurrency == 0 {
                    return Err(WorkflowError::EmptyMap {
                        state: name.clone(),
                    });
                }
                let degree = match packing {
                    MapPacking::None => 1,
                    MapPacking::Fixed(p) => (*p).max(1),
                    MapPacking::ProPack { w_s } => {
                        let w_s = *w_s;
                        self.propack_for(work)?
                            .plan(*concurrency, Objective::Joint { w_s })
                            .map_err(|e| WorkflowError::Planning(e.to_string()))?
                            .packing_degree
                    }
                };
                let seed = self.next_seed();
                let run: RetriedRun = BurstRequest::new(work.clone(), *concurrency, degree)
                    .with_seed(seed)
                    .with_faults(self.faults)
                    .with_retry(self.retry)
                    .run(self.platform)?
                    .into();
                let duration = run.total_service_secs();
                self.fault_totals.merge(&run.faults());
                self.reports.push(StateReport {
                    name: name.clone(),
                    start_offset_secs: offset,
                    duration_secs: duration,
                    expense_usd: run.expense_usd(),
                    function_hours: run.function_hours(),
                    packing_degree: degree,
                    instances: run.instances(),
                    retries: run.faults().retries,
                    abandoned_functions: run.abandoned_functions,
                });
                Ok(duration)
            }
            State::Sequence(children) => {
                let mut elapsed = 0.0;
                for child in children {
                    elapsed += self.run_state(child, offset + elapsed)?;
                }
                Ok(elapsed)
            }
            State::Parallel(children) => {
                let mut slowest = 0.0f64;
                for child in children {
                    slowest = slowest.max(self.run_state(child, offset)?);
                }
                Ok(slowest)
            }
        }
    }
}

/// Execute a workflow on a platform.
///
/// ProPack map states profile their workload on first use (the cost is
/// included in the report's expense), then plan analytically. Each call
/// uses a private model cache; use [`execute_with_cache`] to share fits
/// across executions.
pub fn execute<P: ServerlessPlatform + ?Sized>(
    platform: &P,
    workflow: &Workflow,
    seed: u64,
) -> Result<WorkflowReport, WorkflowError> {
    execute_with_cache(platform, workflow, seed, &ModelCache::new())
}

/// Execute a workflow under a runtime fault process: every burst any state
/// launches runs with `faults`/`retry`, failed functions are resubmitted by
/// the orchestrator (up to [`RetryPolicy::max_rounds`] rounds per state),
/// and the report carries the merged fault counters. States that abandon
/// functions are reported, not errors — check
/// [`WorkflowReport::is_partial`].
pub fn execute_faulted<P: ServerlessPlatform + ?Sized>(
    platform: &P,
    workflow: &Workflow,
    seed: u64,
    faults: FaultSpec,
    retry: RetryPolicy,
) -> Result<WorkflowReport, WorkflowError> {
    execute_with_cache_faulted(platform, workflow, seed, &ModelCache::new(), faults, retry)
}

/// Execute a workflow, drawing ProPack fits from (and contributing them
/// to) a shared [`ModelCache`].
///
/// The report is bit-identical to [`execute`]'s regardless of the cache's
/// prior contents: model fits are deterministic, and profiling overhead is
/// charged per workflow, not per fit.
pub fn execute_with_cache<P: ServerlessPlatform + ?Sized>(
    platform: &P,
    workflow: &Workflow,
    seed: u64,
    models: &ModelCache,
) -> Result<WorkflowReport, WorkflowError> {
    execute_with_cache_faulted(
        platform,
        workflow,
        seed,
        models,
        FaultSpec::none(),
        RetryPolicy::no_retries(),
    )
}

/// [`execute_faulted`] with a shared [`ModelCache`].
///
/// Profiling probes stay fault-free — the analytical models describe the
/// healthy platform — so cached fits are shared between faulted and
/// fault-free executions.
pub fn execute_with_cache_faulted<P: ServerlessPlatform + ?Sized>(
    platform: &P,
    workflow: &Workflow,
    seed: u64,
    models: &ModelCache,
    faults: FaultSpec,
    retry: RetryPolicy,
) -> Result<WorkflowReport, WorkflowError> {
    if workflow.root.leaf_count() == 0 {
        return Err(WorkflowError::EmptyWorkflow);
    }
    let mut ctx = ExecCtx {
        platform,
        seed,
        burst_counter: 0,
        models,
        charged: BTreeSet::new(),
        overhead_usd: 0.0,
        overhead_hours: 0.0,
        reports: Vec::new(),
        faults,
        retry,
        fault_totals: FaultSummary::default(),
    };
    let total_secs = ctx.run_state(&workflow.root, 0.0)?;
    let expense_usd = ctx.reports.iter().map(|s| s.expense_usd).sum::<f64>() + ctx.overhead_usd;
    let function_hours =
        ctx.reports.iter().map(|s| s.function_hours).sum::<f64>() + ctx.overhead_hours;
    Ok(WorkflowReport {
        name: workflow.name.clone(),
        total_secs,
        expense_usd,
        function_hours,
        states: ctx.reports,
        faults: ctx.fault_totals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_platform::CloudPlatform;
    use propack_platform::PlatformBuilder;

    fn aws() -> CloudPlatform {
        PlatformBuilder::aws().build()
    }

    fn sorter() -> WorkProfile {
        WorkProfile::synthetic("sorter", 0.64, 100.0)
            .with_contention(0.1406)
            .with_dependency_load(8.0)
    }

    #[test]
    fn sequence_durations_add() {
        let wf = Workflow::new(
            "seq",
            State::Sequence(vec![
                State::Task {
                    name: "a".into(),
                    work: sorter(),
                },
                State::Task {
                    name: "b".into(),
                    work: sorter(),
                },
            ]),
        );
        let r = execute(&aws(), &wf, 1).unwrap();
        assert_eq!(r.states.len(), 2);
        let sum: f64 = r.states.iter().map(|s| s.duration_secs).sum();
        assert!((r.total_secs - sum).abs() < 1e-9);
        assert!(r.states[1].start_offset_secs >= r.states[0].duration_secs);
    }

    #[test]
    fn parallel_joins_on_slowest() {
        let slow = WorkProfile::synthetic("slow", 0.25, 200.0);
        let fast = WorkProfile::synthetic("fast", 0.25, 10.0);
        let wf = Workflow::new(
            "par",
            State::Parallel(vec![
                State::Task {
                    name: "slow".into(),
                    work: slow,
                },
                State::Task {
                    name: "fast".into(),
                    work: fast,
                },
            ]),
        );
        let r = execute(&aws(), &wf, 2).unwrap();
        let slowest = r.states.iter().map(|s| s.duration_secs).fold(0.0, f64::max);
        assert!((r.total_secs - slowest).abs() < 1e-9);
        // Both branches start at the same offset.
        assert_eq!(r.states[0].start_offset_secs, r.states[1].start_offset_secs);
    }

    #[test]
    fn packed_map_reduce_sort_beats_unpacked() {
        // The paper's Sort workflow end-to-end: packing the sort fan-out
        // cuts both turnaround and bill, including coordination stages and
        // profiling overhead.
        let platform = aws();
        let c = 2000;
        let unpacked = execute(
            &platform,
            &Workflow::map_reduce_sort(sorter(), c, MapPacking::None),
            3,
        )
        .unwrap();
        let packed = execute(
            &platform,
            &Workflow::map_reduce_sort(sorter(), c, MapPacking::ProPack { w_s: 0.5 }),
            3,
        )
        .unwrap();
        assert!(packed.total_secs < 0.6 * unpacked.total_secs);
        assert!(packed.expense_usd < 0.7 * unpacked.expense_usd);
        let sort_state = packed.state("sort").unwrap();
        assert!(sort_state.packing_degree > 1);
        assert_eq!(unpacked.state("sort").unwrap().packing_degree, 1);
    }

    #[test]
    fn fixed_packing_respected() {
        let wf = Workflow::video_pipeline(
            WorkProfile::synthetic("enc", 0.25, 50.0).with_contention(0.18),
            500,
            MapPacking::Fixed(5),
        );
        let r = execute(&aws(), &wf, 4).unwrap();
        let map = r.state("encode+classify").unwrap();
        assert_eq!(map.packing_degree, 5);
        assert_eq!(map.instances, 100);
    }

    #[test]
    fn propack_models_cached_per_workload() {
        // Two ProPack maps of the same workload must profile once: the
        // second map adds no overhead, so the report's expense is less than
        // two independent single-map workflows.
        let platform = aws();
        let work = sorter();
        let single = |seed| {
            execute(
                &platform,
                &Workflow::new(
                    "one",
                    State::Map {
                        name: "m".into(),
                        work: work.clone(),
                        concurrency: 500,
                        packing: MapPacking::ProPack { w_s: 0.5 },
                    },
                ),
                seed,
            )
            .unwrap()
        };
        let double = execute(
            &platform,
            &Workflow::new(
                "two",
                State::Sequence(vec![
                    State::Map {
                        name: "m1".into(),
                        work: work.clone(),
                        concurrency: 500,
                        packing: MapPacking::ProPack { w_s: 0.5 },
                    },
                    State::Map {
                        name: "m2".into(),
                        work: work.clone(),
                        concurrency: 500,
                        packing: MapPacking::ProPack { w_s: 0.5 },
                    },
                ]),
            ),
            9,
        )
        .unwrap();
        let two_singles = single(9).expense_usd + single(10).expense_usd;
        assert!(
            double.expense_usd < two_singles * 0.95,
            "double {} vs two singles {}",
            double.expense_usd,
            two_singles
        );
    }

    #[test]
    fn five_distinct_profiles_cost_exactly_five_fits() {
        // `MapPacking::ProPack` must fit through the shared [`ModelCache`],
        // not a private per-state model: the cache keys by workload name, so
        // a workflow fanning five distinct profiles out across ProPack maps
        // pays exactly five fits — and a rerun on the same cache pays zero.
        let platform = aws();
        let maps: Vec<State> = (0..5)
            .map(|i| State::Map {
                name: format!("m{i}"),
                work: WorkProfile::synthetic(&format!("profile-{i}"), 0.5, 40.0 + 10.0 * i as f64)
                    .with_contention(0.12),
                concurrency: 300,
                packing: MapPacking::ProPack { w_s: 0.5 },
            })
            .collect();
        let wf = Workflow::new("fan", State::Parallel(maps));
        let shared = ModelCache::new();
        execute_with_cache(&platform, &wf, 11, &shared).unwrap();
        assert_eq!(shared.misses(), 5, "one fit per distinct profile");
        execute_with_cache(&platform, &wf, 12, &shared).unwrap();
        assert_eq!(shared.misses(), 5, "rerun fits nothing new");
        assert!(shared.hits() >= 5);
    }

    #[test]
    fn prewarmed_cache_does_not_change_the_report() {
        // Bit-identical reports whether the shared cache is cold, warm, or
        // private — the cache may only change how fast results arrive.
        let platform = aws();
        let wf = Workflow::map_reduce_sort(sorter(), 1000, MapPacking::ProPack { w_s: 0.5 });
        let private = execute(&platform, &wf, 7).unwrap();
        let shared = ModelCache::new();
        let cold = execute_with_cache(&platform, &wf, 7, &shared).unwrap();
        assert!(shared.misses() >= 1);
        let warm = execute_with_cache(&platform, &wf, 7, &shared).unwrap();
        assert!(shared.hits() >= 1);
        assert_eq!(private, cold);
        assert_eq!(cold, warm);
    }

    #[test]
    fn faulted_workflow_reports_retries_and_costs_more() {
        let platform = aws();
        let wf = Workflow::map_reduce_sort(sorter(), 800, MapPacking::Fixed(4));
        let clean = execute(&platform, &wf, 5).unwrap();
        let faults = FaultSpec::none().with_crash_rate(0.05);
        let faulted = execute_faulted(&platform, &wf, 5, faults, RetryPolicy::default()).unwrap();
        assert!(faulted.faults.crashes > 0);
        assert!(faulted.faults.retries > 0);
        assert!(faulted.expense_usd > clean.expense_usd);
        assert!(faulted.total_secs > clean.total_secs);
        // Deterministic replay.
        let again = execute_faulted(&platform, &wf, 5, faults, RetryPolicy::default()).unwrap();
        assert_eq!(faulted, again);
        // Fault-free execution through the faulted entry is bit-identical
        // to the plain one.
        let neutral = execute_faulted(
            &platform,
            &wf,
            5,
            FaultSpec::none(),
            RetryPolicy::no_retries(),
        )
        .unwrap();
        assert_eq!(neutral, clean);
    }

    #[test]
    fn exhausted_retries_surface_as_partial_workflow() {
        let platform = aws();
        let wf = Workflow::new(
            "doomed",
            State::Map {
                name: "m".into(),
                work: sorter(),
                concurrency: 100,
                packing: MapPacking::Fixed(4),
            },
        );
        let r = execute_faulted(
            &platform,
            &wf,
            2,
            FaultSpec::none().with_crash_rate(1.0),
            RetryPolicy::no_retries(),
        )
        .unwrap();
        assert!(r.is_partial());
        assert_eq!(r.state("m").unwrap().abandoned_functions, 100);
        // The partial run is still billed.
        assert!(r.expense_usd > 0.0);
    }

    #[test]
    fn empty_map_rejected() {
        let wf = Workflow::new(
            "bad",
            State::Map {
                name: "m".into(),
                work: sorter(),
                concurrency: 0,
                packing: MapPacking::None,
            },
        );
        assert!(matches!(
            execute(&aws(), &wf, 1),
            Err(WorkflowError::EmptyMap { .. })
        ));
    }

    #[test]
    fn memory_violation_propagates() {
        let wf = Workflow::new(
            "bad",
            State::Map {
                name: "m".into(),
                work: WorkProfile::synthetic("heavy", 4.0, 10.0),
                concurrency: 10,
                packing: MapPacking::Fixed(4),
            },
        );
        assert!(matches!(
            execute(&aws(), &wf, 1),
            Err(WorkflowError::Platform(_))
        ));
    }
}
