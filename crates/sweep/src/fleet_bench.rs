//! Host-timing harness for `propack fleet`: timed runs and
//! `BENCH_fleet.json`.
//!
//! Like [`crate::replay_bench`], this lives in the sweep crate because only
//! wall-clock-exempt crates may read `std::time` (the workspace determinism
//! policy): [`propack_fleet::FleetEngine`] takes an injected clock, and
//! [`timed_fleet`] is the one place that injects a real one. The JSON
//! follows the `BENCH_kernel.json` group conventions — hand-rolled (no
//! serde), one group object per line carrying `"policy"` and
//! `"cells_per_sec"` so `cargo xtask benchdiff` can gate on it. A fleet
//! "cell" is one tenant-epoch: the unit of planning + admission + burst
//! work the sharded core fans out.

use std::time::Instant;

use propack_fleet::{FleetEngine, FleetError, FleetReport, TenantSpec};
use propack_model::cache::ModelCache;
use propack_platform::ServerlessPlatform;

use crate::report::{escape_json, json_f64, RunTiming};

/// Run one fleet replay with host timing captured: the report's `fit_ms`
/// and per-epoch `run_ms` fields are real measurements, and the returned
/// [`RunTiming`] covers the whole replay. Simulated results are identical
/// to [`FleetEngine::run`] — the clock feeds timing fields only.
pub fn timed_fleet(
    engine: &FleetEngine,
    platform: &(dyn ServerlessPlatform + Sync),
    tenants: &[TenantSpec],
    models: &ModelCache,
) -> Result<(FleetReport, RunTiming), FleetError> {
    let origin = Instant::now();
    let clock = move || origin.elapsed().as_secs_f64();
    let report = engine.run_with_clock(platform, tenants, models, &clock)?;
    Ok((
        report,
        RunTiming {
            threads: engine.spec().threads,
            wall_secs: origin.elapsed().as_secs_f64(),
        },
    ))
}

/// Tenant-epoch cells in a fleet report (the benchdiff throughput unit).
fn cells(report: &FleetReport) -> u64 {
    report.tenants.len() as u64 * report.epochs.len() as u64
}

/// Compose `BENCH_fleet.json` from the reports of one fleet pass (one
/// report per controller, all over same-shape synthetic fleets) plus the
/// pass timings.
///
/// `runs` follows the `BENCH_sweep.json` warmup convention: the caller
/// runs one untimed warmup pass first and reports only the timed passes
/// here; `timed` must hold the wall time of the pass that produced each
/// report, index-aligned. `outputs_identical` says whether every repeated
/// pass rendered byte-identically (`None` when no repeat pass was made).
pub fn fleet_bench_json(
    reports: &[FleetReport],
    timed: &[RunTiming],
    runs: &[RunTiming],
    outputs_identical: Option<bool>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"fleet\",\n");
    let (platform, epoch_secs, tenants, epochs, seed, capacity) =
        reports
            .first()
            .map_or((String::new(), 0.0, 0usize, 0usize, 0u64, 0u64), |r| {
                (
                    r.platform.clone(),
                    r.epoch_secs,
                    r.tenants.len(),
                    r.epochs.len(),
                    r.seed,
                    r.capacity,
                )
            });
    out.push_str(&format!(
        "  \"platform\": \"{}\",\n",
        escape_json(&platform)
    ));
    out.push_str(&format!("  \"epoch_secs\": {},\n", json_f64(epoch_secs)));
    out.push_str(&format!("  \"tenants\": {tenants},\n"));
    out.push_str(&format!("  \"epochs\": {epochs},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"capacity\": {capacity},\n"));

    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"threads\": {}, \"wall_secs\": {}}}{}\n",
            run.threads,
            json_f64(run.wall_secs),
            comma,
        ));
    }
    out.push_str("  ],\n");
    match outputs_identical {
        Some(b) => out.push_str(&format!("  \"outputs_identical\": {b},\n")),
        None => out.push_str("  \"outputs_identical\": null,\n"),
    }

    out.push_str("  \"groups\": [\n");
    for (i, report) in reports.iter().enumerate() {
        let comma = if i + 1 < reports.len() { "," } else { "" };
        let wall = timed.get(i).map_or(0.0, |t| t.wall_secs);
        let n = cells(report);
        let cells_per_sec = if wall > 0.0 { n as f64 / wall } else { 0.0 };
        out.push_str(&format!(
            "    {{\"policy\": \"fleet-{}\", \"cells\": {}, \"wall_secs\": {}, \"cells_per_sec\": {}, \"invocations\": {}, \"admitted\": {}, \"throttled\": {}, \"distinct_fits\": {}, \"fit_ms\": {}, \"utilization\": {}, \"peak_utilization\": {}, \"cold_start_rate\": {}, \"contention\": {}, \"qos_violations\": {}, \"service_secs\": {}, \"expense_usd\": {}}}{}\n",
            escape_json(&report.controller),
            n,
            json_f64(wall),
            json_f64(cells_per_sec),
            report.total_arrivals(),
            report.total_admitted(),
            report.total_throttled(),
            report.distinct_fits,
            json_f64(report.fit_ms),
            json_f64(report.mean_utilization()),
            json_f64(report.peak_utilization()),
            json_f64(report.cold_start_rate()),
            json_f64(report.contention()),
            report.qos_violations(),
            json_f64(report.total_service_secs()),
            json_f64(report.total_expense_usd()),
            comma,
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_fleet::{synthetic_fleet, FleetSpec, SyntheticFleetConfig};
    use propack_platform::PlatformBuilder;
    use propack_replay::Controller;

    fn small_fleet(controller: &str) -> Vec<TenantSpec> {
        synthetic_fleet(&SyntheticFleetConfig {
            apps: 8,
            daily_invocations: 400.0,
            horizon_secs: 300.0,
            controller: Controller::parse(controller).expect("controller"),
            ..SyntheticFleetConfig::default()
        })
        .expect("fleet generates")
    }

    #[test]
    fn timed_fleet_measures_without_changing_results() {
        let platform = PlatformBuilder::aws().build();
        let tenants = small_fleet("fixed:4");
        let engine = FleetEngine::new(FleetSpec {
            epoch_secs: 100.0,
            ..FleetSpec::default()
        });
        let (timed, timing) =
            timed_fleet(&engine, &platform, &tenants, &ModelCache::new()).expect("timed run");
        let untimed = engine
            .run(&platform, &tenants, &ModelCache::new())
            .expect("untimed run");
        assert_eq!(timed.render(), untimed.render());
        assert!(timing.wall_secs > 0.0);
        assert!(
            timed.epochs.iter().any(|e| e.run_ms > 0.0),
            "real clock reaches the epoch timer"
        );
        assert!(
            untimed.epochs.iter().all(|e| e.run_ms == 0.0),
            "null clock reports zeros"
        );
    }

    #[test]
    fn fleet_bench_json_is_wellformed_enough() {
        let platform = PlatformBuilder::aws().build();
        let engine = FleetEngine::new(FleetSpec {
            epoch_secs: 100.0,
            ..FleetSpec::default()
        });
        let mut reports = Vec::new();
        let mut timed = Vec::new();
        for key in ["fixed:4", "no-packing"] {
            let tenants = small_fleet(key);
            let (report, timing) =
                timed_fleet(&engine, &platform, &tenants, &ModelCache::new()).expect("run");
            reports.push(report);
            timed.push(timing);
        }
        let json = fleet_bench_json(&reports, &timed, &timed, Some(true));
        assert!(json.contains("\"bench\": \"fleet\""));
        assert!(json.contains("\"policy\": \"fleet-fixed-4\""));
        assert!(json.contains("\"policy\": \"fleet-no-packing\""));
        assert!(json.contains("\"cells_per_sec\": "));
        assert!(json.contains("\"outputs_identical\": true"));
        // benchdiff's line-oriented parser must see one group per line.
        let group_lines = json
            .lines()
            .filter(|l| l.contains("\"policy\": ") && l.contains("\"cells_per_sec\": "))
            .count();
        assert_eq!(group_lines, 2);
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }
}
