//! Property-based tests for the FuncX cluster simulator.

use propack_funcx::{FuncXConfig, FuncXPlatform};
use propack_platform::{BurstSpec, ServerlessPlatform, WorkProfile};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = (WorkProfile, u32, u32, u64)> {
    (
        0.1f64..1.0,
        5.0f64..60.0,
        1u32..=300,
        1u32..=8,
        any::<u64>(),
    )
        .prop_map(|(mem, base, inst, deg, seed)| {
            let work = WorkProfile::synthetic("prop", mem, base).with_contention(0.05);
            let deg = deg.min(work.max_packing_degree(10.0));
            (work, inst, deg, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Worker lifecycles are ordered and complete for any burst.
    #[test]
    fn lifecycle_ordered((work, inst, deg, seed) in spec_strategy()) {
        let fx = FuncXPlatform::default();
        let r = fx.run_burst(&BurstSpec::new(work, inst, deg).with_seed(seed)).unwrap();
        prop_assert_eq!(r.instances.len(), inst as usize);
        for rec in &r.instances {
            prop_assert!(rec.shipped_at >= rec.built_at);
            prop_assert!(rec.started_at >= rec.shipped_at - 1e-9);
            prop_assert!(rec.finished_at > rec.started_at);
        }
    }

    /// Deterministic under the seed.
    #[test]
    fn deterministic((work, inst, deg, seed) in spec_strategy()) {
        let fx = FuncXPlatform::default();
        let spec = BurstSpec::new(work, inst, deg).with_seed(seed);
        prop_assert_eq!(fx.run_burst(&spec).unwrap(), fx.run_burst(&spec).unwrap());
    }

    /// Workers never exceed the cluster's slot capacity at any instant.
    #[test]
    fn slot_capacity_respected(
        nodes in 1u32..4,
        slots in 1u32..4,
        workers in 1u32..60,
        seed in any::<u64>(),
    ) {
        let fx = FuncXPlatform::new(FuncXConfig {
            nodes,
            worker_slots_per_node: slots,
            ..FuncXConfig::default()
        });
        let work = WorkProfile::synthetic("w", 0.25, 10.0);
        let r = fx.run_burst(&BurstSpec::new(work, workers, 1).with_seed(seed)).unwrap();
        let cap = (nodes * slots) as usize;
        // Count overlap of execution intervals at every start point.
        let intervals: Vec<(f64, f64)> =
            r.instances.iter().map(|i| (i.started_at, i.finished_at)).collect();
        for &(t, _) in &intervals {
            let live = intervals.iter().filter(|&&(s, e)| s <= t + 1e-9 && t < e - 1e-9).count();
            prop_assert!(live <= cap, "{live} > {cap} concurrent workers");
        }
    }

    /// Cache hit rate concentrates near the configured probability for
    /// large bursts.
    #[test]
    fn cache_rate_concentrates(rate in 0.1f64..0.9, seed in any::<u64>()) {
        let fx = FuncXPlatform::new(FuncXConfig {
            cache_hit_rate: rate,
            ..FuncXConfig::default()
        });
        let work = WorkProfile::synthetic("w", 0.25, 5.0);
        let r = fx.run_burst(&BurstSpec::new(work, 2000, 1).with_seed(seed)).unwrap();
        let hits = r.instances.iter().filter(|i| i.warm).count() as f64 / 2000.0;
        prop_assert!((hits - rate).abs() < 0.08, "hit rate {hits} vs configured {rate}");
    }
}
