//! Workflow definitions: a Step-Functions-like state language.

use propack_platform::WorkProfile;
use serde::{Deserialize, Serialize};

/// How a `Map` state's fan-out is packed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MapPacking {
    /// Traditional spawning: one function per instance (the baseline).
    None,
    /// A fixed packing degree chosen by the user.
    Fixed(u32),
    /// Let ProPack pick the degree: the orchestrator consults a pre-built
    /// ProPack model for this workload (joint objective, weight `w_s`).
    ProPack {
        /// Service-time weight (`0.5` = the paper's default joint split).
        w_s: f64,
    },
}

/// One state of a workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum State {
    /// A single function invocation.
    Task {
        /// State name (reports key off it).
        name: String,
        /// The function to run.
        work: WorkProfile,
    },
    /// Dynamic parallelism: `concurrency` invocations of `work`.
    Map {
        /// State name.
        name: String,
        /// The function each branch runs.
        work: WorkProfile,
        /// Number of parallel invocations requested.
        concurrency: u32,
        /// Packing policy for the fan-out.
        packing: MapPacking,
    },
    /// Children execute in order; each starts when the previous completes.
    Sequence(Vec<State>),
    /// Children execute concurrently; the state completes with the slowest
    /// branch.
    Parallel(Vec<State>),
}

impl State {
    /// Number of leaf (Task/Map) states in this subtree.
    pub fn leaf_count(&self) -> usize {
        match self {
            State::Task { .. } | State::Map { .. } => 1,
            State::Sequence(children) | State::Parallel(children) => {
                children.iter().map(State::leaf_count).sum()
            }
        }
    }

    /// Total function invocations this subtree will issue.
    pub fn total_functions(&self) -> u64 {
        match self {
            State::Task { .. } => 1,
            State::Map { concurrency, .. } => *concurrency as u64,
            State::Sequence(children) | State::Parallel(children) => {
                children.iter().map(State::total_functions).sum()
            }
        }
    }
}

/// A named workflow: one root state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    /// Workflow name.
    pub name: String,
    /// Root state.
    pub root: State,
}

impl Workflow {
    /// Build a workflow.
    pub fn new(name: impl Into<String>, root: State) -> Self {
        Workflow {
            name: name.into(),
            root,
        }
    }

    /// The paper's Sort benchmark as a workflow: a mapper task partitions
    /// the input, `concurrency` sorter functions run in parallel, and a
    /// reducer merges to shared storage (§3's Map Reduce Sort).
    pub fn map_reduce_sort(work: WorkProfile, concurrency: u32, packing: MapPacking) -> Self {
        // The mapper and reducer are light coordination functions compared
        // to the sorters.
        let coordinator = WorkProfile::synthetic("sort-coordinator", 0.5, 15.0)
            .with_storage(0.1, 6)
            .with_dependency_load(work.dependency_load_secs);
        Workflow::new(
            "map-reduce-sort",
            State::Sequence(vec![
                State::Task {
                    name: "map".into(),
                    work: coordinator.clone(),
                },
                State::Map {
                    name: "sort".into(),
                    work,
                    concurrency,
                    packing,
                },
                State::Task {
                    name: "reduce".into(),
                    work: coordinator,
                },
            ]),
        )
    }

    /// The paper's Video benchmark as a workflow: chunker → parallel
    /// encode/classify fan-out → manifest aggregation.
    pub fn video_pipeline(work: WorkProfile, concurrency: u32, packing: MapPacking) -> Self {
        let chunker = WorkProfile::synthetic("chunker", 0.3, 10.0)
            .with_storage(0.06, 4)
            .with_dependency_load(2.0);
        Workflow::new(
            "video-pipeline",
            State::Sequence(vec![
                State::Task {
                    name: "chunk".into(),
                    work: chunker.clone(),
                },
                State::Map {
                    name: "encode+classify".into(),
                    work,
                    concurrency,
                    packing,
                },
                State::Task {
                    name: "aggregate".into(),
                    work: chunker,
                },
            ]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> WorkProfile {
        WorkProfile::synthetic("w", 0.25, 50.0)
    }

    #[test]
    fn leaf_and_function_counts() {
        let wf = Workflow::map_reduce_sort(w(), 1000, MapPacking::None);
        assert_eq!(wf.root.leaf_count(), 3);
        assert_eq!(wf.root.total_functions(), 1002);
    }

    #[test]
    fn nested_counts() {
        let s = State::Parallel(vec![
            State::Task {
                name: "a".into(),
                work: w(),
            },
            State::Sequence(vec![
                State::Task {
                    name: "b".into(),
                    work: w(),
                },
                State::Map {
                    name: "m".into(),
                    work: w(),
                    concurrency: 7,
                    packing: MapPacking::None,
                },
            ]),
        ]);
        assert_eq!(s.leaf_count(), 3);
        assert_eq!(s.total_functions(), 9);
    }

    #[test]
    #[cfg_attr(
        feature = "offline-stub",
        ignore = "requires real serde_json (offline stub cannot serialize)"
    )]
    fn workflows_serialize() {
        let wf = Workflow::video_pipeline(w(), 100, MapPacking::Fixed(5));
        let json = serde_json::to_string(&wf).unwrap();
        let back: Workflow = serde_json::from_str(&json).unwrap();
        assert_eq!(wf, back);
    }
}
