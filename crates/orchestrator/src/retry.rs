//! Orchestrator-level retry: resubmit failed functions as follow-up bursts.
//!
//! The platform's own retry loop (capped exponential backoff inside an
//! instance, see `propack_simcore::RetryPolicy`) handles transient faults
//! *within* a burst. When an instance exhausts its attempts or the burst's
//! retry budget, its functions come back failed and the burst is partial.
//! Step-Functions-style orchestrators handle that layer too: the failed
//! fan-out entries are resubmitted as a smaller follow-up burst, up to
//! [`RetryPolicy::max_rounds`] submissions total. Rounds serialize — a
//! follow-up is only submitted once the previous round has completed — so
//! the retried service time is the sum of round makespans.
//!
//! Determinism: round `k` draws its seed as a pure function of the original
//! seed and `k` (round 0 uses the original seed verbatim, so a fault-free
//! run is bit-identical to a plain `run_burst`).

use propack_platform::{
    BurstSpec, FaultSpec, FaultSummary, PlatformError, RetryPolicy, RunReport, ServerlessPlatform,
    WorkProfile,
};

/// Outcome of a burst executed under the orchestrator's retry loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RetriedRun {
    /// Per-round platform reports; `rounds[0]` is the original submission.
    pub rounds: Vec<RunReport>,
    /// Functions still failed after the final round — nonzero means the
    /// workflow completed *partially*.
    pub abandoned_functions: u64,
}

impl RetriedRun {
    /// End-to-end service time: rounds serialize, so makespans add.
    pub fn total_service_secs(&self) -> f64 {
        self.rounds.iter().map(|r| r.total_service_time()).sum()
    }

    /// Total bill across all rounds (failed attempts are still billed).
    pub fn expense_usd(&self) -> f64 {
        self.rounds.iter().map(|r| r.expense.total_usd()).sum()
    }

    /// Billed compute across all rounds, function-hours.
    pub fn function_hours(&self) -> f64 {
        self.rounds.iter().map(|r| r.function_hours()).sum()
    }

    /// Instances spawned across all rounds.
    pub fn instances(&self) -> u32 {
        self.rounds.iter().map(|r| r.instances_requested).sum()
    }

    /// Fault counters merged across all rounds.
    pub fn faults(&self) -> FaultSummary {
        let mut total = FaultSummary::default();
        for r in &self.rounds {
            total.merge(&r.faults);
        }
        total
    }

    /// Follow-up submissions beyond the original burst.
    pub fn resubmission_rounds(&self) -> u32 {
        self.rounds.len() as u32 - 1
    }

    /// True when functions remain failed after every round.
    pub fn is_partial(&self) -> bool {
        self.abandoned_functions > 0
    }
}

/// Seed for resubmission round `round` (round 0 reproduces `seed` exactly,
/// keeping fault-free runs bit-identical to a plain burst).
fn round_seed(seed: u64, round: u32) -> u64 {
    seed ^ u64::from(round).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Run `c` functions of `work` packed at `degree`, resubmitting failed
/// functions as follow-up bursts until everything completes or
/// [`RetryPolicy::max_rounds`] submissions have been made.
pub fn run_burst_with_retry<P: ServerlessPlatform + ?Sized>(
    platform: &P,
    work: &WorkProfile,
    c: u32,
    degree: u32,
    seed: u64,
    faults: FaultSpec,
    retry: RetryPolicy,
) -> Result<RetriedRun, PlatformError> {
    let work = std::sync::Arc::new(work.clone());
    let mut rounds = Vec::new();
    let mut remaining = c;
    let mut round = 0u32;
    while remaining > 0 && round < retry.max_rounds.max(1) {
        // A follow-up round smaller than the packing degree packs what it
        // has — never more functions per instance than functions left.
        let p = degree.max(1).min(remaining);
        let spec = BurstSpec::packed(std::sync::Arc::clone(&work), remaining, p)
            .with_seed(round_seed(seed, round))
            .with_faults(faults)
            .with_retry(retry);
        let report = platform.run_burst(&spec)?;
        // The platform counts failures in whole-instance units of `p`, so a
        // remainder instance can report more failed functions than were
        // actually submitted; the resubmission is capped at what remains.
        let failed = report.faults.failed_functions.min(u64::from(remaining));
        rounds.push(report);
        remaining = failed as u32;
        round += 1;
    }
    Ok(RetriedRun {
        rounds,
        abandoned_functions: u64::from(remaining),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_platform::{CloudPlatform, PlatformBuilder};

    fn aws() -> CloudPlatform {
        PlatformBuilder::aws().build()
    }

    fn work() -> WorkProfile {
        WorkProfile::synthetic("w", 0.25, 60.0).with_contention(0.2)
    }

    #[test]
    fn fault_free_run_is_one_round_and_matches_plain_burst() {
        let platform = aws();
        let run = run_burst_with_retry(
            &platform,
            &work(),
            400,
            4,
            11,
            FaultSpec::none(),
            RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(run.rounds.len(), 1);
        assert_eq!(run.resubmission_rounds(), 0);
        assert!(!run.is_partial());
        let plain = platform
            .run_burst(&BurstSpec::packed(work(), 400, 4).with_seed(11))
            .unwrap();
        assert_eq!(run.rounds[0], plain);
    }

    #[test]
    fn failed_functions_are_resubmitted_in_a_smaller_round() {
        // no_retries + a high crash rate forces platform-level failures;
        // max_rounds = 3 lets the orchestrator resubmit them twice.
        let platform = aws();
        let retry = RetryPolicy {
            max_rounds: 3,
            ..RetryPolicy::no_retries()
        };
        let faults = FaultSpec::none().with_crash_rate(0.3);
        let run = run_burst_with_retry(&platform, &work(), 600, 4, 7, faults, retry).unwrap();
        assert!(run.rounds.len() > 1, "failures must trigger a follow-up");
        assert!(
            run.rounds[1].instances_requested < run.rounds[0].instances_requested,
            "follow-up rounds shrink"
        );
        // Rounds serialize: the retried service time exceeds round 0's.
        assert!(run.total_service_secs() > run.rounds[0].total_service_time());
        assert!(run.faults().crashes > 0);
    }

    #[test]
    fn round_cap_yields_partial_completion() {
        // Certain crash with no in-platform retries and a single round:
        // everything fails and nothing is resubmitted.
        let platform = aws();
        let run = run_burst_with_retry(
            &platform,
            &work(),
            200,
            4,
            3,
            FaultSpec::none().with_crash_rate(1.0),
            RetryPolicy::no_retries(),
        )
        .unwrap();
        assert_eq!(run.rounds.len(), 1);
        assert!(run.is_partial());
        assert_eq!(run.abandoned_functions, 200);
        // Failed attempts are still billed.
        assert!(run.expense_usd() > 0.0);
    }

    #[test]
    fn retried_runs_replay_bit_identically() {
        let platform = aws();
        let retry = RetryPolicy {
            max_rounds: 3,
            ..RetryPolicy::no_retries()
        };
        let faults = FaultSpec::none().with_crash_rate(0.3);
        let a = run_burst_with_retry(&platform, &work(), 600, 4, 7, faults, retry).unwrap();
        let b = run_burst_with_retry(&platform, &work(), 600, 4, 7, faults, retry).unwrap();
        assert_eq!(a, b);
    }
}
