//! Smith-Waterman: the parallel bioinformatics HPC workload (Fig. 17).
//!
//! The paper's Smith-Waterman benchmark performs *"dynamic computation for
//! comparing protein sequences"* — a large number of independent pairwise
//! local alignments, which is why serverless is attractive for it. It is
//! the most compute-intensive benchmark in the suite: the paper notes that
//! *"packing a large number of functions is inefficient for this
//! application as its functions are compute-intensive"*, which is why its
//! Oracle packing degree stays far below the memory-permitted maximum of
//! 35.
//!
//! The kernel is a complete Smith-Waterman implementation with **affine gap
//! penalties** (Gotoh's three-matrix recurrence) over the 20-letter amino
//! acid alphabet with a BLOSUM62-style scoring scheme — the real algorithm,
//! not a sketch.

use crate::{mix64, WorkOutput, Workload};
use propack_platform::{ResourceKind, WorkProfile};

/// Amino acid alphabet (standard 20 residues).
pub const AMINO_ACIDS: [u8; 20] = [
    b'A', b'R', b'N', b'D', b'C', b'Q', b'E', b'G', b'H', b'I', b'L', b'K', b'M', b'F', b'P', b'S',
    b'T', b'W', b'Y', b'V',
];

/// Substitution score between two residues.
///
/// A compact BLOSUM-like scheme: identity scores +4..+11 depending on
/// rarity, chemically similar pairs +1..+2, dissimilar pairs −1..−4. The
/// exact matrix is not load-bearing for the reproduction (any sensible
/// scheme yields the same computational profile); what matters is that the
/// recurrence consumes a real 20×20 substitution lookup.
pub fn substitution_score(a: u8, b: u8) -> i32 {
    #[rustfmt::skip]
    const GROUPS: [(u8, i32); 20] = [
        (b'A', 4), (b'R', 5), (b'N', 6), (b'D', 6), (b'C', 9),
        (b'Q', 5), (b'E', 5), (b'G', 6), (b'H', 8), (b'I', 4),
        (b'L', 4), (b'K', 5), (b'M', 5), (b'F', 6), (b'P', 7),
        (b'S', 4), (b'T', 5), (b'W', 11), (b'Y', 7), (b'V', 4),
    ];
    fn idx(x: u8) -> usize {
        AMINO_ACIDS
            .iter()
            .position(|&a| a == x)
            .expect("valid residue")
    }
    if a == b {
        GROUPS[idx(a)].1
    } else {
        // Similar-group bonus: hydrophobic {I L V M}, aromatic {F Y W},
        // basic {K R H}, acidic/amide {D E N Q}, small {A S T G P}.
        const FAMILIES: [&[u8]; 5] = [b"ILVM", b"FYW", b"KRH", b"DENQ", b"ASTGP"];
        let same_family = FAMILIES.iter().any(|f| f.contains(&a) && f.contains(&b));
        if same_family {
            2
        } else {
            // Deterministic mild penalty in [-4, -1].
            -1 - ((idx(a) as i32 * 7 + idx(b) as i32 * 3) % 4)
        }
    }
}

/// Affine gap parameters (standard protein-search defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapPenalty {
    /// Cost to open a gap (positive).
    pub open: i32,
    /// Cost to extend a gap by one residue (positive).
    pub extend: i32,
}

impl Default for GapPenalty {
    fn default() -> Self {
        GapPenalty {
            open: 11,
            extend: 1,
        }
    }
}

/// Local alignment result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alignment {
    /// Optimal local alignment score (≥ 0 by definition of Smith-Waterman).
    pub score: i32,
    /// End position in the query (exclusive).
    pub query_end: usize,
    /// End position in the target (exclusive).
    pub target_end: usize,
}

/// Smith-Waterman local alignment with affine gaps (Gotoh, 1982).
///
/// Three-state recurrence over matrices `H` (match/mismatch), `E` (gap in
/// query), `F` (gap in target), computed row-by-row in O(n·m) time and
/// O(m) memory.
pub fn smith_waterman(query: &[u8], target: &[u8], gap: GapPenalty) -> Alignment {
    let m = target.len();
    if query.is_empty() || m == 0 {
        return Alignment {
            score: 0,
            query_end: 0,
            target_end: 0,
        };
    }
    let mut h_prev = vec![0i32; m + 1];
    let mut h_row = vec![0i32; m + 1];
    let mut e_row = vec![0i32; m + 1]; // E carries over per column
    let mut best = Alignment {
        score: 0,
        query_end: 0,
        target_end: 0,
    };

    for (i, &q) in query.iter().enumerate() {
        let mut f = 0i32; // F resets per row
        h_row[0] = 0;
        for (j, &t) in target.iter().enumerate() {
            let e = (e_row[j + 1] - gap.extend).max(h_prev[j + 1] - gap.open - gap.extend);
            f = (f - gap.extend).max(h_row[j] - gap.open - gap.extend);
            let diag = h_prev[j] + substitution_score(q, t);
            let h = diag.max(e).max(f).max(0);
            h_row[j + 1] = h;
            e_row[j + 1] = e;
            if h > best.score {
                best = Alignment {
                    score: h,
                    query_end: i + 1,
                    target_end: j + 1,
                };
            }
        }
        std::mem::swap(&mut h_prev, &mut h_row);
    }
    best
}

/// Deterministic synthetic protein sequence.
pub fn synth_protein(seed: u64, len: usize) -> Vec<u8> {
    (0..len as u64)
        .map(|i| AMINO_ACIDS[(mix64(seed ^ i) % 20) as usize])
        .collect()
}

/// The Smith-Waterman workload: one invocation aligns a query against a
/// batch of database sequences (the embarrassingly parallel unit).
#[derive(Debug, Clone)]
pub struct SmithWaterman {
    /// Query length (residues).
    pub query_len: usize,
    /// Database sequences compared per invocation.
    pub db_sequences: usize,
    /// Length of each database sequence.
    pub db_len: usize,
}

impl Default for SmithWaterman {
    fn default() -> Self {
        SmithWaterman {
            query_len: 160,
            db_sequences: 24,
            db_len: 200,
        }
    }
}

impl Workload for SmithWaterman {
    fn name(&self) -> &'static str {
        "Smith-Waterman"
    }

    fn profile(&self) -> WorkProfile {
        WorkProfile {
            name: "Smith-Waterman".to_string(),
            mem_gb: 0.28,
            base_exec_secs: 100.0,
            // Compute-intensive: the steepest contention in the suite
            // (≈ 0.13 per packing degree), which is what pushes the Oracle
            // packing degree far below the memory cap of 35 (Fig. 17).
            contention_per_gb: 0.464,
            storage_gb: 0.02, // FASTA shards in, score lists out
            storage_requests: 3,
            network_gb: 0.005,
            dependency_load_secs: 6.0, // scoring matrices + sequence DB client
            resource_kind: ResourceKind::Cpu, // DP matrix fill saturates cores
        }
    }

    fn run_once(&self, input_seed: u64) -> WorkOutput {
        let query = synth_protein(input_seed, self.query_len);
        let gap = GapPenalty::default();
        let mut checksum = 0u64;
        let mut cells = 0u64;
        for s in 0..self.db_sequences {
            let target = synth_protein(mix64(input_seed ^ (s as u64) << 32), self.db_len);
            let aln = smith_waterman(&query, &target, gap);
            checksum ^= mix64(
                (aln.score as u64) << 32
                    ^ (aln.query_end as u64) << 16
                    ^ aln.target_end as u64
                    ^ s as u64,
            );
            cells += (self.query_len * self.db_len) as u64;
        }
        WorkOutput {
            checksum,
            work_units: cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gap() -> GapPenalty {
        GapPenalty::default()
    }

    #[test]
    fn identical_sequences_score_sum_of_identities() {
        let s = b"ARNDCQ";
        let aln = smith_waterman(s, s, gap());
        let want: i32 = s.iter().map(|&c| substitution_score(c, c)).sum();
        assert_eq!(aln.score, want);
        assert_eq!(aln.query_end, 6);
        assert_eq!(aln.target_end, 6);
    }

    #[test]
    fn disjoint_sequences_score_zero_or_low() {
        // Local alignment score is never negative.
        let a = b"AAAA";
        let b = b"WWWW";
        let aln = smith_waterman(a, b, gap());
        assert!(aln.score >= 0);
        assert!(
            aln.score <= 2,
            "A vs W should not align well: {}",
            aln.score
        );
    }

    #[test]
    fn finds_embedded_motif() {
        // The motif scores highest where it is embedded, regardless of the
        // noise around it.
        let motif = b"WCWCHHWW";
        let mut target = synth_protein(9, 60);
        target.extend_from_slice(motif);
        target.extend(synth_protein(10, 60));
        let aln = smith_waterman(motif, &target, gap());
        let self_score: i32 = motif.iter().map(|&c| substitution_score(c, c)).sum();
        assert_eq!(aln.score, self_score, "motif must align exactly");
        assert_eq!(aln.target_end, 60 + motif.len());
    }

    #[test]
    fn gap_recovers_split_motif() {
        // Query = motif; target = motif with one residue inserted in the
        // middle. Affine gaps should bridge the insertion and score
        // self-score − open − extend.
        let motif = b"WWCHWWCH";
        let mut target = Vec::from(&motif[..4]);
        target.push(b'A');
        target.extend_from_slice(&motif[4..]);
        let aln = smith_waterman(motif, &target, gap());
        let self_score: i32 = motif.iter().map(|&c| substitution_score(c, c)).sum();
        assert_eq!(aln.score, self_score - gap().open - gap().extend);
    }

    #[test]
    fn score_symmetric_in_arguments() {
        let a = synth_protein(1, 80);
        let b = synth_protein(2, 90);
        let ab = smith_waterman(&a, &b, gap());
        let ba = smith_waterman(&b, &a, gap());
        assert_eq!(ab.score, ba.score, "substitution matrix is symmetric");
    }

    #[test]
    fn empty_inputs_align_to_zero() {
        assert_eq!(smith_waterman(b"", b"ARN", gap()).score, 0);
        assert_eq!(smith_waterman(b"ARN", b"", gap()).score, 0);
    }

    #[test]
    fn substitution_matrix_symmetric_and_identity_dominant() {
        for &a in &AMINO_ACIDS {
            for &b in &AMINO_ACIDS {
                assert_eq!(substitution_score(a, b), substitution_score(b, a));
                if a != b {
                    assert!(substitution_score(a, b) < substitution_score(a, a));
                }
            }
        }
    }

    #[test]
    fn work_units_count_dp_cells() {
        let sw = SmithWaterman {
            query_len: 10,
            db_sequences: 3,
            db_len: 20,
        };
        assert_eq!(sw.run_once(4).work_units, 600);
    }

    #[test]
    fn profile_matches_paper_calibration() {
        let p = SmithWaterman::default().profile();
        assert_eq!(p.max_packing_degree(10.0), 35);
        // Steepest contention in the suite (compute-intensive).
        let others = [
            crate::video::Video::default().profile(),
            crate::sort::MapReduceSort::default().profile(),
            crate::stateless::StatelessCost::default().profile(),
        ];
        let sw_rate = p.contention_per_gb * p.mem_gb;
        for o in others {
            assert!(sw_rate > o.contention_per_gb * o.mem_gb);
        }
    }
}
