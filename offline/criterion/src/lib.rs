//! Offline stub for `criterion`: just enough API for the bench targets to
//! compile (`cargo bench` offline runs each closure once, unmeasured).

use std::fmt;
use std::time::Duration;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }

    pub fn benchmark_group(&mut self, _name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup(self)
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

pub struct BenchmarkGroup<'a>(#[allow(dead_code)] &'a mut Criterion);

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        _id: impl fmt::Debug,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher, input);
        self
    }

    pub fn finish(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
