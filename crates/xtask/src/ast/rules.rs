//! Per-file AST rule visitors.
//!
//! Each rule is a visitor over the sibling levels of a file's token-tree
//! forest (see [`crate::ast::parser::walk_levels`]); a level sees its own
//! leaves plus its child groups as opaque siblings, which is exactly the
//! granularity Rust item and expression syntax needs for these checks.
//! Scoping (which crates a rule applies to) reuses the v1 tables in
//! [`crate::rules`], so the two engines cannot drift apart on policy.
//!
//! The seven v1 rules are ported here unchanged in meaning; two rules are
//! AST-only (`unstable-sort-float`, `as-truncation`) because they need the
//! argument-containment and operand-context queries only trees provide.
//! The `rng-lane` call-site visitor lives in [`crate::ast::xfile`] since
//! its findings feed the cross-file lane-registry analysis.

use crate::ast::parser::{
    flatten, group_at, is_ident, is_punct, leaf_at, walk_levels, Group, ParsedFile, Tree,
};
use crate::lexer::TokenKind;
use crate::rules::{
    FileCtx, Violation, FLOAT_EQ_CRATES, PANIC_FREE_CRATES, SIM_CRATES, THREAD_EXEMPT,
    WALL_CLOCK_EXEMPT,
};

/// Wall-clock / entropy identifiers banned outside the exempt crates
/// (mirrors the v1 table; kept local so the AST pass is self-contained).
const WALL_CLOCK_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "from_os_rng",
];

/// Substrings accepted as a paper-provenance citation in a doc comment.
const CITATION_MARKERS: &[&str] = &["Fig.", "Eq.", "Table", "§"];

/// Direct RNG construction banned in fault-lane code.
const FAULT_RNG_IDENTS: &[&str] = &[
    "ChaCha8Rng",
    "ChaCha12Rng",
    "ChaCha20Rng",
    "StdRng",
    "SmallRng",
    "seed_from_u64",
    "from_seed",
];

/// Narrow numeric types whose `as` casts silently truncate 64-bit
/// sim-time/seed arithmetic.
const NARROW_CASTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Identifier substrings that mark an operand as sim-time or seed
/// arithmetic for the `as-truncation` rule.
const TIME_SEED_MARKERS: &[&str] = &[
    "seed", "secs", "nanos", "micros", "millis", "time", "tick", "epoch",
];

/// Run every per-file AST rule over one parsed file.
pub fn per_file_violations(parsed: &ParsedFile, ctx: &FileCtx, out: &mut Vec<Violation>) {
    let whole_file_test = ctx.test_target;
    walk_levels(&parsed.trees, whole_file_test, &mut |level, in_test| {
        check_hash_map(level, ctx, out);
        check_wall_clock(level, ctx, out);
        check_panic_path(level, in_test, ctx, out);
        check_float_eq(level, in_test, ctx, out);
        check_const_doc(level, ctx, out);
        check_thread_spawn(level, ctx, out);
        check_fault_rng(level, ctx, out);
        check_event_alloc(level, in_test, ctx, out);
        check_unstable_sort_float(level, in_test, ctx, out);
        check_as_truncation(level, in_test, ctx, out);
    });
}

fn push(out: &mut Vec<Violation>, rule: &'static str, ctx: &FileCtx, line: u32, message: String) {
    out.push(Violation {
        rule,
        rel_path: ctx.rel_path.clone(),
        line,
        message,
    });
}

fn check_hash_map(level: &[Tree], ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !SIM_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for t in level {
        if let Some(tok) = t.leaf() {
            if tok.kind == TokenKind::Ident && (tok.text == "HashMap" || tok.text == "HashSet") {
                push(
                    out,
                    "hash-map",
                    ctx,
                    tok.line,
                    format!(
                        "`{}` iterates in randomized order; simulation crates must use \
                         `BTreeMap`/`BTreeSet` so replays are bit-identical",
                        tok.text
                    ),
                );
            }
        }
    }
}

fn check_wall_clock(level: &[Tree], ctx: &FileCtx, out: &mut Vec<Violation>) {
    if WALL_CLOCK_EXEMPT.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, t) in level.iter().enumerate() {
        let Some(tok) = t.leaf() else { continue };
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let banned = WALL_CLOCK_IDENTS.contains(&tok.text.as_str())
            // `rand::random()` / `rand::rng()` pull from OS entropy.
            || ((tok.text == "random" || tok.text == "rng")
                && i >= 2
                && is_punct(&level[i - 1], "::")
                && is_ident(&level[i - 2], "rand"));
        if banned {
            push(
                out,
                "wall-clock",
                ctx,
                tok.line,
                format!(
                    "`{}` reads wall-clock time or OS entropy; outside `crates/executor` \
                     use virtual `SimTime` and seeded `RngStreams`",
                    tok.text
                ),
            );
        }
    }
}

fn check_panic_path(level: &[Tree], in_test: bool, ctx: &FileCtx, out: &mut Vec<Violation>) {
    if in_test || !PANIC_FREE_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, t) in level.iter().enumerate() {
        let Some(tok) = t.leaf() else { continue };
        if tok.kind != TokenKind::Ident {
            continue;
        }
        // `.unwrap(…)` / `.expect(…)` method calls: dot before, arg group after.
        let method = (tok.text == "unwrap" || tok.text == "expect")
            && i >= 1
            && is_punct(&level[i - 1], ".")
            && group_at(level, i + 1, '(').is_some();
        // `panic!` / `todo!` / `unimplemented!` macro invocations.
        let mac = matches!(tok.text.as_str(), "panic" | "todo" | "unimplemented")
            && matches!(level.get(i + 1), Some(n) if is_punct(n, "!"));
        if method || mac {
            let spelled = if method {
                format!(".{}()", tok.text)
            } else {
                format!("{}!", tok.text)
            };
            push(
                out,
                "panic-path",
                ctx,
                tok.line,
                format!(
                    "`{spelled}` can abort a simulation mid-burst; return a \
                     `platform::error::PlatformError` (or restructure) instead"
                ),
            );
        }
    }
}

fn check_float_eq(level: &[Tree], in_test: bool, ctx: &FileCtx, out: &mut Vec<Violation>) {
    if in_test || !FLOAT_EQ_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, t) in level.iter().enumerate() {
        let Some(tok) = t.leaf() else { continue };
        if !(tok.kind == TokenKind::Punct && (tok.text == "==" || tok.text == "!=")) {
            continue;
        }
        let float_leaf = |t: Option<&Tree>| {
            t.and_then(Tree::leaf)
                .is_some_and(|t| t.kind == TokenKind::FloatLit)
        };
        if float_leaf(i.checked_sub(1).and_then(|j| level.get(j))) || float_leaf(level.get(i + 1)) {
            push(
                out,
                "float-eq",
                ctx,
                tok.line,
                format!(
                    "exact `{}` against a float literal; compare with a tolerance, or \
                     annotate a deliberate exact-zero guard",
                    tok.text
                ),
            );
        }
    }
}

fn check_const_doc(level: &[Tree], ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !(ctx.crate_name == "platform" && ctx.rel_path.ends_with("profile.rs")) {
        return;
    }
    for (i, t) in level.iter().enumerate() {
        if !is_ident(t, "const") {
            continue;
        }
        // `pub const` (also `pub(crate) const`: pub, (crate) group, const).
        let vis_start = if i >= 1 && is_ident(&level[i - 1], "pub") {
            i - 1
        } else if i >= 2 && group_at(level, i - 1, '(').is_some() && is_ident(&level[i - 2], "pub")
        {
            i - 2
        } else {
            continue;
        };
        let name = match leaf_at(level, i + 1) {
            Some(n) if n.kind == TokenKind::Ident && n.text != "fn" => n.text.clone(),
            _ => continue, // `pub const fn` or malformed
        };
        // The contiguous run of doc-comment leaves above the visibility
        // token must carry a citation.
        let mut cited = false;
        let mut j = vis_start;
        while j > 0 {
            match leaf_at(level, j - 1) {
                Some(d) if d.kind == TokenKind::DocComment => {
                    cited |= CITATION_MARKERS.iter().any(|m| d.text.contains(m));
                    j -= 1;
                }
                _ => break,
            }
        }
        if !cited {
            push(
                out,
                "const-doc",
                ctx,
                t.line(),
                format!(
                    "calibration constant `{name}` has no provenance doc comment; cite \
                     the paper figure/equation/table it was read from (e.g. `/// Fig. 4`)"
                ),
            );
        }
    }
}

fn check_thread_spawn(level: &[Tree], ctx: &FileCtx, out: &mut Vec<Violation>) {
    if THREAD_EXEMPT.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, t) in level.iter().enumerate() {
        let Some(tok) = t.leaf() else { continue };
        let spawns = tok.kind == TokenKind::Ident
            && (tok.text == "spawn" || tok.text == "scope")
            && i >= 2
            && is_punct(&level[i - 1], "::")
            && is_ident(&level[i - 2], "thread");
        if spawns {
            push(
                out,
                "thread-spawn",
                ctx,
                tok.line,
                format!(
                    "`thread::{}` creates OS threads outside the sweep engine; run \
                     parallel grids through `propack_sweep::SweepRunner` (host threads \
                     belong to `crates/sweep` and `crates/executor` only)",
                    tok.text
                ),
            );
        }
    }
}

fn check_fault_rng(level: &[Tree], ctx: &FileCtx, out: &mut Vec<Violation>) {
    let in_scope = SIM_CRATES.contains(&ctx.crate_name.as_str())
        && ctx
            .rel_path
            .rsplit('/')
            .next()
            .is_some_and(|name| name.contains("fault") || name.contains("trace"));
    if !in_scope {
        return;
    }
    for t in level {
        if let Some(tok) = t.leaf() {
            if tok.kind == TokenKind::Ident && FAULT_RNG_IDENTS.contains(&tok.text.as_str()) {
                push(
                    out,
                    "fault-rng",
                    ctx,
                    tok.line,
                    format!(
                        "`{}` constructs an RNG directly in fault-lane code; draw from the \
                         burst's seeded `RngStreams` lanes (`stream_indexed(\"fault-…\", …)`) \
                         so fault draws replay bit-identically at any thread count",
                        tok.text
                    ),
                );
            }
        }
    }
}

/// `Box::new` inside the argument group of a `schedule_*(…)` call: the
/// argument list is a subtree, so containment is a recursive query rather
/// than v1's paren counting.
fn check_event_alloc(level: &[Tree], in_test: bool, ctx: &FileCtx, out: &mut Vec<Violation>) {
    let in_scope = SIM_CRATES.contains(&ctx.crate_name.as_str()) && ctx.crate_name != "simcore";
    if in_test || !in_scope {
        return;
    }
    for (i, t) in level.iter().enumerate() {
        let Some(tok) = t.leaf() else { continue };
        if !(tok.kind == TokenKind::Ident && tok.text.starts_with("schedule")) {
            continue;
        }
        let Some(args) = group_at(level, i + 1, '(') else {
            continue;
        };
        let callee = tok.text.clone();
        find_box_new(&args.trees, &mut |line| {
            push(
                out,
                "event-alloc",
                ctx,
                line,
                format!(
                    "`Box::new` inside `{callee}(…)` heap-allocates a closure per \
                     event; define a typed event (`EventState::Event`) and use \
                     `schedule_event`/`schedule_batch` — the boxed-closure form is \
                     simcore's compatibility fallback, not the hot path"
                ),
            );
        });
    }
}

fn find_box_new(trees: &[Tree], hit: &mut impl FnMut(u32)) {
    for (i, t) in trees.iter().enumerate() {
        match t {
            Tree::Leaf(tok) => {
                if tok.kind == TokenKind::Ident
                    && tok.text == "Box"
                    && matches!(trees.get(i + 1), Some(n) if is_punct(n, "::"))
                    && matches!(trees.get(i + 2), Some(n) if is_ident(n, "new"))
                {
                    hit(tok.line);
                }
            }
            Tree::Group(g) => find_box_new(&g.trees, hit),
        }
    }
}

/// `sort_unstable_by`/`sort_unstable_by_key` with float evidence in the
/// comparator: unstable sorts reorder equal keys unpredictably across std
/// versions and platforms, so float-keyed orderings in simulation crates
/// must use the stable `sort_by(total_cmp)` form.
fn check_unstable_sort_float(
    level: &[Tree],
    in_test: bool,
    ctx: &FileCtx,
    out: &mut Vec<Violation>,
) {
    if in_test || !SIM_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, t) in level.iter().enumerate() {
        let Some(tok) = t.leaf() else { continue };
        let is_sort = tok.kind == TokenKind::Ident
            && (tok.text == "sort_unstable_by" || tok.text == "sort_unstable_by_key")
            && i >= 1
            && is_punct(&level[i - 1], ".");
        if !is_sort {
            continue;
        }
        let Some(args) = group_at(level, i + 1, '(') else {
            continue;
        };
        let mut leaves = Vec::new();
        flatten(&args.trees, &mut leaves);
        let float_keyed = leaves.iter().any(|l| {
            l.kind == TokenKind::FloatLit
                || (l.kind == TokenKind::Ident
                    && matches!(l.text.as_str(), "partial_cmp" | "total_cmp" | "f64" | "f32"))
        });
        if float_keyed {
            push(
                out,
                "unstable-sort-float",
                ctx,
                tok.line,
                format!(
                    "`.{}` on a float key: unstable sorts break ties in an \
                     unspecified order, so equal keys reorder between std versions; \
                     use stable `sort_by(|a, b| a.total_cmp(b))` in simulation code",
                    tok.text
                ),
            );
        }
    }
}

/// Lossy `as` casts of sim-time/seed arithmetic to narrow numeric types:
/// `(horizon_secs / epoch_secs).ceil() as u32` silently truncates, and
/// truncation of time or seed values is a classic source of
/// seed-dependent divergence.
fn check_as_truncation(level: &[Tree], in_test: bool, ctx: &FileCtx, out: &mut Vec<Violation>) {
    if in_test || !SIM_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, t) in level.iter().enumerate() {
        if !is_ident(t, "as") {
            continue;
        }
        let Some(target) = leaf_at(level, i + 1) else {
            continue;
        };
        if target.kind != TokenKind::Ident || !NARROW_CASTS.contains(&target.text.as_str()) {
            continue;
        }
        // Scan the cast operand: walk left over this expression's trees
        // (stopping at a statement/assignment boundary) and collect the
        // identifiers involved, descending into groups.
        let mut idents: Vec<String> = Vec::new();
        let mut j = i;
        let mut budget = 16usize;
        while j > 0 && budget > 0 {
            j -= 1;
            budget -= 1;
            match &level[j] {
                Tree::Leaf(tok) => {
                    if tok.kind == TokenKind::Punct
                        && matches!(tok.text.as_str(), ";" | "," | "=" | "=>" | "{")
                    {
                        break;
                    }
                    if tok.kind == TokenKind::Ident {
                        idents.push(tok.text.to_ascii_lowercase());
                    }
                }
                Tree::Group(g) => {
                    let mut leaves = Vec::new();
                    flatten(&g.trees, &mut leaves);
                    idents.extend(
                        leaves
                            .iter()
                            .filter(|l| l.kind == TokenKind::Ident)
                            .map(|l| l.text.to_ascii_lowercase()),
                    );
                }
            }
        }
        let tainted = idents
            .iter()
            .find(|id| TIME_SEED_MARKERS.iter().any(|m| id.contains(m)));
        if let Some(source) = tainted {
            push(
                out,
                "as-truncation",
                ctx,
                t.line(),
                format!(
                    "`as {}` truncates a value derived from `{source}`; sim-time and \
                     seed arithmetic must stay 64-bit (use `u64`/`f64`, or a checked \
                     conversion with an explicit policy for overflow)",
                    target.text
                ),
            );
        }
    }
}

/// Detection of the panic-wrapper *invocation* check lives in
/// [`crate::ast::xfile`] (it needs the workspace macro table); this hook is
/// re-exported there for the definition side.
pub fn group_body_has_panic(g: &Group) -> bool {
    let mut found = false;
    walk_levels(&g.trees, false, &mut |level, _| {
        for (i, t) in level.iter().enumerate() {
            let Some(tok) = t.leaf() else { continue };
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let mac = matches!(tok.text.as_str(), "panic" | "todo" | "unimplemented")
                && matches!(level.get(i + 1), Some(n) if is_punct(n, "!"));
            let method = (tok.text == "unwrap" || tok.text == "expect")
                && i >= 1
                && is_punct(&level[i - 1], ".")
                && group_at(level, i + 1, '(').is_some();
            if mac || method {
                found = true;
            }
        }
    });
    found
}
