//! simlint fixture: macros whose expansion panics, defined in a crate
//! where the `panic-path` rule does not apply — the definitions are clean
//! here; the cross-file macro table carries them to every invocation site.
//! Analyzed together with `panic_wrapper_use.rs`.

#[macro_export]
macro_rules! die_fast {
    ($msg:expr) => {
        panic!("fixture: {}", $msg)
    };
}

/// Panics transitively, via `die_fast!`.
#[macro_export]
macro_rules! die_faster {
    () => {
        die_fast!("nested")
    };
}

/// Does not panic: invocations stay clean everywhere.
#[macro_export]
macro_rules! harmless {
    ($x:expr) => {
        $x + 1
    };
}
