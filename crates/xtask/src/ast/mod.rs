//! simlint v2: the AST analysis pass.
//!
//! Pipeline (see DESIGN.md §7):
//!
//! 1. **Parse** every workspace source into a token-tree forest
//!    ([`parser`]). Files the parser rejects (unbalanced delimiters —
//!    macro-heavy or mid-edit code) fall back to the v1 lexer rules and
//!    are listed in the report, so coverage loss is visible, never silent.
//! 2. **Per-file visitors** ([`rules`]) run the seven ported v1 rules plus
//!    the AST-only `unstable-sort-float` and `as-truncation`.
//! 3. **Cross-file phase** ([`xfile`]): harvested facts (lane registry,
//!    stream call sites, banned-type aliases, `macro_rules!` bodies) join
//!    into workspace tables; then lane-registry findings (collisions, dead
//!    lanes, unregistered constants), aliased banned-type usages, and
//!    panic-wrapper invocations are emitted against the owning files.
//! 4. **Allow filtering**: the v1 escape-hatch grammar is honored
//!    unchanged, plus the `stale-allow` audit — a well-formed allow that
//!    suppresses nothing is itself a finding, so escapes cannot outlive
//!    the code they excused.
//! 5. **Report** ([`report`]): rustc-style text, stable JSON, or GitHub
//!    annotations.

pub mod parser;
pub mod report;
pub mod rules;
pub mod xfile;

use crate::lexer::AllowDirective;
use crate::rules::{FileCtx, Violation, RULES};
use report::Report;

/// Analyze a set of sources. Each entry is `(source_text, ctx)`; contexts
/// carry the crate identity the scoping tables key on, so tests can lint
/// fixture strings under any identity (mirroring `rules::lint_file`).
pub fn analyze_files(files: &[(String, FileCtx)]) -> Report {
    struct PerFile<'a> {
        parsed: parser::ParsedFile,
        ctx: &'a FileCtx,
        raw: Vec<Violation>,
    }

    let mut parsed_files: Vec<PerFile<'_>> = Vec::new();
    let mut fallback_files = Vec::new();
    let mut final_violations = Vec::new();
    let mut all_facts = Vec::new();

    for (src, ctx) in files {
        match parser::parse(src) {
            Ok(parsed) => {
                let mut raw = Vec::new();
                rules::per_file_violations(&parsed, ctx, &mut raw);
                all_facts.push(xfile::harvest(&parsed, ctx, &mut raw));
                parsed_files.push(PerFile { parsed, ctx, raw });
            }
            Err(_) => {
                // Lexer fallback: the v1 pipeline, with its own allow
                // filtering (no stale-allow audit — the lexer cannot prove
                // an allow useless).
                fallback_files.push(ctx.rel_path.clone());
                final_violations.extend(crate::rules::lint_file(src, ctx));
            }
        }
    }

    let ws = xfile::join(all_facts);
    let mut global = Vec::new();
    xfile::registry_violations(&ws, &xfile::fnv1a, &mut global);
    xfile::unknown_lane_violations(&ws, &mut global);
    for pf in &mut parsed_files {
        xfile::cross_check_file(&pf.parsed, pf.ctx, &ws, &mut pf.raw);
    }
    // Route workspace-level findings to their owning file so its allow
    // directives (and the stale audit) see them.
    for v in global {
        match parsed_files
            .iter_mut()
            .find(|pf| pf.ctx.rel_path == v.rel_path)
        {
            Some(pf) => pf.raw.push(v),
            None => final_violations.push(v),
        }
    }

    for pf in parsed_files {
        final_violations.extend(apply_allows(pf.raw, &pf.parsed.allows, pf.ctx));
    }
    final_violations
        .sort_by(|a, b| (&a.rel_path, a.line, a.rule).cmp(&(&b.rel_path, b.line, b.rule)));

    Report {
        files_scanned: files.len(),
        fallback_files,
        violations: final_violations,
    }
}

/// The v1 escape-hatch grammar plus the stale-allow audit.
///
/// * unknown rule or missing justification → `bad-allow` (as in v1);
/// * a well-formed allow that suppressed zero raw findings → `stale-allow`
///   (the scope it excused no longer triggers; the directive must go).
fn apply_allows(raw: Vec<Violation>, allows: &[AllowDirective], ctx: &FileCtx) -> Vec<Violation> {
    let mut out: Vec<Violation> = Vec::new();
    let mut suppressed_counts = vec![0usize; allows.len()];
    let mut kept: Vec<Violation> = Vec::new();

    for v in raw {
        let mut suppressed = false;
        for (di, d) in allows.iter().enumerate() {
            let covers = d.rule == v.rule
                && d.justification.is_some()
                && if d.trailing {
                    d.line == v.line
                } else {
                    d.line + 1 == v.line
                };
            if covers {
                suppressed_counts[di] += 1;
                suppressed = true;
            }
        }
        if !suppressed {
            kept.push(v);
        }
    }

    for (di, d) in allows.iter().enumerate() {
        if !RULES.contains(&d.rule.as_str()) {
            out.push(Violation {
                rule: "bad-allow",
                rel_path: ctx.rel_path.clone(),
                line: d.line,
                message: format!(
                    "`allow({})` names no simlint rule; known rules: {}",
                    d.rule,
                    RULES.join(", ")
                ),
            });
        } else if d.justification.is_none() {
            out.push(Violation {
                rule: "bad-allow",
                rel_path: ctx.rel_path.clone(),
                line: d.line,
                message: format!(
                    "`allow({})` requires a justification: \
                     `// simlint: allow({}): \"why this is sound\"`",
                    d.rule, d.rule
                ),
            });
        } else if suppressed_counts[di] == 0 && d.rule != "stale-allow" {
            out.push(Violation {
                rule: "stale-allow",
                rel_path: ctx.rel_path.clone(),
                line: d.line,
                message: format!(
                    "`allow({})` suppresses nothing on the line it covers; the code \
                     it excused is gone — delete the directive (stale allows hide \
                     future violations)",
                    d.rule
                ),
            });
        }
    }

    out.extend(kept);
    out
}
