//! Video: the Thousand Island Scanner (THIS) workload.
//!
//! The paper's Video benchmark performs distributed video processing:
//! chunks of a 5.2 MB TV-news clip are encoded and then classified by an
//! MXNET DNN, one chunk per serverless function. The kernel here mirrors
//! the two phases on synthetic frames:
//!
//! 1. **Encode** — per 8×8 block, a 2-D type-II DCT followed by JPEG-style
//!    quantization (the compute core of real video encoders);
//! 2. **Classify** — a small two-layer MLP over per-frame block statistics
//!    (stand-in for the DNN inference stage).
//!
//! Simulator calibration: `M_func = 0.25 GB` gives the paper's maximum
//! packing degree of 40 on a 10 GB Lambda (Fig. 8); the contention rate is
//! the Video curve of Fig. 4.

use crate::{mix64, WorkOutput, Workload};
use propack_platform::{ResourceKind, WorkProfile};

/// Frame geometry (pixels); kept modest so tests run in milliseconds.
const FRAME_W: usize = 64;
const FRAME_H: usize = 64;
/// 8×8 DCT blocks.
const BLOCK: usize = 8;

/// The Video workload.
#[derive(Debug, Clone)]
pub struct Video {
    /// Frames per invocation (one "chunk").
    pub frames: usize,
}

impl Default for Video {
    fn default() -> Self {
        Video { frames: 12 }
    }
}

/// JPEG luminance quantization table (standard Annex K values).
const QUANT: [[f32; 8]; 8] = [
    [16.0, 11.0, 10.0, 16.0, 24.0, 40.0, 51.0, 61.0],
    [12.0, 12.0, 14.0, 19.0, 26.0, 58.0, 60.0, 55.0],
    [14.0, 13.0, 16.0, 24.0, 40.0, 57.0, 69.0, 56.0],
    [14.0, 17.0, 22.0, 29.0, 51.0, 87.0, 80.0, 62.0],
    [18.0, 22.0, 37.0, 56.0, 68.0, 109.0, 103.0, 77.0],
    [24.0, 35.0, 55.0, 64.0, 81.0, 104.0, 113.0, 92.0],
    [49.0, 64.0, 78.0, 87.0, 103.0, 121.0, 120.0, 101.0],
    [72.0, 92.0, 95.0, 98.0, 112.0, 100.0, 103.0, 99.0],
];

/// Generate one synthetic luminance frame from a seed: smooth gradients
/// plus seeded texture, so DCT coefficients are non-trivial.
fn synth_frame(seed: u64, frame_idx: usize) -> Vec<f32> {
    let mut px = Vec::with_capacity(FRAME_W * FRAME_H);
    for y in 0..FRAME_H {
        for x in 0..FRAME_W {
            let h = mix64(seed ^ ((frame_idx as u64) << 40) ^ ((y as u64) << 20) ^ x as u64);
            let texture = (h % 64) as f32;
            let gradient = (x + 2 * y) as f32 * 0.7 + frame_idx as f32;
            px.push(texture + gradient);
        }
    }
    px
}

/// In-place 1-D type-II DCT of 8 samples (naive O(n²); n = 8).
fn dct8(v: &mut [f32; 8]) {
    let mut out = [0.0f32; 8];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (n, &x) in v.iter().enumerate() {
            acc += x * (std::f32::consts::PI / 8.0 * (n as f32 + 0.5) * k as f32).cos();
        }
        let scale = if k == 0 {
            (1.0f32 / 8.0).sqrt()
        } else {
            (2.0f32 / 8.0).sqrt()
        };
        *o = acc * scale;
    }
    v.copy_from_slice(&out);
}

/// 2-D DCT + quantization of one 8×8 block; returns quantized coefficients.
fn encode_block(frame: &[f32], bx: usize, by: usize) -> [i32; 64] {
    let mut block = [[0.0f32; 8]; 8];
    for (r, row) in block.iter_mut().enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            *v = frame[(by * BLOCK + r) * FRAME_W + bx * BLOCK + c] - 128.0;
        }
    }
    // Rows then columns.
    for row in block.iter_mut() {
        dct8(row);
    }
    #[allow(clippy::needless_range_loop)] // column transpose: indexing both axes is clearest
    for c in 0..8 {
        let mut col = [0.0f32; 8];
        for (r, slot) in col.iter_mut().enumerate() {
            *slot = block[r][c];
        }
        dct8(&mut col);
        for (r, &v) in col.iter().enumerate() {
            block[r][c] = v;
        }
    }
    let mut q = [0i32; 64];
    for r in 0..8 {
        for c in 0..8 {
            q[r * 8 + c] = (block[r][c] / QUANT[r][c]).round() as i32;
        }
    }
    q
}

/// Two-layer MLP over block statistics — the "DNN classification" stage.
/// Weights are fixed pseudo-random constants (a trained model stand-in).
fn classify(features: &[f32]) -> usize {
    const HIDDEN: usize = 16;
    const CLASSES: usize = 4;
    let mut hidden = [0.0f32; HIDDEN];
    for (j, h) in hidden.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (i, &f) in features.iter().enumerate() {
            let w = ((mix64((i as u64) << 32 | j as u64) % 2000) as f32 - 1000.0) / 1000.0;
            acc += f * w;
        }
        *h = acc.max(0.0); // ReLU
    }
    let mut best = (0usize, f32::NEG_INFINITY);
    for k in 0..CLASSES {
        let mut acc = 0.0;
        for (j, &h) in hidden.iter().enumerate() {
            let w = ((mix64(0xC1A5_5000 ^ (j as u64) << 16 | k as u64) % 2000) as f32 - 1000.0)
                / 1000.0;
            acc += h * w;
        }
        if acc > best.1 {
            best = (k, acc);
        }
    }
    best.0
}

impl Workload for Video {
    fn name(&self) -> &'static str {
        "Video"
    }

    fn profile(&self) -> WorkProfile {
        WorkProfile {
            name: "Video".to_string(),
            mem_gb: 0.25,
            base_exec_secs: 100.0,
            contention_per_gb: 0.18,
            storage_gb: 0.052, // 5.2 MB input chunk + encoded output, ×10 rounds
            storage_requests: 6,
            network_gb: 0.02,
            dependency_load_secs: 12.0, // MXNET DNN model load on a cold container
            resource_kind: ResourceKind::Cpu, // encode + DNN inference saturate cores
        }
    }

    fn run_once(&self, input_seed: u64) -> WorkOutput {
        let mut checksum = 0u64;
        let mut work_units = 0u64;
        for f in 0..self.frames {
            let frame = synth_frame(input_seed, f);
            let mut features = Vec::with_capacity((FRAME_W / BLOCK) * (FRAME_H / BLOCK));
            for by in 0..FRAME_H / BLOCK {
                for bx in 0..FRAME_W / BLOCK {
                    let q = encode_block(&frame, bx, by);
                    // Feature: quantized AC energy of the block.
                    let energy: i64 = q.iter().skip(1).map(|&c| (c as i64) * (c as i64)).sum();
                    features.push((energy as f32).ln_1p());
                    // Fold coefficients into an order-independent checksum.
                    let mut h = 0u64;
                    for (i, &c) in q.iter().enumerate() {
                        h ^= mix64((c as u64) << 8 | i as u64);
                    }
                    checksum ^= mix64(h ^ ((bx as u64) << 32) ^ ((by as u64) << 16) ^ f as u64);
                    work_units += 1;
                }
            }
            let class = classify(&features);
            checksum ^= mix64((class as u64) << 48 ^ f as u64 ^ input_seed);
        }
        WorkOutput {
            checksum,
            work_units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_of_constant_block_is_dc_only() {
        let mut v = [10.0f32; 8];
        dct8(&mut v);
        // DC coefficient = 10 * 8 / sqrt(8) = 10*sqrt(8).
        assert!((v[0] - 10.0 * 8.0f32.sqrt()).abs() < 1e-3);
        for &ac in &v[1..] {
            assert!(ac.abs() < 1e-4, "AC leakage {ac}");
        }
    }

    #[test]
    fn dct_parseval_energy_preserved() {
        // Orthonormal DCT preserves the L2 norm.
        let mut v = [3.0, -1.0, 4.0, 1.0, -5.0, 9.0, 2.0, -6.0];
        let before: f32 = v.iter().map(|x| x * x).sum();
        dct8(&mut v);
        let after: f32 = v.iter().map(|x| x * x).sum();
        assert!((before - after).abs() / before < 1e-4);
    }

    #[test]
    fn encode_block_quantizes_high_frequencies_away() {
        // A smooth gradient block should produce mostly-zero high-frequency
        // quantized coefficients.
        let frame = synth_frame(1, 0);
        let q = encode_block(&frame, 0, 0);
        let high_zeros = q[32..].iter().filter(|&&c| c == 0).count();
        assert!(high_zeros > 16, "only {high_zeros} zero high-freq coeffs");
    }

    #[test]
    fn classifier_is_deterministic_and_bounded() {
        let feats: Vec<f32> = (0..64).map(|i| (i as f32 * 0.1).sin()).collect();
        let a = classify(&feats);
        let b = classify(&feats);
        assert_eq!(a, b);
        assert!(a < 4);
    }

    #[test]
    fn kernel_work_units_match_block_count() {
        let v = Video { frames: 2 };
        let out = v.run_once(5);
        let blocks_per_frame = (FRAME_W / BLOCK) * (FRAME_H / BLOCK);
        assert_eq!(out.work_units, (2 * blocks_per_frame) as u64);
    }

    #[test]
    fn profile_matches_paper_calibration() {
        let p = Video::default().profile();
        assert_eq!(p.max_packing_degree(10.0), 40);
        assert_eq!(p.base_exec_secs, 100.0);
    }
}
