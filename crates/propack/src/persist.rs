//! Model persistence: save fitted models, skip re-profiling.
//!
//! §2.2's amortization argument ("this overhead will be much lower due to
//! amortization over thousands of applications and runs") only pays off if
//! fitted models survive the process that built them. A [`SavedModel`] is
//! the JSON-serializable closure of everything `Propack` learned —
//! interference fit, scaling fit, cost factors, feasible degree cap, and
//! the overhead already spent — so a later session can plan immediately
//! and keep the overhead books accurate.

use crate::model::PackingModel;
use crate::profiler::Overhead;
use crate::propack::Propack;
use propack_platform::WorkProfile;
use serde::{Deserialize, Serialize};

/// Serializable snapshot of a built [`Propack`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedModel {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The fitted analytical model.
    pub model: PackingModel,
    /// Profiling overhead already paid (carried into future accounting).
    pub overhead: Overhead,
    /// The application the model describes.
    pub work: WorkProfile,
    /// Platform the model was fitted on.
    pub platform_name: String,
}

/// Current snapshot format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors from loading a snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// The JSON was malformed.
    Json(serde_json::Error),
    /// The snapshot's format version is not supported.
    Version {
        /// Version found in the snapshot.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Json(e) => write!(f, "malformed model snapshot: {e}"),
            PersistError::Version { found, supported } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (supported: {supported})"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl Propack {
    /// Snapshot the fitted models as JSON.
    pub fn to_json(&self) -> Result<String, PersistError> {
        let saved = SavedModel {
            version: FORMAT_VERSION,
            model: self.model,
            overhead: self.overhead,
            work: self.work.clone(),
            platform_name: self.platform_name.clone(),
        };
        serde_json::to_string_pretty(&saved).map_err(PersistError::Json)
    }

    /// Restore a ProPack instance from a snapshot, skipping all profiling.
    pub fn from_json(json: &str) -> Result<Self, PersistError> {
        let saved: SavedModel = serde_json::from_str(json).map_err(PersistError::Json)?;
        if saved.version != FORMAT_VERSION {
            return Err(PersistError::Version {
                found: saved.version,
                supported: FORMAT_VERSION,
            });
        }
        Ok(Propack {
            model: saved.model,
            overhead: saved.overhead,
            work: saved.work,
            platform_name: saved.platform_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Objective;
    use crate::propack::ProPackConfig;
    use propack_platform::PlatformBuilder;

    #[test]
    #[cfg_attr(
        feature = "offline-stub",
        ignore = "requires real serde_json (offline stub cannot serialize)"
    )]
    fn round_trip_preserves_plans() {
        let platform = PlatformBuilder::aws().build();
        let work = WorkProfile::synthetic("w", 0.25, 100.0).with_contention(0.2);
        let original = Propack::build(&platform, &work, &ProPackConfig::default()).unwrap();
        let restored = Propack::from_json(&original.to_json().unwrap()).unwrap();
        // JSON float formatting may drift by one ULP; equality must hold at
        // the decision level, not bitwise.
        assert_eq!(original.model.p_max, restored.model.p_max);
        assert!(
            (original.model.interference.rate - restored.model.interference.rate).abs() < 1e-12
        );
        for c in [100u32, 1000, 5000] {
            let a = original.plan(c, Objective::default()).unwrap();
            let b = restored.plan(c, Objective::default()).unwrap();
            assert_eq!(a.packing_degree, b.packing_degree, "C={c}");
            assert_eq!(a.instances, b.instances);
            assert!((a.predicted_service_secs - b.predicted_service_secs).abs() < 1e-9);
            assert!((a.predicted_expense_usd - b.predicted_expense_usd).abs() < 1e-9);
        }
        // Overhead accounting carries over.
        assert_eq!(original.overhead, restored.overhead);
    }

    #[test]
    #[cfg_attr(
        feature = "offline-stub",
        ignore = "requires real serde_json (offline stub cannot parse)"
    )]
    fn malformed_json_rejected() {
        assert!(matches!(
            Propack::from_json("{not json"),
            Err(PersistError::Json(_))
        ));
    }

    #[test]
    #[cfg_attr(
        feature = "offline-stub",
        ignore = "requires real serde_json (offline stub cannot serialize)"
    )]
    fn wrong_version_rejected() {
        let platform = PlatformBuilder::aws().build();
        let work = WorkProfile::synthetic("w", 0.25, 100.0);
        let pp = Propack::build(&platform, &work, &ProPackConfig::default()).unwrap();
        let bumped = pp
            .to_json()
            .unwrap()
            .replace("\"version\": 1", "\"version\": 99");
        assert!(matches!(
            Propack::from_json(&bumped),
            Err(PersistError::Version { found: 99, .. })
        ));
    }
}
