//! The seventh sweep axis, pinned end to end: a controller grid over the
//! bundled diurnal trace renders byte-identically at `--threads 1/4/8` and
//! across serial re-runs, the bare `ReplayEngine` replays bit-identically,
//! and the ISSUE's acceptance ordering (`oracle` <= `propack:ewma` <=
//! `fixed:P` on realized service time) holds on the bundled trace.

use propack_repro::prelude::*;
use propack_repro::workloads::Benchmarks;

fn bundled_sort_trace() -> ArrivalTrace {
    let traces = ArrivalTrace::bundled_diurnal().expect("bundled trace parses");
    ArrivalTrace::select(&traces, "sort")
        .expect("bundled trace carries a `sort` app")
        .clone()
}

fn controller_grid() -> SweepSpec {
    SweepSpec::new("replay-determinism")
        .platforms([PlatformAxis::Aws, PlatformAxis::FuncX])
        .workloads([Benchmarks::resolve("sort").expect("sort").profile()])
        .concurrency([1])
        .policies([PackingPolicy::NoPacking])
        .seeds([42, 43])
        .replay(ReplayGrid::new(bundled_sort_trace(), 60.0).qos_secs(140.0))
        .controllers(
            ["no-packing", "fixed:4", "propack:ewma", "oracle"]
                .map(|c| Controller::parse(c).expect("controller parses")),
        )
}

#[test]
fn controller_axis_renders_byte_identically_across_thread_counts() {
    let spec = controller_grid();
    let reference = SweepRunner::new().run(&spec).unwrap().render();
    // 2 platforms x 2 seeds x 4 controllers, every cell rendered (plus the
    // summary and header lines).
    assert_eq!(reference.lines().count(), spec.cell_count() + 2);
    assert!(!reference.contains("ERROR"), "{reference}");
    for threads in [4, 8] {
        let rendered = SweepRunner::new()
            .threads(threads)
            .run(&spec)
            .unwrap()
            .render();
        assert_eq!(
            reference.as_bytes(),
            rendered.as_bytes(),
            "threads={threads} replay output diverged from serial"
        );
    }
}

#[test]
fn serial_reruns_are_reproducible() {
    let spec = controller_grid();
    let a = SweepRunner::new().run(&spec).unwrap().render();
    let b = SweepRunner::new().run(&spec).unwrap().render();
    assert_eq!(a.as_bytes(), b.as_bytes());
}

#[test]
fn bare_engine_replays_bit_identically_and_ignores_the_host_clock() {
    let platform = PlatformBuilder::aws().build();
    let work = Benchmarks::resolve("sort").expect("sort").profile();
    let trace = bundled_sort_trace();
    let engine = ReplayEngine::new(ReplaySpec::default());
    let controller = Controller::parse("propack:ewma").unwrap();

    let models = ModelCache::new();
    let a = engine
        .run(&platform, &work, &trace, &controller, &models)
        .unwrap();
    let b = engine
        .run(&platform, &work, &trace, &controller, &models)
        .unwrap();
    assert_eq!(a.render(), b.render());

    // A ticking "clock" must change timing fields only, never the render.
    let tick = std::cell::Cell::new(0.0_f64);
    let clock = || {
        tick.set(tick.get() + 0.125);
        tick.get()
    };
    let timed = engine
        .run_with_clock(&platform, &work, &trace, &controller, &models, &clock)
        .unwrap();
    assert_eq!(a.render(), timed.render());
    assert!(timed.epochs.iter().all(|e| e.run_ms > 0.0));
}

#[test]
fn acceptance_ordering_holds_on_the_bundled_trace() {
    let platform = PlatformBuilder::aws().build();
    let work = Benchmarks::resolve("sort").expect("sort").profile();
    let trace = bundled_sort_trace();
    let engine = ReplayEngine::new(ReplaySpec::default());
    let models = ModelCache::new();

    let total = |name: &str| {
        let controller = Controller::parse(name).unwrap();
        let report = engine
            .run(&platform, &work, &trace, &controller, &models)
            .unwrap();
        assert_eq!(report.error_count(), 0, "{name}: epochs failed");
        report.total_service_secs()
    };
    let oracle = total("oracle");
    let ewma = total("propack:ewma");
    let fixed = total("fixed:4");
    assert!(
        oracle <= ewma && ewma <= fixed,
        "service-time ordering violated: oracle {oracle:.1} <= propack:ewma \
         {ewma:.1} <= fixed:4 {fixed:.1} expected"
    );
    // Hindsight planning and one-epoch-lag forecasting must genuinely beat
    // the constant degree, not tie it.
    assert!(fixed - ewma > 1.0, "ewma {ewma:.1} vs fixed {fixed:.1}");
}
