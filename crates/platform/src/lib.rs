//! Discrete-event serverless platform simulator.
//!
//! This crate stands in for AWS Lambda, Google Cloud Functions, and
//! Microsoft Azure Functions in the ProPack reproduction. The paper's
//! experiments observe three empirical regularities (Figs. 1–7):
//!
//! 1. **Scaling time** (first-instance provision → last-instance start)
//!    grows as a strong second-order polynomial of the number of concurrent
//!    instances, independent of application code (Eq. 2, Fig. 5b);
//! 2. **Execution time** of one instance is flat in the concurrency level
//!    (< 5 % variation, Fig. 5a) but grows ≈ exponentially with the packing
//!    degree (Eq. 1, Fig. 4);
//! 3. **Billing** covers execution only — queueing/scaling delay is never
//!    billed — at a GB·second rate plus per-request and storage fees (and a
//!    per-GB network fee on Google/Azure, Fig. 21).
//!
//! Rather than hard-coding those formulas, the simulator reproduces them
//! *mechanistically* (see `DESIGN.md` §5): a centralized scheduler whose
//! per-placement search cost grows with in-flight placements (→ quadratic
//! term), a finite-bandwidth image-build server and shipping fabric
//! (→ linear terms), per-instance microVMs with strong isolation (→ flat
//! execution time), and core/memory contention inside an instance
//! (→ convex packing interference). ProPack itself only ever sees
//! `(timestamps, bill)` — exactly what it would see on the real cloud.
//!
//! Entry point: build a [`CloudPlatform`] with [`builder::PlatformBuilder`]
//! and call [`ServerlessPlatform::run_burst`].
//!
//! ```
//! use propack_platform::prelude::*;
//!
//! let platform = PlatformBuilder::aws().build();
//! let work = WorkProfile::synthetic("noop", 0.25, 10.0);
//! let report = platform
//!     .run_burst(&BurstSpec::new(work, 100, 1).with_seed(7))
//!     .unwrap();
//! assert_eq!(report.instances.len(), 100);
//! assert!(report.scaling_time() > 0.0);
//! ```

pub mod billing;
pub mod builder;
pub mod burst;
pub mod error;
pub mod fleet;
pub mod instance;
pub mod mixed;
pub mod platform;
pub mod profile;
pub mod report;
pub mod request;
pub mod warmpool;
pub mod work;

pub use builder::PlatformBuilder;
pub use burst::BurstSpec;
pub use error::PlatformError;
pub use mixed::{InterferenceMatrix, MixSpec, MixedBurstSpec, MixedRunOutcome};
pub use platform::{CloudPlatform, InstanceLimits, ServerlessPlatform};
pub use profile::{PlatformProfile, Provider};
pub use report::{FaultSummary, InstanceRecord, RunReport, ScalingBreakdown};
pub use request::{BurstRequest, BurstRun, GrantedRun};
pub use warmpool::{
    KeepAlivePolicy, PoolGrant, PoolSnapshot, WarmPool, WarmPoolConfig, WarmPoolStats,
};
pub use work::{ResourceKind, WorkProfile};

// Fault-injection inputs live in the simulation core (the draws must come
// from its seeded RNG tree); re-exported here so downstream crates that
// only depend on the platform can configure faulted bursts.
pub use propack_simcore::{FaultSpec, RetryPolicy};

/// One-stop imports for platform construction and burst execution.
///
/// `use propack_platform::prelude::*;` brings in everything a typical
/// experiment needs: the builder, the trait, the spec/report types, and the
/// calibration structs.
pub mod prelude {
    pub use crate::builder::PlatformBuilder;
    pub use crate::burst::BurstSpec;
    pub use crate::error::PlatformError;
    pub use crate::mixed::{InterferenceMatrix, MixSpec, MixedBurstSpec, MixedRunOutcome};
    pub use crate::platform::{CloudPlatform, InstanceLimits, ServerlessPlatform};
    pub use crate::profile::{PlatformProfile, PriceSheet, Provider};
    pub use crate::report::{FaultSummary, RunReport};
    pub use crate::request::{BurstRequest, BurstRun, GrantedRun};
    pub use crate::warmpool::{KeepAlivePolicy, PoolGrant, PoolSnapshot, WarmPool, WarmPoolConfig};
    pub use crate::work::{ResourceKind, WorkProfile};
    pub use propack_simcore::{FaultSpec, RetryPolicy};
}
