//! Structural smoke tests for the figure harness. The full regeneration is
//! exercised by `repro_all` (and timed by the Criterion `figures` bench);
//! these tests cover the cheap experiments so `cargo test` stays fast while
//! still validating the harness plumbing and the headline shape claims.

use crate::{run_experiment, ALL_EXPERIMENTS};

#[test]
fn experiment_ids_unique_and_complete() {
    let mut ids = ALL_EXPERIMENTS.to_vec();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), ALL_EXPERIMENTS.len(), "duplicate experiment ids");
    assert_eq!(ALL_EXPERIMENTS.len(), 21);
    assert!(run_experiment("fig99").is_none());
}

#[test]
fn fig02_breakdown_components_grow() {
    let tables = run_experiment("fig02").expect("fig02");
    assert_eq!(tables.len(), 1);
    let t = &tables[0];
    assert_eq!(t.headers.len(), 4);
    assert_eq!(t.rows.len(), 5, "five concurrency levels");
    assert!(
        t.notes.iter().any(|n| n.contains("monotone: true")),
        "{:?}",
        t.notes
    );
}

#[test]
fn fig07_expense_non_monotonic() {
    let tables = run_experiment("fig07").expect("fig07");
    let t = &tables[0];
    assert!(!t.rows.is_empty());
    // Every app's note must confirm an interior expense minimum.
    let confirms = t
        .notes
        .iter()
        .filter(|n| n.contains("non-monotonic: true"))
        .count();
    assert_eq!(confirms, 3, "{:?}", t.notes);
}

#[test]
fn fig04_fit_errors_are_small() {
    let tables = run_experiment("fig04").expect("fig04");
    assert_eq!(tables.len(), 3, "one table per primary benchmark");
    for t in &tables {
        assert!(t.rows.len() >= 8, "{} has too few sample rows", t.title);
        // The error column is the 4th; all entries under 10 %.
        for row in &t.rows {
            let err: f64 = row[3].trim_end_matches('%').parse().unwrap();
            assert!(err < 10.0, "{}: fit error {err}% in {row:?}", t.title);
        }
    }
}

#[test]
#[cfg_attr(
    feature = "offline-stub",
    ignore = "requires real serde_json (offline stub cannot serialize)"
)]
fn tables_render_and_serialize() {
    let tables = run_experiment("fig02").expect("fig02");
    for t in &tables {
        let json = t.to_json();
        assert!(json.contains(&t.id));
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["rows"].as_array().unwrap().len(), t.rows.len());
    }
}
