//! A small Rust token scanner for `simlint`.
//!
//! This is not a full parser: simlint's rules are expressible over a token
//! stream plus a little context (brace depth, attribute lookahead), so a
//! hand-rolled lexer keeps the xtask crate dependency-free. The lexer
//! understands everything that can *hide* tokens from a naive text search —
//! strings (including raw strings), char literals vs. lifetimes, nested
//! block comments, doc comments — which is exactly what grep-based "lints"
//! get wrong.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Identifier text, operator spelling, or literal text.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

/// Token categories simlint distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    Ident,
    IntLit,
    FloatLit,
    StrLit,
    CharLit,
    Lifetime,
    Punct,
    /// `///` or `/** */` outer doc, `//!` or `/*! */` inner doc.
    DocComment,
}

/// A `// simlint: allow(<rule>): "why"` directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// Rule name inside `allow(...)`.
    pub rule: String,
    /// The justification string, if one was given.
    pub justification: Option<String>,
    /// Line the directive appears on.
    pub line: u32,
    /// Whether the comment had code before it on the same line (trailing
    /// comment) — a trailing allow covers its own line, a standalone allow
    /// covers the next code line.
    pub trailing: bool,
}

/// Lexer output: the token stream plus comment-derived side channels.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<AllowDirective>,
}

/// Lex a Rust source file. Unterminated constructs are tolerated (the
/// remainder of the file is consumed); simlint lints the workspace, it does
/// not validate it — rustc does that.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    line_has_code: bool,
    out: Lexed,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            line_has_code: false,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.line_has_code = false;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.line_has_code = true;
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_lit(),
                'r' | 'b' if self.raw_or_byte_prefix() => {}
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.line_has_code;
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        let body = &text[2..];
        let is_doc = (body.starts_with('/') && !body.starts_with("//")) || body.starts_with('!');
        if is_doc {
            self.out.tokens.push(Token {
                kind: TokenKind::DocComment,
                text,
                line,
            });
        } else if let Some(d) = parse_allow(body, line, trailing) {
            self.out.allows.push(d);
        }
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        // `/**/` is not a doc comment; `/**` and `/*!` are.
        let is_doc =
            (text.starts_with("/**") && !text.starts_with("/**/")) || text.starts_with("/*!");
        if is_doc {
            self.out.tokens.push(Token {
                kind: TokenKind::DocComment,
                text,
                line,
            });
        }
    }

    fn string_lit(&mut self) {
        let line = self.line;
        self.bump();
        let start = self.pos;
        let mut end = self.pos;
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
            end = self.pos;
        }
        // Inner text, escapes unprocessed (lane names contain none).
        let text: String = self.chars[start..end].iter().collect();
        self.push(TokenKind::StrLit, text, line);
    }

    /// Handle `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'`, and raw idents
    /// (`r#ident`). Returns true if it consumed anything.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let c0 = self.peek(0);
        let line = self.line;
        // b'…' byte char
        if c0 == Some('b') && self.peek(1) == Some('\'') {
            self.bump();
            self.bump();
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokenKind::CharLit, String::new(), line);
            return true;
        }
        // b"…" byte string
        if c0 == Some('b') && self.peek(1) == Some('"') {
            self.bump();
            self.string_lit();
            return true;
        }
        // r#ident raw identifier
        if c0 == Some('r')
            && self.peek(1) == Some('#')
            && self.peek(2).is_some_and(|c| c == '_' || c.is_alphabetic())
        {
            self.bump();
            self.bump();
            self.ident();
            return true;
        }
        // r"…" / r#"…"# / br"…" / br#"…"# raw strings
        let offset = match (c0, self.peek(1)) {
            (Some('r'), Some('"' | '#')) => 1,
            (Some('b'), Some('r')) if matches!(self.peek(2), Some('"' | '#')) => 2,
            _ => return false,
        };
        let mut hashes = 0usize;
        while self.peek(offset + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(offset + hashes) != Some('"') {
            return false;
        }
        for _ in 0..offset + hashes + 1 {
            self.bump();
        }
        let start = self.pos;
        let mut end = self.pos;
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            end = self.pos;
        }
        let text: String = self.chars[start..end].iter().collect();
        self.push(TokenKind::StrLit, text, line);
        true
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // 'a' / '\n' are char literals; 'a / 'static are lifetimes or labels.
        let is_char = matches!(
            (self.peek(1), self.peek(2)),
            (Some('\\'), _) | (Some(_), Some('\''))
        );
        if is_char {
            self.bump();
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokenKind::CharLit, String::new(), line);
        } else {
            self.bump();
            let start = self.pos;
            while self
                .peek(0)
                .is_some_and(|c| c == '_' || c.is_alphanumeric())
            {
                self.bump();
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            self.push(TokenKind::Lifetime, text, line);
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        let mut float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            self.bump();
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c == '_' || c.is_ascii_alphanumeric())
            {
                self.bump();
            }
        } else {
            while self.peek(0).is_some_and(|c| c == '_' || c.is_ascii_digit()) {
                self.bump();
            }
            // A dot makes it a float unless it's `..` or a method/field access.
            if self.peek(0) == Some('.')
                && self.peek(1) != Some('.')
                && !self.peek(1).is_some_and(|c| c == '_' || c.is_alphabetic())
            {
                float = true;
                self.bump();
                while self.peek(0).is_some_and(|c| c == '_' || c.is_ascii_digit()) {
                    self.bump();
                }
            }
            if matches!(self.peek(0), Some('e' | 'E')) {
                let sign = matches!(self.peek(1), Some('+' | '-'));
                let digits_at = if sign { 2 } else { 1 };
                if self.peek(digits_at).is_some_and(|c| c.is_ascii_digit()) {
                    float = true;
                    self.bump();
                    if sign {
                        self.bump();
                    }
                    while self.peek(0).is_some_and(|c| c == '_' || c.is_ascii_digit()) {
                        self.bump();
                    }
                }
            }
            // Type suffix: f32/f64 forces float; integer suffixes keep int.
            if self.peek(0) == Some('f') && (self.slice_matches("f32") || self.slice_matches("f64"))
            {
                float = true;
            }
            while self
                .peek(0)
                .is_some_and(|c| c == '_' || c.is_ascii_alphanumeric())
            {
                self.bump();
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        let kind = if float {
            TokenKind::FloatLit
        } else {
            TokenKind::IntLit
        };
        self.push(kind, text, line);
    }

    fn slice_matches(&self, s: &str) -> bool {
        s.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c))
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c == '_' || c.is_alphanumeric())
        {
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokenKind::Ident, text, line);
    }

    fn punct(&mut self) {
        const MULTI: [&str; 21] = [
            "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..",
            "+=", "-=", "*=", "/=", "%=", "<<", ">>",
        ];
        let line = self.line;
        for op in MULTI {
            if self.slice_matches(op) {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(TokenKind::Punct, op.to_string(), line);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(TokenKind::Punct, c.to_string(), line);
        }
    }
}

/// Parse a `simlint: allow(<rule>): "why"` directive from a line-comment
/// body (the text after `//`).
fn parse_allow(body: &str, line: u32, trailing: bool) -> Option<AllowDirective> {
    let rest = body.trim_start().strip_prefix("simlint:")?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim_start();
    let justification = tail.strip_prefix(':').and_then(|t| {
        let t = t.trim_start();
        let inner = t.strip_prefix('"')?;
        let end = inner.find('"')?;
        let j = inner[..end].trim();
        (!j.is_empty()).then(|| j.to_string())
    });
    Some(AllowDirective {
        rule,
        justification,
        line,
        trailing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in a block /* nested */ comment */
            let s = "HashMap::new()";
            let r = r#"Instant::now in a raw string"#;
            let real = Real::thing();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(ids.contains(&"Real".to_string()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn floats_vs_ints_vs_ranges() {
        let toks = lex("let a = 1.5; let b = 2; let c = 0..10; let d = 1e-3; let e = x.0;").tokens;
        let floats: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::FloatLit)
            .map(|t| &t.text)
            .collect();
        let ints: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::IntLit)
            .map(|t| &t.text)
            .collect();
        assert_eq!(floats, ["1.5", "1e-3"]);
        assert_eq!(ints, ["2", "0", "10", "0"]);
    }

    #[test]
    fn method_call_on_int_is_not_float() {
        let toks = lex("let m = 1.max(2);").tokens;
        assert!(toks.iter().all(|t| t.kind != TokenKind::FloatLit));
    }

    #[test]
    fn doc_comments_are_separate_tokens() {
        let lexed = lex("/// cites Fig. 2\npub const X: u32 = 1;\n");
        assert_eq!(lexed.tokens[0].kind, TokenKind::DocComment);
        assert!(lexed.tokens[0].text.contains("Fig. 2"));
    }

    #[test]
    fn allow_directives_parse() {
        let lexed = lex(
            "let x = a == 0.0; // simlint: allow(float-eq): \"exact zero guard\"\n\
             // simlint: allow(hash-map)\n\
             let y = 1;\n",
        );
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].rule, "float-eq");
        assert_eq!(
            lexed.allows[0].justification.as_deref(),
            Some("exact zero guard")
        );
        assert!(lexed.allows[0].trailing);
        assert_eq!(lexed.allows[1].rule, "hash-map");
        assert_eq!(lexed.allows[1].justification, None);
        assert!(!lexed.allows[1].trailing);
    }

    #[test]
    fn equality_operators_lex_whole() {
        let ops: Vec<String> = lex("a == b != c <= d >= e => f .. g ..= h")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(ops, ["==", "!=", "<=", ">=", "=>", "..", "..="]);
    }
}
