//! Run reports: everything an experiment needs to know about one burst.

use crate::billing::Expense;
use propack_stats::percentile::{quantile_sorted, Percentile};
use propack_stats::Summary;
use serde::{Deserialize, Serialize};

/// Per-instance lifecycle timestamps (seconds since burst submission).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceRecord {
    /// Instance index within the burst.
    pub index: u32,
    /// When the scheduler finished placing this instance.
    pub scheduled_at: f64,
    /// When its container/microVM finished building.
    pub built_at: f64,
    /// When the container arrived at its execution server.
    pub shipped_at: f64,
    /// When function code began executing (start of billing; first attempt
    /// under retries).
    pub started_at: f64,
    /// When execution finished (end of billing; final attempt under
    /// retries — the end of the last attempt for abandoned instances).
    pub finished_at: f64,
    /// Whether the instance skipped build+ship (warm container).
    pub warm: bool,
    /// Billed execution seconds: the sum of all attempt durations,
    /// including crashed partial runs. Backoff gaps between attempts sit
    /// inside the `started_at..finished_at` span but are never billed.
    /// Equals [`InstanceRecord::exec_secs`] for fault-free instances.
    #[serde(default)]
    pub billed_secs: f64,
    /// Whether the instance exhausted its retries and abandoned its work
    /// (its functions are reported as failed, not silently completed).
    #[serde(default)]
    pub failed: bool,
}

impl InstanceRecord {
    /// Observed execution span (first attempt start → final attempt end,
    /// including retries and backoff). Billing uses
    /// [`InstanceRecord::billed_secs`] instead, which excludes backoff.
    pub fn exec_secs(&self) -> f64 {
        self.finished_at - self.started_at
    }
}

/// Fault and retry counters for one burst. All-zero for fault-free runs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Execution attempts that crashed mid-run.
    pub crashes: u64,
    /// Cold-provision attempts that failed.
    pub provision_failures: u64,
    /// Shipping transfers that stalled.
    pub ship_stalls: u64,
    /// Instances slowed down for their whole lifetime.
    pub stragglers: u64,
    /// Retries consumed (both crash re-executions and provision re-boots).
    pub retries: u64,
    /// Functions whose instance ran out of attempts or retry budget; the
    /// burst completed *partially* — callers must check
    /// [`RunReport::is_partial`].
    pub failed_functions: u64,
}

impl FaultSummary {
    /// Accumulate another burst's counters into this one (used when a
    /// strategy or orchestrator aggregates multiple bursts).
    pub fn merge(&mut self, other: &FaultSummary) {
        self.crashes += other.crashes;
        self.provision_failures += other.provision_failures;
        self.ship_stalls += other.ship_stalls;
        self.stragglers += other.stragglers;
        self.retries += other.retries;
        self.failed_functions += other.failed_functions;
    }

    /// Total fault events of any kind (excluding the derived retry/failure
    /// counters).
    pub fn total_faults(&self) -> u64 {
        self.crashes + self.provision_failures + self.ship_stalls + self.stragglers
    }
}

/// Scaling-time breakdown in the paper's Fig. 2 decomposition.
///
/// Components are measured as **per-stage aggregate service time** — the
/// time the scheduler spent placing all instances, the image server spent
/// building, the fabric spent shipping. The stages pipeline in the control
/// plane, so end-to-end scaling time ([`ScalingBreakdown::total`]) is the
/// measured last-instance start, not the sum of component times. Fig. 2's
/// claim — each component grows with concurrency — holds for these
/// aggregates (quadratic, linear, linear respectively).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ScalingBreakdown {
    /// Scheduling time: submission → last placement decision (quadratic in
    /// the instance count).
    pub scheduling_secs: f64,
    /// Start-up time: aggregate container-build service time (linear).
    pub startup_secs: f64,
    /// Shipping time: aggregate container-shipping service time (linear).
    pub shipping_secs: f64,
    /// Provisioning: additional end-to-end span from last container arrival
    /// to last instance start (microVM boot + runtime init).
    pub provisioning_secs: f64,
    /// End-to-end scaling time: first-instance provision → last-instance
    /// start, measured on the pipelined timeline (the paper's §1
    /// definition).
    pub total_secs: f64,
}

impl ScalingBreakdown {
    /// End-to-end scaling time (time until the last instance starts,
    /// including the first instance's provisioning delay — §1).
    pub fn total(&self) -> f64 {
        self.total_secs
    }
}

/// The outcome of one burst.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Platform display name.
    pub platform: String,
    /// Workload display name.
    pub workload: String,
    /// Requested instance count (`C_eff`).
    pub instances_requested: u32,
    /// Packing degree used.
    pub packing_degree: u32,
    /// Per-instance lifecycle records, in instance order.
    pub instances: Vec<InstanceRecord>,
    /// Scaling-time decomposition.
    pub scaling: ScalingBreakdown,
    /// Itemized bill.
    pub expense: Expense,
    /// Fault/retry counters (all zero when fault injection is off).
    #[serde(default)]
    pub faults: FaultSummary,
}

impl RunReport {
    /// Scaling time: start of first instance to start of last instance plus
    /// the provisioning delay of the first (§1). Since the burst is
    /// submitted at t = 0, this is simply the latest start timestamp.
    pub fn scaling_time(&self) -> f64 {
        self.instances
            .iter()
            .map(|i| i.started_at)
            .fold(0.0, f64::max)
    }

    /// Service time at the given figure of merit: completion time of all /
    /// first 95 % / first 50 % of instances (§3).
    pub fn service_time(&self, metric: Percentile) -> f64 {
        let mut finishes: Vec<f64> = self.instances.iter().map(|i| i.finished_at).collect();
        finishes.sort_by(f64::total_cmp);
        if finishes.is_empty() {
            return 0.0;
        }
        quantile_sorted(&finishes, metric.quantile())
    }

    /// Total service time (completion of all instances).
    pub fn total_service_time(&self) -> f64 {
        self.service_time(Percentile::Total)
    }

    /// Summary of per-instance execution durations.
    pub fn exec_summary(&self) -> Summary {
        let secs: Vec<f64> = self.instances.iter().map(|i| i.exec_secs()).collect();
        Summary::from_slice(&secs)
    }

    /// Sum of billed instance durations, in hours — the paper's Fig. 12
    /// "function hours" metric (HPC node-hour-style accounting). Uses
    /// billed seconds, so crashed partial attempts count but backoff gaps
    /// do not.
    pub fn function_hours(&self) -> f64 {
        self.instances.iter().map(|i| i.billed_secs).sum::<f64>() / 3600.0
    }

    /// Total functions this burst was asked to run.
    pub fn total_functions(&self) -> u64 {
        self.instances.len() as u64 * self.packing_degree as u64
    }

    /// Functions that actually completed (total minus abandoned).
    pub fn completed_functions(&self) -> u64 {
        self.total_functions()
            .saturating_sub(self.faults.failed_functions)
    }

    /// Whether the burst completed only partially (some instances ran out
    /// of retries and abandoned their functions).
    pub fn is_partial(&self) -> bool {
        self.faults.failed_functions > 0
    }

    /// Fraction of total service time spent scaling (Fig. 1's metric).
    pub fn scaling_fraction(&self) -> f64 {
        let total = self.total_service_time();
        if total <= 0.0 {
            0.0
        } else {
            self.scaling_time() / total
        }
    }

    /// Render the report as canonical, bit-exact text: every `f64` is
    /// emitted as the hex of its IEEE-754 bit pattern, so two reports render
    /// identically **iff** they are bit-identical. This is the format the
    /// golden replay fixtures (`tests/golden/`) and the kernel bench's
    /// `outputs_identical` check are pinned to — any kernel optimization
    /// that perturbs a single ULP of any timestamp shows up as a diff.
    pub fn canonical_text(&self) -> String {
        fn h(v: f64) -> String {
            format!("{:016x}", v.to_bits())
        }
        let mut out = String::with_capacity(64 + self.instances.len() * 128);
        out.push_str("golden-v1\n");
        out.push_str(&format!("platform\t{}\n", self.platform));
        out.push_str(&format!("workload\t{}\n", self.workload));
        out.push_str(&format!(
            "instances_requested\t{}\n",
            self.instances_requested
        ));
        out.push_str(&format!("packing_degree\t{}\n", self.packing_degree));
        out.push_str(&format!(
            "scaling\t{}\t{}\t{}\t{}\t{}\n",
            h(self.scaling.scheduling_secs),
            h(self.scaling.startup_secs),
            h(self.scaling.shipping_secs),
            h(self.scaling.provisioning_secs),
            h(self.scaling.total_secs),
        ));
        out.push_str(&format!(
            "expense\t{}\t{}\t{}\t{}\n",
            h(self.expense.compute_usd),
            h(self.expense.request_usd),
            h(self.expense.storage_usd),
            h(self.expense.network_usd),
        ));
        out.push_str(&format!(
            "faults\t{}\t{}\t{}\t{}\t{}\t{}\n",
            self.faults.crashes,
            self.faults.provision_failures,
            self.faults.ship_stalls,
            self.faults.stragglers,
            self.faults.retries,
            self.faults.failed_functions,
        ));
        out.push_str(&format!("instances\t{}\n", self.instances.len()));
        for r in &self.instances {
            out.push_str(&format!(
                "i\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                r.index,
                h(r.scheduled_at),
                h(r.built_at),
                h(r.shipped_at),
                h(r.started_at),
                h(r.finished_at),
                u8::from(r.warm),
                h(r.billed_secs),
                u8::from(r.failed),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: u32, start: f64, finish: f64) -> InstanceRecord {
        InstanceRecord {
            index: i,
            scheduled_at: start * 0.25,
            built_at: start * 0.5,
            shipped_at: start * 0.75,
            started_at: start,
            finished_at: finish,
            warm: false,
            billed_secs: finish - start,
            failed: false,
        }
    }

    fn report() -> RunReport {
        RunReport {
            platform: "test".into(),
            workload: "w".into(),
            instances_requested: 4,
            packing_degree: 1,
            instances: vec![
                record(0, 0.0, 10.0),
                record(1, 1.0, 11.0),
                record(2, 2.0, 12.0),
                record(3, 8.0, 18.0),
            ],
            scaling: ScalingBreakdown {
                scheduling_secs: 4.0,
                startup_secs: 2.0,
                shipping_secs: 1.0,
                provisioning_secs: 1.0,
                total_secs: 8.0,
            },
            expense: Expense::default(),
            faults: FaultSummary::default(),
        }
    }

    #[test]
    fn scaling_time_is_last_start() {
        assert_eq!(report().scaling_time(), 8.0);
    }

    #[test]
    fn breakdown_total_is_end_to_end() {
        let r = report();
        assert_eq!(r.scaling.total(), 8.0);
        assert_eq!(r.scaling.total(), r.scaling_time());
    }

    #[test]
    fn service_time_percentiles_ordered() {
        let r = report();
        let total = r.service_time(Percentile::Total);
        let tail = r.service_time(Percentile::Tail95);
        let med = r.service_time(Percentile::Median);
        assert_eq!(total, 18.0);
        assert!(total >= tail && tail >= med);
    }

    #[test]
    fn function_hours() {
        let r = report();
        // 4 instances × 10 s each = 40 s.
        assert!((r.function_hours() - 40.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn partial_completion_accounting() {
        let mut r = report();
        assert!(!r.is_partial());
        assert_eq!(r.total_functions(), 4);
        assert_eq!(r.completed_functions(), 4);
        r.packing_degree = 3;
        r.faults.failed_functions = 3;
        assert!(r.is_partial());
        assert_eq!(r.total_functions(), 12);
        assert_eq!(r.completed_functions(), 9);
    }

    #[test]
    fn billed_secs_excludes_backoff_gaps() {
        let mut r = report();
        // Instance 0 retried: its observed span stretches to 25 s but only
        // 12 s (two attempts) were billed.
        r.instances[0].finished_at = 25.0;
        r.instances[0].billed_secs = 12.0;
        r.faults.crashes = 1;
        r.faults.retries = 1;
        assert_eq!(r.instances[0].exec_secs(), 25.0);
        let expected = (12.0 + 10.0 + 10.0 + 10.0) / 3600.0;
        assert!((r.function_hours() - expected).abs() < 1e-12);
    }

    #[test]
    fn canonical_text_is_bit_exact() {
        let r = report();
        let a = r.canonical_text();
        assert_eq!(a, r.clone().canonical_text());
        assert_eq!(a.lines().count(), 9 + r.instances.len());
        // A one-ULP perturbation of any timestamp must change the render.
        let mut ulp = r.clone();
        ulp.instances[2].finished_at = f64::from_bits(ulp.instances[2].finished_at.to_bits() + 1);
        assert_ne!(a, ulp.canonical_text());
        // Negative zero and zero are distinct bit patterns: the render is
        // strictly bit-exact, not value-equal.
        let mut pz = r;
        pz.scaling.shipping_secs = 0.0;
        let mut nz = pz.clone();
        nz.scaling.shipping_secs = -0.0;
        assert_ne!(nz.canonical_text(), pz.canonical_text());
    }

    #[test]
    fn scaling_fraction_in_unit_interval() {
        let r = report();
        let f = r.scaling_fraction();
        assert!(f > 0.0 && f < 1.0);
        assert!((f - 8.0 / 18.0).abs() < 1e-12);
    }
}
