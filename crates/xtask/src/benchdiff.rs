//! `cargo xtask benchdiff` — the kernel-throughput regression gate.
//!
//! Compares the per-policy `cells_per_sec` figures of a freshly generated
//! `BENCH_kernel.json` against the committed baseline
//! (`crates/bench/baselines/kernel_baseline.json`) and fails when any group
//! regressed by more than the tolerance. Absolute throughput is noisy across
//! machines, so the gate is generous (30 % by default) — it exists to catch
//! accidental algorithmic regressions (an O(n) scan reintroduced on a hot
//! path), not scheduler jitter.
//!
//! Two per-group refinements, both read from the *baseline* document:
//!
//! * `"tolerance"` on a baseline group overrides the global `--tolerance`
//!   for that group only. Single-cell groups (the 100k faulted day) time one
//!   long run instead of averaging 16 cells, so they earn a wider band.
//! * `"max_rel_err_bound"` on a baseline group makes the gate *accuracy-
//!   aware*: the current run must carry a measured `"max_rel_err"` for that
//!   group, and it must not exceed the bound. This is how the fluid
//!   approximation cells gate on both speedup and fidelity — a fluid path
//!   that got faster by drifting from the exact results still fails.
//!
//! The parser is a line-oriented duplicate of
//! `propack_bench::kernel::parse_cells_per_sec`: xtask takes no
//! dependencies (not even on workspace crates), so it cannot link the bench
//! crate. Both sides rely on `BENCH_kernel.json` writing each group object
//! on one line carrying a `"policy"` and a `"cells_per_sec"` key, with the
//! optional per-group keys on the same line.

use std::path::Path;
use std::process::ExitCode;

/// One parsed bench group: throughput plus the optional per-group gate keys.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    pub policy: String,
    pub cells_per_sec: f64,
    /// Baseline-side per-group override of the global tolerance.
    pub tolerance: Option<f64>,
    /// Current-side measured approximation error (fluid groups).
    pub max_rel_err: Option<f64>,
    /// Baseline-side accuracy bound the current error must stay under.
    pub max_rel_err_bound: Option<f64>,
}

/// Extract every group (one JSON object per line) from a `BENCH_kernel.json`
/// or baseline document.
pub fn parse_groups(json: &str) -> Vec<Group> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(policy) = extract_str(line, "\"policy\": \"") else {
            continue;
        };
        let Some(cells_per_sec) = extract_f64(line, "\"cells_per_sec\": ") else {
            continue;
        };
        out.push(Group {
            policy,
            cells_per_sec,
            tolerance: extract_f64(line, "\"tolerance\": "),
            max_rel_err: extract_f64(line, "\"max_rel_err\": "),
            max_rel_err_bound: extract_f64(line, "\"max_rel_err_bound\": "),
        });
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_f64(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-' || ch == 'e' || ch == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One policy group's comparison outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance (or faster). Carries current/baseline ratio.
    Ok(f64),
    /// Regressed beyond tolerance. Carries current/baseline ratio and the
    /// tolerance that applied (global or per-group).
    Regressed(f64, f64),
    /// Policy present in the baseline but missing from the current run.
    Missing,
    /// The baseline demands an accuracy bound and the current run's
    /// measured error exceeds it. Carries `(measured, bound)`.
    ErrorExceeded(f64, f64),
    /// The baseline demands an accuracy bound but the current run reported
    /// no `max_rel_err` for the group. Carries the bound.
    ErrorUnmeasured(f64),
}

/// Compare current vs. baseline throughput per policy. Every baseline policy
/// must appear in the current document; policies new in the current document
/// pass (there is nothing to regress against). A baseline group may carry a
/// per-group `tolerance` (overriding `default_tolerance`) and a
/// `max_rel_err_bound` the current group's measured `max_rel_err` must stay
/// under — accuracy failures outrank throughput ones.
pub fn compare(
    current: &[Group],
    baseline: &[Group],
    default_tolerance: f64,
) -> Vec<(String, Verdict)> {
    baseline
        .iter()
        .map(|base| {
            let verdict = match current.iter().find(|g| g.policy == base.policy) {
                None => Verdict::Missing,
                Some(now) => {
                    let tolerance = base.tolerance.unwrap_or(default_tolerance);
                    let ratio = if base.cells_per_sec > 0.0 {
                        now.cells_per_sec / base.cells_per_sec
                    } else {
                        f64::INFINITY
                    };
                    match (base.max_rel_err_bound, now.max_rel_err) {
                        (Some(bound), None) => Verdict::ErrorUnmeasured(bound),
                        (Some(bound), Some(err)) if err > bound => {
                            Verdict::ErrorExceeded(err, bound)
                        }
                        _ if ratio < 1.0 - tolerance => Verdict::Regressed(ratio, tolerance),
                        _ => Verdict::Ok(ratio),
                    }
                }
            };
            (base.policy.clone(), verdict)
        })
        .collect()
}

/// Run the gate: parse both documents, compare, report to stderr.
pub fn run(current: &Path, baseline: &Path, tolerance: f64) -> ExitCode {
    let read = |path: &Path| -> Result<Vec<Group>, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let groups = parse_groups(&text);
        if groups.is_empty() {
            return Err(format!(
                "{}: no `policy`/`cells_per_sec` groups found",
                path.display()
            ));
        }
        Ok(groups)
    };
    let (current_groups, baseline_groups) = match (read(current), read(baseline)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failed = false;
    for (policy, verdict) in compare(&current_groups, &baseline_groups, tolerance) {
        match verdict {
            Verdict::Ok(ratio) => {
                eprintln!("benchdiff: {policy}: {:.2}x baseline — ok", ratio);
            }
            Verdict::Regressed(ratio, applied) => {
                failed = true;
                eprintln!(
                    "benchdiff: {policy}: {:.2}x baseline — REGRESSED beyond {:.0}% tolerance",
                    ratio,
                    applied * 100.0
                );
            }
            Verdict::Missing => {
                failed = true;
                eprintln!("benchdiff: {policy}: missing from current run — FAILED");
            }
            Verdict::ErrorExceeded(err, bound) => {
                failed = true;
                eprintln!(
                    "benchdiff: {policy}: max_rel_err {err:.6} exceeds bound {bound:.6} — FAILED"
                );
            }
            Verdict::ErrorUnmeasured(bound) => {
                failed = true;
                eprintln!(
                    "benchdiff: {policy}: baseline bounds max_rel_err at {bound:.6} but the \
                     current run reported none — FAILED"
                );
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!("benchdiff: within {:.0}% tolerance", tolerance * 100.0);
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "bench": "kernel",
  "groups": [
    {"policy": "no-packing", "cells": 8, "wall_secs": 0.1, "cells_per_sec": 80.0},
    {"policy": "propack-joint-0.5", "cells": 8, "wall_secs": 0.2, "cells_per_sec": 40.0}
  ]
}
"#;

    const FLUID_BASE: &str = r#"{
  "groups": [
    {"policy": "faulted-day", "cells": 1, "cells_per_sec": 0.5, "tolerance": 0.50},
    {"policy": "faulted-day-fluid", "cells": 1, "cells_per_sec": 2.0, "tolerance": 0.50, "max_rel_err_bound": 0.053}
  ]
}
"#;

    fn plain(policy: &str, cps: f64) -> Group {
        Group {
            policy: policy.to_string(),
            cells_per_sec: cps,
            tolerance: None,
            max_rel_err: None,
            max_rel_err_bound: None,
        }
    }

    #[test]
    fn parser_reads_groups() {
        let groups = parse_groups(DOC);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], plain("no-packing", 80.0));
        assert_eq!(groups[1], plain("propack-joint-0.5", 40.0));
    }

    #[test]
    fn parser_reads_per_group_gate_keys() {
        let groups = parse_groups(FLUID_BASE);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].tolerance, Some(0.50));
        assert_eq!(groups[0].max_rel_err_bound, None);
        assert_eq!(groups[1].max_rel_err_bound, Some(0.053));
        let current = parse_groups(
            r#"{"policy": "faulted-day-fluid", "cells_per_sec": 2.1, "max_rel_err": 0.012345}"#,
        );
        assert_eq!(current[0].max_rel_err, Some(0.012345));
    }

    #[test]
    fn within_tolerance_passes() {
        let base = parse_groups(DOC);
        let current = vec![
            plain("no-packing", 60.0),         // 0.75x: ok at 30%
            plain("propack-joint-0.5", 120.0), // faster: ok
        ];
        let verdicts = compare(&current, &base, 0.30);
        assert!(
            verdicts.iter().all(|(_, v)| matches!(v, Verdict::Ok(_))),
            "{verdicts:?}"
        );
    }

    #[test]
    fn beyond_tolerance_regresses() {
        let base = parse_groups(DOC);
        let current = vec![
            plain("no-packing", 80.0),
            plain("propack-joint-0.5", 20.0), // 0.5x: regressed
        ];
        let verdicts = compare(&current, &base, 0.30);
        assert_eq!(verdicts[0].1, Verdict::Ok(1.0));
        assert!(matches!(verdicts[1].1, Verdict::Regressed(r, _) if (r - 0.5).abs() < 1e-12));
    }

    #[test]
    fn per_group_tolerance_overrides_the_global_default() {
        let base = parse_groups(FLUID_BASE);
        // 0.6x the baseline: dead at the 30% global default, alive under the
        // group's own 50% band.
        let current = vec![
            plain("faulted-day", 0.3),
            Group {
                max_rel_err: Some(0.01),
                ..plain("faulted-day-fluid", 1.2)
            },
        ];
        let verdicts = compare(&current, &base, 0.30);
        assert!(
            verdicts.iter().all(|(_, v)| matches!(v, Verdict::Ok(_))),
            "{verdicts:?}"
        );
    }

    #[test]
    fn fluid_groups_gate_on_measured_error() {
        let base = parse_groups(FLUID_BASE);
        // Fast enough, but the measured error blows the bound.
        let current = vec![
            plain("faulted-day", 0.6),
            Group {
                max_rel_err: Some(0.20),
                ..plain("faulted-day-fluid", 4.0)
            },
        ];
        let verdicts = compare(&current, &base, 0.30);
        assert!(matches!(
            verdicts[1].1,
            Verdict::ErrorExceeded(e, b) if (e - 0.20).abs() < 1e-12 && (b - 0.053).abs() < 1e-12
        ));

        // No error reported at all: also a failure, never a silent pass.
        let current = vec![plain("faulted-day", 0.6), plain("faulted-day-fluid", 4.0)];
        let verdicts = compare(&current, &base, 0.30);
        assert!(matches!(verdicts[1].1, Verdict::ErrorUnmeasured(b) if (b - 0.053).abs() < 1e-12));
    }

    #[test]
    fn missing_policy_fails_and_new_policy_passes() {
        let base = parse_groups(DOC);
        let current = vec![plain("no-packing", 80.0), plain("brand-new-policy", 1.0)];
        let verdicts = compare(&current, &base, 0.30);
        assert_eq!(verdicts.len(), 2, "one verdict per baseline policy");
        assert!(matches!(verdicts[1].1, Verdict::Missing));
    }
}
