//! QoS-bounded search serving: the Xapian scenario (paper Fig. 20).
//!
//! ```sh
//! cargo run --release --example latency_qos
//! ```
//!
//! A latency-critical search service wants packing's cost savings but has
//! a hard bound on 95th-percentile service time. ProPack searches the
//! objective-weight space (Eqs. 8–9) for the most expense-friendly split
//! that still meets the bound.

use propack_repro::platform::PlatformBuilder;
use propack_repro::platform::{BurstSpec, ServerlessPlatform};
use propack_repro::propack::optimizer::Objective;
use propack_repro::propack::propack::{ProPackConfig, Propack};
use propack_repro::stats::percentile::Percentile;
use propack_repro::workloads::xapian::{Corpus, Xapian};
use propack_repro::workloads::Workload;

fn main() {
    // --- What one function does: real BM25 search over an index shard. ---
    let corpus = Corpus::synthetic(3, 400, 80);
    println!(
        "index shard: {} documents; sample query results:",
        corpus.len()
    );
    for (rank, (doc, score)) in corpus.search(&[12, 55, 700], 5).iter().enumerate() {
        println!("  #{rank}: doc {doc} (bm25 {score:.3})");
    }

    // --- The serving fleet. ---
    let platform = PlatformBuilder::aws().build();
    let work = Xapian::default().profile();
    let c = 5000;
    let pp = Propack::build(&platform, &work, &ProPackConfig::default()).expect("build");

    // Unconstrained objectives for reference.
    let svc = pp
        .plan_with_metric(c, Objective::ServiceTime, Percentile::Tail95)
        .expect("service plan");
    let exp = pp
        .plan_with_metric(c, Objective::Expense, Percentile::Tail95)
        .expect("expense plan");
    println!(
        "\nservice-only plan: degree {:2} (tail {:.0}s)   expense-only plan: degree {:2} (tail {:.0}s)",
        svc.packing_degree, svc.predicted_service_secs,
        exp.packing_degree, exp.predicted_service_secs
    );

    // QoS bound between the two extremes.
    let qos = svc.predicted_service_secs * 1.04;
    println!("QoS bound on tail service time: {qos:.0}s");
    match pp.plan_with_qos(c, qos) {
        Ok((plan, w_s)) => {
            println!(
                "QoS-aware plan: W_S = {w_s:.2}, degree {} (predicted tail {:.0}s)",
                plan.packing_degree, plan.predicted_service_secs
            );
            // Execute and verify the bound on the measured tail.
            let spec = BurstSpec::packed(work.clone(), c, plan.packing_degree).with_seed(1);
            let report = platform.run_burst(&spec).expect("run");
            let tail = report.service_time(Percentile::Tail95);
            println!(
                "measured tail: {:.0}s -> bound {} ({} of {} instances in budget)",
                tail,
                if tail <= qos * 1.05 { "MET" } else { "MISSED" },
                (report.instances.len() as f64 * 0.95) as usize,
                report.instances.len()
            );
            println!(
                "expense: ${:.2}",
                report.expense.total_usd() + pp.overhead.expense_usd
            );
        }
        Err(e) => println!("no feasible weight split: {e}"),
    }

    // An impossible bound degrades gracefully.
    match pp.plan_with_qos(c, 1.0) {
        Ok(_) => unreachable!("a 1-second bound cannot be met at C=5000"),
        Err(e) => println!("\n(an infeasible 1s bound reports: {e})"),
    }
}
