//! Criterion benches for the real workload kernels, plus the packed-
//! executor thread-pool ablation (core quota vs unlimited).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use propack_executor::PackedExecutor;
use propack_workloads::smith_waterman::{smith_waterman, synth_protein, GapPenalty};
use propack_workloads::sort::{merge_sort, MapReduceSort};
use propack_workloads::stateless::{resize_bilinear, Image};
use propack_workloads::video::Video;
use propack_workloads::xapian::Corpus;
use propack_workloads::Workload;
use std::hint::black_box;

fn bench_smith_waterman(c: &mut Criterion) {
    let mut g = c.benchmark_group("smith_waterman");
    let gap = GapPenalty::default();
    for &len in &[100usize, 300] {
        let q = synth_protein(1, len);
        let t = synth_protein(2, len);
        g.throughput(Throughput::Elements((len * len) as u64));
        g.bench_with_input(BenchmarkId::new("cells", len), &len, |b, _| {
            b.iter(|| smith_waterman(black_box(&q), black_box(&t), gap))
        });
    }
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort");
    for &n in &[10_000usize, 100_000] {
        let data: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("merge_sort", n), &n, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                merge_sort(&mut v);
                v
            })
        });
    }
    g.finish();
}

fn bench_resize(c: &mut Criterion) {
    let mut g = c.benchmark_group("resize");
    let src = Image::synthetic(5, 512);
    g.throughput(Throughput::Elements(256 * 256));
    g.bench_function("bilinear_512_to_256", |b| {
        b.iter(|| resize_bilinear(black_box(&src), 256))
    });
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("xapian");
    let corpus = Corpus::synthetic(9, 2000, 100);
    g.bench_function("bm25_top10_3terms", |b| {
        b.iter(|| corpus.search(black_box(&[5, 120, 900]), 10))
    });
    g.finish();
}

fn bench_video_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("video");
    let v = Video { frames: 4 };
    g.bench_function("encode_classify_4frames", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            v.run_once(black_box(seed))
        })
    });
    g.finish();
}

/// Ablation: the packed executor's core quota — a Lambda-like 6-core
/// budget vs an unconstrained pool, at the same packing degree.
fn bench_executor_quota_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_executor_quota");
    g.sample_size(10);
    let w = MapReduceSort {
        records: 20_000,
        partitions: 4,
    };
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for (label, cores) in [("quota_2", 2usize), ("quota_host", host)] {
        let ex = PackedExecutor::new(cores);
        g.bench_function(BenchmarkId::new("pack8", label), |b| {
            b.iter(|| ex.run_pack(black_box(&w), 8, 1))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_smith_waterman,
    bench_sort,
    bench_resize,
    bench_search,
    bench_video_pipeline,
    bench_executor_quota_ablation
);
criterion_main!(benches);
