//! One function per paper figure/table. Each reruns the experiment on the
//! simulator and returns tables whose rows mirror the paper's series.
//!
//! Shape targets come from the paper's text and are recorded in each
//! table's notes; `EXPERIMENTS.md` tracks paper-reported vs. measured.

use crate::context::{Ctx, CONCURRENCY_LADDER, C_HIGH};
use crate::table::{fmt, pct, usd, Table};
use propack_baselines::{NoPacking, Oracle, OracleObjective, Pywren, Strategy, StrategyOutcome};
use propack_model::optimizer::Objective;
use propack_model::profiler::probe_workload;
use propack_model::propack::Propack;
use propack_model::validate::validate_models;
use propack_platform::{BurstSpec, ServerlessPlatform, WorkProfile};
use propack_stats::chi2::ChiSquareTest;
use propack_stats::percentile::Percentile;
use propack_sweep::{PackingPolicy, PlatformAxis, SweepRunner, SweepSpec};
use propack_workloads::Workload;

/// Baseline (no packing) outcome for `work` at concurrency `c`.
fn baseline<P: ServerlessPlatform + ?Sized>(
    ctx: &Ctx,
    platform: &P,
    work: &WorkProfile,
    c: u32,
) -> StrategyOutcome {
    NoPacking
        .run(&as_dyn(platform), work, c, ctx.seed)
        .expect("baseline run")
}

/// ProPack outcome (joint objective unless stated), with overhead folded
/// into the expense as the paper does.
fn propack_outcome<P: ServerlessPlatform + ?Sized>(
    ctx: &Ctx,
    platform: &P,
    pp: &Propack,
    c: u32,
    objective: Objective,
) -> StrategyOutcome {
    let out = pp
        .execute(platform, c, objective, ctx.seed)
        .expect("propack run");
    let mut outcome = StrategyOutcome::from_report(objective.label(), &out.report);
    outcome.expense_usd = out.expense_with_overhead_usd();
    outcome.function_hours = out.function_hours_with_overhead();
    outcome
}

/// Adapter: the baseline strategies take `&dyn ServerlessPlatform`.
fn as_dyn<P: ServerlessPlatform + ?Sized>(p: &P) -> DynPlatform<'_, P> {
    DynPlatform(p)
}

/// Thin forwarding wrapper so generic platforms fit the dyn-based Strategy
/// API without ownership gymnastics.
struct DynPlatform<'a, P: ?Sized>(&'a P);

impl<P: ServerlessPlatform + ?Sized> ServerlessPlatform for DynPlatform<'_, P> {
    fn name(&self) -> String {
        self.0.name()
    }
    fn limits(&self) -> propack_platform::InstanceLimits {
        self.0.limits()
    }
    fn prices(&self) -> propack_platform::profile::PriceSheet {
        self.0.prices()
    }
    fn run_burst(
        &self,
        spec: &BurstSpec,
    ) -> Result<propack_platform::RunReport, propack_platform::PlatformError> {
        self.0.run_burst(spec)
    }
    fn nominal_exec_secs(&self, work: &WorkProfile, packing_degree: u32) -> f64 {
        self.0.nominal_exec_secs(work, packing_degree)
    }
}

/// Fig. 1: scaling time as % of total service time across providers.
///
/// Runs as a [`SweepSpec`] grid on the parallel sweep engine; the table is
/// assembled in the paper's row order from the deterministically merged
/// cells, so the values are identical to the old hand-rolled serial loop.
pub fn fig01_scaling_fraction(ctx: &Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "fig01",
        "Scaling time as a fraction of total service time (no packing)",
        &["platform", "app", "concurrency", "scaling %of service"],
    );
    let spec = SweepSpec::new("fig01")
        .platforms([PlatformAxis::Aws, PlatformAxis::Google, PlatformAxis::Azure])
        .workloads(ctx.primary_profiles())
        .concurrency([1000, 2000, C_HIGH])
        .policies([PackingPolicy::NoPacking])
        .seeds([ctx.seed])
        .fit_config(ctx.config.clone());
    let report = SweepRunner::new()
        .threads(Ctx::sweep_threads())
        .run(&spec)
        .expect("fig01 sweep");

    let mut aws_high = 0.0f64;
    for (pname, label) in [("AWS", "aws"), ("Google", "google"), ("Azure", "azure")] {
        for work in ctx.primary_profiles() {
            for c in [1000, 2000, C_HIGH] {
                let cell = report
                    .cells
                    .iter()
                    .find(|r| {
                        r.key.platform == label
                            && r.key.workload == work.name
                            && r.key.concurrency == c
                    })
                    .expect("cell present");
                let frac = 100.0 * cell.scaling_secs / cell.service_secs;
                if pname == "AWS" && c == C_HIGH {
                    aws_high = aws_high.max(frac);
                }
                t.row(vec![
                    pname.into(),
                    work.name.clone(),
                    c.to_string(),
                    pct(frac),
                ]);
            }
        }
    }
    t.note(format!(
        "paper: scaling can exceed 80% of service time on AWS at high concurrency; measured max at C=5000: {}",
        pct(aws_high)
    ));
    vec![t]
}

/// Fig. 2: scheduling / start-up / shipping each grow with concurrency
/// (expressed as % of the total scaling time at C = 5000).
pub fn fig02_scaling_breakdown(ctx: &Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "fig02",
        "Scaling-time components vs concurrency (% of scaling time at C=5000, AWS)",
        &["concurrency", "scheduling", "start-up", "shipping"],
    );
    let work = probe_workload();
    let at = |c: u32| {
        ctx.aws
            .run_burst(&BurstSpec::new(work.clone(), c, 1).with_seed(ctx.seed))
            .expect("burst")
            .scaling
    };
    let norm = at(C_HIGH).total();
    let mut prev = (0.0, 0.0, 0.0);
    let mut monotone = true;
    for c in [1000, 2000, 3000, 4000, C_HIGH] {
        let b = at(c);
        let cur = (
            100.0 * b.scheduling_secs / norm,
            100.0 * b.startup_secs / norm,
            100.0 * b.shipping_secs / norm,
        );
        monotone &= cur.0 >= prev.0 && cur.1 >= prev.1 && cur.2 >= prev.2;
        prev = cur;
        t.row(vec![c.to_string(), pct(cur.0), pct(cur.1), pct(cur.2)]);
    }
    t.note(format!(
        "paper: all three components increase with concurrency; measured monotone: {monotone}"
    ));
    vec![t]
}

/// Fig. 4: execution time vs packing degree, observed + Eq. 1 fit.
pub fn fig04_interference_fit(ctx: &Ctx) -> Vec<Table> {
    let mut tables = Vec::new();
    for work in ctx.primary_profiles() {
        let pp = ctx.build_propack(&ctx.aws, &work, None);
        let mut t = Table::new(
            "fig04",
            &format!("Execution time vs packing degree — {}", work.name),
            &["degree", "observed ET (s)", "model ET (s)", "error"],
        );
        let prof = propack_model::profiler::profile_interference(
            &ctx.aws,
            &work,
            ctx.config.probe_instances,
            ctx.config.degree_step,
            ctx.seed ^ 0xF1904,
        )
        .expect("profile");
        let mut max_err: f64 = 0.0;
        for s in &prof.samples {
            let model = pp.model.interference.exec_secs(s.packing_degree);
            let err = (model - s.exec_secs).abs() / s.exec_secs;
            max_err = max_err.max(err);
            t.row(vec![
                s.packing_degree.to_string(),
                fmt(s.exec_secs),
                fmt(model),
                pct(100.0 * err),
            ]);
        }
        t.note(format!(
            "fitted alpha = {:.4} per GB·degree ({} sample points); worst fit error {}",
            pp.model.interference.alpha(),
            prof.samples.len(),
            pct(100.0 * max_err)
        ));
        tables.push(t);
    }
    tables
}

/// Fig. 5: (a) execution time flat in concurrency; (b) scaling time
/// independent of the application.
pub fn fig05_concurrency_effects(ctx: &Ctx) -> Vec<Table> {
    let mut a = Table::new(
        "fig05a",
        "Mean instance execution time vs concurrency (AWS, no packing)",
        &["app", "C=500", "C=1000", "C=2000", "C=5000", "variation"],
    );
    let mut b = Table::new(
        "fig05b",
        "Scaling time vs concurrency is application-independent (AWS)",
        &["app", "C=500", "C=1000", "C=2000", "C=5000"],
    );
    let mut spread_at: Vec<Vec<f64>> = vec![Vec::new(); CONCURRENCY_LADDER.len()];
    for work in ctx.primary_profiles() {
        let mut execs = Vec::new();
        let mut scalings = Vec::new();
        for (i, &c) in CONCURRENCY_LADDER.iter().enumerate() {
            let r = ctx
                .aws
                .run_burst(&BurstSpec::new(work.clone(), c, 1).with_seed(ctx.seed ^ c as u64))
                .expect("burst");
            execs.push(r.exec_summary().mean());
            scalings.push(r.scaling_time());
            spread_at[i].push(r.scaling_time());
        }
        let mean = execs.iter().sum::<f64>() / execs.len() as f64;
        let var = execs
            .iter()
            .map(|e| (e - mean).abs() / mean)
            .fold(0.0, f64::max);
        a.row(vec![
            work.name.clone(),
            fmt(execs[0]),
            fmt(execs[1]),
            fmt(execs[2]),
            fmt(execs[3]),
            pct(100.0 * var),
        ]);
        b.row(vec![
            work.name.clone(),
            fmt(scalings[0]),
            fmt(scalings[1]),
            fmt(scalings[2]),
            fmt(scalings[3]),
        ]);
    }
    a.note("paper: execution-time variation < 5% from C=500 to C=5000");
    let max_spread = spread_at
        .iter()
        .map(|v| {
            let (lo, hi) = v
                .iter()
                .fold((f64::INFINITY, 0.0f64), |(l, h), &x| (l.min(x), h.max(x)));
            (hi - lo) / hi
        })
        .fold(0.0, f64::max);
    b.note(format!(
        "paper: scaling time is independent of the application; measured max cross-app spread {}",
        pct(100.0 * max_spread)
    ));
    vec![a, b]
}

/// Fig. 6: scaling time vs packing degree at fixed C = 5000.
pub fn fig06_scaling_vs_packing(ctx: &Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "fig06",
        "Scaling time vs packing degree at C=5000 (AWS)",
        &["app", "degree", "scaling (s)", "vs degree 1"],
    );
    for work in ctx.primary_profiles() {
        let p_max = work.max_packing_degree(ctx.aws.limits().mem_gb);
        let mut base = 0.0;
        for p in [1u32, 2, 4, 8, p_max / 2, p_max] {
            let r = ctx
                .aws
                .run_burst(&BurstSpec::packed(work.clone(), C_HIGH, p).with_seed(ctx.seed))
                .expect("burst");
            let s = r.scaling_time();
            if p == 1 {
                base = s;
            }
            t.row(vec![
                work.name.clone(),
                p.to_string(),
                fmt(s),
                pct(100.0 * (1.0 - s / base)),
            ]);
        }
    }
    t.note("paper: scaling time decreases monotonically with packing degree");
    vec![t]
}

/// Fig. 7: expense vs packing degree at C = 1000 is non-monotonic.
pub fn fig07_expense_vs_packing(ctx: &Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "fig07",
        "Expense vs packing degree at C=1000 (AWS)",
        &["app", "degree", "expense", "vs degree 1"],
    );
    for work in ctx.primary_profiles() {
        let p_max = work.max_packing_degree(ctx.aws.limits().mem_gb);
        let mut series = Vec::new();
        for p in 1..=p_max {
            let r = ctx
                .aws
                .run_burst(&BurstSpec::packed(work.clone(), 1000, p).with_seed(ctx.seed))
                .expect("burst");
            series.push((p, r.expense.total_usd()));
        }
        let base = series[0].1;
        let min = series
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((1, base));
        for &(p, e) in series
            .iter()
            .filter(|(p, _)| p % 2 == 1 || *p == min.0 || *p == p_max)
        {
            t.row(vec![
                work.name.clone(),
                p.to_string(),
                usd(e),
                pct(100.0 * (1.0 - e / base)),
            ]);
        }
        let last = series.last().copied().unwrap_or((1, base));
        let turns_up = last.1 > min.1 * 1.001 && min.0 > 1;
        t.note(format!(
            "{}: expense minimum at degree {} (non-monotonic: {})",
            work.name, min.0, turns_up
        ));
    }
    vec![t]
}

/// Fig. 8: Oracle packing degrees (total/tail/median) vs concurrency, and
/// ProPack's agreement with them.
pub fn fig08_oracle_degrees(ctx: &Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "fig08",
        "Oracle vs ProPack packing degree (joint objective) per figure of merit",
        &["app", "concurrency", "metric", "oracle", "propack", "match"],
    );
    let scaling = ctx.fit_scaling(&ctx.aws);
    let mut total = 0u32;
    let mut matched = 0u32;
    for work in ctx.primary_profiles() {
        let pp = ctx.build_propack(&ctx.aws, &work, Some(scaling));
        for c in [1000, 2000, C_HIGH] {
            for metric in Percentile::ALL {
                let oracle = Oracle
                    .search(
                        &as_dyn(&ctx.aws),
                        &work,
                        c,
                        OracleObjective::Joint { w_s: 0.5, metric },
                        ctx.seed,
                    )
                    .expect("oracle");
                let plan = pp
                    .plan_with_metric(c, Objective::default(), metric)
                    .expect("joint plan");
                total += 1;
                let near = plan.packing_degree.abs_diff(oracle.packing_degree) <= 2;
                matched += near as u32;
                t.row(vec![
                    work.name.clone(),
                    c.to_string(),
                    metric.name().into(),
                    oracle.packing_degree.to_string(),
                    plan.packing_degree.to_string(),
                    if near { "yes".into() } else { "NO".into() },
                ]);
            }
        }
    }
    t.note(format!(
        "paper: ProPack determines the oracle degree with >95% accuracy (wrong in 2 of its cases); measured within ±2: {matched}/{total}"
    ));
    vec![t]
}

/// §2.4 table: χ² goodness-of-fit validation.
pub fn tab01_chi2_validation(ctx: &Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "tab01",
        "Pearson chi-square goodness-of-fit (critical value 4.075 at dof=14, conf 99.5%)",
        &[
            "app",
            "concurrency",
            "service stat",
            "expense stat",
            "accepted",
        ],
    );
    let scaling = ctx.fit_scaling(&ctx.aws);
    let test = ChiSquareTest::paper_default();
    let mut max_service: f64 = 0.0;
    let mut max_expense: f64 = 0.0;
    for work in ctx.primary_profiles() {
        let pp = ctx.build_propack(&ctx.aws, &work, Some(scaling));
        for c in [500, 1000, 2000] {
            let v =
                validate_models(&ctx.aws, &pp.model, &work, c, test, ctx.seed).expect("validation");
            max_service = max_service.max(v.service.statistic);
            max_expense = max_expense.max(v.expense.statistic);
            t.row(vec![
                work.name.clone(),
                c.to_string(),
                format!("{:.3}", v.service.statistic),
                format!("{:.4}", v.expense.statistic),
                v.accepted().to_string(),
            ]);
        }
    }
    t.note(format!(
        "paper: max statistic 3.81 (service) / 0.055 (expense), both < 4.075; measured max {:.3} / {:.4}",
        max_service, max_expense
    ));
    vec![t]
}

/// Shared machinery for Figs. 9–11: ProPack (joint) vs no packing across
/// the concurrency ladder.
fn improvement_sweep(
    ctx: &Ctx,
    metric_of: impl Fn(&StrategyOutcome) -> f64,
    id: &str,
    title: &str,
    metric_name: &str,
) -> Vec<Table> {
    let mut t = Table::new(
        id,
        title,
        &[
            "app",
            "concurrency",
            "baseline",
            "propack",
            "improvement",
            "degree",
        ],
    );
    let scaling = ctx.fit_scaling(&ctx.aws);
    let mut high_c_gains = Vec::new();
    for work in ctx.primary_profiles() {
        let pp = ctx.build_propack(&ctx.aws, &work, Some(scaling));
        for &c in &CONCURRENCY_LADDER {
            let base = baseline(ctx, &ctx.aws, &work, c);
            let packed = propack_outcome(ctx, &ctx.aws, &pp, c, Objective::default());
            let gain = packed.improvement_over(&base, &metric_of);
            if c == C_HIGH {
                high_c_gains.push(gain);
            }
            t.row(vec![
                work.name.clone(),
                c.to_string(),
                fmt(metric_of(&base)),
                fmt(metric_of(&packed)),
                pct(gain),
                packed.packing_degree.to_string(),
            ]);
        }
    }
    let avg = high_c_gains.iter().sum::<f64>() / high_c_gains.len() as f64;
    t.note(format!(
        "average {metric_name} improvement at C=5000: {}",
        pct(avg)
    ));
    vec![t]
}

/// Fig. 9: total service-time improvement (paper: 85% average at C=5000).
pub fn fig09_service_improvement(ctx: &Ctx) -> Vec<Table> {
    improvement_sweep(
        ctx,
        |o| o.total_service_secs(),
        "fig09",
        "ProPack total service time vs no packing (AWS; seconds)",
        "service-time",
    )
}

/// Fig. 10: scaling-time improvement (paper: often > 90% at C=5000).
pub fn fig10_scaling_improvement(ctx: &Ctx) -> Vec<Table> {
    improvement_sweep(
        ctx,
        |o| o.scaling_secs,
        "fig10",
        "ProPack scaling time vs no packing (AWS; seconds)",
        "scaling-time",
    )
}

/// Fig. 11: expense improvement (paper: 66% average at C=5000; ProPack
/// expense includes profiling overhead).
pub fn fig11_expense_improvement(ctx: &Ctx) -> Vec<Table> {
    improvement_sweep(
        ctx,
        |o| o.expense_usd,
        "fig11",
        "ProPack expense vs no packing (AWS; USD, ProPack includes overhead)",
        "expense",
    )
}

/// Fig. 12: absolute service function-hours and expense at C = 2000
/// (paper: >50 h → <14 h; >$25 → <$12; at C=5000, $75 → $33).
pub fn fig12_absolute_values(ctx: &Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "fig12",
        "Absolute function-hours and expense (AWS, C=2000)",
        &[
            "app",
            "baseline fn-hours",
            "propack fn-hours",
            "baseline $",
            "propack $",
        ],
    );
    let scaling = ctx.fit_scaling(&ctx.aws);
    let mut totals = (0.0, 0.0, 0.0, 0.0);
    for work in ctx.primary_profiles() {
        let pp = ctx.build_propack(&ctx.aws, &work, Some(scaling));
        let base = baseline(ctx, &ctx.aws, &work, 2000);
        let packed = propack_outcome(ctx, &ctx.aws, &pp, 2000, Objective::default());
        totals.0 += base.function_hours;
        totals.1 += packed.function_hours;
        totals.2 += base.expense_usd;
        totals.3 += packed.expense_usd;
        t.row(vec![
            work.name.clone(),
            fmt(base.function_hours),
            fmt(packed.function_hours),
            usd(base.expense_usd),
            usd(packed.expense_usd),
        ]);
    }
    t.note(format!(
        "per-app averages: {} → {} fn-hours, {} → {} (paper, per app: >50 → <14 h, >$25 → <$12)",
        fmt(totals.0 / 3.0),
        fmt(totals.1 / 3.0),
        usd(totals.2 / 3.0),
        usd(totals.3 / 3.0)
    ));
    // And the C = 5000 cost headline.
    let mut c5 = (0.0, 0.0);
    for work in ctx.primary_profiles() {
        let pp = ctx.build_propack(&ctx.aws, &work, Some(scaling));
        c5.0 += baseline(ctx, &ctx.aws, &work, C_HIGH).expense_usd;
        c5.1 += propack_outcome(ctx, &ctx.aws, &pp, C_HIGH, Objective::default()).expense_usd;
    }
    t.note(format!(
        "at C=5000, per app: {} → {} (paper: $75 → $33)",
        usd(c5.0 / 3.0),
        usd(c5.1 / 3.0)
    ));
    vec![t]
}

/// Figs. 13/14 helper: compare a single-objective ProPack against the joint
/// default.
fn objective_comparison(
    ctx: &Ctx,
    objective: Objective,
    metric_of: impl Fn(&StrategyOutcome) -> f64,
    id: &str,
    title: &str,
) -> Vec<Table> {
    let mut t = Table::new(
        id,
        title,
        &[
            "app",
            "concurrency",
            "joint impr",
            "single-objective impr",
            "extra",
        ],
    );
    let scaling = ctx.fit_scaling(&ctx.aws);
    let mut extras = Vec::new();
    for work in ctx.primary_profiles() {
        let pp = ctx.build_propack(&ctx.aws, &work, Some(scaling));
        for &c in &CONCURRENCY_LADDER {
            let base = baseline(ctx, &ctx.aws, &work, c);
            let joint = propack_outcome(ctx, &ctx.aws, &pp, c, Objective::default());
            let single = propack_outcome(ctx, &ctx.aws, &pp, c, objective);
            let gain_joint = joint.improvement_over(&base, &metric_of);
            let gain_single = single.improvement_over(&base, &metric_of);
            extras.push(gain_single - gain_joint);
            t.row(vec![
                work.name.clone(),
                c.to_string(),
                pct(gain_joint),
                pct(gain_single),
                pct(gain_single - gain_joint),
            ]);
        }
    }
    let avg = extras.iter().sum::<f64>() / extras.len() as f64;
    t.note(format!(
        "average extra improvement from the dedicated objective: {}",
        pct(avg)
    ));
    vec![t]
}

/// Fig. 13: ProPack (Service Time) vs joint (paper: +7.5% service time).
pub fn fig13_service_objective(ctx: &Ctx) -> Vec<Table> {
    objective_comparison(
        ctx,
        Objective::ServiceTime,
        |o| o.total_service_secs(),
        "fig13",
        "Service-time improvement: joint vs service-only objective (AWS)",
    )
}

/// Fig. 14: ProPack (Expense) vs joint (paper: +9.3% expense).
pub fn fig14_expense_objective(ctx: &Ctx) -> Vec<Table> {
    objective_comparison(
        ctx,
        Objective::Expense,
        |o| o.expense_usd,
        "fig14",
        "Expense improvement: joint vs expense-only objective (AWS)",
    )
}

/// Fig. 15: Oracle degrees under service-only vs expense-only objectives,
/// with ProPack's predictions.
pub fn fig15_objective_degrees(ctx: &Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "fig15",
        "Oracle and ProPack degrees: service-only vs expense-only objectives",
        &[
            "app",
            "concurrency",
            "oracle(svc)",
            "propack(svc)",
            "oracle(exp)",
            "propack(exp)",
        ],
    );
    let scaling = ctx.fit_scaling(&ctx.aws);
    let mut ordering_holds = true;
    for work in ctx.primary_profiles() {
        let pp = ctx.build_propack(&ctx.aws, &work, Some(scaling));
        for c in [1000, 1500, 2000] {
            let o_s = Oracle
                .search(
                    &as_dyn(&ctx.aws),
                    &work,
                    c,
                    OracleObjective::ServiceTime(Percentile::Total),
                    ctx.seed,
                )
                .expect("oracle")
                .packing_degree;
            let o_e = Oracle
                .search(
                    &as_dyn(&ctx.aws),
                    &work,
                    c,
                    OracleObjective::Expense,
                    ctx.seed,
                )
                .expect("oracle")
                .packing_degree;
            let p_s = pp
                .plan(c, Objective::ServiceTime)
                .expect("plan")
                .packing_degree;
            let p_e = pp.plan(c, Objective::Expense).expect("plan").packing_degree;
            ordering_holds &= o_e >= o_s;
            t.row(vec![
                work.name.clone(),
                c.to_string(),
                o_s.to_string(),
                p_s.to_string(),
                o_e.to_string(),
                p_e.to_string(),
            ]);
        }
    }
    t.note(format!(
        "paper: expense-oracle degree ≥ service-oracle degree; holds in all measured cases: {ordering_holds}"
    ));
    vec![t]
}

/// Fig. 16: weight sweep for Stateless Cost at C = 5000.
pub fn fig16_weight_sweep(ctx: &Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "fig16",
        "W_S/W_E sweep — Stateless Cost at C=5000 (AWS, % improvement over no packing)",
        &["W_S/W_E", "degree", "service impr", "expense impr"],
    );
    let work = ctx.primary_profiles()[2].clone();
    assert_eq!(work.name, "Stateless Cost");
    let pp = ctx.build_propack(&ctx.aws, &work, None);
    let base = baseline(ctx, &ctx.aws, &work, C_HIGH);
    let mut service_series = Vec::new();
    let mut expense_series = Vec::new();
    for k in 1..=9 {
        let w_s = k as f64 / 10.0;
        let packed = propack_outcome(ctx, &ctx.aws, &pp, C_HIGH, Objective::Joint { w_s });
        let s_gain = packed.improvement_over(&base, |o| o.total_service_secs());
        let e_gain = packed.improvement_over(&base, |o| o.expense_usd);
        service_series.push(s_gain);
        expense_series.push(e_gain);
        t.row(vec![
            format!("{:.1}/{:.1}", w_s, 1.0 - w_s),
            pp.plan(C_HIGH, Objective::Joint { w_s })
                .expect("joint plan")
                .packing_degree
                .to_string(),
            pct(s_gain),
            pct(e_gain),
        ]);
    }
    t.note(format!(
        "paper: service improvement grows with W_S, expense improvement with W_E; measured trend: service {} → {}, expense {} → {}",
        pct(service_series[0]),
        pct(service_series.last().copied().unwrap_or(0.0)),
        pct(expense_series[0]),
        pct(expense_series.last().copied().unwrap_or(0.0))
    ));
    vec![t]
}

/// Fig. 17: Smith-Waterman improvements and degrees.
pub fn fig17_smith_waterman(ctx: &Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "fig17",
        "Smith-Waterman: ProPack improvements (AWS)",
        &[
            "concurrency",
            "service impr",
            "scaling impr",
            "expense impr",
            "degree",
        ],
    );
    let work = propack_workloads::smith_waterman::SmithWaterman::default().profile();
    let pp = ctx.build_propack(&ctx.aws, &work, None);
    let mut at5000 = (0.0, 0.0);
    for &c in &CONCURRENCY_LADDER {
        let base = baseline(ctx, &ctx.aws, &work, c);
        let packed = propack_outcome(ctx, &ctx.aws, &pp, c, Objective::default());
        let s = packed.improvement_over(&base, |o| o.total_service_secs());
        let sc = packed.improvement_over(&base, |o| o.scaling_secs);
        let e = packed.improvement_over(&base, |o| o.expense_usd);
        if c == C_HIGH {
            at5000 = (s, e);
        }
        t.row(vec![
            c.to_string(),
            pct(s),
            pct(sc),
            pct(e),
            packed.packing_degree.to_string(),
        ]);
    }
    let oracle_deg = Oracle
        .search(
            &as_dyn(&ctx.aws),
            &work,
            C_HIGH,
            OracleObjective::Joint {
                w_s: 0.5,
                metric: Percentile::Total,
            },
            ctx.seed,
        )
        .expect("oracle")
        .packing_degree;
    t.note(format!(
        "paper: 81% service / 59% expense improvement at C=5000, oracle degree well below P_max=35; measured {} / {}, oracle degree {}",
        pct(at5000.0),
        pct(at5000.1),
        oracle_deg
    ));
    vec![t]
}

/// Fig. 18: FuncX vs AWS Lambda — scaling speed and packed service time.
pub fn fig18_funcx(ctx: &Ctx) -> Vec<Table> {
    let mut a = Table::new(
        "fig18a",
        "Scaling time: FuncX vs AWS Lambda (no packing)",
        &["concurrency", "aws (s)", "funcx (s)", "funcx faster by"],
    );
    let work = ctx.primary_profiles()[1].clone(); // Sort
    let mut ratio_at_5000 = 0.0;
    for &c in &CONCURRENCY_LADDER {
        let spec = BurstSpec::new(work.clone(), c, 1).with_seed(ctx.seed);
        let aws = ctx.aws.run_burst(&spec).expect("aws").scaling_time();
        let fx = ctx.funcx.run_burst(&spec).expect("funcx").scaling_time();
        if c == C_HIGH {
            ratio_at_5000 = 100.0 * (1.0 - fx / aws);
        }
        a.row(vec![
            c.to_string(),
            fmt(aws),
            fmt(fx),
            pct(100.0 * (1.0 - fx / aws)),
        ]);
    }
    a.note(format!(
        "paper: FuncX scales ~15% faster at C=5000; measured {}",
        pct(ratio_at_5000)
    ));

    let mut b = Table::new(
        "fig18b",
        "ProPack total service time: AWS vs FuncX",
        &["concurrency", "aws (s)", "funcx (s)", "aws faster by"],
    );
    let pp_aws = ctx.build_propack(&ctx.aws, &work, None);
    let pp_fx = ctx.build_propack(&ctx.funcx, &work, None);
    let mut advs = Vec::new();
    for &c in &CONCURRENCY_LADDER {
        let aws = propack_outcome(ctx, &ctx.aws, &pp_aws, c, Objective::default());
        let fx = propack_outcome(ctx, &ctx.funcx, &pp_fx, c, Objective::default());
        let adv = 100.0 * (1.0 - aws.total_service_secs() / fx.total_service_secs());
        advs.push(adv);
        b.row(vec![
            c.to_string(),
            fmt(aws.total_service_secs()),
            fmt(fx.total_service_secs()),
            pct(adv),
        ]);
    }
    b.note(format!(
        "paper: with packing, AWS service time ~12% lower than FuncX on average (Firecracker isolation); measured average: {}",
        pct(advs.iter().sum::<f64>() / advs.len() as f64)
    ));
    vec![a, b]
}

/// Fig. 19: ProPack vs Pywren.
pub fn fig19_pywren(ctx: &Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "fig19",
        "ProPack vs Pywren (AWS; % improvement of ProPack over Pywren)",
        &["app", "concurrency", "service impr", "expense impr"],
    );
    let scaling = ctx.fit_scaling(&ctx.aws);
    let mut service_gains = Vec::new();
    let mut expense_gains = Vec::new();
    for work in ctx.primary_profiles() {
        let pp = ctx.build_propack(&ctx.aws, &work, Some(scaling));
        for c in [1000, 2000, C_HIGH] {
            let pywren = Pywren::default()
                .run(&as_dyn(&ctx.aws), &work, c, ctx.seed)
                .expect("pywren");
            let packed = propack_outcome(ctx, &ctx.aws, &pp, c, Objective::default());
            let s = packed.improvement_over(&pywren, |o| o.total_service_secs());
            let e = packed.improvement_over(&pywren, |o| o.expense_usd);
            service_gains.push(s);
            expense_gains.push(e);
            t.row(vec![work.name.clone(), c.to_string(), pct(s), pct(e)]);
        }
    }
    let avg_s = service_gains.iter().sum::<f64>() / service_gains.len() as f64;
    let avg_e = expense_gains.iter().sum::<f64>() / expense_gains.len() as f64;
    t.note(format!(
        "paper: 52% service / 78% expense average improvement over Pywren; measured {} / {}",
        pct(avg_s),
        pct(avg_e)
    ));
    vec![t]
}

/// Fig. 20: Xapian QoS-aware packing.
pub fn fig20_xapian_qos(ctx: &Ctx) -> Vec<Table> {
    let work = propack_workloads::xapian::Xapian::default().profile();
    let pp = ctx.build_propack(&ctx.aws, &work, None);
    let c = C_HIGH;

    let mut a = Table::new(
        "fig20a",
        "Xapian: packing degree by objective (tail figure of merit)",
        &["objective", "degree"],
    );
    let p_service = pp
        .plan_with_metric(c, Objective::ServiceTime, Percentile::Tail95)
        .expect("service plan")
        .packing_degree;
    let p_expense = pp
        .plan_with_metric(c, Objective::Expense, Percentile::Tail95)
        .expect("expense plan")
        .packing_degree;
    // QoS bound: 4% above the best achievable tail service time — tight
    // enough to require a service-leaning weight split, matching the
    // paper's W_S = 0.65 story for Xapian.
    let best_tail = pp
        .plan_with_metric(c, Objective::ServiceTime, Percentile::Tail95)
        .expect("tail plan")
        .predicted_service_secs;
    let qos = best_tail * 1.04;
    let (qos_plan, w_s) = pp.plan_with_qos(c, qos).expect("qos plan");
    a.row(vec!["ProPack (Service Time)".into(), p_service.to_string()]);
    a.row(vec![
        format!("ProPack QoS (W_S={w_s:.2})"),
        qos_plan.packing_degree.to_string(),
    ]);
    a.row(vec!["ProPack (Expense)".into(), p_expense.to_string()]);
    a.note(format!(
        "paper: QoS degree falls between the service-only and expense-only degrees (W_S=0.65 for Xapian); ordering holds: {}",
        qos_plan.packing_degree >= p_service && qos_plan.packing_degree <= p_expense
    ));

    let mut b = Table::new(
        "fig20b",
        "Xapian: QoS-constrained improvements at C=5000 (tail metric)",
        &["quantity", "baseline", "propack-qos", "improvement"],
    );
    let base = baseline(ctx, &ctx.aws, &work, c);
    let spec = BurstSpec::packed(work.clone(), c, qos_plan.packing_degree).with_seed(ctx.seed);
    let run = ctx.aws.run_burst(&spec).expect("qos run");
    let mut outcome = StrategyOutcome::from_report("ProPack QoS", &run);
    outcome.expense_usd += pp.overhead.expense_usd;
    let tail_gain = outcome.improvement_over(&base, |o| o.service_secs(Percentile::Tail95));
    let exp_gain = outcome.improvement_over(&base, |o| o.expense_usd);
    b.row(vec![
        "tail service (s)".into(),
        fmt(base.service_secs(Percentile::Tail95)),
        fmt(outcome.service_secs(Percentile::Tail95)),
        pct(tail_gain),
    ]);
    b.row(vec![
        "expense".into(),
        usd(base.expense_usd),
        usd(outcome.expense_usd),
        pct(exp_gain),
    ]);
    let meets = outcome.service_secs(Percentile::Tail95) <= qos * 1.05;
    b.note(format!(
        "paper: >80% service / 65% expense improvement while meeting QoS; measured {} / {}; QoS bound {} met: {meets}",
        pct(tail_gain),
        pct(exp_gain),
        fmt(qos)
    ));
    vec![a, b]
}

/// Fig. 21: multi-platform improvements at C = 1000.
///
/// Runs as a [`SweepSpec`] grid (3 platforms × 3 apps × {no-packing,
/// ProPack}) on the parallel sweep engine; the shared model cache fits one
/// ProPack model per (platform, app) and the overhead-inclusive expense
/// accounting matches the old hand-rolled loop exactly.
pub fn fig21_multi_platform(ctx: &Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "fig21",
        "ProPack across platforms at C=1000 (% improvement over no packing)",
        &["platform", "app", "service impr", "expense impr"],
    );
    let spec = SweepSpec::new("fig21")
        .platforms([PlatformAxis::Aws, PlatformAxis::Google, PlatformAxis::Azure])
        .workloads(ctx.primary_profiles())
        .concurrency([1000])
        .policies([PackingPolicy::NoPacking, PackingPolicy::propack_default()])
        .seeds([ctx.seed])
        .fit_config(ctx.config.clone());
    let report = SweepRunner::new()
        .threads(Ctx::sweep_threads())
        .run(&spec)
        .expect("fig21 sweep");
    let cell = |platform: &str, work: &str, policy_label: &str| {
        report
            .cells
            .iter()
            .find(|r| {
                r.key.platform == platform && r.key.workload == work && r.key.policy == policy_label
            })
            .expect("cell present")
    };
    let propack_label = PackingPolicy::propack_default().label();

    let mut expense_by_platform = [0.0f64; 3];
    for (i, (pname, label)) in [("AWS", "aws"), ("Google", "google"), ("Azure", "azure")]
        .iter()
        .enumerate()
    {
        for work in ctx.primary_profiles() {
            let base = cell(label, &work.name, "no-packing");
            let packed = cell(label, &work.name, &propack_label);
            let s = 100.0 * (1.0 - packed.service_secs / base.service_secs);
            let e = 100.0 * (1.0 - packed.expense_usd / base.expense_usd);
            expense_by_platform[i] += e / 3.0;
            t.row(vec![(*pname).into(), work.name.clone(), pct(s), pct(e)]);
        }
    }
    t.note(format!(
        "paper: AWS expense improvement is lower than Google/Azure (no network fee on AWS); measured avg expense impr: AWS {}, Google {}, Azure {}",
        pct(expense_by_platform[0]),
        pct(expense_by_platform[1]),
        pct(expense_by_platform[2])
    ));
    vec![t]
}
