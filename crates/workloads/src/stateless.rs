//! Stateless Cost: the image-resizing workload from ServerlessBench.
//!
//! The paper's Stateless Cost benchmark resizes images — short-running,
//! stateless requests served individually (AWS's "Serverless Image Handler"
//! does the same job), for which *median/tail* service time is the natural
//! figure of merit rather than total turnaround (§3).
//!
//! The kernel is a real bilinear resampler over synthetic RGB images: for
//! each output pixel it gathers the four neighbouring source pixels and
//! blends them with the standard bilinear weights.
//!
//! Simulator calibration: `M_func = 0.33 GB` → maximum packing degree 30 on
//! a 10 GB Lambda (Fig. 8); the middle interference curve of Fig. 4.

use crate::{mix64, WorkOutput, Workload};
use propack_platform::{ResourceKind, WorkProfile};

/// The Stateless Cost workload.
#[derive(Debug, Clone)]
pub struct StatelessCost {
    /// Source image edge length (square, pixels).
    pub src_size: usize,
    /// Target edge length after resizing.
    pub dst_size: usize,
    /// Images resized per invocation.
    pub images: usize,
}

impl Default for StatelessCost {
    fn default() -> Self {
        StatelessCost {
            src_size: 96,
            dst_size: 60,
            images: 6,
        }
    }
}

/// An RGB image in planar-free interleaved form (`3 × w × h` bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Edge length in pixels (square images).
    pub size: usize,
    /// Interleaved RGB bytes, row-major.
    pub pixels: Vec<u8>,
}

impl Image {
    /// Deterministic synthetic photo-like content: radial gradient plus
    /// seeded speckle.
    pub fn synthetic(seed: u64, size: usize) -> Self {
        let mut pixels = Vec::with_capacity(3 * size * size);
        let c = size as f64 / 2.0;
        for y in 0..size {
            for x in 0..size {
                let d = (((x as f64 - c).powi(2) + (y as f64 - c).powi(2)).sqrt() / c).min(1.0);
                let h = mix64(seed ^ ((y as u64) << 24) ^ x as u64);
                let speckle = (h % 32) as f64;
                pixels.push((200.0 * (1.0 - d) + speckle) as u8);
                pixels.push((140.0 * d + speckle) as u8);
                pixels.push((90.0 + 100.0 * (1.0 - d)) as u8);
            }
        }
        Image { size, pixels }
    }

    #[inline]
    fn px(&self, x: usize, y: usize, ch: usize) -> u8 {
        self.pixels[3 * (y * self.size + x) + ch]
    }
}

/// Bilinear resize of a square RGB image.
pub fn resize_bilinear(src: &Image, dst_size: usize) -> Image {
    assert!(dst_size >= 1 && src.size >= 2, "degenerate resize");
    let mut pixels = Vec::with_capacity(3 * dst_size * dst_size);
    let scale = (src.size - 1) as f64 / (dst_size.max(2) - 1) as f64;
    for y in 0..dst_size {
        let fy = y as f64 * scale;
        let y0 = fy.floor() as usize;
        let y1 = (y0 + 1).min(src.size - 1);
        let wy = fy - y0 as f64;
        for x in 0..dst_size {
            let fx = x as f64 * scale;
            let x0 = fx.floor() as usize;
            let x1 = (x0 + 1).min(src.size - 1);
            let wx = fx - x0 as f64;
            for ch in 0..3 {
                let tl = src.px(x0, y0, ch) as f64;
                let tr = src.px(x1, y0, ch) as f64;
                let bl = src.px(x0, y1, ch) as f64;
                let br = src.px(x1, y1, ch) as f64;
                let top = tl * (1.0 - wx) + tr * wx;
                let bot = bl * (1.0 - wx) + br * wx;
                pixels.push((top * (1.0 - wy) + bot * wy).round() as u8);
            }
        }
    }
    Image {
        size: dst_size,
        pixels,
    }
}

impl Workload for StatelessCost {
    fn name(&self) -> &'static str {
        "Stateless Cost"
    }

    fn profile(&self) -> WorkProfile {
        WorkProfile {
            name: "Stateless Cost".to_string(),
            mem_gb: 0.33,
            base_exec_secs: 100.0,
            contention_per_gb: 0.182, // ≈ 0.06 per packing degree
            storage_gb: 0.03,         // source images in, thumbnails out
            storage_requests: 4,
            network_gb: 0.015,
            dependency_load_secs: 5.0, // imaging libraries on a cold container
            resource_kind: ResourceKind::Cpu, // pixel transforms are compute-bound
        }
    }

    fn run_once(&self, input_seed: u64) -> WorkOutput {
        let mut checksum = 0u64;
        let mut work_units = 0u64;
        for img_idx in 0..self.images {
            let src = Image::synthetic(input_seed ^ (img_idx as u64) << 32, self.src_size);
            let dst = resize_bilinear(&src, self.dst_size);
            let mut h = 0u64;
            for (i, &b) in dst.pixels.iter().enumerate() {
                h ^= mix64((b as u64) << 16 | (i as u64 & 0xFFFF));
            }
            checksum ^= mix64(h ^ img_idx as u64);
            work_units += (dst.size * dst.size) as u64;
        }
        WorkOutput {
            checksum,
            work_units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_resize_preserves_corners() {
        let src = Image::synthetic(5, 32);
        let dst = resize_bilinear(&src, 32);
        // scale = 1 → exact pixel reproduction.
        assert_eq!(src.pixels, dst.pixels);
    }

    #[test]
    fn resize_of_uniform_image_is_uniform() {
        let src = Image {
            size: 16,
            pixels: vec![77u8; 3 * 16 * 16],
        };
        let dst = resize_bilinear(&src, 9);
        assert!(dst.pixels.iter().all(|&p| p == 77));
        assert_eq!(dst.size, 9);
    }

    #[test]
    fn downscale_dims_and_value_range() {
        let src = Image::synthetic(9, 64);
        let dst = resize_bilinear(&src, 20);
        assert_eq!(dst.pixels.len(), 3 * 20 * 20);
        // Bilinear interpolation can never exceed the source value range.
        let (smin, smax) = src
            .pixels
            .iter()
            .fold((255u8, 0u8), |(lo, hi), &p| (lo.min(p), hi.max(p)));
        for &p in &dst.pixels {
            assert!(p >= smin && p <= smax);
        }
    }

    #[test]
    fn upscale_works() {
        let src = Image::synthetic(3, 16);
        let dst = resize_bilinear(&src, 40);
        assert_eq!(dst.size, 40);
    }

    #[test]
    fn work_units_count_output_pixels() {
        let s = StatelessCost {
            src_size: 32,
            dst_size: 10,
            images: 3,
        };
        assert_eq!(s.run_once(1).work_units, 300);
    }

    #[test]
    fn profile_matches_paper_calibration() {
        let p = StatelessCost::default().profile();
        assert_eq!(p.max_packing_degree(10.0), 30);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_resize_panics() {
        let src = Image::synthetic(1, 1);
        let _ = resize_bilinear(&src, 4);
    }
}
