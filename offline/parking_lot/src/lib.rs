//! Offline stub for `parking_lot`: the non-poisoning `Mutex`/`Condvar`/
//! `RwLock` API implemented over `std::sync` (poison errors are unwrapped —
//! a poisoned lock aborts the test run just as a parking_lot deadlock
//! would surface).

use std::sync;

/// Non-poisoning mutex over [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Condition variable pairing with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Move the guard out, wait, and move the re-acquired guard back in.
        replace_with(guard, |g| {
            self.0.wait(g).unwrap_or_else(sync::PoisonError::into_inner)
        });
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Swap a guard in place through a consuming function. Aborts on panic in
/// `f` (cannot happen: `Condvar::wait` does not panic).
fn replace_with<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
}

/// Non-poisoning RwLock over [`std::sync::RwLock`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}
