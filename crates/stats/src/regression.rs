//! Polynomial least-squares regression.
//!
//! ProPack's scaling-time model (Eq. 2 in the paper) is
//! `β₁·C_eff² + β₂·C_eff − β₃`, *"determined through polynomial
//! regression"* from ~10 application-independent probe runs. [`polyfit`]
//! implements exactly that: ordinary least squares on the monomial basis,
//! solved through the normal equations (the systems here are at most 4×4, so
//! the classic normal-equation route is numerically fine once inputs are
//! scaled).

use crate::linalg::Matrix;
use crate::{check_xy, Result, StatsError};

/// A fitted polynomial `y = c₀ + c₁x + c₂x² + …` with fit diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct PolyFit {
    /// Coefficients in ascending-power order (`coeffs[k]` multiplies `x^k`).
    pub coeffs: Vec<f64>,
    /// Root-mean-square error of the fit on the training points.
    pub rmse: f64,
    /// Coefficient of determination R² (1.0 = perfect fit). May be negative
    /// for models worse than the mean predictor.
    pub r_squared: f64,
    /// Internal x-scale used to condition the normal equations.
    x_scale: f64,
    /// Coefficients over the scaled variable `x / x_scale`, kept so that
    /// evaluation stays well-conditioned while `coeffs` exposes the natural
    /// (unscaled) values users expect.
    scaled: Vec<f64>,
}

impl PolyFit {
    fn new(scaled: Vec<f64>, x_scale: f64, rmse: f64, r_squared: f64) -> Self {
        // Unscale: y = Σ s_k (x/L)^k  =>  c_k = s_k / L^k
        let coeffs = scaled
            .iter()
            .enumerate()
            .map(|(k, s)| s / x_scale.powi(k as i32))
            .collect();
        PolyFit {
            coeffs,
            rmse,
            r_squared,
            x_scale,
            scaled,
        }
    }

    /// Evaluate the polynomial at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        let xs = x / self.x_scale;
        // Horner's rule over scaled x.
        let mut acc = 0.0;
        for &c in self.scaled.iter().rev() {
            acc = acc * xs + c;
        }
        acc
    }

    /// Degree of the fitted polynomial.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }
}

impl std::ops::Index<usize> for PolyFit {
    type Output = f64;
    fn index(&self, k: usize) -> &f64 {
        &self.coeffs[k]
    }
}

/// Fit a polynomial of the given degree through `(xs, ys)` by least squares.
///
/// Requires at least `degree + 1` points. X values are internally scaled by
/// their max magnitude to keep the Vandermonde system well-conditioned even
/// for concurrency levels in the thousands.
///
/// # Example
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x * x + 3.0 * x - 1.0).collect();
/// let fit = propack_stats::polyfit(&xs, &ys, 2).unwrap();
/// assert!((fit.coeffs[2] - 2.0).abs() < 1e-8);
/// assert!((fit.eval(10.0) - 229.0).abs() < 1e-6);
/// ```
pub fn polyfit(xs: &[f64], ys: &[f64], degree: usize) -> Result<PolyFit> {
    check_xy(xs, ys)?;
    let n = xs.len();
    let terms = degree + 1;
    if n < terms {
        return Err(StatsError::TooFewSamples {
            needed: terms,
            got: n,
        });
    }

    let x_scale = xs.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-30);
    let xn: Vec<f64> = xs.iter().map(|x| x / x_scale).collect();

    // Normal equations: (VᵀV) c = Vᵀ y, where V is the Vandermonde matrix.
    let mut ata = Matrix::zeros(terms, terms);
    let mut atb = vec![0.0; terms];
    // Precompute power sums Σ x^k for k in 0..2*degree to fill VᵀV.
    let mut power_sums = vec![0.0; 2 * degree + 1];
    for &x in &xn {
        let mut p = 1.0;
        for sum in power_sums.iter_mut() {
            *sum += p;
            p *= x;
        }
    }
    for r in 0..terms {
        for c in 0..terms {
            ata.set(r, c, power_sums[r + c]);
        }
    }
    for (&x, &y) in xn.iter().zip(ys) {
        let mut p = 1.0;
        for slot in atb.iter_mut() {
            *slot += p * y;
            p *= x;
        }
    }

    let scaled = ata.solve(&atb)?;
    let fit = PolyFit::new(scaled, x_scale, 0.0, 0.0);

    // Diagnostics.
    let mean_y = ys.iter().sum::<f64>() / n as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let e = y - fit.eval(x);
        ss_res += e * e;
        ss_tot += (y - mean_y) * (y - mean_y);
    }
    let rmse = (ss_res / n as f64).sqrt();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Ok(PolyFit {
        rmse,
        r_squared,
        ..fit
    })
}

/// Simple linear regression `y = a + b x`, returned as `(a, b)`.
///
/// This is the log-linear workhorse behind the exponential interference fit
/// (Eq. 1): fitting `ln ET = ln A + k·P` reduces to this function.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Result<(f64, f64)> {
    check_xy(xs, ys)?;
    let n = xs.len();
    if n < 2 {
        return Err(StatsError::TooFewSamples { needed: 2, got: n });
    }
    let nf = n as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = nf * sxx - sx * sx;
    if denom.abs() < 1e-12 * (nf * sxx).abs().max(1.0) {
        return Err(StatsError::Singular);
    }
    let b = (nf * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / nf;
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_quadratic_exactly() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x - 2.0 * x + 7.0).collect();
        let fit = polyfit(&xs, &ys, 2).unwrap();
        assert!((fit.coeffs[0] - 7.0).abs() < 1e-8, "c0 = {}", fit.coeffs[0]);
        assert!((fit.coeffs[1] + 2.0).abs() < 1e-8);
        assert!((fit.coeffs[2] - 3.0).abs() < 1e-9);
        assert!(fit.rmse < 1e-8);
        assert!(fit.r_squared > 0.999_999);
    }

    #[test]
    fn recovers_scaling_time_shape_at_high_concurrency() {
        // The exact form of ProPack Eq. 2 with realistic magnitudes:
        // β₁ = 2.4e-5, β₂ = 0.04, β₃ = 5, C up to 5000.
        let xs: Vec<f64> = (1..=10).map(|i| 500.0 * i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|c| 2.4e-5 * c * c + 0.04 * c - 5.0).collect();
        let fit = polyfit(&xs, &ys, 2).unwrap();
        assert!((fit.coeffs[2] - 2.4e-5).abs() < 1e-10);
        assert!((fit.coeffs[1] - 0.04).abs() < 1e-6);
        assert!((fit.coeffs[0] + 5.0).abs() < 1e-4);
        // Extrapolation sanity.
        let want = 2.4e-5 * 7000.0_f64.powi(2) + 0.04 * 7000.0 - 5.0;
        assert!((fit.eval(7000.0) - want).abs() / want < 1e-6);
    }

    #[test]
    fn degree_zero_is_mean() {
        let fit = polyfit(&[1.0, 2.0, 3.0], &[4.0, 6.0, 8.0], 0).unwrap();
        assert!((fit.coeffs[0] - 6.0).abs() < 1e-12);
        assert_eq!(fit.degree(), 0);
    }

    #[test]
    fn too_few_points_rejected() {
        assert_eq!(
            polyfit(&[1.0, 2.0], &[1.0, 2.0], 2),
            Err(StatsError::TooFewSamples { needed: 3, got: 2 })
        );
    }

    #[test]
    fn identical_xs_rejected() {
        let r = polyfit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0], 1);
        assert_eq!(r, Err(StatsError::Singular));
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(matches!(
            polyfit(&[1.0, 2.0, 3.0], &[1.0], 1),
            Err(StatsError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn non_finite_rejected() {
        assert!(matches!(
            polyfit(&[1.0, f64::NAN, 3.0], &[1.0, 2.0, 3.0], 1),
            Err(StatsError::NonFinite { .. })
        ));
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 + 1.25 * x).collect();
        let (a, b) = linear_fit(&xs, &ys).unwrap();
        assert!((a - 0.5).abs() < 1e-12);
        assert!((b - 1.25).abs() < 1e-12);
    }

    #[test]
    fn noisy_fit_has_reasonable_r2() {
        // Deterministic pseudo-noise so the test is stable.
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + 1.0 + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let fit = polyfit(&xs, &ys, 1).unwrap();
        assert!((fit.coeffs[1] - 2.0).abs() < 0.01);
        assert!(fit.r_squared > 0.999);
    }
}
