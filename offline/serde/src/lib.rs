//! Offline stub for `serde`: marker traits plus the no-op derives from the
//! sibling `serde_derive` stub. Serialization is structurally unavailable
//! offline — `serde_json`'s stub returns errors — and the JSON round-trip
//! tests are gated behind the workspace's per-crate `offline-stub` features.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}
