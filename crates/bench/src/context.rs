//! Shared experiment context: platforms, benchmarks, concurrency ladders,
//! and the ProPack instances (built once per app per platform and reused —
//! the scaling model is amortized exactly as §2.2 prescribes).

use propack_funcx::FuncXPlatform;
use propack_model::propack::{ProPackConfig, Propack};
use propack_model::scaling::ScalingModel;
use propack_platform::PlatformBuilder;
use propack_platform::{CloudPlatform, ServerlessPlatform, WorkProfile};
use propack_workloads::Benchmarks;

/// The evaluation's concurrency ladder (Figs. 9–11 sweep 500 → 5000).
pub const CONCURRENCY_LADDER: [u32; 4] = [500, 1000, 2000, 5000];

/// The paper's headline concurrency level.
pub const C_HIGH: u32 = 5000;

/// Experiment context.
pub struct Ctx {
    /// Primary platform (AWS Lambda).
    pub aws: CloudPlatform,
    /// Google Cloud Functions.
    pub google: CloudPlatform,
    /// Azure Functions.
    pub azure: CloudPlatform,
    /// FuncX on-prem cluster.
    pub funcx: FuncXPlatform,
    /// ProPack build configuration used throughout.
    pub config: ProPackConfig,
    /// Root seed for evaluation runs (probe seeds live in `config`).
    pub seed: u64,
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx {
            aws: PlatformBuilder::aws().build(),
            google: PlatformBuilder::google().build(),
            azure: PlatformBuilder::azure().build(),
            funcx: FuncXPlatform::default(),
            config: ProPackConfig::default(),
            seed: 0xC0FFEE,
        }
    }
}

impl Ctx {
    /// Worker-thread count for sweep-engine-backed figures: one per core.
    /// Output is deterministic at any thread count (see `propack_sweep`).
    pub fn sweep_threads() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// The three primary benchmark profiles (Video, Sort, Stateless Cost).
    pub fn primary_profiles(&self) -> Vec<WorkProfile> {
        Benchmarks::primary().iter().map(|b| b.profile()).collect()
    }

    /// All five benchmark profiles.
    pub fn all_profiles(&self) -> Vec<WorkProfile> {
        Benchmarks::all().iter().map(|b| b.profile()).collect()
    }

    /// Build ProPack for `work` on a platform, reusing a pre-fitted
    /// scaling model when provided (per-platform amortization).
    pub fn build_propack<P: ServerlessPlatform + ?Sized>(
        &self,
        platform: &P,
        work: &WorkProfile,
        scaling: Option<ScalingModel>,
    ) -> Propack {
        match scaling {
            Some(s) => {
                Propack::build_with_scaling(platform, work, &self.config, s, Default::default())
                    .expect("propack build")
            }
            None => Propack::build(platform, work, &self.config).expect("propack build"),
        }
    }

    /// Fit a platform's scaling model once (for amortized reuse).
    pub fn fit_scaling<P: ServerlessPlatform + ?Sized>(&self, platform: &P) -> ScalingModel {
        let probe = propack_model::profiler::probe_scaling(
            platform,
            &self.config.scaling_levels,
            self.config.seed,
        )
        .expect("scaling probe");
        ScalingModel::fit(&probe.samples).expect("scaling fit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds() {
        let ctx = Ctx::default();
        assert_eq!(ctx.primary_profiles().len(), 3);
        assert_eq!(ctx.all_profiles().len(), 5);
    }

    #[test]
    fn scaling_model_reuse_matches_fresh_build() {
        let ctx = Ctx::default();
        let scaling = ctx.fit_scaling(&ctx.aws);
        let w = &ctx.primary_profiles()[0];
        let reused = ctx.build_propack(&ctx.aws, w, Some(scaling));
        let fresh = ctx.build_propack(&ctx.aws, w, None);
        assert_eq!(reused.model.p_max, fresh.model.p_max);
    }
}
