//! Offline stub for `bytes`: the workspace declares the dependency but
//! uses no API from it; this shell only satisfies resolution.
