//! Deterministic fault injection: seeded, replay-stable fault lanes.
//!
//! Real serverless fleets lose instances to crashes, failed cold starts,
//! shipping stalls, and stragglers; the happy-path simulator pretended they
//! don't exist. A [`FaultSpec`] describes the per-stage fault *processes*
//! (rates and severities) and a [`FaultPlan`] turns those processes into
//! concrete draws.
//!
//! Every draw comes from its own named lane of the seeded
//! [`RngStreams`] tree (`fault-crash`, `fault-provision`, `fault-ship`,
//! `fault-straggler`), indexed by `(instance, attempt)`. Two consequences:
//!
//! 1. *Replay stability*: a draw is a pure function of
//!    `(seed, lane, instance, attempt)` — it does not depend on event
//!    ordering, on how many other faults fired, or on the thread count of
//!    the surrounding sweep. The determinism contract (same seed ⇒
//!    bit-identical output at any `--threads`) holds with faults enabled.
//! 2. *Independence under refactoring*: fault lanes never touch the
//!    pre-existing `control-plane` / `exec` streams, so enabling (or
//!    adding) fault draws cannot shift the timeline of a fault-free run.
//!
//! Lane RNG must come from the seeded tree — constructing generators
//! directly in fault code is rejected by `cargo xtask simlint` (rule
//! `fault-rng`); wall-clock or OS-entropy seeding would break replay.

use crate::rng::{lanes, RngStreams};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-stage fault process rates and severities.
///
/// All rates are per-attempt Bernoulli probabilities in `[0, 1]`; factors
/// are multiplicative slowdowns `≥ 1`. The default is fault-free, so every
/// pre-existing burst spec replays its exact historical timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Probability an execution attempt crashes mid-run (the instance dies
    /// after completing a uniformly drawn fraction of its work; the partial
    /// run is billed).
    pub crash_rate: f64,
    /// Probability a cold provision attempt (microVM boot + runtime init)
    /// fails and must be redone.
    pub provision_failure_rate: f64,
    /// Probability a container's shipping transfer stalls.
    pub ship_stall_rate: f64,
    /// Effective slowdown of a stalled shipping transfer (`≥ 1`).
    pub ship_stall_factor: f64,
    /// Probability an instance is a straggler (slow hardware, noisy
    /// neighbour) for its whole lifetime.
    pub straggler_rate: f64,
    /// Execution slowdown of a straggler instance (`≥ 1`).
    pub straggler_factor: f64,
}

impl FaultSpec {
    /// The fault-free scenario (all rates zero) — draws are skipped
    /// entirely, so a fault-free burst takes no lane draws at all.
    pub fn none() -> Self {
        FaultSpec {
            crash_rate: 0.0,
            provision_failure_rate: 0.0,
            ship_stall_rate: 0.0,
            ship_stall_factor: 4.0,
            straggler_rate: 0.0,
            straggler_factor: 3.0,
        }
    }

    /// Whether every fault process is disabled.
    pub fn is_none(&self) -> bool {
        self.crash_rate <= 0.0
            && self.provision_failure_rate <= 0.0
            && self.ship_stall_rate <= 0.0
            && self.straggler_rate <= 0.0
    }

    /// Builder-style crash-rate setter.
    pub fn with_crash_rate(mut self, rate: f64) -> Self {
        self.crash_rate = rate;
        self
    }

    /// Builder-style provision-failure-rate setter.
    pub fn with_provision_failure_rate(mut self, rate: f64) -> Self {
        self.provision_failure_rate = rate;
        self
    }

    /// Builder-style ship-stall setter (rate and slowdown factor).
    pub fn with_ship_stall(mut self, rate: f64, factor: f64) -> Self {
        self.ship_stall_rate = rate;
        self.ship_stall_factor = factor;
        self
    }

    /// Builder-style straggler setter (rate and slowdown factor).
    pub fn with_straggler(mut self, rate: f64, factor: f64) -> Self {
        self.straggler_rate = rate;
        self.straggler_factor = factor;
        self
    }

    /// The first field that is outside its domain, if any: rates must lie
    /// in `[0, 1]` and slowdown factors must be `≥ 1`.
    pub fn invalid_field(&self) -> Option<(&'static str, f64)> {
        let rate_fields = [
            ("crash rate", self.crash_rate),
            ("provision failure rate", self.provision_failure_rate),
            ("ship stall rate", self.ship_stall_rate),
            ("straggler rate", self.straggler_rate),
        ];
        for (name, value) in rate_fields {
            if !(0.0..=1.0).contains(&value) {
                return Some((name, value));
            }
        }
        let factor_fields = [
            ("ship stall factor", self.ship_stall_factor),
            ("straggler factor", self.straggler_factor),
        ];
        for (name, value) in factor_fields {
            if value < 1.0 || value.is_nan() {
                return Some((name, value));
            }
        }
        None
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

/// Retry/timeout/backoff policy for faulted work: capped exponential
/// backoff with a per-instance attempt cap and a per-burst retry budget.
///
/// The simulator consumes this in-burst (a crashed or failed-to-provision
/// instance retries in place); the orchestrator additionally uses it to
/// pace whole-burst resubmission rounds (see `propack-orchestrator`'s
/// `retry` module). When attempts or budget run out, the work is abandoned
/// and reported as a partial completion instead of silently succeeding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum execution/provision attempts per instance (`1` = no
    /// retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, seconds.
    pub backoff_base_secs: f64,
    /// Cap on the exponential backoff, seconds.
    pub backoff_cap_secs: f64,
    /// Total retries one burst may consume across all its instances; once
    /// exhausted, further failures are abandoned immediately.
    pub retry_budget: u32,
    /// Whole-burst resubmission rounds the orchestrator may add on top of
    /// in-burst retries (`1` = never resubmit).
    pub max_rounds: u32,
}

impl RetryPolicy {
    /// Backoff before retrying after the `attempt`-th failure (1-based):
    /// `min(base · 2^(attempt−1), cap)`.
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(30);
        (self.backoff_base_secs * f64::from(1u32 << exp)).min(self.backoff_cap_secs)
    }

    /// A policy that never retries (single attempt, no budget).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_secs: 0.0,
            backoff_cap_secs: 0.0,
            retry_budget: 0,
            max_rounds: 1,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_secs: 0.5,
            backoff_cap_secs: 8.0,
            retry_budget: 1024,
            max_rounds: 2,
        }
    }
}

/// Concrete fault draws for one burst, bound to the burst's seeded RNG
/// tree. See the module docs for the replay-stability argument.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    streams: RngStreams,
    spec: FaultSpec,
}

impl FaultPlan {
    /// Bind `spec`'s fault processes to `streams`' seed.
    pub fn new(streams: &RngStreams, spec: FaultSpec) -> Self {
        FaultPlan {
            streams: streams.clone(),
            spec,
        }
    }

    /// The fault processes this plan draws from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Lane index mixing instance and attempt so each `(instance, attempt)`
    /// pair owns an independent stream.
    fn lane(instance: u32, attempt: u32) -> u64 {
        (u64::from(instance) << 32) | u64::from(attempt)
    }

    /// Does execution attempt `attempt` of `instance` crash? If so, returns
    /// the fraction of the attempt's work completed before the crash
    /// (uniform in `[0.05, 0.95]` — the partial run is billed).
    pub fn crash_point(&self, instance: u32, attempt: u32) -> Option<f64> {
        if self.spec.crash_rate <= 0.0 {
            return None;
        }
        let mut rng = self
            .streams
            .stream_indexed(lanes::FAULT_CRASH, Self::lane(instance, attempt));
        if rng.random::<f64>() < self.spec.crash_rate {
            Some(0.05 + 0.9 * rng.random::<f64>())
        } else {
            None
        }
    }

    /// Does cold-provision attempt `attempt` of `instance` fail?
    pub fn provision_fails(&self, instance: u32, attempt: u32) -> bool {
        if self.spec.provision_failure_rate <= 0.0 {
            return false;
        }
        let mut rng = self
            .streams
            .stream_indexed(lanes::FAULT_PROVISION, Self::lane(instance, attempt));
        rng.random::<f64>() < self.spec.provision_failure_rate
    }

    /// Does `instance`'s shipping transfer stall? Returns the slowdown
    /// factor when it does.
    pub fn ship_stall(&self, instance: u32) -> Option<f64> {
        if self.spec.ship_stall_rate <= 0.0 {
            return None;
        }
        let mut rng = self
            .streams
            .stream_indexed(lanes::FAULT_SHIP, Self::lane(instance, 0));
        if rng.random::<f64>() < self.spec.ship_stall_rate {
            Some(self.spec.ship_stall_factor)
        } else {
            None
        }
    }

    /// Is `instance` a straggler? Returns the execution slowdown factor
    /// when it is (applies to every attempt of the instance).
    pub fn straggler(&self, instance: u32) -> Option<f64> {
        if self.spec.straggler_rate <= 0.0 {
            return None;
        }
        let mut rng = self
            .streams
            .stream_indexed(lanes::FAULT_STRAGGLER, Self::lane(instance, 0));
        if rng.random::<f64>() < self.spec.straggler_rate {
            Some(self.spec.straggler_factor)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64, spec: FaultSpec) -> FaultPlan {
        FaultPlan::new(&RngStreams::new(seed), spec)
    }

    #[test]
    fn fault_free_spec_never_draws() {
        let p = plan(1, FaultSpec::none());
        for i in 0..64 {
            assert!(p.crash_point(i, 1).is_none());
            assert!(!p.provision_fails(i, 1));
            assert!(p.ship_stall(i).is_none());
            assert!(p.straggler(i).is_none());
        }
        assert!(FaultSpec::none().is_none());
        assert!(!FaultSpec::none().with_crash_rate(0.1).is_none());
    }

    #[test]
    fn draws_are_replay_stable() {
        let spec = FaultSpec::none()
            .with_crash_rate(0.3)
            .with_provision_failure_rate(0.2)
            .with_ship_stall(0.2, 5.0)
            .with_straggler(0.2, 2.5);
        let a = plan(42, spec);
        let b = plan(42, spec);
        for i in 0..256 {
            for attempt in 1..4 {
                assert_eq!(a.crash_point(i, attempt), b.crash_point(i, attempt));
                assert_eq!(a.provision_fails(i, attempt), b.provision_fails(i, attempt));
            }
            assert_eq!(a.ship_stall(i), b.ship_stall(i));
            assert_eq!(a.straggler(i), b.straggler(i));
        }
    }

    #[test]
    fn draws_are_order_independent() {
        // Reading lanes in a different order (as a different event
        // interleaving would) cannot change any individual draw.
        let spec = FaultSpec::none().with_crash_rate(0.5);
        let p = plan(7, spec);
        let forward: Vec<_> = (0..64).map(|i| p.crash_point(i, 1)).collect();
        let backward: Vec<_> = (0..64).rev().map(|i| p.crash_point(i, 1)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn crash_rate_matches_draw_frequency() {
        let p = plan(11, FaultSpec::none().with_crash_rate(0.25));
        let crashes = (0..4000).filter(|&i| p.crash_point(i, 1).is_some()).count();
        let rate = crashes as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "observed crash rate {rate}");
    }

    #[test]
    fn attempts_draw_independently() {
        // With a 50 % crash rate some instances crash on attempt 1 but not
        // attempt 2, and vice versa — attempts are not one shared draw.
        let p = plan(3, FaultSpec::none().with_crash_rate(0.5));
        let differs =
            (0..128).any(|i| p.crash_point(i, 1).is_some() != p.crash_point(i, 2).is_some());
        assert!(differs);
    }

    #[test]
    fn crash_point_is_a_billed_fraction() {
        let p = plan(5, FaultSpec::none().with_crash_rate(1.0));
        for i in 0..64 {
            let frac = p.crash_point(i, 1).unwrap();
            assert!((0.05..=0.95).contains(&frac));
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = RetryPolicy {
            max_attempts: 8,
            backoff_base_secs: 0.5,
            backoff_cap_secs: 3.0,
            retry_budget: 16,
            max_rounds: 1,
        };
        assert_eq!(policy.backoff_secs(1), 0.5);
        assert_eq!(policy.backoff_secs(2), 1.0);
        assert_eq!(policy.backoff_secs(3), 2.0);
        assert_eq!(policy.backoff_secs(4), 3.0); // capped
        assert_eq!(policy.backoff_secs(40), 3.0); // no overflow
    }

    #[test]
    fn invalid_fields_detected() {
        assert!(FaultSpec::none().invalid_field().is_none());
        let bad_rate = FaultSpec::none().with_crash_rate(1.5);
        assert_eq!(bad_rate.invalid_field(), Some(("crash rate", 1.5)));
        let bad_factor = FaultSpec::none().with_straggler(0.1, 0.5);
        assert_eq!(bad_factor.invalid_field(), Some(("straggler factor", 0.5)));
        let negative = FaultSpec::none().with_provision_failure_rate(-0.1);
        assert_eq!(
            negative.invalid_field(),
            Some(("provision failure rate", -0.1))
        );
    }

    #[test]
    fn no_retry_policy_is_single_attempt() {
        let p = RetryPolicy::no_retries();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.retry_budget, 0);
        assert_eq!(p.backoff_secs(1), 0.0);
    }
}
