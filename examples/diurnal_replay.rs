//! Online packing under a diurnal arrival trace (EXPERIMENTS.md, "Replay").
//!
//! ```sh
//! cargo run --release --example diurnal_replay
//! ```
//!
//! The rest of the examples plan one burst offline. This one replays the
//! bundled diurnal trace (`crates/replay/traces/diurnal_sample.csv`) on sim
//! time, re-planning the packing degree every epoch, and compares four
//! controllers:
//!
//! * `no-packing`  — every invocation isolated (the Knative/Lambda default);
//! * `fixed:4`     — packing, but a hand-picked constant degree;
//! * `propack:ewma`— the online ProPack controller: EWMA-forecast the next
//!   epoch's concurrency, plan `P` for the forecast;
//! * `oracle`      — same planner, but told each epoch's true concurrency
//!   (the hindsight bound on what forecasting can achieve).
//!
//! The figure of merit is realized total service time; expense and QoS
//! violations (tail latency vs a fixed bound) ride along. Expected ordering:
//! `oracle` <= `propack:ewma` <= `fixed:4`, with the oracle/EWMA gap being
//! pure forecast error (both pay one model fit through the shared cache).

use propack_repro::platform::PlatformBuilder;
use propack_repro::propack::cache::ModelCache;
use propack_repro::replay::{ArrivalTrace, Controller, ReplayEngine, ReplaySpec};
use propack_repro::workloads::Benchmarks;

fn main() {
    let traces = ArrivalTrace::bundled_diurnal().expect("bundled trace parses");
    let trace = ArrivalTrace::select(&traces, "sort").expect("sort app in bundled trace");
    let n_epochs = (trace.horizon_secs() / 60.0).ceil() as usize;
    let mut per_epoch = vec![0u32; n_epochs];
    for &t in trace.arrivals() {
        per_epoch[((t / 60.0) as usize).min(n_epochs - 1)] += 1;
    }
    let peak = per_epoch.iter().max().copied().unwrap_or(0);
    let trough = per_epoch.iter().min().copied().unwrap_or(0);
    println!(
        "trace `{}`: {} arrivals over {:.0}s; per-60s-epoch load swings {trough}..{peak}\n",
        trace.name(),
        trace.len(),
        trace.horizon_secs(),
    );

    let platform = PlatformBuilder::aws().build();
    let work = Benchmarks::resolve("sort")
        .expect("sort benchmark")
        .profile();
    let spec = ReplaySpec {
        // Per-epoch p95 bound: tight enough that constant-degree packing
        // busts it at peak load while adaptive packing stays inside.
        qos_secs: Some(140.0),
        ..ReplaySpec::default()
    };
    let engine = ReplayEngine::new(spec);
    // One cache for all controllers: the scaling-campaign fit is paid once
    // and every planning controller below reuses it.
    let models = ModelCache::new();

    let controllers = ["no-packing", "fixed:4", "propack:ewma", "oracle"];
    println!(
        "{:<13} {:>10} {:>12} {:>8} {:>9} {:>6}",
        "controller", "service_s", "expense_usd", "qos_viol", "fcst_mae", "max_P"
    );
    for name in controllers {
        let controller = Controller::parse(name).expect("controller parses");
        let report = engine
            .run(&platform, &work, trace, &controller, &models)
            .expect("replay runs");
        assert_eq!(report.error_count(), 0, "no epoch may fail");
        let mae = report
            .mean_abs_forecast_error()
            .map_or("-".to_string(), |e| format!("{e:.1}"));
        println!(
            "{:<13} {:>10.1} {:>12.4} {:>8} {:>9} {:>6}",
            report.controller,
            report.total_service_secs(),
            report.total_expense_usd() + report.model_overhead_usd,
            report.qos_violations(),
            mae,
            report.max_degree(),
        );
    }
    println!(
        "\nmodel fits paid: {} (cache hits {}) — shared across the planning controllers",
        models.len(),
        models.hits(),
    );
}
