//! Orchestrator-level retry: resubmit failed functions as follow-up bursts.
//!
//! The resubmission loop itself lives in the platform crate as
//! [`propack_platform::BurstRequest`] — the unified burst entrypoint that
//! also carries warm-pool state. This module keeps the orchestrator-flavored
//! [`RetriedRun`] view; build a `BurstRequest` and convert its
//! [`BurstRun`] with `RetriedRun::from`.
//!
//! Determinism: round `k` draws its seed as a pure function of the original
//! seed and `k` (round 0 uses the original seed verbatim, so a fault-free
//! run is bit-identical to a plain `run_burst`).

use propack_platform::{BurstRun, FaultSummary, RunReport};

/// Outcome of a burst executed under the orchestrator's retry loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RetriedRun {
    /// Per-round platform reports; `rounds[0]` is the original submission.
    pub rounds: Vec<RunReport>,
    /// Functions still failed after the final round — nonzero means the
    /// workflow completed *partially*.
    pub abandoned_functions: u64,
}

impl RetriedRun {
    /// End-to-end service time: rounds serialize, so makespans add.
    pub fn total_service_secs(&self) -> f64 {
        self.rounds.iter().map(|r| r.total_service_time()).sum()
    }

    /// Total bill across all rounds (failed attempts are still billed).
    pub fn expense_usd(&self) -> f64 {
        self.rounds.iter().map(|r| r.expense.total_usd()).sum()
    }

    /// Billed compute across all rounds, function-hours.
    pub fn function_hours(&self) -> f64 {
        self.rounds.iter().map(|r| r.function_hours()).sum()
    }

    /// Instances spawned across all rounds.
    pub fn instances(&self) -> u32 {
        self.rounds.iter().map(|r| r.instances_requested).sum()
    }

    /// Fault counters merged across all rounds.
    pub fn faults(&self) -> FaultSummary {
        let mut total = FaultSummary::default();
        for r in &self.rounds {
            total.merge(&r.faults);
        }
        total
    }

    /// Follow-up submissions beyond the original burst.
    pub fn resubmission_rounds(&self) -> u32 {
        self.rounds.len() as u32 - 1
    }

    /// True when functions remain failed after every round.
    pub fn is_partial(&self) -> bool {
        self.abandoned_functions > 0
    }
}

/// A [`BurstRun`] narrowed to the orchestrator's historical view (the
/// warm-pool counters are dropped; pool-less submissions never set them).
impl From<BurstRun> for RetriedRun {
    fn from(run: BurstRun) -> Self {
        RetriedRun {
            rounds: run.rounds,
            abandoned_functions: run.abandoned_functions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_platform::{
        BurstRequest, BurstSpec, CloudPlatform, FaultSpec, PlatformBuilder, PlatformError,
        RetryPolicy, ServerlessPlatform, WorkProfile,
    };

    fn aws() -> CloudPlatform {
        PlatformBuilder::aws().build()
    }

    fn work() -> WorkProfile {
        WorkProfile::synthetic("w", 0.25, 60.0).with_contention(0.2)
    }

    /// The orchestrator's view of a retried burst, built through the
    /// unified [`BurstRequest`] entrypoint (the old free-function shim).
    fn run_burst_with_retry(
        platform: &CloudPlatform,
        work: &WorkProfile,
        c: u32,
        degree: u32,
        seed: u64,
        faults: FaultSpec,
        retry: RetryPolicy,
    ) -> Result<RetriedRun, PlatformError> {
        BurstRequest::new(work.clone(), c, degree)
            .with_seed(seed)
            .with_faults(faults)
            .with_retry(retry)
            .run(platform)
            .map(RetriedRun::from)
    }

    #[test]
    fn fault_free_run_is_one_round_and_matches_plain_burst() {
        let platform = aws();
        let run = run_burst_with_retry(
            &platform,
            &work(),
            400,
            4,
            11,
            FaultSpec::none(),
            RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(run.rounds.len(), 1);
        assert_eq!(run.resubmission_rounds(), 0);
        assert!(!run.is_partial());
        let plain = platform
            .run_burst(&BurstSpec::packed(work(), 400, 4).with_seed(11))
            .unwrap();
        assert_eq!(run.rounds[0], plain);
    }

    #[test]
    fn failed_functions_are_resubmitted_in_a_smaller_round() {
        // no_retries + a high crash rate forces platform-level failures;
        // max_rounds = 3 lets the orchestrator resubmit them twice.
        let platform = aws();
        let retry = RetryPolicy {
            max_rounds: 3,
            ..RetryPolicy::no_retries()
        };
        let faults = FaultSpec::none().with_crash_rate(0.3);
        let run = run_burst_with_retry(&platform, &work(), 600, 4, 7, faults, retry).unwrap();
        assert!(run.rounds.len() > 1, "failures must trigger a follow-up");
        assert!(
            run.rounds[1].instances_requested < run.rounds[0].instances_requested,
            "follow-up rounds shrink"
        );
        // Rounds serialize: the retried service time exceeds round 0's.
        assert!(run.total_service_secs() > run.rounds[0].total_service_time());
        assert!(run.faults().crashes > 0);
    }

    #[test]
    fn round_cap_yields_partial_completion() {
        // Certain crash with no in-platform retries and a single round:
        // everything fails and nothing is resubmitted.
        let platform = aws();
        let run = run_burst_with_retry(
            &platform,
            &work(),
            200,
            4,
            3,
            FaultSpec::none().with_crash_rate(1.0),
            RetryPolicy::no_retries(),
        )
        .unwrap();
        assert_eq!(run.rounds.len(), 1);
        assert!(run.is_partial());
        assert_eq!(run.abandoned_functions, 200);
        // Failed attempts are still billed.
        assert!(run.expense_usd() > 0.0);
    }

    #[test]
    fn retried_runs_replay_bit_identically() {
        let platform = aws();
        let retry = RetryPolicy {
            max_rounds: 3,
            ..RetryPolicy::no_retries()
        };
        let faults = FaultSpec::none().with_crash_rate(0.3);
        let a = run_burst_with_retry(&platform, &work(), 600, 4, 7, faults, retry).unwrap();
        let b = run_burst_with_retry(&platform, &work(), 600, 4, 7, faults, retry).unwrap();
        assert_eq!(a, b);
    }
}
