//! simlint fixture: the batch-fault drive side (platform identity).
//! Exercises the bulk-head call forms added for cohort fault evaluation:
//! registered constants are clean (and mark their lanes live), a raw
//! literal is flagged, a forwarded lane name needs a justified allow, and
//! the re-drive scheduler call must not box its closure.

use propack_simcore::rng::lanes;

pub fn drive(streams: &RngStreams, lane_name: &str, sim: &mut Sim) {
    // Registered constants through every bulk-head spelling: clean.
    let _one = streams.head_indexed(lanes::FAULT_CRASH, 7);
    let _four = streams.head_indexed4(lanes::FAULT_EXEC, [0, 1, 2, 3]);
    let _eight = streams.head_indexed8(lanes::FAULT_EXEC, [0, 1, 2, 3, 4, 5, 6, 7]);
    // A raw string literal bypasses the registry, same as at `stream(…)`.
    let _bad = streams.head_indexed("fault-crash", 7);
    // The production sweep pattern — a lane forwarded by parameter — is
    // only legal under a justified allow.
    // simlint: allow(rng-lane): "fixture: lane forwarded from callers that pass lanes constants"
    let _fwd = streams.head_indexed8(lane_name, [0, 1, 2, 3, 4, 5, 6, 7]);
    // Re-driving abandoned functions must go through the typed queue, not
    // a boxed closure per retry.
    sim.schedule(SimTime::ZERO, Box::new(move |sim| redrive(sim)));
}
