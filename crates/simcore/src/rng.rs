//! Seeded, stream-split random number generation.
//!
//! Every stochastic component of the platform simulator (execution-time
//! jitter, scheduler noise, start-up variation) pulls from its **own named
//! stream** derived from the run seed. This guarantees two properties the
//! experiments rely on:
//!
//! 1. *Reproducibility*: the same seed always yields the same timeline.
//! 2. *Independence under refactoring*: adding a draw to one component
//!    cannot shift the sequence another component sees, because streams are
//!    derived by hashing the component name into the seed rather than by
//!    sharing one generator.
//!
//! Stream names are **not free-form**: every call site must pass a constant
//! from [`lanes`], the workspace lane registry. `cargo xtask simlint`
//! enforces this (rule `rng-lane`), which keeps the set of active lanes
//! auditable in one place and makes accidental lane collisions (two
//! components hashing to the same stream) detectable at lint time.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Central registry of RNG lane names.
///
/// Each constant names one independent random stream. Call sites must use
/// these constants — never a raw string literal — so that:
///
/// * the full set of lanes is visible (and reviewable) in one module;
/// * `cargo xtask simlint` can prove at lint time that no two lanes collide
///   under the FNV-1a stream hash and that no lane is dead;
/// * renaming a lane is a single-constant change with an obvious blast
///   radius (it reshuffles that stream and regenerates the goldens).
pub mod lanes {
    /// Per-instance execution jitter (cold start, run time, billing ticks).
    pub const EXEC: &str = "exec";
    /// Platform control-plane noise: admission, scheduling, placement.
    pub const CONTROL_PLANE: &str = "control-plane";
    /// FuncX endpoint control loop (cache hits, dispatch latency).
    pub const FUNCX_CONTROL: &str = "funcx-control";
    /// FuncX per-task execution jitter.
    pub const FUNCX_EXEC: &str = "funcx-exec";
    /// Replay: Poisson arrival synthesis.
    pub const TRACE_POISSON: &str = "trace-poisson";
    /// Replay: diurnal (thinned inhomogeneous Poisson) arrival synthesis.
    pub const TRACE_DIURNAL: &str = "trace-diurnal";
    /// Replay: burst-train arrival synthesis.
    pub const TRACE_BURST: &str = "trace-burst";
    /// Fault injection: instance crash draws.
    pub const FAULT_CRASH: &str = "fault-crash";
    /// Fault injection: provisioning-failure draws.
    pub const FAULT_PROVISION: &str = "fault-provision";
    /// Fault injection: data-ship stall draws.
    pub const FAULT_SHIP: &str = "fault-ship";
    /// Fault injection: straggler slowdown draws.
    pub const FAULT_STRAGGLER: &str = "fault-straggler";
    /// Keep-alive: Pagurus-style donor selection when an idle container is
    /// re-specialized for another function.
    pub const KEEPALIVE_PAGURUS: &str = "keepalive-pagurus";

    /// Every registered lane. Order is documentation only; the stream hash
    /// does not depend on it.
    pub const ALL: &[&str] = &[
        EXEC,
        CONTROL_PLANE,
        FUNCX_CONTROL,
        FUNCX_EXEC,
        TRACE_POISSON,
        TRACE_DIURNAL,
        TRACE_BURST,
        FAULT_CRASH,
        FAULT_PROVISION,
        FAULT_SHIP,
        FAULT_STRAGGLER,
        KEEPALIVE_PAGURUS,
    ];
}

/// Factory for independent, deterministic RNG streams.
#[derive(Debug, Clone)]
pub struct RngStreams {
    seed: u64,
}

impl RngStreams {
    /// Create a stream factory rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        RngStreams { seed }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive the generator for the named component.
    ///
    /// The same `(seed, name)` pair always produces the same stream; different
    /// names produce statistically independent streams (FNV-1a split).
    ///
    /// `name` must be a constant from [`lanes`] (enforced by simlint).
    pub fn stream(&self, name: &str) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.seed ^ fnv1a(name.as_bytes()))
    }

    /// Derive a generator for the named component plus an index — e.g. one
    /// stream per function instance.
    ///
    /// The index is folded into the FNV-1a state as eight little-endian
    /// bytes *continuing* the name hash, which domain-separates indexed
    /// streams from [`RngStreams::stream`]: even `index == 0` advances the
    /// hash state (eight multiply rounds), so `stream_indexed(name, 0)`
    /// never aliases `stream(name)`. (The previous derivation XORed
    /// `index * GOLDEN_RATIO` into the hash, which made index 0 a no-op and
    /// silently shared the un-indexed stream — see DESIGN.md §"Seed
    /// compatibility".)
    pub fn stream_indexed(&self, name: &str, index: u64) -> ChaCha8Rng {
        let h = fnv1a_continue(fnv1a(name.as_bytes()), &index.to_le_bytes());
        ChaCha8Rng::seed_from_u64(self.seed ^ h)
    }
}

/// FNV-1a 64-bit hash; small, deterministic, dependency-free.
///
/// Public so that tests (and `cargo xtask simlint`'s collision analysis,
/// which mirrors this function) can verify the lane registry is
/// collision-free against the exact production hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continue an FNV-1a hash from an existing state.
fn fnv1a_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Draw a multiplicative jitter factor in `[1 − amplitude, 1 + amplitude]`.
///
/// This is the noise shape used for execution-time variation: the paper
/// (Fig. 5a) reports < 5 % variation, which corresponds to
/// `amplitude = 0.05`.
pub fn jitter<R: Rng>(rng: &mut R, amplitude: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&amplitude));
    1.0 + amplitude * (rng.random::<f64>() * 2.0 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn same_seed_same_stream() {
        let a = RngStreams::new(42);
        let b = RngStreams::new(42);
        let xs: Vec<u64> = a.stream(lanes::EXEC).random_iter().take(16).collect();
        let ys: Vec<u64> = b.stream(lanes::EXEC).random_iter().take(16).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_names_different_streams() {
        let s = RngStreams::new(42);
        let xs: Vec<u64> = s.stream(lanes::EXEC).random_iter().take(16).collect();
        let ys: Vec<u64> = s
            .stream(lanes::CONTROL_PLANE)
            .random_iter()
            .take(16)
            .collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_seeds_different_streams() {
        let xs: Vec<u64> = RngStreams::new(1)
            .stream(lanes::EXEC)
            .random_iter()
            .take(16)
            .collect();
        let ys: Vec<u64> = RngStreams::new(2)
            .stream(lanes::EXEC)
            .random_iter()
            .take(16)
            .collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn indexed_streams_distinct() {
        let s = RngStreams::new(7);
        let xs: Vec<u64> = s
            .stream_indexed(lanes::EXEC, 0)
            .random_iter()
            .take(8)
            .collect();
        let ys: Vec<u64> = s
            .stream_indexed(lanes::EXEC, 1)
            .random_iter()
            .take(8)
            .collect();
        assert_ne!(xs, ys);
        // And reproducible.
        let xs2: Vec<u64> = s
            .stream_indexed(lanes::EXEC, 0)
            .random_iter()
            .take(8)
            .collect();
        assert_eq!(xs, xs2);
    }

    /// The historical bug this module's v2 derivation fixes: index 0 used to
    /// contribute nothing to the stream hash, so `stream_indexed(name, 0)`
    /// silently shared `stream(name)`'s sequence.
    #[test]
    fn index_zero_does_not_alias_unindexed_stream() {
        let s = RngStreams::new(42);
        for lane in lanes::ALL {
            // simlint: allow(rng-lane): "iterates the registry itself; every value is a lane const"
            let base: Vec<u64> = s.stream(lane).random_iter().take(8).collect();
            // simlint: allow(rng-lane): "iterates the registry itself; every value is a lane const"
            let idx0: Vec<u64> = s.stream_indexed(lane, 0).random_iter().take(8).collect();
            assert_ne!(
                base, idx0,
                "stream_indexed({lane:?}, 0) aliases stream({lane:?})"
            );
        }
    }

    #[test]
    fn lane_registry_has_no_fnv_collisions() {
        let mut seen = BTreeSet::new();
        for lane in lanes::ALL {
            assert!(
                seen.insert(fnv1a(lane.as_bytes())),
                "lane {lane:?} collides with another registered lane under FNV-1a"
            );
        }
        assert_eq!(seen.len(), lanes::ALL.len());
    }

    #[test]
    fn jitter_bounds_and_mean() {
        let s = RngStreams::new(99);
        let mut rng = s.stream(lanes::EXEC);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let j = jitter(&mut rng, 0.05);
            assert!((0.95..=1.05).contains(&j), "jitter {j} out of range");
            sum += j;
        }
        let mean = sum / N as f64;
        assert!((mean - 1.0).abs() < 0.01, "jitter mean {mean} biased");
    }
}
