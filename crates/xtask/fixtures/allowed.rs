//! simlint fixture: justified `allow` directives suppress their violations,
//! both standalone (covers the next line) and trailing (covers its line).

pub fn exact_zero_guard(x: f64) -> bool {
    // simlint: allow(float-eq): "exact zero is a sentinel from the caller"
    x == 0.0
}

pub fn trailing_form(x: f64) -> bool {
    x != 0.0 // simlint: allow(float-eq): "exact sentinel comparison"
}
