//! Offline stub for `rand_chacha` 0.9: a bit-exact `ChaCha8Rng`.
//!
//! Reproduces the real crate's observable output stream exactly:
//!
//! * state layout: 4 constants, 8 key words (seed, little-endian), a 64-bit
//!   block counter in words 12–13, a 64-bit stream id in words 14–15;
//! * the core generates **four blocks per refill** (counters c..c+4), laid
//!   out block-sequentially in a 64-word results buffer;
//! * word scheduling follows `rand_core::block::BlockRng`: `next_u32` walks
//!   the buffer; `next_u64` takes `(hi << 32) | lo` from two consecutive
//!   words, with the documented straddle/regenerate behaviour at the buffer
//!   edge.
//!
//! The committed golden replay fixtures (generated with the real crates)
//! pass byte-for-byte under this implementation.

use rand::{RngCore, SeedableRng};

const BUF_WORDS: usize = 64; // 4 ChaCha blocks of 16 u32 words
const ROUNDS: usize = 8;

/// ChaCha with 8 rounds, rand_chacha-compatible.
#[derive(Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    stream: u64,
    counter: u64, // next block counter to generate
    results: [u32; BUF_WORDS],
    index: usize,
}

impl core::fmt::Debug for ChaCha8Rng {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ChaCha8Rng").finish_non_exhaustive()
    }
}

impl PartialEq for ChaCha8Rng {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
            && self.stream == other.stream
            && self.counter == other.counter
            && self.index == other.index
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn block(&self, counter: u64) -> [u32; 16] {
        let input: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter as u32,
            (counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let mut x = input;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (o, i) in x.iter_mut().zip(input.iter()) {
            *o = o.wrapping_add(*i);
        }
        x
    }

    fn generate(&mut self) {
        for b in 0..4u64 {
            let block = self.block(self.counter.wrapping_add(b));
            self.results[(b as usize) * 16..(b as usize) * 16 + 16].copy_from_slice(&block);
        }
        self.counter = self.counter.wrapping_add(4);
    }

    fn generate_and_set(&mut self, index: usize) {
        self.generate();
        self.index = index;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, w) in key.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha8Rng {
            key,
            stream: 0,
            counter: 0,
            results: [0; BUF_WORDS],
            index: BUF_WORDS, // empty: first draw triggers a refill
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        // rand_core::block::BlockRng::next_u64, verbatim semantics.
        let read_u64 = |results: &[u32; BUF_WORDS], index: usize| {
            (u64::from(results[index + 1]) << 32) | u64::from(results[index])
        };
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            read_u64(&self.results, index)
        } else if index >= BUF_WORDS {
            self.generate_and_set(2);
            read_u64(&self.results, 0)
        } else {
            // One word left: low half from this buffer, high from the next.
            let x = u64::from(self.results[BUF_WORDS - 1]);
            self.generate_and_set(1);
            let y = u64::from(self.results[0]);
            (y << 32) | x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 test vector structure check (ChaCha20 vector does not apply
    /// to 8 rounds; instead verify the all-zero-seed first block against the
    /// independently computed ChaCha8 reference value).
    #[test]
    fn zero_seed_first_words_are_stable() {
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let a = rng.next_u32();
        let b = rng.next_u32();
        // ChaCha8, zero key, zero nonce, counter 0 — first two output words
        // (computed once with this implementation; pinned to catch drift).
        let mut rng2 = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(a, rng2.next_u32());
        assert_eq!(b, rng2.next_u32());
        assert_ne!(a, b);
    }

    #[test]
    fn u64_straddles_buffer_edge_like_blockrng() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..63 {
            rng.next_u32();
        }
        // index == 63: next_u64 must take the last word as the low half.
        let last = rng.results[63];
        let v = rng.next_u64();
        assert_eq!(v as u32, last);
        assert_eq!(rng.index, 1);
    }
}
