//! Real packing interference on this machine.
//!
//! ```sh
//! cargo run --release --example packed_threads
//! ```
//!
//! §2.6 of the paper realizes packing as software threads inside one
//! function instance sharing 6 cores. This example does the same thing for
//! real: runs the actual workload kernels (Smith-Waterman, Sort, image
//! resize) as threads under a core-limited executor and measures how mean
//! function time grows with the packing degree — the same curve ProPack
//! fits with Eq. 1, observed on your hardware rather than in simulation.

use propack_repro::executor::{measure_interference, PackedExecutor};
use propack_repro::stats::models::{fit, ModelKind};
use propack_repro::workloads::{
    smith_waterman::SmithWaterman, sort::MapReduceSort, stateless::StatelessCost, Workload,
};

fn profile<W: Workload>(name: &str, ex: &PackedExecutor, w: &W, degrees: &[u32]) {
    let curve = measure_interference(ex, w, degrees, 3, 42);
    println!("\n{name}:");
    println!("  {:<8} {:>14}", "degree", "mean fn (ms)");
    for p in &curve {
        println!("  {:<8} {:>14.2}", p.packing_degree, p.mean_secs * 1e3);
    }
    // Fit Eq. 1 to the measured curve, like ProPack's profiler does.
    let xs: Vec<f64> = curve.iter().map(|p| p.packing_degree as f64).collect();
    let ys: Vec<f64> = curve.iter().map(|p| p.mean_secs).collect();
    match fit(ModelKind::Exponential, &xs, &ys) {
        Ok(f) => println!(
            "  Eq.1 fit: ET(P) = {:.4}·e^({:.3}·P) s (rmse {:.4})",
            f.params[0], f.params[1], f.rmse
        ),
        Err(e) => println!("  fit failed: {e}"),
    }
}

fn main() {
    let ex = PackedExecutor::lambda_like();
    println!(
        "packed executor: {} core quota (host has {} threads)",
        ex.cores(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let degrees = [1, 2, 4, 8, 12];
    profile(
        "Smith-Waterman (compute-bound)",
        &ex,
        &SmithWaterman {
            query_len: 150,
            db_sequences: 8,
            db_len: 220,
        },
        &degrees,
    );
    profile(
        "Map-Reduce Sort (memory-bound)",
        &ex,
        &MapReduceSort {
            records: 120_000,
            partitions: 8,
        },
        &degrees,
    );
    profile(
        "Stateless image resize",
        &ex,
        &StatelessCost {
            src_size: 256,
            dst_size: 128,
            images: 8,
        },
        &degrees,
    );

    println!(
        "\nOnce the degree exceeds the core quota, functions queue for \
         compute slices and the mean wall time climbs — the interference \
         ProPack's Eq. 1 models."
    );
}
