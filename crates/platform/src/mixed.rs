//! Mixed-application instances: the heterogeneous-packing extension.
//!
//! §5 of the paper: *"packing functions of different characteristics
//! present new modeling challenges — ProPack can be extended to account for
//! those, but it does not do so currently."* This module is that extension's
//! substrate: instances that co-locate functions of **different**
//! applications, with an interference mechanism that degenerates exactly to
//! the homogeneous model when only one application is present.
//!
//! Mechanism: every resident function contributes contention pressure
//! `rate_j = contention_per_gb_j × mem_gb_j` to the instance. A function of
//! type `i` experiences every co-resident's pressure except one count of
//! its own:
//!
//! ```text
//! slowdown_i = exp( Σ_j n_j·rate_j − rate_i ) · timeslice(Σ n_j)
//! ```
//!
//! With a single application (`n` copies of one type) this is
//! `exp(rate·(n−1))` — identical to [`crate::instance::packed_exec_secs`].
//!
//! ## Pairwise interference (heterogeneous co-packing)
//!
//! The pressure mechanism treats all co-residents alike: only their memory
//! footprint and contention rate matter, not *what* they contend for. The
//! intra-function-parallelism literature shows that is too coarse — two
//! I/O-bound functions fight over one NIC while an I/O-bound and a
//! CPU-bound function barely overlap. [`InterferenceMatrix`] refines the
//! model with a deterministic multiplicative factor keyed by
//! [`ResourceKind`] pairs: a victim of kind `i` sharing an instance with
//! `n_j` residents of kind `j` is additionally slowed by
//! `Π_j factor(i,j)^(n_j − δ_ij)` (its own copy excluded). Every factor
//! defaults to **1.0**, so an unconfigured matrix leaves the homogeneous
//! model bit-identical — the same compatibility argument the warm pool's
//! `ColdAlways` policy makes.

use crate::billing::{bill_burst, Expense};
use crate::burst::BurstSpec;
use crate::error::PlatformError;
use crate::profile::InstanceProfile;
use crate::report::RunReport;
use crate::work::{ResourceKind, WorkProfile};
use crate::{CloudPlatform, ServerlessPlatform};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Composition of one mixed instance: how many copies of each application
/// share it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixSpec {
    /// `(workload, copies per instance)` for each application in the mix.
    pub parts: Vec<(WorkProfile, u32)>,
}

impl MixSpec {
    /// A mix of two applications.
    pub fn pair(a: (WorkProfile, u32), b: (WorkProfile, u32)) -> Self {
        MixSpec { parts: vec![a, b] }
    }

    /// Total functions per instance.
    pub fn degree(&self) -> u32 {
        self.parts.iter().map(|(_, n)| n).sum()
    }

    /// Total memory per instance (GB).
    pub fn mem_gb(&self) -> f64 {
        self.parts.iter().map(|(w, n)| w.mem_gb * *n as f64).sum()
    }

    /// Total contention pressure of the instance (Σ n_j·rate_j).
    pub fn total_pressure(&self) -> f64 {
        self.parts
            .iter()
            .map(|(w, n)| w.contention_per_gb * w.mem_gb * *n as f64)
            .sum()
    }
}

/// Pairwise slowdown factors between resource kinds, applied on top of the
/// pressure mechanism when unlike functions share an instance.
///
/// Factors are directional — `factor(victim, aggressor)` — and default to
/// 1.0 for every unset pair, so `InterferenceMatrix::identity()` (and
/// `Default`) leaves all execution times bit-identical to the pure pressure
/// model.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InterferenceMatrix {
    /// `(victim kind, aggressor kind) → per-co-resident factor`; absent
    /// pairs read as 1.0. A `BTreeMap` keeps iteration (and serialization)
    /// order deterministic.
    factors: BTreeMap<(ResourceKind, ResourceKind), f64>,
}

impl InterferenceMatrix {
    /// The do-nothing matrix: every factor 1.0.
    pub fn identity() -> Self {
        InterferenceMatrix::default()
    }

    /// Reference calibration for CPU/IO mixes, used by the workflow
    /// `mixed:cpu+io` shape. Same-kind residents hurt more than the memory
    /// pressure model alone predicts (they queue on one bottleneck
    /// resource); cross-kind residents overlap cleanly and get a slight
    /// relief versus the pressure-only prediction.
    pub fn cpu_io_reference() -> Self {
        InterferenceMatrix::identity()
            .with_factor(ResourceKind::Cpu, ResourceKind::Cpu, 1.04)
            .with_factor(ResourceKind::Io, ResourceKind::Io, 1.08)
            .with_factor(ResourceKind::Cpu, ResourceKind::Io, 0.99)
            .with_factor(ResourceKind::Io, ResourceKind::Cpu, 0.99)
    }

    /// Builder-style setter for one directional pair. Setting 1.0 removes
    /// the entry (keeps `is_identity` an exact structural check).
    pub fn with_factor(mut self, victim: ResourceKind, aggressor: ResourceKind, f: f64) -> Self {
        if f == 1.0 {
            self.factors.remove(&(victim, aggressor));
        } else {
            self.factors.insert((victim, aggressor), f);
        }
        self
    }

    /// The per-co-resident factor for a `victim`-kind function sharing with
    /// one `aggressor`-kind resident. Unset pairs read as 1.0.
    pub fn factor(&self, victim: ResourceKind, aggressor: ResourceKind) -> f64 {
        self.factors
            .get(&(victim, aggressor))
            .copied()
            .unwrap_or(1.0)
    }

    /// True when every factor is 1.0 — the matrix cannot change any number.
    pub fn is_identity(&self) -> bool {
        self.factors.is_empty()
    }

    /// Total slowdown a function of part `part` experiences from the mix:
    /// `Π_j factor(kind_i, kind_j)^(n_j − δ_ij)` — each co-resident
    /// contributes one factor, the victim's own copy excluded. Exactly 1.0
    /// for the identity matrix.
    pub fn victim_factor(&self, mix: &MixSpec, part: usize) -> f64 {
        if self.is_identity() {
            return 1.0;
        }
        let victim = mix.parts[part].0.resource_kind;
        let mut total = 1.0;
        for (j, (work, n)) in mix.parts.iter().enumerate() {
            let co_residents = if j == part { n.saturating_sub(1) } else { *n };
            if co_residents > 0 {
                total *= self
                    .factor(victim, work.resource_kind)
                    .powi(co_residents as i32);
            }
        }
        total
    }
}

/// Deterministic execution time of a type-`i` function inside a mixed
/// instance (see module docs for the mechanism).
pub fn mixed_exec_secs(inst: &InstanceProfile, mix: &MixSpec, part: usize) -> f64 {
    let (work, _) = &mix.parts[part];
    let own_rate = work.contention_per_gb * work.mem_gb;
    let pressure = mix.total_pressure() - own_rate;
    let excess = (mix.degree() as f64 - inst.cores as f64).max(0.0);
    let timeslice = 1.0 + inst.timeslice_penalty * excess;
    let colocation = if mix.degree() > 1 {
        inst.colocation_penalty
    } else {
        1.0
    };
    work.base_exec_secs * pressure.exp() * timeslice * colocation
}

/// [`mixed_exec_secs`] with the pairwise interference factor applied.
/// Bit-identical to the plain version under the identity matrix (the
/// factor is exactly 1.0 and `x * 1.0 == x` in IEEE 754).
pub fn mixed_exec_secs_with(
    inst: &InstanceProfile,
    mix: &MixSpec,
    part: usize,
    interference: &InterferenceMatrix,
) -> f64 {
    mixed_exec_secs(inst, mix, part) * interference.victim_factor(mix, part)
}

/// A heterogeneous co-packed burst: unlike [`WorkProfile`]s sharing each
/// instance at per-function packing degrees, under a pairwise interference
/// model. The workflow engine's fused-sibling-Map primitive.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedBurstSpec {
    /// Instance composition: `(workload, copies per instance)` per part.
    pub mix: MixSpec,
    /// Number of identical mixed instances to launch.
    pub instances: u32,
    /// Pairwise interference factors; identity ⇒ pure pressure model.
    pub interference: InterferenceMatrix,
    /// RNG seed for the shared control-plane timeline.
    pub seed: u64,
}

impl MixedBurstSpec {
    /// A mixed burst under the identity matrix and seed 0.
    pub fn new(mix: MixSpec, instances: u32) -> Self {
        MixedBurstSpec {
            mix,
            instances,
            interference: InterferenceMatrix::identity(),
            seed: 0,
        }
    }

    /// Builder-style setter for the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the interference matrix.
    pub fn with_interference(mut self, interference: InterferenceMatrix) -> Self {
        self.interference = interference;
        self
    }
}

/// Outcome of a mixed burst: one run report per application in the mix,
/// sharing the same control-plane timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedRunOutcome {
    /// Per-application reports, in `MixSpec::parts` order.
    pub per_app: Vec<RunReport>,
    /// Combined bill (compute billed once per instance; storage/network
    /// per function of each application).
    pub expense: Expense,
}

impl CloudPlatform {
    /// Execute `instances` mixed instances, each packed per `mix`, under
    /// the identity interference matrix. Bit-identical to
    /// [`CloudPlatform::run_mixed`] with an unconfigured matrix.
    pub fn run_mixed_burst(
        &self,
        mix: &MixSpec,
        instances: u32,
        seed: u64,
    ) -> Result<MixedRunOutcome, PlatformError> {
        self.run_mixed(&MixedBurstSpec::new(mix.clone(), instances).with_seed(seed))
    }

    /// Execute a heterogeneous co-packed burst.
    ///
    /// The control-plane cost depends only on the instance count (Fig. 5b's
    /// application-independence), so the mixed burst reuses the homogeneous
    /// pipeline with a representative profile and then assigns each
    /// application its own execution times from the mixed-interference
    /// mechanism, scaled by the spec's pairwise interference factors.
    pub fn run_mixed(&self, spec: &MixedBurstSpec) -> Result<MixedRunOutcome, PlatformError> {
        let (mix, instances, seed) = (&spec.mix, spec.instances, spec.seed);
        if mix.parts.is_empty() || mix.degree() == 0 || instances == 0 {
            return Err(PlatformError::EmptyBurst);
        }
        let limits = self.limits();
        if mix.mem_gb() > limits.mem_gb + 1e-9 {
            return Err(PlatformError::MemoryLimitExceeded {
                packing_degree: mix.degree(),
                mem_gb: mix.mem_gb() / mix.degree() as f64,
                limit_gb: limits.mem_gb,
            });
        }
        let inst = self.profile().instance;
        for part in 0..mix.parts.len() {
            let projected = mixed_exec_secs_with(&inst, mix, part, &spec.interference)
                * (1.0 + inst.exec_jitter);
            if projected > limits.max_exec_secs {
                return Err(PlatformError::ExecutionTimeout {
                    projected_secs: projected,
                    limit_secs: limits.max_exec_secs,
                });
            }
        }

        // Control-plane timeline: run the pipeline once with a profile whose
        // footprint matches the mix (placement/build/ship are application-
        // independent). Use the slowest part's dependency load: a mixed
        // container initializes every runtime.
        let max_dep = mix
            .parts
            .iter()
            .map(|(w, _)| w.dependency_load_secs)
            .fold(0.0, f64::max);
        let carrier =
            WorkProfile::synthetic("mixed-carrier", mix.mem_gb() / mix.degree() as f64, 1.0)
                .with_dependency_load(max_dep);
        let timeline = self.run_burst(&BurstSpec::new(carrier, instances, 1).with_seed(seed))?;

        let mut per_app = Vec::with_capacity(mix.parts.len());
        let mut all_exec = Vec::new();
        for (part_idx, (work, copies)) in mix.parts.iter().enumerate() {
            let exec = mixed_exec_secs_with(&inst, mix, part_idx, &spec.interference);
            let mut records = timeline.instances.clone();
            for r in records.iter_mut() {
                r.finished_at = r.started_at + exec;
                r.billed_secs = exec;
            }
            all_exec.push(exec);
            let app_expense = bill_burst(
                &self.profile().prices,
                work,
                0.0, // compute billed once for the whole instance, below
                &[],
                *copies,
            );
            let mut report = RunReport {
                platform: self.name(),
                workload: work.name.clone(),
                instances_requested: instances,
                packing_degree: *copies,
                instances: records,
                scaling: timeline.scaling,
                expense: app_expense,
                faults: timeline.faults,
            };
            // Storage/network components per function of this app.
            let functions = instances as f64 * *copies as f64;
            report.expense.storage_usd = functions
                * (work.storage_requests as f64 * self.profile().prices.usd_per_storage_request
                    + work.storage_gb * self.profile().prices.usd_per_storage_gb);
            report.expense.network_usd = functions
                * work.network_gb
                * crate::billing::PACKED_EGRESS_RESIDUAL
                * self.profile().prices.usd_per_network_gb;
            per_app.push(report);
        }

        // Instance compute bill: the instance runs until its slowest
        // resident finishes, at the configured (max) memory.
        let instance_secs = all_exec.iter().copied().fold(0.0, f64::max);
        let compute_usd = instance_secs
            * instances as f64
            * self.profile().instance.mem_gb
            * self.profile().prices.usd_per_gb_sec;
        let request_usd = instances as f64 * self.profile().prices.usd_per_request;
        let storage_usd: f64 = per_app.iter().map(|r| r.expense.storage_usd).sum();
        let network_usd: f64 = per_app.iter().map(|r| r.expense.network_usd).sum();
        Ok(MixedRunOutcome {
            per_app,
            expense: Expense {
                compute_usd,
                request_usd,
                storage_usd,
                network_usd,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::instance::packed_exec_secs;
    use crate::profile::PlatformProfile;

    fn aws() -> CloudPlatform {
        PlatformBuilder::aws().build()
    }

    fn light() -> WorkProfile {
        WorkProfile::synthetic("light", 0.25, 100.0).with_contention(0.18)
    }

    fn heavy() -> WorkProfile {
        WorkProfile::synthetic("heavy", 0.64, 80.0).with_contention(0.1406)
    }

    #[test]
    fn homogeneous_mix_matches_packed_model() {
        // n copies of one app in a "mix" must reproduce the homogeneous
        // interference exactly.
        let inst = PlatformProfile::aws_lambda().instance;
        for n in [1u32, 3, 8, 15] {
            let mix = MixSpec {
                parts: vec![(light(), n)],
            };
            let mixed = mixed_exec_secs(&inst, &mix, 0);
            let homo = packed_exec_secs(&inst, &light(), n);
            assert!((mixed - homo).abs() < 1e-9, "n={n}: {mixed} vs {homo}");
        }
    }

    #[test]
    fn cross_app_interference_is_mutual() {
        // Adding heavy co-residents slows the light app more than adding
        // nothing, and vice versa.
        let inst = PlatformProfile::aws_lambda().instance;
        let solo = MixSpec {
            parts: vec![(light(), 1)],
        };
        let mixed = MixSpec::pair((light(), 1), (heavy(), 4));
        assert!(mixed_exec_secs(&inst, &mixed, 0) > mixed_exec_secs(&inst, &solo, 0));
        // And the heavy app sees the light one's pressure too.
        let heavy_solo = MixSpec {
            parts: vec![(heavy(), 4)],
        };
        let heavy_in_mix = mixed_exec_secs(&inst, &mixed, 1);
        let heavy_alone = mixed_exec_secs(&inst, &heavy_solo, 0);
        assert!(heavy_in_mix > heavy_alone);
    }

    #[test]
    fn mixed_burst_runs_and_bills_once_per_instance() {
        let p = aws();
        let mix = MixSpec::pair((light(), 4), (heavy(), 2));
        let out = p.run_mixed_burst(&mix, 100, 5).unwrap();
        assert_eq!(out.per_app.len(), 2);
        assert_eq!(out.per_app[0].instances.len(), 100);
        // Compute bill reflects the slowest resident's duration.
        let slow = out
            .per_app
            .iter()
            .map(|r| r.exec_summary().mean())
            .fold(0.0, f64::max);
        let want = slow * 100.0 * 10.0 * p.prices().usd_per_gb_sec;
        assert!((out.expense.compute_usd - want).abs() / want < 0.05);
        // One request fee per instance, not per function.
        assert!((out.expense.request_usd - 100.0 * p.prices().usd_per_request).abs() < 1e-12);
    }

    #[test]
    fn mixed_memory_cap_enforced() {
        let p = aws();
        let mix = MixSpec::pair((light(), 20), (heavy(), 10)); // 5 + 6.4 = 11.4 GB
        assert!(matches!(
            p.run_mixed_burst(&mix, 10, 1),
            Err(PlatformError::MemoryLimitExceeded { .. })
        ));
    }

    #[test]
    fn mixed_timeout_enforced() {
        let p = aws();
        let slow = WorkProfile::synthetic("slow", 0.25, 800.0).with_contention(0.5);
        let mix = MixSpec::pair((slow, 6), (light(), 2));
        assert!(matches!(
            p.run_mixed_burst(&mix, 5, 1),
            Err(PlatformError::ExecutionTimeout { .. })
        ));
    }

    #[test]
    fn identity_matrix_is_bit_identical_to_the_legacy_path() {
        let p = aws();
        let mix = MixSpec::pair((light(), 4), (heavy(), 2));
        let legacy = p.run_mixed_burst(&mix, 50, 9).unwrap();
        let spec = MixedBurstSpec::new(mix.clone(), 50).with_seed(9);
        assert!(spec.interference.is_identity());
        let modern = p.run_mixed(&spec).unwrap();
        assert_eq!(legacy, modern, "identity matrix must change nothing");
        // And the per-part exec times match the plain mechanism exactly.
        let inst = PlatformProfile::aws_lambda().instance;
        for part in 0..2 {
            assert_eq!(
                mixed_exec_secs(&inst, &mix, part).to_bits(),
                mixed_exec_secs_with(&inst, &mix, part, &InterferenceMatrix::identity()).to_bits(),
            );
        }
    }

    #[test]
    fn pairwise_factors_scale_the_victim_only() {
        use crate::work::ResourceKind;
        let inst = PlatformProfile::aws_lambda().instance;
        let cpu = light().with_resource_kind(ResourceKind::Cpu);
        let io = heavy().with_resource_kind(ResourceKind::Io);
        let mix = MixSpec::pair((cpu, 2), (io, 3));
        // Slow CPU victims 10% per I/O co-resident; leave everything else.
        let m =
            InterferenceMatrix::identity().with_factor(ResourceKind::Cpu, ResourceKind::Io, 1.10);
        let base_cpu = mixed_exec_secs(&inst, &mix, 0);
        let base_io = mixed_exec_secs(&inst, &mix, 1);
        let got_cpu = mixed_exec_secs_with(&inst, &mix, 0, &m);
        let got_io = mixed_exec_secs_with(&inst, &mix, 1, &m);
        // Three I/O co-residents → 1.1³ on the CPU part.
        assert!((got_cpu / base_cpu - 1.1f64.powi(3)).abs() < 1e-12);
        assert_eq!(got_io.to_bits(), base_io.to_bits(), "io part untouched");
    }

    #[test]
    fn own_copy_is_excluded_from_the_victim_factor() {
        use crate::work::ResourceKind;
        let io = light().with_resource_kind(ResourceKind::Io);
        let m =
            InterferenceMatrix::identity().with_factor(ResourceKind::Io, ResourceKind::Io, 1.08);
        // One I/O function alone: zero co-residents, factor exactly 1.
        let solo = MixSpec {
            parts: vec![(io.clone(), 1)],
        };
        assert_eq!(m.victim_factor(&solo, 0), 1.0);
        // Four copies: three co-residents.
        let four = MixSpec {
            parts: vec![(io, 4)],
        };
        assert!((m.victim_factor(&four, 0) - 1.08f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn setting_a_factor_to_one_restores_identity() {
        use crate::work::ResourceKind;
        let m = InterferenceMatrix::identity()
            .with_factor(ResourceKind::Cpu, ResourceKind::Io, 1.2)
            .with_factor(ResourceKind::Cpu, ResourceKind::Io, 1.0);
        assert!(m.is_identity());
    }

    #[test]
    fn non_mixed_platforms_reject_co_packed_bursts() {
        // The trait's default implementation: a platform without the
        // mixed-instance model refuses rather than silently decomposing.
        struct Bare;
        impl ServerlessPlatform for Bare {
            fn name(&self) -> String {
                "bare".into()
            }
            fn limits(&self) -> crate::platform::InstanceLimits {
                aws().limits()
            }
            fn prices(&self) -> crate::profile::PriceSheet {
                aws().prices()
            }
            fn run_burst(&self, spec: &BurstSpec) -> Result<RunReport, PlatformError> {
                aws().run_burst(spec)
            }
            fn nominal_exec_secs(&self, work: &WorkProfile, degree: u32) -> f64 {
                aws().nominal_exec_secs(work, degree)
            }
        }
        let spec = MixedBurstSpec::new(MixSpec::pair((light(), 1), (heavy(), 1)), 4);
        assert!(matches!(
            Bare.run_mixed(&spec),
            Err(PlatformError::MixedBurstsUnsupported { .. })
        ));
        // While CloudPlatform, through the same trait surface, accepts.
        let p: &dyn ServerlessPlatform = &aws();
        assert!(p.run_mixed(&spec).is_ok());
    }

    #[test]
    fn empty_mix_rejected() {
        let p = aws();
        assert!(matches!(
            p.run_mixed_burst(&MixSpec { parts: vec![] }, 5, 1),
            Err(PlatformError::EmptyBurst)
        ));
        assert!(matches!(
            p.run_mixed_burst(
                &MixSpec {
                    parts: vec![(light(), 0)]
                },
                5,
                1
            ),
            Err(PlatformError::EmptyBurst)
        ));
    }
}
