//! Regenerates tab01 of the paper. Pass --json for machine-readable rows.
fn main() {
    propack_bench::figure_main("tab01");
}
