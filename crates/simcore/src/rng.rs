//! Seeded, stream-split random number generation.
//!
//! Every stochastic component of the platform simulator (execution-time
//! jitter, scheduler noise, start-up variation) pulls from its **own named
//! stream** derived from the run seed. This guarantees two properties the
//! experiments rely on:
//!
//! 1. *Reproducibility*: the same seed always yields the same timeline.
//! 2. *Independence under refactoring*: adding a draw to one component
//!    cannot shift the sequence another component sees, because streams are
//!    derived by hashing the component name into the seed rather than by
//!    sharing one generator.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Factory for independent, deterministic RNG streams.
#[derive(Debug, Clone)]
pub struct RngStreams {
    seed: u64,
}

impl RngStreams {
    /// Create a stream factory rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        RngStreams { seed }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive the generator for the named component.
    ///
    /// The same `(seed, name)` pair always produces the same stream; different
    /// names produce statistically independent streams (FNV-1a split).
    pub fn stream(&self, name: &str) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.seed ^ fnv1a(name.as_bytes()))
    }

    /// Derive a generator for the named component plus an index — e.g. one
    /// stream per function instance.
    pub fn stream_indexed(&self, name: &str, index: u64) -> ChaCha8Rng {
        let mut h = fnv1a(name.as_bytes());
        h ^= index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ChaCha8Rng::seed_from_u64(self.seed ^ h)
    }
}

/// FNV-1a 64-bit hash; small, deterministic, dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Draw a multiplicative jitter factor in `[1 − amplitude, 1 + amplitude]`.
///
/// This is the noise shape used for execution-time variation: the paper
/// (Fig. 5a) reports < 5 % variation, which corresponds to
/// `amplitude = 0.05`.
pub fn jitter<R: Rng>(rng: &mut R, amplitude: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&amplitude));
    1.0 + amplitude * (rng.random::<f64>() * 2.0 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = RngStreams::new(42);
        let b = RngStreams::new(42);
        let xs: Vec<u64> = a.stream("exec").random_iter().take(16).collect();
        let ys: Vec<u64> = b.stream("exec").random_iter().take(16).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_names_different_streams() {
        let s = RngStreams::new(42);
        let xs: Vec<u64> = s.stream("exec").random_iter().take(16).collect();
        let ys: Vec<u64> = s.stream("sched").random_iter().take(16).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_seeds_different_streams() {
        let xs: Vec<u64> = RngStreams::new(1)
            .stream("exec")
            .random_iter()
            .take(16)
            .collect();
        let ys: Vec<u64> = RngStreams::new(2)
            .stream("exec")
            .random_iter()
            .take(16)
            .collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn indexed_streams_distinct() {
        let s = RngStreams::new(7);
        let xs: Vec<u64> = s.stream_indexed("inst", 0).random_iter().take(8).collect();
        let ys: Vec<u64> = s.stream_indexed("inst", 1).random_iter().take(8).collect();
        assert_ne!(xs, ys);
        // And reproducible.
        let xs2: Vec<u64> = s.stream_indexed("inst", 0).random_iter().take(8).collect();
        assert_eq!(xs, xs2);
    }

    #[test]
    fn jitter_bounds_and_mean() {
        let s = RngStreams::new(99);
        let mut rng = s.stream("jitter");
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let j = jitter(&mut rng, 0.05);
            assert!((0.95..=1.05).contains(&j), "jitter {j} out of range");
            sum += j;
        }
        let mean = sum / N as f64;
        assert!((mean - 1.0).abs() < 0.01, "jitter mean {mean} biased");
    }
}
