//! FuncX-style on-premise serverless platform simulator.
//!
//! FuncX (Chard et al., HPDC '20) is an HTC/HPC-focused serverless fabric:
//! workers are spawned inside **Kubernetes pods** on a dedicated cluster
//! rather than per-request microVMs. The ProPack paper (Fig. 18) observes
//! three behavioural differences from AWS Lambda, each of which this
//! simulator reproduces *mechanistically* rather than by fiat:
//!
//! 1. **FuncX scales ~15 % faster at C = 5000** — because (a) several
//!    workers co-locate in one pod, so far fewer container images are
//!    pulled, and (b) Kubernetes' node-local container cache satisfies most
//!    pulls without network transfer. Both appear here as per-pod (not
//!    per-worker) image pulls gated by a seeded cache lottery.
//! 2. **Packed execution is ~12 % slower than on Lambda** — pods share
//!    node resources with weaker isolation than Firecracker microVMs; the
//!    `colocation_penalty` of the cluster profile carries this.
//! 3. **No 15-minute execution cap and no per-request billing** — on-prem
//!    accounting is amortized node-hours, represented as a GB·s rate.
//!
//! The crate exposes [`FuncXPlatform`], which implements the same
//! [`ServerlessPlatform`](propack_platform::ServerlessPlatform) trait as the cloud simulator, so ProPack, the
//! Oracle, and every baseline run on it unchanged.

pub mod cluster;

pub use cluster::{FuncXConfig, FuncXPlatform};
