//! Replay reports: per-epoch accounting with a deterministic render.
//!
//! The same split as sweep reports: [`ReplayReport::render`] contains only
//! simulated results at fixed precision and must be byte-identical across
//! re-runs and thread counts; host timing (`fit_ms`, per-epoch `run_ms`)
//! is captured for `BENCH_replay.json` but never rendered.

/// One epoch's realized outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochResult {
    /// Epoch index.
    pub epoch: u32,
    /// Epoch start, seconds on the sim clock.
    pub start_secs: f64,
    /// Realized invocations admitted in this epoch's window.
    pub arrivals: u32,
    /// The forecast the controller planned with (`propack:*` only).
    pub forecast: Option<u32>,
    /// Packing degree the controller chose.
    pub packing_degree: u32,
    /// Instances spawned (all retry rounds).
    pub instances: u32,
    /// Realized service time, seconds (retry rounds serialize).
    pub service_secs: f64,
    /// Realized tail (p95) latency, seconds, summed across retry rounds.
    pub tail_secs: f64,
    /// Billed expense, USD (failed attempts are billed too).
    pub expense_usd: f64,
    /// Billed compute, function-hours.
    pub function_hours: f64,
    /// Retries consumed by fault recovery.
    pub retries: u64,
    /// Functions abandoned after the retry budget.
    pub failed_functions: u64,
    /// Instances granted warm (same-function keep-alive) from the pool.
    pub warm_grants: u64,
    /// Instances granted as re-specialized shared donors (Pagurus).
    pub shared_grants: u64,
    /// True when a QoS bound was set and the epoch's tail exceeded it.
    pub qos_violation: bool,
    /// Realized service time of the oracle's plan for this epoch's true
    /// arrivals, seconds (regret instrumentation only; `None` when regret
    /// tracking is off or the oracle shadow could not run).
    pub oracle_service_secs: Option<f64>,
    /// Realized expense of the oracle's plan for this epoch, USD (same
    /// provenance as [`EpochResult::oracle_service_secs`]).
    pub oracle_expense_usd: Option<f64>,
    /// Platform or planning error, if the epoch could not run.
    pub error: Option<String>,
    /// Host milliseconds dispatching this epoch (timing only, not rendered).
    pub run_ms: f64,
}

/// Accumulated outcome of replaying one trace under one controller.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Trace (app) name.
    pub trace: String,
    /// Platform display name.
    pub platform: String,
    /// Workload name.
    pub workload: String,
    /// Controller label, e.g. `propack-ewma`.
    pub controller: String,
    /// Epoch width, seconds.
    pub epoch_secs: f64,
    /// Base seed.
    pub seed: u64,
    /// QoS bound on per-epoch tail latency, if one was set.
    pub qos_secs: Option<f64>,
    /// Keep-alive policy label (`cold`, `fixed:60`, `histogram`,
    /// `pagurus`). `cold` renders exactly as the pre-pool format did.
    pub keepalive: String,
    /// Per-epoch results, in epoch order.
    pub epochs: Vec<EpochResult>,
    /// Model-building expense, USD, paid once per replay (zero for
    /// controllers that never fit a model).
    pub model_overhead_usd: f64,
    /// Host milliseconds spent fitting the model (timing only, not rendered).
    pub fit_ms: f64,
}

impl ReplayReport {
    /// Total invocations replayed.
    pub fn total_arrivals(&self) -> u64 {
        self.epochs.iter().map(|e| u64::from(e.arrivals)).sum()
    }

    /// Total realized service time, seconds (epochs are independent bursts;
    /// the controller's cost is their sum).
    pub fn total_service_secs(&self) -> f64 {
        self.epochs.iter().map(|e| e.service_secs).sum()
    }

    /// Total billed expense including the one-time model overhead, USD.
    pub fn total_expense_usd(&self) -> f64 {
        self.model_overhead_usd + self.epochs.iter().map(|e| e.expense_usd).sum::<f64>()
    }

    /// Total billed compute, function-hours (model overhead excluded — it is
    /// reported separately in USD).
    pub fn total_function_hours(&self) -> f64 {
        self.epochs.iter().map(|e| e.function_hours).sum()
    }

    /// Epochs whose tail latency violated the QoS bound.
    pub fn qos_violations(&self) -> u32 {
        // simlint: allow(as-truncation): "epoch count, bounded by the replay horizon (thousands, not billions)"
        self.epochs.iter().filter(|e| e.qos_violation).count() as u32
    }

    /// Total retries across all epochs.
    pub fn total_retries(&self) -> u64 {
        self.epochs.iter().map(|e| e.retries).sum()
    }

    /// Total same-function warm grants across all epochs.
    pub fn total_warm_grants(&self) -> u64 {
        self.epochs.iter().map(|e| e.warm_grants).sum()
    }

    /// Total re-specialized shared (Pagurus donor) grants across all epochs.
    pub fn total_shared_grants(&self) -> u64 {
        self.epochs.iter().map(|e| e.shared_grants).sum()
    }

    /// Total abandoned functions across all epochs.
    pub fn total_failed(&self) -> u64 {
        self.epochs.iter().map(|e| e.failed_functions).sum()
    }

    /// Mean absolute forecast error over forecasted epochs, functions;
    /// `None` when the controller never forecast.
    pub fn mean_abs_forecast_error(&self) -> Option<f64> {
        let errs: Vec<f64> = self
            .epochs
            .iter()
            .filter_map(|e| {
                e.forecast
                    .map(|f| (f64::from(f) - f64::from(e.arrivals)).abs())
            })
            .collect();
        if errs.is_empty() {
            None
        } else {
            Some(errs.iter().sum::<f64>() / errs.len() as f64)
        }
    }

    /// Epochs carrying oracle regret instrumentation.
    pub fn regret_epochs(&self) -> usize {
        self.epochs
            .iter()
            .filter(|e| e.oracle_service_secs.is_some())
            .count()
    }

    /// Total service regret vs the oracle's plan, seconds: how much slower
    /// this controller's realized epochs ran than the oracle's plan for the
    /// same true arrivals (same seed, same warm-pool state). Negative values
    /// are possible — the oracle plans on the fitted model, and the model is
    /// an approximation of the realized timeline. `None` when regret
    /// tracking was off.
    pub fn total_service_regret_secs(&self) -> Option<f64> {
        self.fold_regret(|e| e.oracle_service_secs.map(|o| e.service_secs - o))
    }

    /// Total expense regret vs the oracle's plan, USD (see
    /// [`ReplayReport::total_service_regret_secs`]).
    pub fn total_expense_regret_usd(&self) -> Option<f64> {
        self.fold_regret(|e| e.oracle_expense_usd.map(|o| e.expense_usd - o))
    }

    fn fold_regret(&self, gap: impl Fn(&EpochResult) -> Option<f64>) -> Option<f64> {
        let gaps: Vec<f64> = self.epochs.iter().filter_map(gap).collect();
        if gaps.is_empty() {
            None
        } else {
            Some(gaps.iter().sum())
        }
    }

    /// Largest packing degree any epoch used.
    pub fn max_degree(&self) -> u32 {
        self.epochs
            .iter()
            .map(|e| e.packing_degree)
            .max()
            .unwrap_or(0)
    }

    /// Epochs that failed to run.
    pub fn error_count(&self) -> usize {
        self.epochs.iter().filter(|e| e.error.is_some()).count()
    }

    /// The deterministic text report: fixed precision, no host timing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "replay {} on {}/{}: controller={} epochs={} epoch_s={:.1} seed={} qos_s={}\n",
            self.trace,
            self.platform,
            self.workload,
            self.controller,
            self.epochs.len(),
            self.epoch_secs,
            self.seed,
            match self.qos_secs {
                Some(q) => format!("{q:.3}"),
                None => "-".to_string(),
            },
        ));
        out.push_str(
            "epoch\tstart_s\tarrivals\tforecast\tP\tinstances\tservice_s\ttail_s\texpense_usd\tfn_hours\tretries\tfailed\tqos\n",
        );
        for e in &self.epochs {
            if let Some(err) = &e.error {
                out.push_str(&format!(
                    "{}\t{:.1}\t{}\t{}\t{}\tERROR: {}\n",
                    e.epoch,
                    e.start_secs,
                    e.arrivals,
                    forecast_cell(e.forecast),
                    e.packing_degree,
                    err,
                ));
                continue;
            }
            out.push_str(&format!(
                "{}\t{:.1}\t{}\t{}\t{}\t{}\t{:.3}\t{:.3}\t{:.6}\t{:.4}\t{}\t{}\t{}",
                e.epoch,
                e.start_secs,
                e.arrivals,
                forecast_cell(e.forecast),
                e.packing_degree,
                e.instances,
                e.service_secs,
                e.tail_secs,
                e.expense_usd,
                e.function_hours,
                e.retries,
                e.failed_functions,
                if e.qos_violation { "VIOLATED" } else { "ok" },
            ));
            // Regret columns exist only under `--regret`, so a plain replay
            // renders exactly the pre-regret bytes.
            if let (Some(os), Some(oe)) = (e.oracle_service_secs, e.oracle_expense_usd) {
                out.push_str(&format!(
                    "\tregret_s={:.3}\tregret_usd={:.6}",
                    e.service_secs - os,
                    e.expense_usd - oe,
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "total: arrivals={} service_s={:.3} expense_usd={:.6} (model_overhead_usd={:.6}) fn_hours={:.4} retries={} failed={} qos_violations={} forecast_mae={}\n",
            self.total_arrivals(),
            self.total_service_secs(),
            self.total_expense_usd(),
            self.model_overhead_usd,
            self.total_function_hours(),
            self.total_retries(),
            self.total_failed(),
            self.qos_violations(),
            match self.mean_abs_forecast_error() {
                Some(m) => format!("{m:.2}"),
                None => "-".to_string(),
            },
        ));
        // Like the warm line, the regret line is opt-in: it exists only
        // when the oracle shadow ran, keeping plain replays byte-stable.
        if let (Some(rs), Some(re)) = (
            self.total_service_regret_secs(),
            self.total_expense_regret_usd(),
        ) {
            out.push_str(&format!(
                "regret: service_s={:.3} expense_usd={:.6} epochs={}\n",
                rs,
                re,
                self.regret_epochs(),
            ));
        }
        // The warm line exists only under a keep-alive policy, so a cold
        // replay renders byte-identically to the pre-pool format.
        if self.keepalive != "cold" {
            out.push_str(&format!(
                "warm: keepalive={} warm_grants={} shared_grants={}\n",
                self.keepalive,
                self.total_warm_grants(),
                self.total_shared_grants(),
            ));
        }
        out
    }
}

fn forecast_cell(f: Option<u32>) -> String {
    match f {
        Some(v) => v.to_string(),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(k: u32, arrivals: u32, forecast: Option<u32>, service: f64) -> EpochResult {
        EpochResult {
            epoch: k,
            start_secs: f64::from(k) * 60.0,
            arrivals,
            forecast,
            packing_degree: 4,
            instances: arrivals.div_ceil(4),
            service_secs: service,
            tail_secs: service * 0.9,
            expense_usd: 0.01,
            function_hours: 0.2,
            retries: 0,
            failed_functions: 0,
            warm_grants: 0,
            shared_grants: 0,
            qos_violation: service > 30.0,
            oracle_service_secs: None,
            oracle_expense_usd: None,
            error: None,
            run_ms: 5.0,
        }
    }

    fn report() -> ReplayReport {
        ReplayReport {
            trace: "sort".into(),
            platform: "AWS Lambda".into(),
            workload: "sort".into(),
            controller: "propack-ewma".into(),
            epoch_secs: 60.0,
            seed: 42,
            qos_secs: Some(30.0),
            keepalive: "cold".into(),
            epochs: vec![
                epoch(0, 100, None, 12.0),
                epoch(1, 120, Some(100), 35.0),
                epoch(2, 80, Some(110), 10.0),
            ],
            model_overhead_usd: 0.005,
            fit_ms: 9.0,
        }
    }

    #[test]
    fn totals_and_forecast_error_accumulate() {
        let r = report();
        assert_eq!(r.total_arrivals(), 300);
        assert!((r.total_service_secs() - 57.0).abs() < 1e-12);
        assert!((r.total_expense_usd() - 0.035).abs() < 1e-12);
        assert_eq!(r.qos_violations(), 1);
        // |100-120| = 20, |110-80| = 30 → MAE 25 over the 2 forecasted epochs.
        assert_eq!(r.mean_abs_forecast_error(), Some(25.0));
        assert_eq!(r.max_degree(), 4);
    }

    #[test]
    fn render_excludes_host_timing() {
        let a = report();
        let mut b = report();
        b.fit_ms = 1e9;
        for e in &mut b.epochs {
            e.run_ms = 1e9;
        }
        assert_eq!(a.render(), b.render());
        let mut c = report();
        c.epochs[1].service_secs += 0.001;
        assert_ne!(a.render(), c.render());
    }

    #[test]
    fn render_marks_violations_and_errors() {
        let mut r = report();
        r.epochs[2].error = Some("instance limit".into());
        let text = r.render();
        assert!(text.contains("VIOLATED"));
        assert!(text.contains("ERROR: instance limit"));
        assert!(text.contains("qos_violations=1"));
        assert!(text.contains("forecast_mae=25.00"));
    }

    #[test]
    fn warm_line_appears_only_under_a_keepalive_policy() {
        let cold = report();
        assert!(!cold.render().contains("warm:"));
        let mut warm = report();
        warm.keepalive = "fixed:60".into();
        warm.epochs[1].warm_grants = 12;
        warm.epochs[2].shared_grants = 3;
        let text = warm.render();
        assert!(text.contains("warm: keepalive=fixed:60 warm_grants=12 shared_grants=3"));
        // Everything above the warm line is byte-identical to the cold render.
        assert!(text.starts_with(&cold.render()));
    }

    #[test]
    fn regret_totals_and_render_are_opt_in() {
        let plain = report();
        assert_eq!(plain.total_service_regret_secs(), None);
        assert_eq!(plain.total_expense_regret_usd(), None);
        assert_eq!(plain.regret_epochs(), 0);
        assert!(!plain.render().contains("regret"));

        let mut tracked = report();
        // Epoch 1 ran 5s slower and $0.002 cheaper than the oracle's plan;
        // epoch 2 matched it exactly. Epoch 0 carries no shadow data.
        tracked.epochs[1].oracle_service_secs = Some(30.0);
        tracked.epochs[1].oracle_expense_usd = Some(0.012);
        tracked.epochs[2].oracle_service_secs = Some(10.0);
        tracked.epochs[2].oracle_expense_usd = Some(0.01);
        assert_eq!(tracked.regret_epochs(), 2);
        assert!((tracked.total_service_regret_secs().unwrap() - 5.0).abs() < 1e-12);
        assert!((tracked.total_expense_regret_usd().unwrap() + 0.002).abs() < 1e-12);
        let text = tracked.render();
        assert!(
            text.contains("\tregret_s=5.000\tregret_usd=-0.002000"),
            "{text}"
        );
        assert!(
            text.contains("regret: service_s=5.000 expense_usd=-0.002000 epochs=2"),
            "{text}"
        );
        // Rows without shadow data keep the pre-regret shape.
        let epoch0 = text.lines().nth(2).expect("epoch 0 row");
        assert!(!epoch0.contains("regret"), "{epoch0}");
    }

    #[test]
    fn controllers_without_forecasts_render_a_dash() {
        let mut r = report();
        for e in &mut r.epochs {
            e.forecast = None;
        }
        assert_eq!(r.mean_abs_forecast_error(), None);
        assert!(r.render().contains("forecast_mae=-"));
    }
}
