//! simlint fixture: deliberate `wall-clock` violations (4 sites).
use std::time::{Instant, SystemTime};

pub fn elapsed_ms() -> u64 {
    let t0 = Instant::now();
    let _entropy = rand::rng();
    t0.elapsed().as_millis() as u64
}
