//! Queueing resources: the serialization points of a simulated datacenter.
//!
//! These are *analytic* resources: rather than simulating a busy server with
//! explicit seize/release events, each resource answers "if a request of
//! this size arrives at time `t`, when does it start and finish?" — pushing
//! the queueing arithmetic into the resource keeps the event count linear in
//! the number of requests regardless of queue depth, which matters when a
//! burst admits 5 000 placements at the same instant.
//!
//! Three shapes cover everything the platform needs:
//!
//! * [`FifoResource`] — one server, one queue (the centralized scheduler);
//! * [`MultiServer`] — `k` identical servers, shared queue (worker pools);
//! * [`BandwidthPipe`] — a link that serializes transfers at fixed bytes/s
//!   (the image-build server's disk/NIC, the container-shipping fabric).

use crate::time::SimTime;

/// A single-server FIFO queue with deterministic service times.
///
/// `request(now, service)` reserves the server for `service` seconds
/// starting at `max(now, next_free)`, and returns the `(start, end)` pair.
#[derive(Debug, Clone, Default)]
pub struct FifoResource {
    next_free: SimTime,
    busy_seconds: f64,
    served: u64,
}

impl FifoResource {
    /// A resource that is free from t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the server for `service` seconds at or after `now`.
    pub fn request(&mut self, now: SimTime, service: f64) -> (SimTime, SimTime) {
        assert!(service >= 0.0, "negative service time {service}");
        let start = now.max(self.next_free);
        let end = start + service;
        self.next_free = end;
        self.busy_seconds += service;
        self.served += 1;
        (start, end)
    }

    /// The instant after which the server is idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total busy time accumulated.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_seconds
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

/// `k` identical servers behind one FIFO queue.
///
/// Each request is dispatched to the earliest-free server; ties resolve to
/// the lowest server index (deterministic).
#[derive(Debug, Clone)]
pub struct MultiServer {
    free_at: Vec<SimTime>,
    served: u64,
}

impl MultiServer {
    /// Create a pool of `servers` identical servers, all free at t = 0.
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "MultiServer requires at least one server");
        MultiServer {
            free_at: vec![SimTime::ZERO; servers],
            served: 0,
        }
    }

    /// Reserve the earliest-available server for `service` seconds at or
    /// after `now`; returns `(server_index, start, end)`.
    pub fn request(&mut self, now: SimTime, service: f64) -> (usize, SimTime, SimTime) {
        assert!(service >= 0.0, "negative service time {service}");
        let mut idx = 0;
        let mut free = self.free_at.first().copied().unwrap_or(SimTime::ZERO);
        for (i, &t) in self.free_at.iter().enumerate().skip(1) {
            if t < free {
                idx = i;
                free = t;
            }
        }
        let start = now.max(free);
        let end = start + service;
        self.free_at[idx] = end;
        self.served += 1;
        (idx, start, end)
    }

    /// Number of servers in the pool.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The earliest time any server becomes free.
    pub fn earliest_free(&self) -> SimTime {
        self.free_at.iter().min().copied().unwrap_or(SimTime::ZERO)
    }
}

/// A serializing link with fixed bandwidth (bytes per second).
///
/// Transfers queue FIFO; a transfer of `bytes` arriving at `now` starts when
/// the link drains and takes `bytes / bandwidth` seconds. This is the
/// mechanism that makes container start-up and shipping time **linear in
/// concurrency** — the β₂ term of the paper's Eq. 2.
#[derive(Debug, Clone)]
pub struct BandwidthPipe {
    bytes_per_sec: f64,
    next_free: SimTime,
    bytes_moved: f64,
    transfers: u64,
}

impl BandwidthPipe {
    /// Create a pipe with the given bandwidth in bytes/second.
    ///
    /// Panics unless the bandwidth is positive and finite.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be positive, got {bytes_per_sec}"
        );
        BandwidthPipe {
            bytes_per_sec,
            next_free: SimTime::ZERO,
            bytes_moved: 0.0,
            transfers: 0,
        }
    }

    /// Enqueue a transfer of `bytes` at `now`; returns `(start, end)`.
    pub fn transfer(&mut self, now: SimTime, bytes: f64) -> (SimTime, SimTime) {
        assert!(bytes >= 0.0, "negative transfer size {bytes}");
        let start = now.max(self.next_free);
        let end = start + bytes / self.bytes_per_sec;
        self.next_free = end;
        self.bytes_moved += bytes;
        self.transfers += 1;
        (start, end)
    }

    /// Configured bandwidth in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Total bytes moved.
    pub fn bytes_moved(&self) -> f64 {
        self.bytes_moved
    }

    /// Aggregate busy time: total transfer service time queued through this
    /// link (`bytes_moved / bandwidth`), regardless of pipeline overlap.
    pub fn busy_seconds(&self) -> f64 {
        self.bytes_moved / self.bytes_per_sec
    }

    /// Number of transfers served.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn fifo_serializes_back_to_back() {
        let mut r = FifoResource::new();
        let (s1, e1) = r.request(t(0.0), 2.0);
        let (s2, e2) = r.request(t(0.0), 3.0);
        assert_eq!((s1, e1), (t(0.0), t(2.0)));
        assert_eq!((s2, e2), (t(2.0), t(5.0)));
        assert_eq!(r.busy_seconds(), 5.0);
        assert_eq!(r.served(), 2);
    }

    #[test]
    fn fifo_idle_gap_not_counted() {
        let mut r = FifoResource::new();
        r.request(t(0.0), 1.0);
        let (s, e) = r.request(t(10.0), 1.0);
        assert_eq!((s, e), (t(10.0), t(11.0)));
        assert_eq!(r.busy_seconds(), 2.0);
    }

    #[test]
    fn nth_fifo_request_waits_linearly() {
        // The scheduling-time mechanism: the k-th of N simultaneous
        // requests starts at k * service — total backlog grows linearly,
        // last-start grows linearly, sum of waits grows quadratically.
        let mut r = FifoResource::new();
        let mut starts = Vec::new();
        for _ in 0..100 {
            let (s, _) = r.request(t(0.0), 0.5);
            starts.push(s.as_secs());
        }
        for (k, s) in starts.iter().enumerate() {
            assert!((s - 0.5 * k as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn multiserver_spreads_load() {
        let mut m = MultiServer::new(3);
        let mut ends = Vec::new();
        for _ in 0..6 {
            let (_, _, e) = m.request(t(0.0), 1.0);
            ends.push(e.as_secs());
        }
        // First 3 finish at 1.0, next 3 at 2.0.
        assert_eq!(ends, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        assert_eq!(m.servers(), 3);
        assert_eq!(m.served(), 6);
    }

    #[test]
    fn multiserver_picks_earliest_free_deterministically() {
        let mut m = MultiServer::new(2);
        let (i1, _, _) = m.request(t(0.0), 5.0);
        let (i2, _, _) = m.request(t(0.0), 1.0);
        assert_eq!((i1, i2), (0, 1));
        // Server 1 frees first; next request must land there.
        let (i3, s3, _) = m.request(t(0.0), 1.0);
        assert_eq!(i3, 1);
        assert_eq!(s3, t(1.0));
        assert_eq!(m.earliest_free(), t(2.0));
    }

    #[test]
    fn pipe_transfer_times() {
        let mut p = BandwidthPipe::new(100.0);
        let (s1, e1) = p.transfer(t(0.0), 250.0);
        assert_eq!((s1, e1), (t(0.0), t(2.5)));
        let (s2, e2) = p.transfer(t(1.0), 100.0);
        assert_eq!((s2, e2), (t(2.5), t(3.5)));
        assert_eq!(p.bytes_moved(), 350.0);
        assert_eq!(p.transfers(), 2);
    }

    #[test]
    fn pipe_burst_completion_is_linear_in_count() {
        // N simultaneous container builds of size S over bandwidth B finish
        // at k*S/B — the linear start-up term of Eq. 2.
        let mut p = BandwidthPipe::new(1e6);
        let size = 5e4;
        let mut last_end = 0.0;
        for k in 1..=200 {
            let (_, e) = p.transfer(t(0.0), size);
            last_end = e.as_secs();
            assert!((last_end - k as f64 * size / 1e6).abs() < 1e-9);
        }
        assert!((last_end - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_multiserver_panics() {
        let _ = MultiServer::new(0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = BandwidthPipe::new(0.0);
    }

    #[test]
    #[should_panic(expected = "negative service")]
    fn negative_service_panics() {
        FifoResource::new().request(t(0.0), -1.0);
    }
}
