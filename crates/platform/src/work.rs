//! Work profiles: what the simulator needs to know about one serverless
//! function of an application.
//!
//! A [`WorkProfile`] is the simulator-facing description of a benchmark
//! function: memory footprint (`M_func`), isolated execution time, how
//! aggressively co-packed copies contend (per-GB contention rate — the α of
//! the paper's Eq. 1 emerges as `contention_per_gb`), and its storage /
//! network traffic for billing. The real compute kernels behind these
//! profiles live in `propack-workloads`.

use serde::{Deserialize, Serialize};

/// The resource a function saturates first — the key of the pairwise
/// interference model for heterogeneous co-packing ([`crate::mixed`]).
///
/// The homogeneous contention mechanism (`contention_per_gb`) already
/// captures how copies of *one* function degrade each other; the resource
/// kind captures what a single fitted model cannot: two functions with the
/// same memory pressure interfere differently depending on *which* resource
/// they fight over (two I/O-bound functions share one NIC; an I/O-bound and
/// a CPU-bound function barely touch). Defaults to [`ResourceKind::Generic`]
/// so every existing profile deserializes and behaves exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub enum ResourceKind {
    /// No declared affinity: pairwise interference factors default to 1.0,
    /// leaving the homogeneous model untouched.
    #[default]
    Generic,
    /// Compute-bound (e.g. Smith-Waterman): saturates cores.
    Cpu,
    /// Memory-bandwidth-bound (e.g. sort): saturates the memory bus.
    Memory,
    /// I/O-bound (e.g. storage-heavy stages): saturates network/disk.
    Io,
}

impl ResourceKind {
    /// Stable lowercase label (reports, workflow grammar).
    pub fn label(&self) -> &'static str {
        match self {
            ResourceKind::Generic => "generic",
            ResourceKind::Cpu => "cpu",
            ResourceKind::Memory => "memory",
            ResourceKind::Io => "io",
        }
    }
}

/// Simulator-facing description of one function of an application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkProfile {
    /// Application name (figure labels).
    pub name: String,
    /// Peak memory consumed by a single function during execution, in GB —
    /// `M_func` in the paper's Table 1, known a priori by running the
    /// function once (§2.1).
    pub mem_gb: f64,
    /// Execution time of the function in an unpacked instance, in seconds
    /// (§4: "each function instance executed for approximately 100
    /// seconds").
    pub base_exec_secs: f64,
    /// Contention rate per GB of co-resident footprint: packing `P` copies
    /// multiplies execution time by ≈ `exp(contention_per_gb · mem_gb ·
    /// (P−1))`. This is the *mechanistic* source of the paper's
    /// application-specific α (Eq. 1, Fig. 4); compute-bound codes
    /// (Smith-Waterman) have high rates, I/O-heavy codes low rates.
    pub contention_per_gb: f64,
    /// Object-storage volume written+read per function, in GB (S3 in §3).
    pub storage_gb: f64,
    /// Object-storage requests issued per function.
    pub storage_requests: u64,
    /// Data exchanged with other functions per function, in GB. Billed per
    /// GB on Google/Azure; free within one instance when functions are
    /// packed together (Fig. 21).
    pub network_gb: f64,
    /// Runtime/dependency initialization on a cold container, in seconds
    /// (e.g. loading the MXNET model for Video). Part of provisioning —
    /// not billed in the paper's era — and skipped by warm containers,
    /// which is the cold-start optimization Pywren's instance reuse
    /// targets (§4). Loaded once per instance regardless of packing.
    pub dependency_load_secs: f64,
    /// The resource this function saturates first, keying the pairwise
    /// interference model when unlike functions share an instance
    /// ([`crate::mixed::InterferenceMatrix`]). Absent in serialized
    /// profiles from before heterogeneous co-packing, hence the default.
    #[serde(default)]
    pub resource_kind: ResourceKind,
}

impl WorkProfile {
    /// A minimal synthetic profile (used by tests, probes, and the
    /// scaling-time estimator, which never executes real code).
    pub fn synthetic(name: &str, mem_gb: f64, base_exec_secs: f64) -> Self {
        WorkProfile {
            name: name.to_string(),
            mem_gb,
            base_exec_secs,
            contention_per_gb: 0.05,
            storage_gb: 0.0,
            storage_requests: 0,
            network_gb: 0.0,
            dependency_load_secs: 0.0,
            resource_kind: ResourceKind::Generic,
        }
    }

    /// The maximum packing degree this function admits on an instance with
    /// `platform_mem_gb` of memory: `P_max = M_platform / M_func` (§2.1).
    pub fn max_packing_degree(&self, platform_mem_gb: f64) -> u32 {
        if self.mem_gb <= 0.0 {
            return 1;
        }
        ((platform_mem_gb / self.mem_gb).floor() as u32).max(1)
    }

    /// Builder-style setter for storage traffic.
    pub fn with_storage(mut self, gb: f64, requests: u64) -> Self {
        self.storage_gb = gb;
        self.storage_requests = requests;
        self
    }

    /// Builder-style setter for inter-function network traffic.
    pub fn with_network(mut self, gb: f64) -> Self {
        self.network_gb = gb;
        self
    }

    /// Builder-style setter for the contention rate.
    pub fn with_contention(mut self, per_gb: f64) -> Self {
        self.contention_per_gb = per_gb;
        self
    }

    /// Builder-style setter for cold-container dependency-load time.
    pub fn with_dependency_load(mut self, secs: f64) -> Self {
        self.dependency_load_secs = secs;
        self
    }

    /// Builder-style setter for the dominant resource kind.
    pub fn with_resource_kind(mut self, kind: ResourceKind) -> Self {
        self.resource_kind = kind;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_packing_degree_floor() {
        let w = WorkProfile::synthetic("w", 0.25, 100.0);
        assert_eq!(w.max_packing_degree(10.0), 40);
        let w2 = WorkProfile::synthetic("w", 0.66, 100.0);
        assert_eq!(w2.max_packing_degree(10.0), 15);
        let w3 = WorkProfile::synthetic("w", 12.0, 100.0);
        assert_eq!(
            w3.max_packing_degree(10.0),
            1,
            "oversized function still runs solo"
        );
    }

    #[test]
    fn zero_memory_degenerates_to_one() {
        let w = WorkProfile::synthetic("w", 0.0, 1.0);
        assert_eq!(w.max_packing_degree(10.0), 1);
    }

    #[test]
    fn builders_compose() {
        let w = WorkProfile::synthetic("w", 0.5, 60.0)
            .with_storage(0.1, 4)
            .with_network(0.05)
            .with_contention(0.09);
        assert_eq!(w.storage_gb, 0.1);
        assert_eq!(w.storage_requests, 4);
        assert_eq!(w.network_gb, 0.05);
        assert_eq!(w.contention_per_gb, 0.09);
    }

    #[test]
    fn resource_kind_defaults_to_generic_and_builds() {
        let w = WorkProfile::synthetic("w", 0.5, 60.0);
        assert_eq!(w.resource_kind, ResourceKind::Generic);
        let w = w.with_resource_kind(ResourceKind::Io);
        assert_eq!(w.resource_kind, ResourceKind::Io);
        assert_eq!(w.resource_kind.label(), "io");
    }
}
