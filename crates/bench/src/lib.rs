//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation.
//!
//! Each `fig*`/`tab*` function in [`figures`] recomputes one figure's data
//! series on the simulator and returns a [`table::Table`]; the binaries in
//! `src/bin/` are thin wrappers that print them (pass `--json` for
//! machine-readable output). `repro_all` runs the entire suite — that is
//! what `EXPERIMENTS.md` is generated from.
//!
//! The Criterion benches in `benches/` time the *code* (model fitting, the
//! optimizer, the simulator, workload kernels) and run the ablations called
//! out in `DESIGN.md`.

pub mod context;
pub mod figures;
pub mod kernel;
#[cfg(test)]
mod smoke_tests;
pub mod table;

pub use context::Ctx;
pub use table::Table;

/// Run a named figure by its experiment id (e.g. "fig09", "tab01").
/// Returns `None` for unknown ids.
pub fn run_experiment(id: &str) -> Option<Vec<Table>> {
    let ctx = Ctx::default();
    let tables = match id {
        "fig01" => figures::fig01_scaling_fraction(&ctx),
        "fig02" => figures::fig02_scaling_breakdown(&ctx),
        "fig04" => figures::fig04_interference_fit(&ctx),
        "fig05" => figures::fig05_concurrency_effects(&ctx),
        "fig06" => figures::fig06_scaling_vs_packing(&ctx),
        "fig07" => figures::fig07_expense_vs_packing(&ctx),
        "fig08" => figures::fig08_oracle_degrees(&ctx),
        "tab01" => figures::tab01_chi2_validation(&ctx),
        "fig09" => figures::fig09_service_improvement(&ctx),
        "fig10" => figures::fig10_scaling_improvement(&ctx),
        "fig11" => figures::fig11_expense_improvement(&ctx),
        "fig12" => figures::fig12_absolute_values(&ctx),
        "fig13" => figures::fig13_service_objective(&ctx),
        "fig14" => figures::fig14_expense_objective(&ctx),
        "fig15" => figures::fig15_objective_degrees(&ctx),
        "fig16" => figures::fig16_weight_sweep(&ctx),
        "fig17" => figures::fig17_smith_waterman(&ctx),
        "fig18" => figures::fig18_funcx(&ctx),
        "fig19" => figures::fig19_pywren(&ctx),
        "fig20" => figures::fig20_xapian_qos(&ctx),
        "fig21" => figures::fig21_multi_platform(&ctx),
        _ => return None,
    };
    Some(tables)
}

/// All experiment ids in paper order.
pub const ALL_EXPERIMENTS: [&str; 21] = [
    "fig01", "fig02", "fig04", "fig05", "fig06", "fig07", "fig08", "tab01", "fig09", "fig10",
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
    "fig21",
];

/// Standard binary entry point: print the tables for `id`, honoring a
/// `--json` flag.
pub fn figure_main(id: &str) {
    let json = std::env::args().any(|a| a == "--json");
    let tables = run_experiment(id).unwrap_or_else(|| panic!("unknown experiment {id}"));
    for t in &tables {
        if json {
            println!("{}", t.to_json());
        } else {
            t.print();
            println!();
        }
    }
}
