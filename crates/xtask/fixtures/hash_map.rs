//! simlint fixture: deliberate `hash-map` violations (3 sites).
use std::collections::HashMap;

pub fn index(keys: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for (i, &k) in keys.iter().enumerate() {
        m.insert(k, i as u32);
    }
    m
}
