//! Crash faults vs. packing: how instance failures move the packing
//! optimum.
//!
//! ```sh
//! cargo run --release --example crash_faults
//! ```
//!
//! The paper's model (§2) assumes every packed instance completes. Real
//! fleets crash: a crashed instance takes all `P` of its packed functions
//! down at once, the partial attempt is still billed, and the retry runs
//! after a backoff. That coupling penalizes aggressive packing — the blast
//! radius of one crash grows with `P` — so the *empirical* optimum under
//! faults can sit below the fault-free plan.
//!
//! This experiment sweeps crash rates {0%, 0.1%, 1%} over every feasible
//! packing degree for a 2 000-way Sort burst on the AWS profile, executing
//! each cell under the platform's retry/backoff machinery, and reports
//! where the realized service-time and expense optima land next to the
//! fault-free ProPack plan. Everything is seeded: rerunning prints the
//! same table bit for bit.

use propack_repro::platform::{
    BurstSpec, FaultSpec, PlatformBuilder, RetryPolicy, ServerlessPlatform,
};
use propack_repro::propack::optimizer::Objective;
use propack_repro::propack::propack::{ProPackConfig, Propack};
use propack_repro::workloads::{sort::MapReduceSort, Workload};

fn main() {
    let platform = PlatformBuilder::aws().build();
    let work = MapReduceSort::default().profile();
    let c = 2000u32;
    let seed = 17u64;

    // The fault-free plan, for reference: profiling never injects faults,
    // so this is the paper's P_opt regardless of the crash rate below.
    let pp = Propack::build(&platform, &work, &ProPackConfig::default()).expect("profiling");
    let plan = pp.plan(c, Objective::default()).expect("plan");
    println!(
        "application: {} on {}, C = {c}; fault-free ProPack plan: P = {} ({} instances)",
        work.name,
        platform.name(),
        plan.packing_degree,
        plan.instances
    );

    let degrees: Vec<u32> = (1..=pp.model.p_max).collect();
    println!(
        "\ncrash_rate  P_best(service)  service_s  P_best(expense)  expense_usd  retries@P_plan  failed@P_plan"
    );
    for crash_rate in [0.0, 0.001, 0.01] {
        let faults = FaultSpec::none().with_crash_rate(crash_rate);
        let retry = RetryPolicy::default();
        // Execute every feasible degree under this crash rate and pick the
        // realized optima (the empirical analogue of Eqs. 5-6).
        let mut best_service: Option<(u32, f64)> = None;
        let mut best_expense: Option<(u32, f64)> = None;
        let mut at_plan = (0u64, 0u64);
        for &p in &degrees {
            let spec = BurstSpec::packed(work.clone(), c, p)
                .with_seed(seed)
                .with_faults(faults)
                .with_retry(retry);
            let report = match platform.run_burst(&spec) {
                Ok(r) => r,
                Err(_) => continue, // degree infeasible under the cap
            };
            let service = report.total_service_time();
            let expense = report.expense.total_usd();
            if best_service.is_none_or(|(_, s)| service < s) {
                best_service = Some((p, service));
            }
            if best_expense.is_none_or(|(_, e)| expense < e) {
                best_expense = Some((p, expense));
            }
            if p == plan.packing_degree {
                at_plan = (report.faults.retries, report.faults.failed_functions);
            }
        }
        let (ps, ss) = best_service.expect("at least one feasible degree");
        let (pe, ee) = best_expense.expect("at least one feasible degree");
        println!(
            "{:>9.3}%  {:>15}  {:>9.1}  {:>15}  {:>11.4}  {:>14}  {:>13}",
            crash_rate * 100.0,
            ps,
            ss,
            pe,
            ee,
            at_plan.0,
            at_plan.1
        );
    }

    println!(
        "\nreading: with faults off the expense optimum is the deepest feasible pack; \
         as the crash rate rises, billed partial attempts and backoff stretch both \
         metrics and the optima drift toward shallower packing — the planner's P_opt \
         is an upper bound under faults, not a guarantee."
    );
}
