//! `cargo xtask simlint --self-check`: prove the linter still catches what
//! it claims to catch.
//!
//! Every fixture under `crates/xtask/fixtures/` is compiled into the
//! binary together with the crate identity it is linted under and the
//! exact per-rule finding counts it must produce. CI runs this before
//! linting the workspace: a linter that silently lost a rule (a refactor
//! that broke a visitor, a scope table edit that widened an exemption)
//! fails its own gate instead of greenlighting bad code.
//!
//! Cross-file fixtures are grouped into one analysis each, mirroring how
//! the workspace pass joins files; the table also pins the *absence* of
//! findings (clean fixtures, suppressed allows).

use crate::ast;
use crate::rules::FileCtx;
use std::collections::BTreeMap;

/// One self-check case: fixture sources (with lint identities) plus the
/// exact per-rule finding counts the analysis must produce.
struct Case {
    name: &'static str,
    /// `(fixture source, crate_name, rel_path, test_target)`.
    files: &'static [(&'static str, &'static str, &'static str)],
    /// Expected `(rule, count)` pairs; rules not listed must not appear.
    expect: &'static [(&'static str, usize)],
}

const CASES: &[Case] = &[
    // ── the seven ported v1 rules, now through the AST engine ──────────
    Case {
        name: "hash-map",
        files: &[(
            include_str!("../fixtures/hash_map.rs"),
            "workloads",
            "crates/workloads/src/bad.rs",
        )],
        expect: &[("hash-map", 3)],
    },
    Case {
        name: "wall-clock",
        files: &[(
            include_str!("../fixtures/wall_clock.rs"),
            "simcore",
            "crates/simcore/src/bad.rs",
        )],
        expect: &[("wall-clock", 4)],
    },
    Case {
        name: "panic-path",
        files: &[(
            include_str!("../fixtures/panic_path.rs"),
            "platform",
            "crates/platform/src/bad.rs",
        )],
        expect: &[("panic-path", 4)],
    },
    Case {
        name: "float-eq",
        files: &[(
            include_str!("../fixtures/float_eq.rs"),
            "stats",
            "crates/stats/src/bad.rs",
        )],
        expect: &[("float-eq", 2)],
    },
    Case {
        name: "const-doc",
        files: &[(
            include_str!("../fixtures/const_doc.rs"),
            "platform",
            "crates/platform/src/profile.rs",
        )],
        expect: &[("const-doc", 2)],
    },
    Case {
        name: "thread-spawn",
        files: &[(
            include_str!("../fixtures/thread_spawn.rs"),
            "propack",
            "crates/propack/src/bad.rs",
        )],
        expect: &[("thread-spawn", 2)],
    },
    Case {
        name: "fault-rng",
        files: &[(
            include_str!("../fixtures/fault_rng.rs"),
            "simcore",
            "crates/simcore/src/fault.rs",
        )],
        expect: &[("fault-rng", 3)],
    },
    Case {
        name: "event-alloc",
        files: &[(
            include_str!("../fixtures/event_alloc.rs"),
            "platform",
            "crates/platform/src/bad.rs",
        )],
        expect: &[("event-alloc", 2)],
    },
    // ── escape hatch semantics ─────────────────────────────────────────
    Case {
        name: "allow-suppression",
        files: &[(
            include_str!("../fixtures/allowed.rs"),
            "stats",
            "crates/stats/src/ok.rs",
        )],
        expect: &[],
    },
    Case {
        name: "allow-missing-justification",
        files: &[(
            include_str!("../fixtures/allow_missing_justification.rs"),
            "stats",
            "crates/stats/src/bad.rs",
        )],
        expect: &[("bad-allow", 1), ("float-eq", 1)],
    },
    Case {
        name: "clean",
        files: &[(
            include_str!("../fixtures/clean.rs"),
            "simcore",
            "crates/simcore/src/clean.rs",
        )],
        expect: &[],
    },
    // ── the AST-only rules ─────────────────────────────────────────────
    Case {
        name: "rng-lane",
        files: &[
            (
                include_str!("../fixtures/lanes_registry.rs"),
                "simcore",
                "crates/simcore/src/rng.rs",
            ),
            (
                include_str!("../fixtures/rng_lane.rs"),
                "platform",
                "crates/platform/src/draws.rs",
            ),
        ],
        // Two raw literals + one dynamic expression + one unregistered
        // constant (call sites) + one dead registry lane; the allowed
        // dynamic call is suppressed.
        expect: &[("rng-lane", 5)],
    },
    Case {
        name: "batch-fault-api",
        files: &[
            (
                include_str!("../fixtures/batch_fault_plan.rs"),
                "simcore",
                "crates/simcore/src/batch_fault.rs",
            ),
            (
                include_str!("../fixtures/batch_fault_drive.rs"),
                "platform",
                "crates/platform/src/batch_drive.rs",
            ),
        ],
        // Plan side: a hand-rolled RNG in a fault-named file (type +
        // constructor = 2). Drive side: one raw-literal lane at a bulk-head
        // call, one boxed re-drive closure; the three registered-constant
        // head calls are clean and keep both registry lanes live (no
        // dead-lane findings), and the forwarded-lane call is suppressed
        // by its justified allow.
        expect: &[("fault-rng", 2), ("rng-lane", 1), ("event-alloc", 1)],
    },
    Case {
        name: "alias-hash-map",
        files: &[
            (
                include_str!("../fixtures/alias_hash_map.rs"),
                "bench",
                "crates/bench/src/alias.rs",
            ),
            (
                include_str!("../fixtures/alias_hash_map_use.rs"),
                "platform",
                "crates/platform/src/uses_alias.rs",
            ),
        ],
        expect: &[("hash-map", 6)],
    },
    Case {
        name: "panic-wrapper",
        files: &[
            (
                include_str!("../fixtures/panic_wrapper.rs"),
                "workloads",
                "crates/workloads/src/macros.rs",
            ),
            (
                include_str!("../fixtures/panic_wrapper_use.rs"),
                "platform",
                "crates/platform/src/uses_macros.rs",
            ),
        ],
        expect: &[("panic-path", 2)],
    },
    Case {
        name: "unstable-sort-float",
        files: &[(
            include_str!("../fixtures/unstable_sort_float.rs"),
            "workloads",
            "crates/workloads/src/bad.rs",
        )],
        expect: &[("unstable-sort-float", 2)],
    },
    Case {
        name: "as-truncation",
        files: &[(
            include_str!("../fixtures/as_truncation.rs"),
            "simcore",
            "crates/simcore/src/bad.rs",
        )],
        expect: &[("as-truncation", 2)],
    },
    Case {
        name: "stale-allow",
        files: &[(
            include_str!("../fixtures/stale_allow.rs"),
            "stats",
            "crates/stats/src/bad.rs",
        )],
        expect: &[("stale-allow", 1)],
    },
];

/// Run every case; returns human-readable failure lines (empty = pass).
pub fn run() -> Vec<String> {
    let mut failures = Vec::new();
    for case in CASES {
        let files: Vec<(String, FileCtx)> = case
            .files
            .iter()
            .map(|(src, crate_name, rel_path)| {
                (
                    (*src).to_string(),
                    FileCtx {
                        crate_name: (*crate_name).to_string(),
                        rel_path: (*rel_path).to_string(),
                        test_target: false,
                    },
                )
            })
            .collect();
        let report = ast::analyze_files(&files);
        let mut got: BTreeMap<&str, usize> = BTreeMap::new();
        for v in &report.violations {
            *got.entry(v.rule).or_insert(0) += 1;
        }
        let want: BTreeMap<&str, usize> = case.expect.iter().copied().collect();
        if got != want {
            failures.push(format!(
                "self-check `{}`: expected {:?}, got {:?}\n{}",
                case.name,
                want,
                got,
                report
                    .violations
                    .iter()
                    .map(|v| format!("    {}:{} {} — {}", v.rel_path, v.line, v.rule, v.message))
                    .collect::<Vec<_>>()
                    .join("\n")
            ));
        }
        if !report.fallback_files.is_empty() {
            failures.push(format!(
                "self-check `{}`: fixtures must tree-parse, but fell back for {:?}",
                case.name, report.fallback_files
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    /// The self-check gate itself: every fixture produces exactly the
    /// findings the table pins.
    #[test]
    fn all_fixture_expectations_hold() {
        let failures = super::run();
        assert!(failures.is_empty(), "\n{}", failures.join("\n"));
    }
}
