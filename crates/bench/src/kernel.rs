//! Kernel throughput bench: `BENCH_kernel.json`.
//!
//! Measures how many sweep cells per second the simulation kernel sustains
//! on a fixed grid (the CI smoke-sweep grid: {aws, funcx} × {sort, video} ×
//! C ∈ {500, 1000} × {no-packing, propack-joint} × {cold, fixed:60} ×
//! seed 42), grouped by packing policy so the ProPack cells — whose cost is
//! dominated by model fitting — are tracked separately from the raw-burst
//! baseline cells. Warm-pool cells form their own `<policy>+fixed:60`
//! groups: the cold groups keep their pre-pool labels and numbers, so the
//! committed baseline stays comparable, while the warm path gets its own
//! throughput trend (pool bookkeeping rides the same benchdiff gate).
//!
//! Methodology (see `DESIGN.md` §9):
//! * one **warmup** run (untimed) so allocator and page-cache state do not
//!   pollute the first timed repetition;
//! * `reps` timed repetitions, each with a **fresh** `SweepRunner` (and
//!   therefore a fresh `ModelCache`), so model-fit cost is measured rather
//!   than amortized away across repetitions;
//! * per policy group, the **best** (minimum) total wall time across
//!   repetitions is reported — the standard noise-robust estimator for
//!   throughput benches;
//! * `outputs_identical` re-runs the 16 golden replay configurations
//!   (`tests/golden/`) and compares the bit-exact canonical rendering, so a
//!   kernel that got faster by changing simulated results cannot report a
//!   win.
//!
//! The committed PR-3 numbers live in `crates/bench/baselines/`; CI gates on
//! `cargo xtask benchdiff` (>30 % `cells_per_sec` regression fails).

use propack_funcx::{FuncXConfig, FuncXPlatform};
use propack_platform::prelude::*;
use propack_sweep::prelude::*;
use propack_workloads::Benchmarks;
use std::path::Path;
use std::time::Instant;

/// Seed shared with the CI smoke sweep and the golden replay fixtures.
pub const KERNEL_SEED: u64 = 42;

/// Fault scenario injected into the faulted kernel groups: a mixed process
/// so every cohort fast-path branch (crash chains, provision re-boots,
/// stragglers) is on the timed path.
pub const FAULTED_SCENARIO: &str = "crash=0.05,provision=0.03,straggler=0.05";

/// Functions in the 100k-invocation faulted day burst.
pub const FAULTED_DAY_FUNCTIONS: u32 = 100_000;
/// Packing degree of the faulted day burst (25 000 instances).
pub const FAULTED_DAY_DEGREE: u32 = 4;
/// Fluid opt-in threshold used for the `faulted-day-fluid` group.
pub const FAULTED_DAY_FLUID_MIN: u32 = 1000;

/// The fixed measurement grid (32 cells: {8 baseline + 8 ProPack} × {cold,
/// fixed:60 keep-alive}).
pub fn kernel_grid() -> SweepSpec {
    SweepSpec::new("kernel")
        .platforms([PlatformAxis::Aws, PlatformAxis::FuncX])
        .workloads(["sort", "video"].into_iter().map(|k| {
            Benchmarks::resolve(k)
                .unwrap_or_else(|| panic!("unknown workload {k}"))
                .profile()
        }))
        .concurrency([500, 1000])
        .policies([PackingPolicy::NoPacking, PackingPolicy::propack_default()])
        .seeds([KERNEL_SEED])
        .keepalive([
            KeepAliveScenario::cold(),
            KeepAliveScenario::parse("fixed:60").expect("fixed:60 scenario"),
        ])
}

/// The faulted measurement grid (8 cells): packed bursts under the mixed
/// fault scenario, so the cohort-chain fast path — not the fault-free
/// shortcut — carries the cells. Groups from this grid are prefixed
/// `faulted-` so they never collide with the fault-free labels.
pub fn faulted_grid() -> SweepSpec {
    SweepSpec::new("kernel-faulted")
        .platforms([PlatformAxis::Aws, PlatformAxis::FuncX])
        .workloads(["sort", "video"].into_iter().map(|k| {
            Benchmarks::resolve(k)
                .unwrap_or_else(|| panic!("unknown workload {k}"))
                .profile()
        }))
        .concurrency([500, 1000])
        .policies([PackingPolicy::Fixed(4)])
        .seeds([KERNEL_SEED])
        .faults([FaultScenario::parse(FAULTED_SCENARIO).expect("faulted scenario")])
}

/// The 100k-invocation faulted day: one `C = 100 000` burst packed at
/// degree 4 (25 000 instances) under the mixed fault process. Measured
/// three ways — per-event (`with_batching(false)`, the PR-3-era kernel's
/// only faulted path), cohort-batched exact, and fluid — this is the entry
/// that carries the faulted fast-path speedup claim.
pub fn faulted_day_spec() -> BurstSpec {
    let profile = Benchmarks::resolve("sort")
        .expect("sort workload")
        .profile();
    BurstSpec::packed(profile, FAULTED_DAY_FUNCTIONS, FAULTED_DAY_DEGREE)
        .with_seed(KERNEL_SEED)
        .with_faults(
            FaultSpec::none()
                .with_crash_rate(0.02)
                .with_provision_failure_rate(0.01)
                .with_straggler(0.02, 3.0),
        )
        // A day-scale budget: in-place retries are never budget-limited, so
        // the batched and event paths agree and the cohort gate stays open.
        .with_retry(RetryPolicy {
            retry_budget: u32::MAX,
            ..RetryPolicy::default()
        })
}

/// Throughput-group label of one cell: cold cells keep the bare policy
/// label (baseline continuity); warm-pool cells get their own group.
fn group_label(policy: &str, keepalive: &str) -> String {
    if keepalive == "cold" {
        policy.to_string()
    } else {
        format!("{policy}+{keepalive}")
    }
}

/// Throughput of one policy group on the kernel grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupTiming {
    /// Policy label (`no-packing`, `propack-joint-0.5`, …).
    pub policy: String,
    /// Cells of this policy in the grid.
    pub cells: usize,
    /// Best-of-reps total wall time for the group, seconds.
    pub wall_secs: f64,
    /// `cells / wall_secs`.
    pub cells_per_sec: f64,
    /// Measured max relative timestamp error vs the exact run — present
    /// only on fluid groups, where benchdiff gates it against the
    /// baseline's committed bound.
    pub max_rel_err: Option<f64>,
}

/// Everything `kernel_bench` writes: per-group throughput plus the faulted
/// day's exact-path equivalence bit.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMeasurement {
    /// Per-group best-of-reps throughput, first-seen order.
    pub groups: Vec<GroupTiming>,
    /// Whether the cohort-batched faulted day reproduced the per-event
    /// (`with_batching(false)`) run byte-for-byte. Folded into the output's
    /// `outputs_identical` alongside the golden fixtures.
    pub faulted_day_exact: bool,
}

/// Run the kernel and faulted grids plus the 100k-invocation faulted day
/// (`1 + reps` times each) and report per-group throughput.
pub fn measure(reps: usize) -> Result<KernelMeasurement, String> {
    let mut groups = measure_grid(&kernel_grid(), reps, "")?;
    groups.extend(measure_grid(&faulted_grid(), reps, "faulted-")?);
    let day = measure_faulted_day(reps)?;
    Ok(KernelMeasurement {
        faulted_day_exact: day.exact_identical,
        groups: {
            groups.extend(day.groups);
            groups
        },
    })
}

/// Run one sweep grid (`1 + reps` times) and report per-policy throughput,
/// with `prefix` prepended to every group label.
fn measure_grid(spec: &SweepSpec, reps: usize, prefix: &str) -> Result<Vec<GroupTiming>, String> {
    // Warmup: full run, result discarded.
    run_once(spec)?;
    let mut best: Vec<(String, usize, f64)> = Vec::new();
    for _ in 0..reps.max(1) {
        for (policy, cells, secs) in run_once(spec)? {
            let label = format!("{prefix}{policy}");
            match best.iter_mut().find(|(p, _, _)| *p == label) {
                Some((_, _, b)) => *b = b.min(secs),
                None => best.push((label, cells, secs)),
            }
        }
    }
    Ok(best
        .into_iter()
        .map(|(policy, cells, wall_secs)| GroupTiming {
            policy,
            cells,
            cells_per_sec: if wall_secs > 0.0 {
                cells as f64 / wall_secs
            } else {
                f64::INFINITY
            },
            wall_secs,
            max_rel_err: None,
        })
        .collect())
}

struct DayMeasurement {
    groups: Vec<GroupTiming>,
    exact_identical: bool,
}

/// Measure the faulted day on the per-event, batched-exact, and fluid
/// paths, checking batched ≡ event byte-for-byte and recording the fluid
/// path's measured relative error.
fn measure_faulted_day(reps: usize) -> Result<DayMeasurement, String> {
    let spec = faulted_day_spec();
    let fluid_spec = spec.clone().with_fluid(FAULTED_DAY_FLUID_MIN);
    let batched = PlatformBuilder::aws().build();
    let event = PlatformBuilder::aws().build().with_batching(false);
    let run = |platform: &CloudPlatform, s: &BurstSpec| {
        platform
            .run_burst(s)
            .map_err(|e| format!("faulted day burst: {e:?}"))
    };

    // Correctness before timing: the batched exact path must reproduce the
    // event path byte-for-byte, and the fluid error is measured against the
    // exact run.
    let exact = run(&batched, &spec)?;
    let exact_identical = exact.canonical_text() == run(&event, &spec)?.canonical_text();
    let max_rel_err = fluid_max_rel_err(&exact, &run(&batched, &fluid_spec)?);

    let time = |platform: &CloudPlatform, s: &BurstSpec| -> Result<f64, String> {
        run(platform, s)?; // warmup
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let started = Instant::now();
            run(platform, s)?;
            best = best.min(started.elapsed().as_secs_f64());
        }
        Ok(best)
    };
    let event_secs = time(&event, &spec)?;
    let batched_secs = time(&batched, &spec)?;
    let fluid_secs = time(&batched, &fluid_spec)?;
    let group = |policy: &str, wall_secs: f64, max_rel_err: Option<f64>| GroupTiming {
        policy: policy.to_string(),
        cells: 1,
        cells_per_sec: if wall_secs > 0.0 {
            1.0 / wall_secs
        } else {
            f64::INFINITY
        },
        wall_secs,
        max_rel_err,
    };
    Ok(DayMeasurement {
        groups: vec![
            group("faulted-day-event", event_secs, None),
            group("faulted-day", batched_secs, None),
            group("faulted-day-fluid", fluid_secs, Some(max_rel_err)),
        ],
        exact_identical,
    })
}

/// Max relative error of the fluid run's per-instance timestamps
/// (scheduled/started/finished) against the exact run's.
pub fn fluid_max_rel_err(exact: &RunReport, fluid: &RunReport) -> f64 {
    let mut max = 0.0f64;
    for (e, f) in exact.instances.iter().zip(&fluid.instances) {
        for (a, b) in [
            (e.scheduled_at, f.scheduled_at),
            (e.started_at, f.started_at),
            (e.finished_at, f.finished_at),
        ] {
            if a.abs() > 1e-12 {
                max = max.max(((b - a) / a).abs());
            }
        }
    }
    max
}

/// One serial run of the grid; returns `(policy, cells, wall_secs)` per
/// group, in first-seen cell order.
fn run_once(spec: &SweepSpec) -> Result<Vec<(String, usize, f64)>, String> {
    let runner = SweepRunner::new().threads(1);
    let started = Instant::now();
    let report = runner.run(spec).map_err(|e| format!("sweep failed: {e}"))?;
    let total = started.elapsed().as_secs_f64();
    let mut groups: Vec<(String, usize, f64)> = Vec::new();
    let mut cell_wall_total = 0.0;
    for cell in &report.cells {
        cell_wall_total += cell.wall_ms;
        let label = group_label(&cell.key.policy, &cell.key.keepalive);
        match groups.iter_mut().find(|(p, _, _)| *p == label) {
            Some((_, n, secs)) => {
                *n += 1;
                *secs += cell.wall_ms / 1000.0;
            }
            None => groups.push((label, 1, cell.wall_ms / 1000.0)),
        }
    }
    // Attribute engine overhead (expansion, sorting, dispatch) pro rata so
    // group times sum to the true wall time instead of undercounting.
    if cell_wall_total > 0.0 {
        let scale = (total * 1000.0) / cell_wall_total;
        if scale > 1.0 {
            for (_, _, secs) in &mut groups {
                *secs *= scale;
            }
        }
    }
    Ok(groups)
}

/// The 16 golden replay configurations, `(fixture-name, platform, workload,
/// concurrency, fault-scenario)` — must stay in lockstep with
/// `tests/golden_replay.rs`.
pub fn golden_cases() -> Vec<(String, &'static str, &'static str, u32, &'static str)> {
    let mut v = Vec::new();
    for plat in ["aws", "funcx"] {
        for work in ["sort", "video"] {
            for faults in ["fault-free", "crash001"] {
                for c in [500u32, 1000] {
                    v.push((
                        format!("{plat}_{work}_{faults}_c{c}.txt"),
                        plat,
                        work,
                        c,
                        faults,
                    ));
                }
            }
        }
    }
    v
}

/// Bit-exact canonical render of one golden configuration under the current
/// kernel.
pub fn golden_render(plat: &str, work: &str, c: u32, faults: &str) -> Result<String, String> {
    let platform: Box<dyn ServerlessPlatform> = match plat {
        "aws" => Box::new(PlatformBuilder::aws().build()),
        "funcx" => Box::new(FuncXPlatform::new(FuncXConfig::default())),
        other => return Err(format!("unknown platform {other}")),
    };
    let profile = Benchmarks::resolve(work)
        .ok_or_else(|| format!("unknown workload {work}"))?
        .profile();
    let mut spec = BurstSpec::new(profile, c, 1).with_seed(KERNEL_SEED);
    match faults {
        "fault-free" => {}
        "crash001" => {
            spec = spec
                .with_faults(FaultSpec::none().with_crash_rate(0.01))
                .with_retry(RetryPolicy::default());
        }
        other => return Err(format!("unknown fault scenario {other}")),
    }
    platform
        .run_burst(&spec)
        .map(|r| r.canonical_text())
        .map_err(|e| format!("{plat}/{work}/c{c}/{faults}: {e:?}"))
}

/// Compare every golden configuration against its committed fixture.
/// Returns the names of diverging or unreadable fixtures (empty = all
/// bit-identical).
pub fn golden_divergences(golden_dir: &Path) -> Result<Vec<String>, String> {
    let mut bad = Vec::new();
    for (name, plat, work, c, faults) in golden_cases() {
        let current = golden_render(plat, work, c, faults)?;
        match std::fs::read_to_string(golden_dir.join(&name)) {
            Ok(golden) if golden == current => {}
            _ => bad.push(name),
        }
    }
    Ok(bad)
}

/// Render `BENCH_kernel.json`. One group per line so the (dependency-free)
/// `cargo xtask benchdiff` parser and humans can both read it.
pub fn render_json(
    groups: &[GroupTiming],
    reps: usize,
    outputs_identical: bool,
    baseline: Option<(&str, &[(String, f64)])>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"kernel\",\n");
    out.push_str(&format!("  \"seed\": {KERNEL_SEED},\n"));
    out.push_str(
        "  \"grid\": \"aws,funcx x sort,video x c{500,1000} x {no-packing,propack-joint} x {cold,fixed:60} x seed 42; faulted-* = same grid under crash/provision/straggler faults at fixed:4, plus the 100k-function faulted day (event|batched|fluid)\",\n",
    );
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!("  \"outputs_identical\": {outputs_identical},\n"));
    out.push_str("  \"groups\": [\n");
    for (i, g) in groups.iter().enumerate() {
        let comma = if i + 1 < groups.len() { "," } else { "" };
        let err = g
            .max_rel_err
            .map(|e| format!(", \"max_rel_err\": {e:.6}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"cells\": {}, \"wall_secs\": {:.6}, \"cells_per_sec\": {:.3}{err}}}{comma}\n",
            g.policy, g.cells, g.wall_secs, g.cells_per_sec
        ));
    }
    out.push_str("  ]");
    if let Some((source, speedups)) = baseline {
        out.push_str(",\n  \"baseline\": {\n");
        out.push_str(&format!("    \"source\": \"{source}\",\n"));
        out.push_str("    \"speedups\": [\n");
        for (i, (policy, speedup)) in speedups.iter().enumerate() {
            let comma = if i + 1 < speedups.len() { "," } else { "" };
            out.push_str(&format!(
                "      {{\"policy\": \"{policy}\", \"speedup\": {speedup:.3}}}{comma}\n"
            ));
        }
        out.push_str("    ]\n  }");
    }
    out.push_str("\n}\n");
    out
}

/// Extract `(policy, cells_per_sec)` pairs from a `BENCH_kernel.json`
/// document without a JSON dependency: each group object sits on one line
/// carrying both a `"policy"` and a `"cells_per_sec"` key.
pub fn parse_cells_per_sec(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(p) = extract_str(line, "\"policy\": \"") else {
            continue;
        };
        let Some(v) = extract_f64(line, "\"cells_per_sec\": ") else {
            continue;
        };
        out.push((p, v));
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_f64(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-' || ch == 'e' || ch == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_the_ci_smoke_grid_plus_the_warm_path() {
        let spec = kernel_grid();
        assert_eq!(spec.cell_count(), 32);
        assert_eq!(golden_cases().len(), 16);
    }

    #[test]
    fn faulted_grid_and_day_cover_the_cohort_fast_paths() {
        assert_eq!(faulted_grid().cell_count(), 8);
        let day = faulted_day_spec();
        assert_eq!(day.instances, FAULTED_DAY_FUNCTIONS / FAULTED_DAY_DEGREE);
        assert_eq!(day.packing_degree, FAULTED_DAY_DEGREE);
        assert!(!day.faults.is_none(), "the day must actually fault");
        assert!(
            day.fluid_min_cohort.is_none(),
            "exact by default; only the fluid group opts in"
        );
    }

    #[test]
    fn fluid_error_is_zero_against_itself_and_positive_against_fluid() {
        // Cheap end-to-end sanity of the error metric on a small burst.
        let platform = PlatformBuilder::aws().build();
        let spec = faulted_day_spec();
        let small = BurstSpec {
            instances: 400,
            ..spec
        };
        let exact = platform.run_burst(&small).expect("exact");
        assert_eq!(fluid_max_rel_err(&exact, &exact), 0.0);
        let fluid = platform
            .run_burst(&small.clone().with_fluid(1))
            .expect("fluid");
        let err = fluid_max_rel_err(&exact, &fluid);
        assert!(err > 0.0, "fluid must actually approximate");
        assert!(err < 0.06, "err {err} past the AWS control-jitter bound");
    }

    #[test]
    fn warm_cells_get_their_own_group_labels() {
        // Cold cells keep the bare policy label so the committed baseline
        // stays comparable; only warm cells grow a suffix.
        assert_eq!(group_label("no-packing", "cold"), "no-packing");
        assert_eq!(
            group_label("propack-joint-0.5", "fixed:60"),
            "propack-joint-0.5+fixed:60"
        );
    }

    #[test]
    fn json_round_trips_through_the_benchdiff_parser() {
        let groups = vec![
            GroupTiming {
                policy: "no-packing".into(),
                cells: 8,
                wall_secs: 0.25,
                cells_per_sec: 32.0,
                max_rel_err: None,
            },
            GroupTiming {
                policy: "propack-joint-0.5".into(),
                cells: 8,
                wall_secs: 2.0,
                cells_per_sec: 4.0,
                max_rel_err: Some(0.012345),
            },
        ];
        let json = render_json(
            &groups,
            3,
            true,
            Some(("baselines/x.json", &[("propack-joint-0.5".into(), 3.1)])),
        );
        let parsed = parse_cells_per_sec(&json);
        assert_eq!(
            parsed,
            vec![
                ("no-packing".into(), 32.0),
                ("propack-joint-0.5".into(), 4.0)
            ]
        );
        assert!(json.contains("\"outputs_identical\": true"));
        assert!(json.contains("\"speedup\": 3.100"));
        assert!(json.contains("\"max_rel_err\": 0.012345"));
        // Braces and brackets balance (the render is hand-rolled).
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn golden_render_matches_platform_run() {
        // Spot-check one configuration against a direct run.
        let direct = PlatformBuilder::aws()
            .build()
            .run_burst(
                &BurstSpec::new(Benchmarks::resolve("sort").expect("sort").profile(), 500, 1)
                    .with_seed(KERNEL_SEED),
            )
            .expect("burst")
            .canonical_text();
        assert_eq!(
            golden_render("aws", "sort", 500, "fault-free").expect("render"),
            direct
        );
    }
}
