//! Machine-readable simlint reports.
//!
//! Three formats, one data model:
//!
//! * `text` — the v1 rustc-style diagnostics on stderr (default);
//! * `json` — a stable schema for CI artifacts (`--format json`):
//!
//!   ```json
//!   {
//!     "version": 2,
//!     "tool": "simlint",
//!     "files_scanned": 93,
//!     "fallback_files": [],
//!     "findings": [
//!       {"rule": "hash-map", "file": "crates/x/src/a.rs", "line": 7,
//!        "message": "…"}
//!     ],
//!     "summary": {"total": 1, "by_rule": {"hash-map": 1}}
//!   }
//!   ```
//!
//!   The schema is additive-only: consumers may rely on every field above
//!   existing in all future versions ≥ 2.
//!
//! * `github` — one `::error file=…,line=…,title=…::…` workflow command
//!   per finding, so CI failures annotate the offending lines in the PR
//!   diff view.

use crate::rules::Violation;
use std::collections::BTreeMap;

/// The outcome of an analysis run.
#[derive(Debug)]
pub struct Report {
    /// Files the walker handed to the linter.
    pub files_scanned: usize,
    /// Files the tree parser rejected (linted by the v1 lexer fallback).
    pub fallback_files: Vec<String>,
    /// All findings, sorted by (path, line).
    pub violations: Vec<Violation>,
}

impl Report {
    /// rustc-style text diagnostics plus a one-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.render());
            out.push('\n');
        }
        if self.violations.is_empty() {
            out.push_str(&format!("simlint: {} files clean\n", self.files_scanned));
        } else {
            out.push_str(&format!(
                "simlint: {} violation{} in {} files\n",
                self.violations.len(),
                if self.violations.len() == 1 { "" } else { "s" },
                self.files_scanned
            ));
        }
        if !self.fallback_files.is_empty() {
            out.push_str(&format!(
                "simlint: note: {} file(s) linted via lexer fallback: {}\n",
                self.fallback_files.len(),
                self.fallback_files.join(", ")
            ));
        }
        out
    }

    /// The stable JSON schema (version 2).
    pub fn render_json(&self) -> String {
        let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for v in &self.violations {
            *by_rule.entry(v.rule).or_insert(0) += 1;
        }
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 2,\n  \"tool\": \"simlint\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"fallback_files\": [");
        for (i, f) in self.fallback_files.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(f));
        }
        out.push_str("],\n  \"findings\": [");
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            out.push_str(&format!(
                "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_string(v.rule),
                json_string(&v.rel_path),
                v.line,
                json_string(&v.message)
            ));
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"summary\": {{\"total\": {}, \"by_rule\": {{",
            self.violations.len()
        ));
        for (i, (rule, n)) in by_rule.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_string(rule), n));
        }
        out.push_str("}}\n}\n");
        out
    }

    /// GitHub Actions workflow commands: one annotation per finding.
    pub fn render_github(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "::error file={},line={},title=simlint::{}::{}\n",
                v.rel_path,
                v.line,
                v.rule,
                github_escape(&v.message)
            ));
        }
        out
    }
}

/// JSON string literal with the escapes the schema can ever need.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Workflow-command message escaping (the data portion after `::`).
fn github_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            files_scanned: 3,
            fallback_files: vec!["crates/x/src/broken.rs".to_string()],
            violations: vec![Violation {
                rule: "hash-map",
                rel_path: "crates/x/src/a.rs".to_string(),
                line: 7,
                message: "bad \"map\"".to_string(),
            }],
        }
    }

    #[test]
    fn json_schema_has_required_fields() {
        let j = sample().render_json();
        for needle in [
            "\"version\": 2",
            "\"tool\": \"simlint\"",
            "\"files_scanned\": 3",
            "\"fallback_files\": [\"crates/x/src/broken.rs\"]",
            "\"rule\": \"hash-map\"",
            "\"file\": \"crates/x/src/a.rs\"",
            "\"line\": 7",
            "\"message\": \"bad \\\"map\\\"\"",
            "\"summary\": {\"total\": 1, \"by_rule\": {\"hash-map\": 1}}",
        ] {
            assert!(j.contains(needle), "missing {needle} in:\n{j}");
        }
    }

    #[test]
    fn github_annotations_escape_newlines() {
        let mut r = sample();
        r.violations[0].message = "line1\nline2 100%".to_string();
        let g = r.render_github();
        assert_eq!(
            g,
            "::error file=crates/x/src/a.rs,line=7,\
             title=simlint::hash-map::line1%0Aline2 100%25\n"
        );
    }

    #[test]
    fn clean_report_text_summarizes() {
        let r = Report {
            files_scanned: 9,
            fallback_files: vec![],
            violations: vec![],
        };
        assert_eq!(r.render_text(), "simlint: 9 files clean\n");
        assert!(r.render_json().contains("\"total\": 0"));
        assert!(r.render_github().is_empty());
    }
}
