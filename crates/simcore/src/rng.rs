//! Seeded, stream-split random number generation.
//!
//! Every stochastic component of the platform simulator (execution-time
//! jitter, scheduler noise, start-up variation) pulls from its **own named
//! stream** derived from the run seed. This guarantees two properties the
//! experiments rely on:
//!
//! 1. *Reproducibility*: the same seed always yields the same timeline.
//! 2. *Independence under refactoring*: adding a draw to one component
//!    cannot shift the sequence another component sees, because streams are
//!    derived by hashing the component name into the seed rather than by
//!    sharing one generator.
//!
//! Stream names are **not free-form**: every call site must pass a constant
//! from [`lanes`], the workspace lane registry. `cargo xtask simlint`
//! enforces this (rule `rng-lane`), which keeps the set of active lanes
//! auditable in one place and makes accidental lane collisions (two
//! components hashing to the same stream) detectable at lint time.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Central registry of RNG lane names.
///
/// Each constant names one independent random stream. Call sites must use
/// these constants — never a raw string literal — so that:
///
/// * the full set of lanes is visible (and reviewable) in one module;
/// * `cargo xtask simlint` can prove at lint time that no two lanes collide
///   under the FNV-1a stream hash and that no lane is dead;
/// * renaming a lane is a single-constant change with an obvious blast
///   radius (it reshuffles that stream and regenerates the goldens).
pub mod lanes {
    /// Per-instance execution jitter (cold start, run time, billing ticks).
    pub const EXEC: &str = "exec";
    /// Platform control-plane noise: admission, scheduling, placement.
    pub const CONTROL_PLANE: &str = "control-plane";
    /// FuncX endpoint control loop (cache hits, dispatch latency).
    pub const FUNCX_CONTROL: &str = "funcx-control";
    /// FuncX per-task execution jitter.
    pub const FUNCX_EXEC: &str = "funcx-exec";
    /// Replay: Poisson arrival synthesis.
    pub const TRACE_POISSON: &str = "trace-poisson";
    /// Replay: diurnal (thinned inhomogeneous Poisson) arrival synthesis.
    pub const TRACE_DIURNAL: &str = "trace-diurnal";
    /// Replay: burst-train arrival synthesis.
    pub const TRACE_BURST: &str = "trace-burst";
    /// Fault injection: instance crash draws.
    pub const FAULT_CRASH: &str = "fault-crash";
    /// Fault injection: provisioning-failure draws.
    pub const FAULT_PROVISION: &str = "fault-provision";
    /// Fault injection: data-ship stall draws.
    pub const FAULT_SHIP: &str = "fault-ship";
    /// Fault injection: straggler slowdown draws.
    pub const FAULT_STRAGGLER: &str = "fault-straggler";
    /// Keep-alive: Pagurus-style donor selection when an idle container is
    /// re-specialized for another function.
    pub const KEEPALIVE_PAGURUS: &str = "keepalive-pagurus";
    /// Fleet replay: synthetic multi-tenant fleet structure sampling
    /// (per-app function counts, profile assignment, rate weights).
    pub const FLEET_GEN: &str = "fleet-gen";
    /// Fleet replay: per-tenant seed derivation (indexed by tenant ordinal)
    /// so tenant simulations are decorrelated from each other and from the
    /// structure stream.
    pub const FLEET_TENANT: &str = "fleet-tenant";
    /// Workflow engine: per-leaf seed derivation (indexed by a hash of the
    /// leaf state's identity) so every Task/Map burst in a DAG draws an
    /// independent stream regardless of the order sibling branches are
    /// declared or scheduled in.
    pub const WORKFLOW_LEAF: &str = "workflow-leaf";

    /// Every registered lane. Order is documentation only; the stream hash
    /// does not depend on it.
    pub const ALL: &[&str] = &[
        EXEC,
        CONTROL_PLANE,
        FUNCX_CONTROL,
        FUNCX_EXEC,
        TRACE_POISSON,
        TRACE_DIURNAL,
        TRACE_BURST,
        FAULT_CRASH,
        FAULT_PROVISION,
        FAULT_SHIP,
        FAULT_STRAGGLER,
        KEEPALIVE_PAGURUS,
        FLEET_GEN,
        FLEET_TENANT,
        WORKFLOW_LEAF,
    ];
}

/// Factory for independent, deterministic RNG streams.
#[derive(Debug, Clone)]
pub struct RngStreams {
    seed: u64,
}

impl RngStreams {
    /// Create a stream factory rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        RngStreams { seed }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive the generator for the named component.
    ///
    /// The same `(seed, name)` pair always produces the same stream; different
    /// names produce statistically independent streams (FNV-1a split).
    ///
    /// `name` must be a constant from [`lanes`] (enforced by simlint).
    pub fn stream(&self, name: &str) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.seed ^ fnv1a(name.as_bytes()))
    }

    /// Derive a generator for the named component plus an index — e.g. one
    /// stream per function instance.
    ///
    /// The index is folded into the FNV-1a state as eight little-endian
    /// bytes *continuing* the name hash, which domain-separates indexed
    /// streams from [`RngStreams::stream`]: even `index == 0` advances the
    /// hash state (eight multiply rounds), so `stream_indexed(name, 0)`
    /// never aliases `stream(name)`. (The previous derivation XORed
    /// `index * GOLDEN_RATIO` into the hash, which made index 0 a no-op and
    /// silently shared the un-indexed stream — see DESIGN.md §"Seed
    /// compatibility".)
    pub fn stream_indexed(&self, name: &str, index: u64) -> ChaCha8Rng {
        let h = fnv1a_continue(fnv1a(name.as_bytes()), &index.to_le_bytes());
        ChaCha8Rng::seed_from_u64(self.seed ^ h)
    }

    /// The head of the stream [`RngStreams::stream_indexed`] would create —
    /// the first keystream block only, enough for the stream's first eight
    /// `random::<f64>()` draws, at a fraction of the construction cost (no
    /// four-block refill, no generator state). Bulk cohort evaluation uses
    /// this: it creates one short-lived stream per `(instance, attempt)`
    /// lane and never draws more than twice from it.
    ///
    /// `name` must be a constant from [`lanes`] (enforced by simlint).
    pub fn head_indexed(&self, name: &str, index: u64) -> StreamHead {
        let h = fnv1a_continue(fnv1a(name.as_bytes()), &index.to_le_bytes());
        stream_head(self.seed ^ h)
    }

    /// Four [`RngStreams::head_indexed`] heads evaluated together. The four
    /// ChaCha blocks are computed lane-parallel (the quarter-round runs on
    /// `[u32; 4]` columns, which the compiler vectorizes), so this is the
    /// fast shape for sweeping a cohort's per-instance draws.
    ///
    /// `name` must be a constant from [`lanes`] (enforced by simlint).
    pub fn head_indexed4(&self, name: &str, indices: [u64; 4]) -> [StreamHead; 4] {
        let base = fnv1a(name.as_bytes());
        stream_head4(indices.map(|ix| self.seed ^ fnv1a_continue(base, &ix.to_le_bytes())))
    }

    /// Eight [`RngStreams::head_indexed`] heads evaluated together — the
    /// widest bulk shape (AVX2 when the CPU has it, two four-lane batches
    /// otherwise). Prefer this for full-cohort sweeps.
    ///
    /// `name` must be a constant from [`lanes`] (enforced by simlint).
    pub fn head_indexed8(&self, name: &str, indices: [u64; 8]) -> [StreamHead; 8] {
        let base = fnv1a(name.as_bytes());
        stream_head8(indices.map(|ix| self.seed ^ fnv1a_continue(base, &ix.to_le_bytes())))
    }
}

/// The first keystream block of `ChaCha8Rng::seed_from_u64(seed)`: a
/// read-only window onto the stream's first eight `u64` (equivalently
/// `f64`) draws. Produced by [`stream_head`] / [`RngStreams::head_indexed`].
///
/// Bit-compatibility is pinned by tests against the real generator: for
/// every `k < 8`, [`StreamHead::f64_draw`]`(k)` equals the `(k+1)`-th
/// `random::<f64>()` of a freshly seeded `ChaCha8Rng` on the same seed.
#[derive(Debug, Clone, Copy)]
pub struct StreamHead {
    words: [u32; 16],
}

impl StreamHead {
    /// The stream's `k`-th `random::<f64>()` draw (`k < 8`), bit-identical
    /// to drawing from the full generator.
    #[inline]
    pub fn f64_draw(&self, k: usize) -> f64 {
        debug_assert!(k < 8, "a StreamHead holds only the first 8 draws");
        let lo = u64::from(self.words[2 * k]);
        let hi = u64::from(self.words[2 * k + 1]);
        let v = (hi << 32) | lo;
        // rand 0.9 `StandardUniform` for f64: 53 random bits, multiply.
        (1.0 / ((1u64 << 53) as f64)) * ((v >> 11) as f64)
    }
}

/// Compute the head of the stream `ChaCha8Rng::seed_from_u64(seed)` yields:
/// rand_core's PCG32 seed expansion (each little-endian key word is one
/// PCG output) followed by a single ChaCha8 block at counter 0, stream 0.
pub fn stream_head(seed: u64) -> StreamHead {
    StreamHead {
        words: chacha8_block(pcg_expand_key(seed)),
    }
}

/// Four [`stream_head`]s computed lane-parallel: the state is sixteen
/// four-lane columns, one per ChaCha word, with the four streams occupying
/// the four SIMD lanes of each column. On x86-64 the permutation runs on
/// SSE2 vectors (baseline for the architecture, so no runtime dispatch);
/// elsewhere a portable `[u32; 4]` combinator version computes the same
/// integers. Bit-equality with four scalar [`stream_head`]s — and hence
/// with the full generator — is pinned by tests.
pub fn stream_head4(seeds: [u64; 4]) -> [StreamHead; 4] {
    let keys = seeds.map(pcg_expand_key);
    let mut input = [[0u32; 4]; 16];
    input[0] = [0x6170_7865; 4];
    input[1] = [0x3320_646e; 4];
    input[2] = [0x7962_2d32; 4];
    input[3] = [0x6b20_6574; 4];
    for w in 0..8 {
        input[4 + w] = [keys[0][w], keys[1][w], keys[2][w], keys[3][w]];
    }
    // Words 12..16 (counter and stream) are zero for a fresh head.
    let x = block4_columns(&input);
    let mut heads = [StreamHead { words: [0; 16] }; 4];
    for (w, (col, init)) in x.iter().zip(input.iter()).enumerate() {
        for l in 0..4 {
            heads[l].words[w] = col[l].wrapping_add(init[l]);
        }
    }
    heads
}

/// Eight [`stream_head`]s computed lane-parallel: AVX2 eight-lane columns
/// when the CPU supports them (detected once, cached by the standard
/// library), otherwise two four-lane batches. Same integers either way.
pub fn stream_head8(seeds: [u64; 8]) -> [StreamHead; 8] {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        let keys = seeds.map(pcg_expand_key);
        let mut input = [[0u32; 8]; 16];
        input[0] = [0x6170_7865; 8];
        input[1] = [0x3320_646e; 8];
        input[2] = [0x7962_2d32; 8];
        input[3] = [0x6b20_6574; 8];
        for w in 0..8 {
            for l in 0..8 {
                input[4 + w][l] = keys[l][w];
            }
        }
        // SAFETY: the AVX2 requirement of `block8_columns_avx2` was just
        // checked at runtime.
        let x = unsafe { block8_columns_avx2(&input) };
        let mut heads = [StreamHead { words: [0; 16] }; 8];
        for (w, (col, init)) in x.iter().zip(input.iter()).enumerate() {
            for l in 0..8 {
                heads[l].words[w] = col[l].wrapping_add(init[l]);
            }
        }
        return heads;
    }
    let lo = stream_head4([seeds[0], seeds[1], seeds[2], seeds[3]]);
    let hi = stream_head4([seeds[4], seeds[5], seeds[6], seeds[7]]);
    [lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]]
}

/// The ChaCha8 permutation over sixteen eight-lane columns (pre-add state).
///
/// # Safety
///
/// The caller must have verified AVX2 support (`is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn block8_columns_avx2(input: &[[u32; 8]; 16]) -> [[u32; 8]; 16] {
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_loadu_si256, _mm256_or_si256, _mm256_slli_epi32,
        _mm256_srli_epi32, _mm256_storeu_si256, _mm256_xor_si256,
    };
    #[inline(always)]
    unsafe fn xor_rotl<const L: i32, const R: i32>(a: __m256i, b: __m256i) -> __m256i {
        let x = _mm256_xor_si256(a, b);
        _mm256_or_si256(_mm256_slli_epi32::<L>(x), _mm256_srli_epi32::<R>(x))
    }
    macro_rules! quarter {
        ($x:ident, $a:literal, $b:literal, $c:literal, $d:literal) => {
            $x[$a] = _mm256_add_epi32($x[$a], $x[$b]);
            $x[$d] = xor_rotl::<16, 16>($x[$d], $x[$a]);
            $x[$c] = _mm256_add_epi32($x[$c], $x[$d]);
            $x[$b] = xor_rotl::<12, 20>($x[$b], $x[$c]);
            $x[$a] = _mm256_add_epi32($x[$a], $x[$b]);
            $x[$d] = xor_rotl::<8, 24>($x[$d], $x[$a]);
            $x[$c] = _mm256_add_epi32($x[$c], $x[$d]);
            $x[$b] = xor_rotl::<7, 25>($x[$b], $x[$c]);
        };
    }
    let mut x = [core::mem::zeroed::<__m256i>(); 16];
    for (col, src) in x.iter_mut().zip(input.iter()) {
        *col = _mm256_loadu_si256(src.as_ptr().cast());
    }
    for _ in 0..4 {
        // Column round.
        quarter!(x, 0, 4, 8, 12);
        quarter!(x, 1, 5, 9, 13);
        quarter!(x, 2, 6, 10, 14);
        quarter!(x, 3, 7, 11, 15);
        // Diagonal round.
        quarter!(x, 0, 5, 10, 15);
        quarter!(x, 1, 6, 11, 12);
        quarter!(x, 2, 7, 8, 13);
        quarter!(x, 3, 4, 9, 14);
    }
    let mut out = [[0u32; 8]; 16];
    for (dst, col) in out.iter_mut().zip(x.iter()) {
        _mm256_storeu_si256(dst.as_mut_ptr().cast(), *col);
    }
    out
}

/// The ChaCha8 permutation over sixteen four-lane columns (pre-add state).
#[cfg(target_arch = "x86_64")]
fn block4_columns(input: &[[u32; 4]; 16]) -> [[u32; 4]; 16] {
    use core::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_loadu_si128, _mm_or_si128, _mm_slli_epi32, _mm_srli_epi32,
        _mm_storeu_si128, _mm_xor_si128,
    };
    // SAFETY: every intrinsic below is an SSE2 integer operation; SSE2 is
    // part of the x86-64 baseline, so the `cfg(target_arch)` gate alone
    // guarantees the instructions exist. Loads and stores use the
    // unaligned variants on pointers derived from in-bounds `[u32; 4]`
    // elements.
    unsafe {
        #[inline(always)]
        unsafe fn xor_rotl<const L: i32, const R: i32>(a: __m128i, b: __m128i) -> __m128i {
            let x = _mm_xor_si128(a, b);
            _mm_or_si128(_mm_slli_epi32::<L>(x), _mm_srli_epi32::<R>(x))
        }
        macro_rules! quarter {
            ($x:ident, $a:literal, $b:literal, $c:literal, $d:literal) => {
                $x[$a] = _mm_add_epi32($x[$a], $x[$b]);
                $x[$d] = xor_rotl::<16, 16>($x[$d], $x[$a]);
                $x[$c] = _mm_add_epi32($x[$c], $x[$d]);
                $x[$b] = xor_rotl::<12, 20>($x[$b], $x[$c]);
                $x[$a] = _mm_add_epi32($x[$a], $x[$b]);
                $x[$d] = xor_rotl::<8, 24>($x[$d], $x[$a]);
                $x[$c] = _mm_add_epi32($x[$c], $x[$d]);
                $x[$b] = xor_rotl::<7, 25>($x[$b], $x[$c]);
            };
        }
        let mut x = [core::mem::zeroed::<__m128i>(); 16];
        for (col, src) in x.iter_mut().zip(input.iter()) {
            *col = _mm_loadu_si128(src.as_ptr().cast());
        }
        for _ in 0..4 {
            // Column round.
            quarter!(x, 0, 4, 8, 12);
            quarter!(x, 1, 5, 9, 13);
            quarter!(x, 2, 6, 10, 14);
            quarter!(x, 3, 7, 11, 15);
            // Diagonal round.
            quarter!(x, 0, 5, 10, 15);
            quarter!(x, 1, 6, 11, 12);
            quarter!(x, 2, 7, 8, 13);
            quarter!(x, 3, 4, 9, 14);
        }
        let mut out = [[0u32; 4]; 16];
        for (dst, col) in out.iter_mut().zip(x.iter()) {
            _mm_storeu_si128(dst.as_mut_ptr().cast(), *col);
        }
        out
    }
}

/// Portable fallback: the same permutation as whole-column combinators.
#[cfg(not(target_arch = "x86_64"))]
fn block4_columns(input: &[[u32; 4]; 16]) -> [[u32; 4]; 16] {
    type V = [u32; 4];
    #[inline(always)]
    fn add(a: V, b: V) -> V {
        [
            a[0].wrapping_add(b[0]),
            a[1].wrapping_add(b[1]),
            a[2].wrapping_add(b[2]),
            a[3].wrapping_add(b[3]),
        ]
    }
    #[inline(always)]
    fn xor_rotl<const R: u32>(a: V, b: V) -> V {
        [
            (a[0] ^ b[0]).rotate_left(R),
            (a[1] ^ b[1]).rotate_left(R),
            (a[2] ^ b[2]).rotate_left(R),
            (a[3] ^ b[3]).rotate_left(R),
        ]
    }
    #[inline(always)]
    fn quarter(x: &mut [V; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = add(x[a], x[b]);
        x[d] = xor_rotl::<16>(x[d], x[a]);
        x[c] = add(x[c], x[d]);
        x[b] = xor_rotl::<12>(x[b], x[c]);
        x[a] = add(x[a], x[b]);
        x[d] = xor_rotl::<8>(x[d], x[a]);
        x[c] = add(x[c], x[d]);
        x[b] = xor_rotl::<7>(x[b], x[c]);
    }
    let mut x = *input;
    for _ in 0..4 {
        // Column round.
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }
    x
}

/// rand_core 0.9's `seed_from_u64` PCG32 expansion, collapsed to the eight
/// little-endian key words it produces (each 4-byte chunk of the expanded
/// seed is one PCG output, and `from_seed` reads the words back in the same
/// little-endian order, so the byte round-trip cancels).
fn pcg_expand_key(mut state: u64) -> [u32; 8] {
    const MUL: u64 = 6364136223846793005;
    const INC: u64 = 11634580027462260723;
    let mut key = [0u32; 8];
    for w in key.iter_mut() {
        state = state.wrapping_mul(MUL).wrapping_add(INC);
        let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
        let rot = (state >> 59) as u32;
        *w = xorshifted.rotate_right(rot);
    }
    key
}

/// One ChaCha8 block: counter 0, stream 0 — exactly the first block the
/// generator's four-block refill would place at the front of its buffer.
fn chacha8_block(key: [u32; 8]) -> [u32; 16] {
    let mut input = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        0,
        0,
        0,
        0,
        0,
        0,
        0,
        0,
        0,
        0,
        0,
        0,
    ];
    input[4..12].copy_from_slice(&key);
    let mut x = input;
    for _ in 0..4 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (o, i) in x.iter_mut().zip(input.iter()) {
        *o = o.wrapping_add(*i);
    }
    x
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// FNV-1a 64-bit hash; small, deterministic, dependency-free.
///
/// Public so that tests (and `cargo xtask simlint`'s collision analysis,
/// which mirrors this function) can verify the lane registry is
/// collision-free against the exact production hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continue an FNV-1a hash from an existing state.
fn fnv1a_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Draw a multiplicative jitter factor in `[1 − amplitude, 1 + amplitude]`.
///
/// This is the noise shape used for execution-time variation: the paper
/// (Fig. 5a) reports < 5 % variation, which corresponds to
/// `amplitude = 0.05`.
pub fn jitter<R: Rng>(rng: &mut R, amplitude: f64) -> f64 {
    jitter_value(rng.random::<f64>(), amplitude)
}

/// The jitter factor a given unit-interval draw maps to — the pure
/// arithmetic of [`jitter`], exposed so batched paths can feed it
/// [`StreamHead::f64_draw`] values and land on bit-identical factors.
#[inline]
pub fn jitter_value(draw: f64, amplitude: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&amplitude));
    1.0 + amplitude * (draw * 2.0 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn same_seed_same_stream() {
        let a = RngStreams::new(42);
        let b = RngStreams::new(42);
        let xs: Vec<u64> = a.stream(lanes::EXEC).random_iter().take(16).collect();
        let ys: Vec<u64> = b.stream(lanes::EXEC).random_iter().take(16).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_names_different_streams() {
        let s = RngStreams::new(42);
        let xs: Vec<u64> = s.stream(lanes::EXEC).random_iter().take(16).collect();
        let ys: Vec<u64> = s
            .stream(lanes::CONTROL_PLANE)
            .random_iter()
            .take(16)
            .collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_seeds_different_streams() {
        let xs: Vec<u64> = RngStreams::new(1)
            .stream(lanes::EXEC)
            .random_iter()
            .take(16)
            .collect();
        let ys: Vec<u64> = RngStreams::new(2)
            .stream(lanes::EXEC)
            .random_iter()
            .take(16)
            .collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn indexed_streams_distinct() {
        let s = RngStreams::new(7);
        let xs: Vec<u64> = s
            .stream_indexed(lanes::EXEC, 0)
            .random_iter()
            .take(8)
            .collect();
        let ys: Vec<u64> = s
            .stream_indexed(lanes::EXEC, 1)
            .random_iter()
            .take(8)
            .collect();
        assert_ne!(xs, ys);
        // And reproducible.
        let xs2: Vec<u64> = s
            .stream_indexed(lanes::EXEC, 0)
            .random_iter()
            .take(8)
            .collect();
        assert_eq!(xs, xs2);
    }

    /// The historical bug this module's v2 derivation fixes: index 0 used to
    /// contribute nothing to the stream hash, so `stream_indexed(name, 0)`
    /// silently shared `stream(name)`'s sequence.
    #[test]
    fn index_zero_does_not_alias_unindexed_stream() {
        let s = RngStreams::new(42);
        for lane in lanes::ALL {
            // simlint: allow(rng-lane): "iterates the registry itself; every value is a lane const"
            let base: Vec<u64> = s.stream(lane).random_iter().take(8).collect();
            // simlint: allow(rng-lane): "iterates the registry itself; every value is a lane const"
            let idx0: Vec<u64> = s.stream_indexed(lane, 0).random_iter().take(8).collect();
            assert_ne!(
                base, idx0,
                "stream_indexed({lane:?}, 0) aliases stream({lane:?})"
            );
        }
    }

    /// The stream-head fast path's whole contract: for any seed, the head's
    /// eight draws are bit-identical to the full generator's first eight
    /// `random::<f64>()` outputs. Seeds sweep a pseudo-random set plus the
    /// adversarial corners.
    #[test]
    fn stream_head_matches_the_full_generator_bit_for_bit() {
        let mut seeds: Vec<u64> = vec![0, 1, u64::MAX, u64::MAX - 1, 1 << 63];
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..256 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            seeds.push(x);
        }
        for &seed in &seeds {
            let head = stream_head(seed);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for k in 0..8 {
                let want: f64 = rng.random();
                let got = head.f64_draw(k);
                assert!(
                    got == want,
                    "stream_head({seed:#x}) draw {k}: {got} != {want}"
                );
            }
        }
    }

    #[test]
    fn stream_head4_matches_four_scalar_heads() {
        let seeds = [3u64, u64::MAX, 0x1234_5678_9abc_def0, 42];
        let wide = stream_head4(seeds);
        for l in 0..4 {
            let scalar = stream_head(seeds[l]);
            for k in 0..8 {
                assert!(wide[l].f64_draw(k) == scalar.f64_draw(k));
            }
        }
    }

    #[test]
    fn stream_head8_matches_eight_scalar_heads() {
        let seeds = [0u64, 1, u64::MAX, 42, 7, 1 << 40, 0xdead_beef, 3];
        let wide = stream_head8(seeds);
        for l in 0..8 {
            let scalar = stream_head(seeds[l]);
            for k in 0..8 {
                assert!(wide[l].f64_draw(k) == scalar.f64_draw(k));
            }
        }
    }

    #[test]
    fn head_indexed_matches_stream_indexed() {
        let s = RngStreams::new(1337);
        for index in [0u64, 1, 7, (5u64 << 32) | 3, u64::MAX] {
            let head = s.head_indexed(lanes::FAULT_CRASH, index);
            let mut rng = s.stream_indexed(lanes::FAULT_CRASH, index);
            for k in 0..8 {
                let want: f64 = rng.random();
                assert!(head.f64_draw(k) == want);
            }
        }
        let indices = [2u64, 3, 5, 8];
        let wide = s.head_indexed4(lanes::EXEC, indices);
        for l in 0..4 {
            let mut rng = s.stream_indexed(lanes::EXEC, indices[l]);
            let want: f64 = rng.random();
            assert!(wide[l].f64_draw(0) == want);
        }
        let indices8 = [2u64, 3, 5, 8, 13, 21, 34, 55];
        let wide8 = s.head_indexed8(lanes::EXEC, indices8);
        for l in 0..8 {
            let mut rng = s.stream_indexed(lanes::EXEC, indices8[l]);
            let want: f64 = rng.random();
            assert!(wide8[l].f64_draw(0) == want);
        }
    }

    #[test]
    fn jitter_value_matches_jitter() {
        let s = RngStreams::new(4242);
        for i in 0..64 {
            let drawn = jitter(&mut s.stream_indexed(lanes::EXEC, i), 0.05);
            let head = jitter_value(s.head_indexed(lanes::EXEC, i).f64_draw(0), 0.05);
            assert!(drawn == head);
        }
    }

    #[test]
    fn lane_registry_has_no_fnv_collisions() {
        let mut seen = BTreeSet::new();
        for lane in lanes::ALL {
            assert!(
                seen.insert(fnv1a(lane.as_bytes())),
                "lane {lane:?} collides with another registered lane under FNV-1a"
            );
        }
        assert_eq!(seen.len(), lanes::ALL.len());
    }

    #[test]
    fn jitter_bounds_and_mean() {
        let s = RngStreams::new(99);
        let mut rng = s.stream(lanes::EXEC);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let j = jitter(&mut rng, 0.05);
            assert!((0.95..=1.05).contains(&j), "jitter {j} out of range");
            sum += j;
        }
        let mean = sum / N as f64;
        assert!((mean - 1.0).abs() < 0.01, "jitter mean {mean} biased");
    }
}
