//! simlint fixture: an `allow` without a justification string is itself a
//! violation and does not suppress the underlying one.

pub fn exact_zero_guard(x: f64) -> bool {
    // simlint: allow(float-eq)
    x == 0.0
}
