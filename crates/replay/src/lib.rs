//! Trace-driven arrival workloads and an online ProPack controller.
//!
//! Everything else in this workspace answers an *offline* question: given
//! `C` simultaneous invocations, what packing degree should they run at?
//! This crate answers the *online* version: given a continuous arrival
//! stream — diurnal load, bursts, real trace files — how should the packing
//! degree track the load, and what does mis-forecasting it cost?
//!
//! Three layers:
//!
//! * [`trace`] — [`ArrivalTrace`]: per-app invocation timestamps over a
//!   finite horizon, from deterministic synthetic generators (Poisson,
//!   diurnal sinusoid, burst train) or Azure-Functions-style CSV files.
//! * [`forecast`] / [`controller`] — the decision layer: [`Forecaster`]
//!   implementations (EWMA, sliding-window max) and the [`Controller`]
//!   policies `no-packing`, `fixed:P`, `oracle`, `propack:<forecaster>`.
//! * [`engine`] / [`report`] — [`ReplayEngine`] windows the trace into
//!   epochs on simcore sim time, re-plans `P` per epoch through the shared
//!   [`propack_model::ModelCache`], dispatches each window through the
//!   orchestrator's burst/retry path, and accumulates a [`ReplayReport`]
//!   (per-epoch service time, tail vs QoS, expense, chosen `P`, forecast
//!   error).
//!
//! The whole crate obeys the workspace determinism policy: RNG only
//! through named [`propack_simcore::RngStreams`] lanes, no wall clock (host
//! timing is injected by wall-clock-exempt callers), and reports render
//! bit-identically across re-runs and sweep thread counts.

pub mod controller;
pub mod engine;
pub mod forecast;
pub mod report;
pub mod trace;

pub use controller::Controller;
pub use engine::{epoch_seed, ReplayEngine, ReplayError, ReplaySpec};
pub use forecast::{Ewma, Forecaster, ForecasterKind, SlidingWindowMax};
pub use report::{EpochResult, ReplayReport};
pub use trace::{ArrivalTrace, TraceError};
