//! QoS-aware weight selection: Eqs. 8–9 of the paper (§2.6).
//!
//! Latency-critical applications (Xapian, Fig. 20) carry a hard bound on
//! tail (95th-percentile) service time. The default equal weights may
//! violate it, so ProPack searches for the weight split that still
//! optimizes expense as much as possible while keeping the *tail* service
//! time of the jointly-optimal packing degree inside the bound: the
//! smallest `W_S` whose resulting plan satisfies `TS ≤ QoS`.

use crate::model::PackingModel;
use crate::optimizer::optimal_degree_joint;
use crate::ModelError;
use propack_stats::percentile::Percentile;

/// Resolution of the weight grid searched by [`select_weights`].
pub const WEIGHT_GRID_STEP: f64 = 0.05;

/// Eq. 8: the tail service time achieved by the joint plan at weights
/// `(w_s, 1 − w_s)`.
pub fn tail_service_at_weights(model: &PackingModel, c: u32, w_s: f64) -> f64 {
    // The degree is chosen on the tail figure of merit, as Fig. 20 does for
    // Xapian, then evaluated at the tail.
    let p = optimal_degree_joint(model, c, Percentile::Tail95, w_s);
    model.service_secs(c, p, Percentile::Tail95)
}

/// Eq. 9: choose the service-time weight.
///
/// Returns the smallest `W_S` on the grid whose tail service time meets the
/// QoS bound — i.e. the split that preserves as much expense optimization
/// as possible while staying inside the bound. Errors with the best
/// achievable tail when even `W_S = 1` cannot meet it.
pub fn select_weights(
    model: &PackingModel,
    c: u32,
    qos_bound_secs: f64,
) -> Result<f64, ModelError> {
    let steps = (1.0 / WEIGHT_GRID_STEP).round() as u32;
    let mut best_tail = f64::INFINITY;
    for k in 0..=steps {
        let w_s = k as f64 * WEIGHT_GRID_STEP;
        let ts = tail_service_at_weights(model, c, w_s);
        best_tail = best_tail.min(ts);
        if ts <= qos_bound_secs {
            return Ok(w_s);
        }
    }
    Err(ModelError::QosInfeasible {
        bound_secs: qos_bound_secs,
        best_tail_secs: best_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::InterferenceModel;
    use crate::model::CostFactors;
    use crate::scaling::ScalingModel;
    use propack_platform::profile::PlatformProfile;
    use propack_platform::WorkProfile;

    /// Xapian-like model: short requests, moderate contention.
    fn model() -> PackingModel {
        PackingModel {
            interference: InterferenceModel {
                base: 25.0 / (0.075f64).exp(),
                rate: 0.075,
                mem_gb: 0.4,
                rmse: 0.0,
            },
            scaling: ScalingModel {
                beta1: 3.0e-5,
                beta2: 0.045,
                beta3: 2.0,
                r_squared: 1.0,
            },
            cost: CostFactors::derive(
                &PlatformProfile::aws_lambda().prices,
                &WorkProfile::synthetic("xapian", 0.4, 25.0),
                10.0,
            ),
            p_max: 25,
        }
    }

    #[test]
    fn tail_decreases_as_service_weight_grows() {
        let m = model();
        let loose = tail_service_at_weights(&m, 5000, 0.0);
        let tight = tail_service_at_weights(&m, 5000, 1.0);
        assert!(tight <= loose, "{tight} vs {loose}");
    }

    #[test]
    fn select_weights_meets_bound() {
        let m = model();
        let c = 5000;
        // Pick a bound between the pure-expense tail and the pure-service
        // tail so the search must land strictly inside (0, 1).
        let loose = tail_service_at_weights(&m, c, 0.0);
        let tight = tail_service_at_weights(&m, c, 1.0);
        let bound = tight + 0.25 * (loose - tight);
        let w_s = select_weights(&m, c, bound).unwrap();
        assert!(w_s > 0.0 && w_s < 1.0, "w_s = {w_s}");
        assert!(tail_service_at_weights(&m, c, w_s) <= bound);
        // Minimality: one grid step less must violate the bound.
        let prev = (w_s - WEIGHT_GRID_STEP).max(0.0);
        if prev < w_s {
            assert!(tail_service_at_weights(&m, c, prev) > bound);
        }
    }

    #[test]
    fn loose_bound_keeps_expense_priority() {
        let m = model();
        let w_s = select_weights(&m, 5000, 1e9).unwrap();
        assert_eq!(
            w_s, 0.0,
            "a trivially satisfied bound should not sacrifice expense"
        );
    }

    #[test]
    fn impossible_bound_errors_with_best_tail() {
        let m = model();
        let err = select_weights(&m, 5000, 0.001).unwrap_err();
        match err {
            ModelError::QosInfeasible {
                bound_secs,
                best_tail_secs,
            } => {
                assert_eq!(bound_secs, 0.001);
                assert!(best_tail_secs > 0.001);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }
}
