//! Criterion benches over the end-to-end experiment pipelines: how long a
//! full figure regeneration takes (build-profile-plan-execute-compare) and
//! the cost of the Oracle's brute force relative to ProPack's analytical
//! planning — the trade the paper's whole contribution rests on.

use criterion::{criterion_group, criterion_main, Criterion};
use propack_baselines::{Oracle, OracleObjective};
use propack_model::optimizer::Objective;
use propack_model::propack::{ProPackConfig, Propack};
use propack_platform::PlatformBuilder;
use propack_platform::WorkProfile;
use propack_stats::percentile::Percentile;
use std::hint::black_box;

fn work() -> WorkProfile {
    WorkProfile::synthetic("bench", 0.64, 100.0).with_contention(0.1406)
}

/// ProPack's full pipeline: profile + fit + plan (no execution).
fn bench_propack_build_and_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let platform = PlatformBuilder::aws().build();
    g.bench_function("propack_build", |b| {
        b.iter(|| Propack::build(&platform, black_box(&work()), &ProPackConfig::default()).unwrap())
    });
    let pp = Propack::build(&platform, &work(), &ProPackConfig::default()).unwrap();
    g.bench_function("propack_plan_only", |b| {
        b.iter(|| pp.plan(black_box(5000), Objective::default()).unwrap())
    });
    g.finish();
}

/// The trade at the heart of the paper: analytical planning vs exhaustive
/// search for the same decision.
fn bench_propack_vs_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("propack_vs_oracle");
    g.sample_size(10);
    let platform = PlatformBuilder::aws().build();
    let w = work();
    let pp = Propack::build(&platform, &w, &ProPackConfig::default()).unwrap();
    g.bench_function("analytical_decision", |b| {
        b.iter(|| pp.plan(black_box(2000), Objective::default()).unwrap())
    });
    g.bench_function("oracle_brute_force", |b| {
        b.iter(|| {
            Oracle
                .search(
                    &platform,
                    black_box(&w),
                    2000,
                    OracleObjective::Joint {
                        w_s: 0.5,
                        metric: Percentile::Total,
                    },
                    1,
                )
                .unwrap()
        })
    });
    g.finish();
}

/// One complete figure regeneration (the cheapest and a mid-weight one).
fn bench_figure_regeneration(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig02_scaling_breakdown", |b| {
        b.iter(|| propack_bench::run_experiment(black_box("fig02")).unwrap())
    });
    g.bench_function("fig07_expense_vs_packing", |b| {
        b.iter(|| propack_bench::run_experiment(black_box("fig07")).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_propack_build_and_plan,
    bench_propack_vs_oracle,
    bench_figure_regeneration
);
criterion_main!(benches);
