//! Model validation: the Pearson χ² goodness-of-fit protocol of §2.4.
//!
//! The paper validates that ProPack's analytical service-time and expense
//! models are *"representative of the observed service time and expense
//! characteristics"* by computing `Σ (observed − expected)² / expected`
//! across packing degrees and comparing against χ²(dof = 14) at 99.5 %
//! confidence (critical value 4.075). Reported worst cases: 3.81 for
//! service time, 0.055 for expense — both accepted.
//!
//! [`validate_models`] replays that protocol on the simulator: run real
//! bursts at a ladder of packing degrees, compare against the model's
//! predictions, and report both χ² outcomes.

use crate::model::PackingModel;
use crate::ModelError;
use propack_platform::{BurstSpec, ServerlessPlatform, WorkProfile};
use propack_stats::chi2::{ChiSquareTest, GofOutcome};
use propack_stats::percentile::Percentile;
use serde::{Deserialize, Serialize};

/// Validation outcome for one application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// χ² outcome for the service-time model.
    pub service: GofOutcome,
    /// χ² outcome for the expense model.
    pub expense: GofOutcome,
    /// Concurrency level the validation ran at.
    pub concurrency: u32,
    /// Number of packing degrees evaluated.
    pub degrees_evaluated: usize,
}

impl ValidationReport {
    /// Both models accepted?
    pub fn accepted(&self) -> bool {
        self.service.accepted && self.expense.accepted
    }
}

/// Run the §2.4 validation protocol.
///
/// Executes one burst per packing degree in `1..=p_max` at concurrency `c`,
/// then χ²-tests observed vs. model-predicted service times and expenses.
/// Service times are normalized to the degree-1 observation before the
/// statistic is computed (the paper normalizes its reported values; without
/// normalization the statistic's scale would depend on the absolute
/// magnitude of seconds vs. dollars, making the two tests incomparable).
pub fn validate_models<P: ServerlessPlatform + ?Sized>(
    platform: &P,
    model: &PackingModel,
    work: &WorkProfile,
    c: u32,
    test: ChiSquareTest,
    seed: u64,
) -> Result<ValidationReport, ModelError> {
    let mut observed_service = Vec::new();
    let mut expected_service = Vec::new();
    let mut observed_expense = Vec::new();
    let mut expected_expense = Vec::new();

    // One shared profile allocation for the whole validation ladder.
    let work = std::sync::Arc::new(work.clone());
    for p in 1..=model.p_max {
        let spec = BurstSpec::packed(std::sync::Arc::clone(&work), c, p)
            .with_seed(seed ^ (p as u64) << 16);
        let report = platform.run_burst(&spec)?;
        observed_service.push(report.total_service_time());
        expected_service.push(model.service_secs(c, p, Percentile::Total));
        observed_expense.push(report.expense.total_usd());
        expected_expense.push(model.expense_usd(c, p));
    }

    // Normalize each series by its first expected value so service (seconds)
    // and expense (dollars) statistics live on comparable scales.
    let norm = |xs: &mut [f64], scale: f64| {
        for x in xs.iter_mut() {
            *x /= scale;
        }
    };
    let s_scale = expected_service[0];
    let e_scale = expected_expense[0];
    norm(&mut observed_service, s_scale);
    norm(&mut expected_service, s_scale);
    norm(&mut observed_expense, e_scale);
    norm(&mut expected_expense, e_scale);

    let service = test.run(&observed_service, &expected_service)?;
    let expense = test.run(&observed_expense, &expected_expense)?;
    Ok(ValidationReport {
        service,
        expense,
        concurrency: c,
        degrees_evaluated: model.p_max as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propack::{ProPackConfig, Propack};
    use propack_platform::PlatformBuilder;

    #[test]
    fn built_models_pass_the_paper_test() {
        // End-to-end §2.4: build ProPack on the simulator, then validate at
        // a concurrency the profiler never saw. Both statistics must fall
        // below the paper's 4.075 critical value.
        let platform = PlatformBuilder::aws().build();
        let work = WorkProfile::synthetic("w", 0.64, 100.0).with_contention(0.1406);
        let pp = Propack::build(&platform, &work, &ProPackConfig::default()).unwrap();
        let report = validate_models(
            &platform,
            &pp.model,
            &work,
            1000,
            ChiSquareTest::paper_default(),
            42,
        )
        .unwrap();
        assert!(
            report.accepted(),
            "service: {:?}, expense: {:?}",
            report.service,
            report.expense
        );
        assert!(report.service.statistic < 4.075);
        assert!(report.expense.statistic < 4.075);
        assert_eq!(report.degrees_evaluated, 15); // Sort-like: p_max = 15
    }

    #[test]
    fn broken_model_fails_validation() {
        let platform = PlatformBuilder::aws().build();
        let work = WorkProfile::synthetic("w", 0.64, 100.0).with_contention(0.1406);
        let pp = Propack::build(&platform, &work, &ProPackConfig::default()).unwrap();
        let mut broken = pp.model;
        broken.interference.rate *= 3.0; // sabotage Eq. 1
        let report = validate_models(
            &platform,
            &broken,
            &work,
            1000,
            ChiSquareTest::paper_default(),
            42,
        )
        .unwrap();
        assert!(!report.accepted(), "sabotaged model must be rejected");
    }
}
