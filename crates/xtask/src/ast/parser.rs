//! Token-tree parser: the front half of simlint's AST pass.
//!
//! The lexer flattens a file into tokens; this module folds the delimiter
//! structure back in, producing a forest of [`Tree`]s where every `(…)`,
//! `[…]`, `{…}` becomes a [`Group`] node owning its contents. That one
//! structural step is what separates simlint v2 from the v1 token scan:
//!
//! * call arguments are a subtree, so "`Box::new` *inside* `schedule(…)`"
//!   or "a float key *inside* `sort_unstable_by(…)`" is containment, not a
//!   fragile paren-counting walk;
//! * `#[cfg(test)]` / `#[test]` gating follows the item structure (the
//!   attribute covers exactly the trees up to and including the item's
//!   body), not brace-matched line ranges;
//! * multi-line expressions cost nothing — trees have no line geometry.
//!
//! Unbalanced delimiters are a [`ParseError`]; the driver falls back to the
//! v1 lexer rules for such files (see `ast::analyze_workspace`). rustc is
//! the judge of validity; simlint only needs a best-effort shape.

use crate::lexer::{lex, AllowDirective, Token, TokenKind};

/// One node of the token-tree forest.
#[derive(Debug)]
pub enum Tree {
    /// A non-delimiter token.
    Leaf(Token),
    /// A delimited group and everything inside it.
    Group(Group),
}

/// A delimited token group: `(…)`, `[…]`, or `{…}`.
#[derive(Debug)]
pub struct Group {
    /// Opening delimiter: `(`, `[`, or `{`.
    pub delim: char,
    /// Line of the opening delimiter.
    pub open_line: u32,
    /// Children, in source order.
    pub trees: Vec<Tree>,
}

impl Tree {
    /// The token, if this is a leaf.
    pub fn leaf(&self) -> Option<&Token> {
        match self {
            Tree::Leaf(t) => Some(t),
            Tree::Group(_) => None,
        }
    }

    /// The group, if this is one.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Group(g) => Some(g),
            Tree::Leaf(_) => None,
        }
    }

    /// Source line of this node (opening delimiter for groups).
    pub fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group(g) => g.open_line,
        }
    }
}

/// Why a file could not be tree-parsed (the driver then uses the lexer
/// fallback path for it). The fields feed test assertions and `{:?}`
/// diagnostics; the driver itself only needs the `Err` arm.
#[derive(Debug)]
#[allow(dead_code)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

/// A parsed source file: the tree forest plus the comment side channel.
#[derive(Debug)]
pub struct ParsedFile {
    pub trees: Vec<Tree>,
    pub allows: Vec<AllowDirective>,
}

/// Lex and tree-parse one file.
pub fn parse(src: &str) -> Result<ParsedFile, ParseError> {
    let lexed = lex(src);
    let mut pos = 0usize;
    let trees = parse_level(&lexed.tokens, &mut pos, None)?;
    if pos != lexed.tokens.len() {
        // Only reachable via a stray closer at the top level.
        let t = &lexed.tokens[pos];
        return Err(ParseError {
            line: t.line,
            message: format!("unmatched `{}`", t.text),
        });
    }
    Ok(ParsedFile {
        trees,
        allows: lexed.allows,
    })
}

fn closer_for(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

fn parse_level(
    tokens: &[Token],
    pos: &mut usize,
    expect_close: Option<char>,
) -> Result<Vec<Tree>, ParseError> {
    let mut out = Vec::new();
    while let Some(t) = tokens.get(*pos) {
        if t.kind == TokenKind::Punct && t.text.len() == 1 {
            let c = t.text.chars().next().unwrap_or(' ');
            if matches!(c, '(' | '[' | '{') {
                let open_line = t.line;
                *pos += 1;
                let trees = parse_level(tokens, pos, Some(closer_for(c)))?;
                out.push(Tree::Group(Group {
                    delim: c,
                    open_line,
                    trees,
                }));
                continue;
            }
            if matches!(c, ')' | ']' | '}') {
                if expect_close == Some(c) {
                    *pos += 1;
                    return Ok(out);
                }
                if expect_close.is_none() {
                    // Stray closer at top level: stop; caller reports it.
                    return Ok(out);
                }
                return Err(ParseError {
                    line: t.line,
                    message: format!("expected `{}` but found `{c}`", expect_close.unwrap_or('?')),
                });
            }
        }
        out.push(Tree::Leaf(t.clone()));
        *pos += 1;
    }
    match expect_close {
        None => Ok(out),
        Some(c) => Err(ParseError {
            line: tokens.last().map_or(0, |t| t.line),
            message: format!("unclosed delimiter; expected `{c}`"),
        }),
    }
}

/// Leaf identifier equality.
pub fn is_ident(t: &Tree, s: &str) -> bool {
    t.leaf()
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == s)
}

/// Leaf punctuation equality.
pub fn is_punct(t: &Tree, s: &str) -> bool {
    t.leaf()
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
}

/// The token at `level[i]`, if it is a leaf.
pub fn leaf_at<'a>(level: &'a [Tree], i: usize) -> Option<&'a Token> {
    level.get(i).and_then(Tree::leaf)
}

/// The group at `level[i]` if it is one with the given delimiter.
pub fn group_at<'a>(level: &'a [Tree], i: usize, delim: char) -> Option<&'a Group> {
    level
        .get(i)
        .and_then(Tree::group)
        .filter(|g| g.delim == delim)
}

/// Collect every leaf token under `trees`, depth-first (delimiters are not
/// reproduced). For containment queries like "does this argument list
/// mention `partial_cmp` anywhere".
pub fn flatten<'a>(trees: &'a [Tree], out: &mut Vec<&'a Token>) {
    for t in trees {
        match t {
            Tree::Leaf(tok) => out.push(tok),
            Tree::Group(g) => flatten(&g.trees, out),
        }
    }
}

/// Does any leaf under `trees` equal the identifier `name`?
pub fn contains_ident(trees: &[Tree], name: &str) -> bool {
    trees.iter().any(|t| match t {
        Tree::Leaf(tok) => tok.kind == TokenKind::Ident && tok.text == name,
        Tree::Group(g) => contains_ident(&g.trees, name),
    })
}

/// Per-child test-ness for one sibling level.
///
/// A `#[test]`-family attribute (any attribute whose tokens mention the
/// identifier `test`: `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`,
/// `#[tokio::test]`) covers the trees that follow it up to and including
/// the item's braced body, or up to a terminating `;` for body-less items.
/// An inherited `true` covers the whole level.
pub fn child_test_flags(level: &[Tree], inherited: bool) -> Vec<bool> {
    let mut flags = vec![inherited; level.len()];
    if inherited {
        return flags;
    }
    let mut pending = false;
    let mut i = 0;
    while i < level.len() {
        if is_punct(&level[i], "#") {
            if let Some(g) = group_at(level, i + 1, '[') {
                if contains_ident(&g.trees, "test") {
                    pending = true;
                }
                i += 2;
                continue;
            }
        }
        if pending {
            flags[i] = true;
            let closes_item = match &level[i] {
                Tree::Group(g) => g.delim == '{',
                Tree::Leaf(t) => t.kind == TokenKind::Punct && t.text == ";",
            };
            if closes_item {
                pending = false;
            }
        }
        i += 1;
    }
    flags
}

/// Visit every sibling level of the forest, with the test-ness the level
/// inherits from the attributes above it. `f` receives the level slice and
/// whether it is (transitively) test-gated.
pub fn walk_levels<'a, F: FnMut(&'a [Tree], bool)>(trees: &'a [Tree], in_test: bool, f: &mut F) {
    f(trees, in_test);
    let flags = child_test_flags(trees, in_test);
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            walk_levels(&g.trees, flags[i], f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_nest_and_keep_lines() {
        let p = parse("fn f(a: u32) {\n    g(a, [1, 2]);\n}\n").expect("parses");
        // Top level: fn, f, (…), {…}
        assert!(is_ident(&p.trees[0], "fn"));
        assert!(is_ident(&p.trees[1], "f"));
        let args = p.trees[2].group().expect("arg group");
        assert_eq!(args.delim, '(');
        assert_eq!(args.open_line, 1);
        let body = p.trees[3].group().expect("body group");
        assert_eq!(body.delim, '{');
        let call_args = body
            .trees
            .iter()
            .find_map(Tree::group)
            .expect("call arg group");
        assert_eq!(call_args.open_line, 2);
        assert!(call_args.trees.iter().any(|t| t.group().is_some()));
    }

    #[test]
    fn unbalanced_is_a_parse_error() {
        assert!(parse("fn f() { let x = (1; }").is_err());
        assert!(parse("fn f() { }").is_ok());
        assert!(parse("fn f() { } }").is_err());
    }

    #[test]
    fn test_attr_covers_following_item_only() {
        let p = parse(
            "fn live() {}\n\
             #[cfg(test)]\nmod tests {\n fn helper() {}\n}\n\
             fn also_live() {}\n",
        )
        .expect("parses");
        let flags = child_test_flags(&p.trees, false);
        // `fn live ( ) { }` → not test; the mod body group is test.
        let mod_body = p
            .trees
            .iter()
            .position(|t| {
                t.group()
                    .is_some_and(|g| g.delim == '{' && !g.trees.is_empty())
            })
            .expect("mod body present");
        assert!(flags[mod_body], "cfg(test) mod body must be test-gated");
        assert!(!flags[0], "plain fn before the attr is not test code");
        let last = p.trees.len() - 1;
        assert!(!flags[last], "item after the gated mod is not test code");
    }

    #[test]
    fn semicolon_item_clears_pending_attr() {
        let p = parse("#[cfg(test)]\nuse std::fmt;\nfn live() {}\n").expect("parses");
        let flags = child_test_flags(&p.trees, false);
        let body = p
            .trees
            .iter()
            .position(|t| t.group().is_some_and(|g| g.delim == '{'))
            .expect("fn body");
        assert!(!flags[body], "attr must not leak past the `;` item");
    }

    #[test]
    fn strings_with_delimiters_do_not_confuse_nesting() {
        let p = parse("fn f() { let s = \"unbalanced ( [ {\"; }").expect("parses");
        assert_eq!(p.trees.len(), 4);
    }
}
