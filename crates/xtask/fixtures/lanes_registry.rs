//! simlint fixture: a lane registry with one dead lane, linted as if it
//! were `crates/simcore/src/rng.rs`. Analyzed together with `rng_lane.rs`
//! (the call-site half of the `rng-lane` checks).

pub mod lanes {
    /// Referenced by `rng_lane.rs` — stays clean.
    pub const ALPHA: &str = "alpha";
    /// Registered but never passed to a stream call: dead lane.
    pub const DEAD: &str = "dead-lane";

    /// Every registered lane.
    pub const ALL: &[&str] = &[ALPHA, DEAD];
}
