//! The combined packing model: Eqs. 3 and 4 of the paper.
//!
//! [`PackingModel`] joins the fitted interference model (Eq. 1), the fitted
//! scaling model (Eq. 2), and the platform's price sheet into closed-form
//! predictors of **service time** and **expense** at any packing degree —
//! which is what lets ProPack pick the optimal degree *analytically*,
//! without running the application at every degree or at high concurrency
//! (§2.2: "without needing to run the application at every packing degree
//! or at high concurrency levels").

use crate::interference::InterferenceModel;
use crate::scaling::ScalingModel;
use propack_platform::billing::{PACKED_EGRESS_RESIDUAL, WARM_REUSE_STORAGE_DISCOUNT};
use propack_platform::profile::PriceSheet;
use propack_platform::warmpool::PoolSnapshot;
use propack_platform::WorkProfile;
use propack_stats::percentile::Percentile;
use serde::{Deserialize, Serialize};

/// Price-sheet constants folded into per-instance / per-function terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostFactors {
    /// `R`: USD per second of one executing instance (instances are
    /// configured at the platform's maximum memory, §3, so `R` is constant
    /// across packing degrees — the assumption behind Eq. 4).
    pub usd_per_instance_sec: f64,
    /// Invocation fee per instance.
    pub usd_per_instance: f64,
    /// Storage fees per function (independent of packing).
    pub usd_per_function_storage: f64,
    /// Network fee per function when unpacked.
    pub usd_per_function_network: f64,
    /// Network fee per function when packed (most traffic stays local).
    pub usd_per_function_network_packed: f64,
}

impl CostFactors {
    /// Derive the factors from a platform price sheet and a work profile.
    pub fn derive(prices: &PriceSheet, work: &WorkProfile, billed_mem_gb: f64) -> Self {
        CostFactors {
            usd_per_instance_sec: billed_mem_gb * prices.usd_per_gb_sec,
            usd_per_instance: prices.usd_per_request,
            usd_per_function_storage: work.storage_requests as f64 * prices.usd_per_storage_request
                + work.storage_gb * prices.usd_per_storage_gb,
            usd_per_function_network: work.network_gb * prices.usd_per_network_gb,
            usd_per_function_network_packed: work.network_gb
                * PACKED_EGRESS_RESIDUAL
                * prices.usd_per_network_gb,
        }
    }
}

/// Model prediction at one packing degree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreePrediction {
    /// The packing degree.
    pub packing_degree: u32,
    /// Predicted instance execution time (Eq. 1).
    pub exec_secs: f64,
    /// Predicted service time (Eq. 3) at the requested figure of merit.
    pub service_secs: f64,
    /// Predicted expense (Eq. 4 + request/storage/network terms).
    pub expense_usd: f64,
}

/// The complete analytical model for one application on one platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackingModel {
    /// Fitted Eq. 1.
    pub interference: InterferenceModel,
    /// Fitted Eq. 2 (application-independent, reused across apps).
    pub scaling: ScalingModel,
    /// Billing constants.
    pub cost: CostFactors,
    /// Maximum feasible packing degree (memory cap, possibly tightened by
    /// the execution-time cap discovered during profiling — §2.1's QoS
    /// remark).
    pub p_max: u32,
}

impl PackingModel {
    /// Effective instance count for original concurrency `c` at degree `p`:
    /// `C_eff = ceil(C / P)`.
    pub fn instances(&self, c: u32, p: u32) -> u32 {
        c.div_ceil(p.max(1))
    }

    /// Eq. 1: predicted execution time at degree `p`.
    pub fn exec_secs(&self, p: u32) -> f64 {
        self.interference.exec_secs(p)
    }

    /// Eq. 3's argument: predicted service time at concurrency `c`, degree
    /// `p`, for the given figure of merit (total / tail / median — §3).
    ///
    /// When `p ∤ c` the last instance holds only `c mod p` functions and
    /// therefore runs *faster* than the full ones (less interference), so
    /// the execution term is governed by the slowest instance class: a full
    /// instance whenever one exists, the partial instance only when the
    /// whole burst fits in it (`c < p`).
    pub fn service_secs(&self, c: u32, p: u32, metric: Percentile) -> f64 {
        let c_eff = self.instances(c, p) as f64;
        let slowest = p.max(1).min(c.max(1));
        self.exec_secs(slowest) + self.scaling.scaling_secs_quantile(c_eff, metric.quantile())
    }

    /// Eq. 4's argument (extended with the request, storage, and network
    /// terms the real bill contains): predicted expense at concurrency `c`
    /// and degree `p`.
    ///
    /// Eq. 4 bills all `⌈C/P⌉` instances at the full-degree execution time,
    /// over-approximating whenever `p ∤ c`: the last instance holds only
    /// `c mod p` functions, suffers their (smaller) interference, and bills
    /// for that shorter run. This predictor bills the partial instance at
    /// its actual occupancy, matching the simulator's per-instance bill.
    pub fn expense_usd(&self, c: u32, p: u32) -> f64 {
        let p = p.max(1);
        let full = (c / p) as f64;
        let rem = c % p;
        let functions = c as f64;
        let network = if p > 1 {
            self.cost.usd_per_function_network_packed
        } else {
            self.cost.usd_per_function_network
        };
        let mut compute = full * self.exec_secs(p) * self.cost.usd_per_instance_sec;
        if rem > 0 {
            compute += self.exec_secs(rem) * self.cost.usd_per_instance_sec;
        }
        compute
            + self.instances(c, p) as f64 * self.cost.usd_per_instance
            + functions * (self.cost.usd_per_function_storage + network)
    }

    /// How many of the `⌈C/P⌉` instances each provisioning path serves at
    /// degree `p` given the pool state: `(warm, shared, cold)`. Warm
    /// same-function containers are consumed first, then Pagurus donors,
    /// exactly mirroring `WarmPool::acquire`.
    fn pool_split(&self, c: u32, p: u32, pool: &PoolSnapshot) -> (u32, u32, u32) {
        let n = self.instances(c, p);
        let warm = pool.warm_available.min(n);
        let shared = pool.shared_available.min(n - warm);
        (warm, shared, n - warm - shared)
    }

    /// Warm-state-aware Eq. 3: predicted service time when the first
    /// `warm + shared` instances are served from a keep-alive pool.
    ///
    /// This is where the fitted model's *fixed-cost term becomes a function
    /// of pool state*: only the cold instances pay the linear
    /// build/ship/provision terms of Eq. 2, while pooled instances start
    /// after their warm/re-specialization latency. Crucially, **every**
    /// placement — pooled or cold — still waits its turn behind the central
    /// scheduler. That queue share has two pieces:
    ///
    /// * the fitted quadratic congestion term
    ///   ([`ScalingModel::queue_secs`], `β₁·k²` of Eq. 2), and
    /// * the linear per-placement scheduler latency reported by the
    ///   platform ([`PoolSnapshot::sched_secs_per_placement`]). The ladder
    ///   fit cannot supply this one: `β₁` recovers only the
    ///   inflight-congestion coefficient (≈ `sched_per_inflight / 2`),
    ///   while the per-placement base cost is conflated into `β₂` together
    ///   with the build/ship pipeline that warm starts legitimately skip.
    ///   Dropping the whole `β₂·k` for pooled instances therefore also
    ///   dropped their scheduler share, so an all-warm burst looked like it
    ///   started in near-constant time at any size, which drove the
    ///   service-objective planner to P = 1 on hot days (more instances →
    ///   more warm grants → "free" starts) even though the realized
    ///   placement queue grows linearly-plus-quadratically in the instance
    ///   count.
    ///
    /// Pooled instances are charged both pieces on top of the grant
    /// latency, and the cold tail (scheduled after the pooled head,
    /// mirroring `WarmPool::acquire` order) pays the queue delay of the
    /// *whole* burst, not just of its own cold segment.
    ///
    /// With a cold snapshot ([`PoolSnapshot::cold`]) this reduces exactly
    /// to [`PackingModel::service_secs`]: the pooled head is empty, the
    /// cold tail's extra queue delay is identically zero, and a cold
    /// snapshot carries `sched_secs_per_placement = 0` (the cold path's
    /// scheduler cost already lives inside the fitted `β₂`).
    pub fn service_secs_pooled(
        &self,
        c: u32,
        p: u32,
        metric: Percentile,
        pool: &PoolSnapshot,
    ) -> f64 {
        let (warm, shared, cold) = self.pool_split(c, p, pool);
        let slowest = p.max(1).min(c.max(1));
        let n = f64::from(self.instances(c, p));
        let pooled = f64::from(warm + shared);
        let q = metric.quantile();
        let grant = if shared > 0 {
            pool.respecialize_secs
        } else if warm > 0 {
            pool.warm_start_secs
        } else {
            0.0
        };
        let sched = pool.sched_secs_per_placement;
        let warm_tail = if pooled > 0.0 {
            self.scaling.queue_secs_quantile(pooled, q) + sched * pooled * q + grant
        } else {
            0.0
        };
        let start_tail = if cold > 0 {
            let cold_tail = self
                .scaling
                .scaling_secs_quantile(f64::from(cold), metric.quantile())
                + (self.scaling.queue_secs_quantile(n, q)
                    - self.scaling.queue_secs_quantile(f64::from(cold), q))
                + sched * (n - f64::from(cold)) * q;
            cold_tail.max(warm_tail)
        } else {
            warm_tail
        };
        self.exec_secs(slowest) + start_tail
    }

    /// Warm-state-aware Eq. 4: predicted expense minus the storage credit
    /// earned by same-function warm starts (the planner-side mirror of
    /// `propack_platform::billing::warm_reuse_credit`). Re-specialized
    /// donors restage dependencies and earn nothing. With a cold snapshot
    /// this reduces exactly to [`PackingModel::expense_usd`].
    pub fn expense_usd_pooled(&self, c: u32, p: u32, pool: &PoolSnapshot) -> f64 {
        let (warm, _, _) = self.pool_split(c, p, pool);
        let n = self.instances(c, p);
        let base = self.expense_usd(c, p);
        if warm == 0 || n == 0 {
            return base;
        }
        let storage_usd = c as f64 * self.cost.usd_per_function_storage;
        base - storage_usd * WARM_REUSE_STORAGE_DISCOUNT * (f64::from(warm) / f64::from(n))
    }

    /// Predictions for every feasible degree `1..=p_max`.
    pub fn sweep(&self, c: u32, metric: Percentile) -> Vec<DegreePrediction> {
        (1..=self.p_max.max(1))
            .map(|p| DegreePrediction {
                packing_degree: p,
                exec_secs: self.exec_secs(p),
                service_secs: self.service_secs(c, p, metric),
                expense_usd: self.expense_usd(c, p),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_platform::profile::PlatformProfile;

    /// A hand-built model with the paper's calibration magnitudes.
    pub(crate) fn paper_like_model() -> PackingModel {
        PackingModel {
            interference: InterferenceModel {
                base: 100.0 / (0.05f64).exp(), // ET(1) = 100 s
                rate: 0.05,
                mem_gb: 0.25,
                rmse: 0.0,
            },
            scaling: ScalingModel {
                beta1: 3.0e-5,
                beta2: 0.045,
                beta3: 2.0,
                r_squared: 1.0,
            },
            cost: CostFactors::derive(
                &PlatformProfile::aws_lambda().prices,
                &WorkProfile::synthetic("w", 0.25, 100.0),
                10.0,
            ),
            p_max: 40,
        }
    }

    #[test]
    fn instances_is_ceiling_division() {
        let m = paper_like_model();
        assert_eq!(m.instances(1000, 1), 1000);
        assert_eq!(m.instances(1000, 7), 143);
        assert_eq!(m.instances(1000, 40), 25);
    }

    #[test]
    fn service_time_tradeoff_exists() {
        // At C = 5000, degree 1 pays huge scaling; a packed degree is far
        // better; the maximum degree over-packs (execution blows up
        // relative to the scaling saved).
        let m = paper_like_model();
        let s1 = m.service_secs(5000, 1, Percentile::Total);
        let s10 = m.service_secs(5000, 10, Percentile::Total);
        assert!(
            s10 < 0.4 * s1,
            "packing must cut service time: {s1} → {s10}"
        );
        // And the curve turns back up by the memory cap.
        let s40 = m.service_secs(5000, 40, Percentile::Total);
        assert!(s40 > s10, "over-packing must cost: {s10} vs {s40}");
    }

    #[test]
    fn expense_nonmonotone_in_degree() {
        // Fig. 7: expense falls, bottoms out at P ≈ 1/rate = 20, then
        // rises again.
        let m = paper_like_model();
        let e1 = m.expense_usd(1000, 1);
        let e20 = m.expense_usd(1000, 20);
        let e40 = m.expense_usd(1000, 40);
        assert!(e20 < e1);
        assert!(e40 > e20, "expense must turn back up: {e20} vs {e40}");
    }

    #[test]
    fn remainder_instance_billed_at_actual_occupancy() {
        // C = 10, P = 4 → two full instances (4 functions each) and one
        // partial instance holding 10 mod 4 = 2. The partial instance runs
        // and bills at the 2-function interference level, not the
        // 4-function one Eq. 4 would over-approximate with.
        let m = paper_like_model();
        let r = m.cost.usd_per_instance_sec;
        let want = (2.0 * m.exec_secs(4) + m.exec_secs(2)) * r
            + 3.0 * m.cost.usd_per_instance
            + 10.0 * (m.cost.usd_per_function_storage + m.cost.usd_per_function_network_packed);
        let got = m.expense_usd(10, 4);
        assert!(
            (got - want).abs() < 1e-12,
            "expense C=10 P=4: got {got}, want {want}"
        );
        // The old all-full-instances bill is strictly larger.
        let over = 3.0 * m.exec_secs(4) * r
            + 3.0 * m.cost.usd_per_instance
            + 10.0 * (m.cost.usd_per_function_storage + m.cost.usd_per_function_network_packed);
        assert!(got < over);
        // Even division has no partial instance and is unchanged.
        let even = m.expense_usd(8, 4);
        let even_want = 2.0 * m.exec_secs(4) * r
            + 2.0 * m.cost.usd_per_instance
            + 8.0 * (m.cost.usd_per_function_storage + m.cost.usd_per_function_network_packed);
        assert!((even - even_want).abs() < 1e-12);
    }

    #[test]
    fn service_time_tracks_slowest_instance_class() {
        let m = paper_like_model();
        // A full instance exists (C = 10 > P = 4): the slower full
        // instances set the makespan, so the partial one changes nothing.
        assert_eq!(
            m.service_secs(10, 4, Percentile::Total),
            m.service_secs(8, 4, Percentile::Total) - m.scaling.scaling_secs_quantile(2.0, 1.0)
                + m.scaling.scaling_secs_quantile(3.0, 1.0)
        );
        // The whole burst fits in one partial instance (C = 3 < P = 8):
        // only 3 functions interfere.
        let s = m.service_secs(3, 8, Percentile::Total);
        let want = m.exec_secs(3) + m.scaling.scaling_secs_quantile(1.0, 1.0);
        assert!((s - want).abs() < 1e-12);
        assert!(s < m.exec_secs(8) + m.scaling.scaling_secs_quantile(1.0, 1.0));
    }

    #[test]
    fn expense_ignores_scaling_time() {
        // Two models that differ only in scaling coefficients bill
        // identically — queue wait is never billed (§2.3).
        let mut a = paper_like_model();
        let mut b = paper_like_model();
        a.scaling.beta1 = 1e-3;
        b.scaling.beta1 = 1e-9;
        assert_eq!(a.expense_usd(2000, 5), b.expense_usd(2000, 5));
    }

    #[test]
    fn metric_ordering() {
        let m = paper_like_model();
        let total = m.service_secs(3000, 4, Percentile::Total);
        let tail = m.service_secs(3000, 4, Percentile::Tail95);
        let med = m.service_secs(3000, 4, Percentile::Median);
        assert!(total >= tail && tail >= med);
    }

    #[test]
    fn sweep_covers_all_degrees() {
        let m = paper_like_model();
        let sweep = m.sweep(1000, Percentile::Total);
        assert_eq!(sweep.len(), 40);
        assert_eq!(sweep[0].packing_degree, 1);
        assert_eq!(sweep[39].packing_degree, 40);
    }

    #[test]
    fn cold_snapshot_reduces_to_unpooled_predictors() {
        let m = paper_like_model();
        let cold = PoolSnapshot::cold();
        for c in [50u32, 1000, 5000] {
            for p in [1u32, 4, 20, 40] {
                assert_eq!(
                    m.service_secs_pooled(c, p, Percentile::Total, &cold),
                    m.service_secs(c, p, Percentile::Total),
                    "service c={c} p={p}"
                );
                assert_eq!(
                    m.expense_usd_pooled(c, p, &cold),
                    m.expense_usd(c, p),
                    "expense c={c} p={p}"
                );
            }
        }
    }

    #[test]
    fn warm_pool_cuts_predicted_service_and_expense() {
        let mut m = paper_like_model();
        // The storage credit needs a workload that actually bills storage.
        m.cost = CostFactors::derive(
            &PlatformProfile::aws_lambda().prices,
            &WorkProfile::synthetic("w", 0.25, 100.0).with_storage(0.01, 4),
            10.0,
        );
        let pool = PoolSnapshot {
            warm_available: 500,
            shared_available: 0,
            ..PoolSnapshot::cold()
        };
        let c = 2000;
        let p = 4;
        // 500 warm instances absorb the head of the burst: only the cold
        // remainder pays scaling, and each warm one earns a storage credit.
        assert!(
            m.service_secs_pooled(c, p, Percentile::Total, &pool)
                < m.service_secs(c, p, Percentile::Total)
        );
        assert!(m.expense_usd_pooled(c, p, &pool) < m.expense_usd(c, p));
        // A fully-warm burst pays its placement-queue share plus the
        // warm-start latency — not the cold build/ship/provision terms.
        let all_warm = PoolSnapshot {
            warm_available: 5000,
            shared_available: 0,
            ..PoolSnapshot::cold()
        };
        let s = m.service_secs_pooled(c, p, Percentile::Total, &all_warm);
        let n = f64::from(m.instances(c, p));
        let want = m.exec_secs(p) + m.scaling.queue_secs(n) + all_warm.warm_start_secs;
        assert!((s - want).abs() < 1e-12, "got {s}, want {want}");
    }

    #[test]
    fn warm_head_still_pays_the_placement_queue() {
        // The headline regression: an all-warm burst must not look like it
        // starts in near-constant time at any size. The queue share grows
        // quadratically with the instance count, so unpacking (P = 1, five
        // times the instances of P = 5) must cost more queue than it saves
        // in grant latency.
        let m = paper_like_model();
        let all_warm = PoolSnapshot {
            warm_available: u32::MAX,
            shared_available: 0,
            ..PoolSnapshot::cold()
        };
        let c = 5000;
        let s1 = m.service_secs_pooled(c, 1, Percentile::Total, &all_warm);
        let s5 = m.service_secs_pooled(c, 5, Percentile::Total, &all_warm);
        assert!(
            s1 > s5,
            "queue-blind all-warm predictor resurfaced: P=1 {s1} vs P=5 {s5}"
        );
        // And the queue share scales with the P = 1 instance count.
        assert!(s1 > m.scaling.queue_secs(f64::from(c)));
    }

    #[test]
    fn warm_head_pays_the_linear_scheduler_share_too() {
        // The quadratic β₁·k² term alone is not enough on platforms where
        // the fitted β₁ is tiny (a wide ladder fit recovers the true
        // congestion coefficient, ~1e-5): the per-placement scheduler base
        // cost lives in β₂ and must be re-charged to warm starts from the
        // platform-reported rate.
        let m = paper_like_model();
        let sched = 0.2;
        let all_warm = PoolSnapshot {
            warm_available: u32::MAX,
            sched_secs_per_placement: sched,
            ..PoolSnapshot::cold()
        };
        let c = 2000;
        let p = 4;
        let s = m.service_secs_pooled(c, p, Percentile::Total, &all_warm);
        let n = f64::from(m.instances(c, p));
        let want = m.exec_secs(p) + m.scaling.queue_secs(n) + sched * n + all_warm.warm_start_secs;
        assert!((s - want).abs() < 1e-12, "got {s}, want {want}");
        // With no pooled instances the rate is inert: the cold path's
        // scheduler cost is already inside the fitted β₂.
        let empty = PoolSnapshot {
            sched_secs_per_placement: sched,
            ..PoolSnapshot::cold()
        };
        for deg in [1, 2, 4, 8] {
            assert_eq!(
                m.service_secs_pooled(c, deg, Percentile::Total, &empty),
                m.service_secs(c, deg, Percentile::Total),
                "p={deg}"
            );
        }
    }

    #[test]
    fn shared_donors_cut_service_but_not_storage() {
        let m = paper_like_model();
        let shared_only = PoolSnapshot {
            warm_available: 0,
            shared_available: 5000,
            ..PoolSnapshot::cold()
        };
        let c = 2000;
        let p = 4;
        let s = m.service_secs_pooled(c, p, Percentile::Total, &shared_only);
        let n = f64::from(m.instances(c, p));
        let want = m.exec_secs(p) + m.scaling.queue_secs(n) + shared_only.respecialize_secs;
        assert!((s - want).abs() < 1e-12, "got {s}, want {want}");
        // Re-specialization restages dependencies: no storage credit.
        assert_eq!(
            m.expense_usd_pooled(c, p, &shared_only),
            m.expense_usd(c, p)
        );
    }

    #[test]
    fn cost_factors_reflect_platform_differences() {
        let w = WorkProfile::synthetic("w", 0.25, 100.0).with_network(0.05);
        let aws = CostFactors::derive(&PlatformProfile::aws_lambda().prices, &w, 10.0);
        let gcf = CostFactors::derive(&PlatformProfile::google_cloud_functions().prices, &w, 8.0);
        assert_eq!(aws.usd_per_function_network, 0.0);
        assert!(gcf.usd_per_function_network > 0.0);
        assert!(gcf.usd_per_function_network_packed < gcf.usd_per_function_network);
    }
}
