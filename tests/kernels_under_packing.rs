//! Real-kernel correctness under packed (threaded) execution: the §2.6
//! realization must be transparent to application results.

use propack_repro::executor::PackedExecutor;
use propack_repro::workloads::Benchmarks;

#[test]
fn every_kernel_computes_identical_results_packed_and_solo() {
    let ex = PackedExecutor::new(3);
    for bench in Benchmarks::all() {
        let packed = ex.run_pack(bench.as_ref(), 5, 1000);
        assert_eq!(packed.outputs.len(), 5, "{}", bench.name());
        for (i, out) in packed.outputs.iter().enumerate() {
            let solo = bench.run_once(1000 + i as u64);
            assert_eq!(
                *out,
                solo,
                "{}: function {i} diverged under threaded packing",
                bench.name()
            );
        }
    }
}

#[test]
fn packed_runs_are_repeatable() {
    let ex = PackedExecutor::new(2);
    for bench in Benchmarks::all() {
        let a = ex.run_pack(bench.as_ref(), 4, 7);
        let b = ex.run_pack(bench.as_ref(), 4, 7);
        assert_eq!(a.outputs, b.outputs, "{}", bench.name());
    }
}

#[test]
fn distinct_seeds_produce_distinct_work() {
    let ex = PackedExecutor::new(4);
    for bench in Benchmarks::all() {
        let run = ex.run_pack(bench.as_ref(), 6, 31);
        let mut checksums: Vec<u64> = run.outputs.iter().map(|o| o.checksum).collect();
        checksums.sort_unstable();
        checksums.dedup();
        assert_eq!(
            checksums.len(),
            6,
            "{}: checksum collision across seeds",
            bench.name()
        );
    }
}
