//! simlint fixture: lossy `as` casts on sim-time/seed arithmetic
//! (2 violations). Narrow casts of values derived from time or seed
//! identifiers silently truncate; counts and ratios without such operands
//! are out of scope.

pub fn epochs(horizon_secs: f64, epoch_secs: f64) -> u32 {
    // Sim-time ratio truncated to 32 bits: flagged.
    (horizon_secs / epoch_secs).ceil() as u32
}

pub fn fold(seed: u64) -> u16 {
    // Seed arithmetic truncated: flagged.
    (seed >> 48) as u16
}

pub fn fine(count: usize, ratio: f64) -> u32 {
    // Widening and non-time/seed operands: clean.
    let scaled = (count as f64 * ratio) as u64;
    scaled.min(4_000_000_000) as u32
}

pub fn widened(tick_nanos: u64) -> u128 {
    // Widening cast: clean.
    tick_nanos as u128
}

// simlint: allow(as-truncation): "fixture: epoch count bounded by horizon validation upstream"
pub fn allowed(horizon_secs: f64) -> u32 { horizon_secs as u32 }
