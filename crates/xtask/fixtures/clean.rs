//! simlint fixture: code that satisfies every rule in every crate scope.
use std::collections::BTreeMap;

pub fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

pub fn first_or_zero(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}
