//! The keep-alive axis: named warm-pool policies for a grid.
//!
//! A [`KeepAliveScenario`] names a [`KeepAlivePolicy`] for a sweep, the
//! same way [`crate::FaultScenario`] names a fault/retry configuration.
//! Every sweep has this axis; the default single value is
//! [`KeepAliveScenario::cold`], which disables the pool entirely and
//! reproduces pre-pool sweep output byte-for-byte — a cold scenario never
//! constructs a [`propack_platform::WarmPool`], takes no RNG lane draws,
//! and leaves cell keys and rendered lines unchanged.
//!
//! The textual grammar understood by [`KeepAliveScenario::parse`] is what
//! the CLI's `--keepalive` flag accepts:
//!
//! ```text
//! cold                    no pool (the default)
//! fixed:60                fixed 60 s idle TTL
//! histogram               Serverless-in-the-Wild hybrid histogram policy
//! histogram:60,0.99,480   ...with explicit bin width, percentile, max TTL
//! pagurus                 Pagurus standby-donor sharing, default TTL
//! pagurus:120             ...with an explicit own-function idle TTL
//! ```
//!
//! Keep-alive only pays off across *successive* bursts, so the axis shows
//! its effect on replay cells, whose pool persists across epochs. Classic
//! single-burst cells run through the same pooled pipeline but start each
//! cell from an empty pool: their numbers match the cold scenario exactly,
//! and only the cell key records the policy.

use propack_platform::KeepAlivePolicy;

use crate::spec::SweepError;

/// Default histogram bin width, seconds (`histogram` without parameters).
pub const DEFAULT_HISTOGRAM_BIN_SECS: f64 = 60.0;
/// Default fraction of observed idle times the window must cover.
pub const DEFAULT_HISTOGRAM_PERCENTILE: f64 = 0.99;
/// Default upper bound on the histogram keep-alive window, seconds.
pub const DEFAULT_HISTOGRAM_MAX_TTL: f64 = 480.0;
/// Default own-function idle TTL for `pagurus` without parameters, seconds.
pub const DEFAULT_PAGURUS_TTL: f64 = 60.0;

/// One point on the keep-alive axis.
#[derive(Debug, Clone, PartialEq)]
pub struct KeepAliveScenario {
    /// Stable label used in cell keys and rendered output.
    pub label: String,
    /// The warm-pool policy this scenario applies.
    pub policy: KeepAlivePolicy,
}

impl KeepAliveScenario {
    /// The pool-free scenario — the axis default, byte-identical to
    /// pre-pool sweep output.
    pub fn cold() -> Self {
        KeepAliveScenario {
            label: "cold".to_string(),
            policy: KeepAlivePolicy::ColdAlways,
        }
    }

    /// An explicit scenario under a caller-chosen label.
    pub fn explicit(label: impl Into<String>, policy: KeepAlivePolicy) -> Self {
        KeepAliveScenario {
            label: label.into(),
            policy,
        }
    }

    /// Whether this scenario runs without a pool.
    pub fn is_cold(&self) -> bool {
        matches!(self.policy, KeepAlivePolicy::ColdAlways)
    }

    /// Check the scenario describes a valid policy.
    pub fn validate(&self) -> Result<(), SweepError> {
        let ok = match self.policy {
            KeepAlivePolicy::ColdAlways => true,
            KeepAlivePolicy::FixedKeepAlive { idle_ttl }
            | KeepAlivePolicy::PagurusShare { idle_ttl } => idle_ttl > 0.0,
            KeepAlivePolicy::HybridHistogram {
                bin_secs,
                keep_percentile,
                max_ttl,
                // `max_ttl >= bin_secs`: a cap below one bin width means the
                // histogram can never keep a container for even its smallest
                // observable idle bucket — a nonsensical policy that would
                // silently behave like `cold`.
            } => bin_secs > 0.0 && (0.0..=1.0).contains(&keep_percentile) && max_ttl >= bin_secs,
        };
        if ok {
            Ok(())
        } else {
            Err(SweepError::InvalidValue {
                what: "keep-alive scenario",
                value: format!("{}: {:?}", self.label, self.policy),
            })
        }
    }

    /// Parse the `--keepalive` grammar (see module docs). The normalized
    /// input (whitespace stripped) becomes the scenario label.
    pub fn parse(input: &str) -> Result<KeepAliveScenario, SweepError> {
        let label: String = input.chars().filter(|c| !c.is_whitespace()).collect();
        let (kind, params) = match label.split_once(':') {
            Some((kind, params)) => (kind, Some(params)),
            None => (label.as_str(), None),
        };
        let policy = match (kind, params) {
            ("", _) => return Err(invalid(input, "empty scenario")),
            ("cold", None) => KeepAlivePolicy::ColdAlways,
            ("cold", Some(_)) => return Err(invalid(&label, "cold takes no parameters")),
            ("fixed", Some(ttl)) => KeepAlivePolicy::FixedKeepAlive {
                idle_ttl: seconds(&label, ttl)?,
            },
            ("fixed", None) => return Err(invalid(&label, "expected fixed:<secs>")),
            ("histogram", None) => KeepAlivePolicy::HybridHistogram {
                bin_secs: DEFAULT_HISTOGRAM_BIN_SECS,
                keep_percentile: DEFAULT_HISTOGRAM_PERCENTILE,
                max_ttl: DEFAULT_HISTOGRAM_MAX_TTL,
            },
            ("histogram", Some(params)) => {
                let parts: Vec<&str> = params.split(',').collect();
                if parts.len() != 3 {
                    return Err(invalid(&label, "expected histogram:<bin>,<pct>,<max-ttl>"));
                }
                let bin_secs = seconds(&label, parts[0])?;
                let keep_percentile = fraction(&label, parts[1])?;
                let max_ttl = seconds(&label, parts[2])?;
                if max_ttl < bin_secs {
                    return Err(invalid(
                        &label,
                        "max-ttl must be at least the bin width; a cap below \
                         one bin can never keep a container",
                    ));
                }
                KeepAlivePolicy::HybridHistogram {
                    bin_secs,
                    keep_percentile,
                    max_ttl,
                }
            }
            ("pagurus", None) => KeepAlivePolicy::PagurusShare {
                idle_ttl: DEFAULT_PAGURUS_TTL,
            },
            ("pagurus", Some(ttl)) => KeepAlivePolicy::PagurusShare {
                idle_ttl: seconds(&label, ttl)?,
            },
            _ => return Err(invalid(&label, "unknown policy")),
        };
        let scenario = KeepAliveScenario { label, policy };
        scenario.validate()?;
        Ok(scenario)
    }
}

impl Default for KeepAliveScenario {
    fn default() -> Self {
        KeepAliveScenario::cold()
    }
}

fn invalid(part: &str, why: &str) -> SweepError {
    SweepError::InvalidValue {
        what: "keep-alive scenario",
        value: format!("`{part}` ({why})"),
    }
}

fn seconds(part: &str, value: &str) -> Result<f64, SweepError> {
    match value.parse::<f64>() {
        Ok(v) if v.is_finite() && v > 0.0 => Ok(v),
        _ => Err(invalid(part, "not a positive number of seconds")),
    }
}

fn fraction(part: &str, value: &str) -> Result<f64, SweepError> {
    match value.parse::<f64>() {
        Ok(v) if (0.0..=1.0).contains(&v) => Ok(v),
        _ => Err(invalid(part, "not a fraction in [0, 1]")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_is_the_default_and_a_keyword() {
        let cold = KeepAliveScenario::parse("cold").unwrap();
        assert!(cold.is_cold());
        assert_eq!(cold, KeepAliveScenario::default());
        assert_eq!(cold.label, "cold");
    }

    #[test]
    fn the_grammar_round_trips_labels_and_policies() {
        let fixed = KeepAliveScenario::parse("fixed:60").unwrap();
        assert_eq!(fixed.label, "fixed:60");
        assert_eq!(
            fixed.policy,
            KeepAlivePolicy::FixedKeepAlive { idle_ttl: 60.0 }
        );
        assert_eq!(fixed.policy.label(), "fixed:60");

        let hist = KeepAliveScenario::parse("histogram").unwrap();
        assert_eq!(
            hist.policy,
            KeepAlivePolicy::HybridHistogram {
                bin_secs: DEFAULT_HISTOGRAM_BIN_SECS,
                keep_percentile: DEFAULT_HISTOGRAM_PERCENTILE,
                max_ttl: DEFAULT_HISTOGRAM_MAX_TTL,
            }
        );
        let hist = KeepAliveScenario::parse("histogram: 30, 0.95, 300").unwrap();
        assert_eq!(hist.label, "histogram:30,0.95,300");
        assert_eq!(
            hist.policy,
            KeepAlivePolicy::HybridHistogram {
                bin_secs: 30.0,
                keep_percentile: 0.95,
                max_ttl: 300.0,
            }
        );

        let pagurus = KeepAliveScenario::parse("pagurus").unwrap();
        assert_eq!(
            pagurus.policy,
            KeepAlivePolicy::PagurusShare {
                idle_ttl: DEFAULT_PAGURUS_TTL
            }
        );
        let pagurus = KeepAliveScenario::parse("pagurus:120").unwrap();
        assert_eq!(
            pagurus.policy,
            KeepAlivePolicy::PagurusShare { idle_ttl: 120.0 }
        );
    }

    #[test]
    fn bad_inputs_are_rejected_with_the_offending_part() {
        for bad in [
            "",
            "warm",
            "cold:5",
            "fixed",
            "fixed:0",
            "fixed:-2",
            "fixed:x",
            "fixed:inf",
            "histogram:60",
            "histogram:60,2,480",
            "histogram:0,0.99,480",
            "histogram:30,1.7,10",
            "histogram:30,-0.1,300",
            "histogram:30,0.9,10",
            "histogram:60,0.99,0",
            "histogram:60,0.99,-480",
            "pagurus:0",
            "pagurus:abc",
        ] {
            assert!(KeepAliveScenario::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn histogram_rejections_name_the_out_of_range_parameter() {
        // An out-of-range percentile is caught by the fraction check...
        let err = KeepAliveScenario::parse("histogram:30,1.7,480")
            .expect_err("pct > 1 accepted")
            .to_string();
        assert!(err.contains("fraction in [0, 1]"), "unpointed: {err}");
        // ...and a cap below one bin width by the max-ttl check, each with a
        // message naming the violated constraint, not a generic parse error.
        let err = KeepAliveScenario::parse("histogram:30,0.9,10")
            .expect_err("max-ttl < bin accepted")
            .to_string();
        assert!(
            err.contains("max-ttl must be at least the bin width"),
            "unpointed: {err}"
        );
        // The boundary itself is legal: a one-bin window.
        let one_bin = KeepAliveScenario::parse("histogram:30,0.9,30").unwrap();
        assert!(one_bin.validate().is_ok());
    }

    #[test]
    fn validate_catches_hand_built_out_of_domain_policies() {
        let bad =
            KeepAliveScenario::explicit("bad", KeepAlivePolicy::FixedKeepAlive { idle_ttl: -1.0 });
        assert!(bad.validate().is_err());
        // A hand-built histogram that skips `parse` still can't smuggle a
        // sub-bin cap past `validate`.
        let capped = KeepAliveScenario::explicit(
            "capped",
            KeepAlivePolicy::HybridHistogram {
                bin_secs: 30.0,
                keep_percentile: 0.9,
                max_ttl: 10.0,
            },
        );
        assert!(capped.validate().is_err());
        assert!(KeepAliveScenario::cold().validate().is_ok());
    }
}
