//! simlint fixture: deliberate `thread-spawn` violations (2 sites).
use std::thread;

pub fn fan_out() -> i32 {
    let handle = std::thread::spawn(|| 1 + 1);
    thread::scope(|s| {
        s.spawn(|| ());
    });
    handle.join().unwrap_or(0)
}

pub fn fine() -> usize {
    // Querying parallelism is allowed; only creating threads is not.
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
