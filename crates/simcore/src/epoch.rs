//! Epoch timelines: deterministic, fixed-width control windows on sim time.
//!
//! Online controllers (the replay engine) chop a finite trace horizon into
//! equal epochs and act at each boundary. The arithmetic looks trivial but
//! hides two determinism traps this module exists to centralise:
//!
//! * boundary times must be computed as `k * epoch_secs` from the origin,
//!   never by repeated `t += epoch_secs` accumulation, so that epoch `k`'s
//!   boundary is bit-identical no matter how many epochs preceded it; and
//! * the final partial window must be included exactly once — a trace whose
//!   horizon is not a multiple of the epoch width still ends in a (shorter)
//!   epoch, and an arrival exactly on the horizon belongs to that window.

use crate::time::SimTime;

/// A finite sequence of equal-width epochs `[k·E, (k+1)·E)` covering a
/// horizon, with the last window clipped to the horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochTimeline {
    epoch_secs: f64,
    epochs: u32,
    horizon_secs: f64,
}

impl EpochTimeline {
    /// Cover `[0, horizon_secs]` with epochs of `epoch_secs` width.
    ///
    /// Returns `None` when either argument is non-finite or non-positive —
    /// there is no meaningful zero-width epoch or empty horizon to control.
    pub fn over_horizon(epoch_secs: f64, horizon_secs: f64) -> Option<Self> {
        if !epoch_secs.is_finite() || epoch_secs <= 0.0 {
            return None;
        }
        if !horizon_secs.is_finite() || horizon_secs <= 0.0 {
            return None;
        }
        // simlint: allow(as-truncation): "both operands validated finite and positive above; the ratio is a small epoch count"
        let epochs = (horizon_secs / epoch_secs).ceil() as u32;
        Some(Self {
            epoch_secs,
            epochs: epochs.max(1),
            horizon_secs,
        })
    }

    /// Epoch width in seconds.
    pub fn epoch_secs(&self) -> f64 {
        self.epoch_secs
    }

    /// Number of epochs (the last may be shorter than `epoch_secs`).
    pub fn len(&self) -> u32 {
        self.epochs
    }

    /// True when the timeline has no epochs (never constructed by
    /// [`EpochTimeline::over_horizon`], but required by clippy convention).
    pub fn is_empty(&self) -> bool {
        self.epochs == 0
    }

    /// Start of epoch `k`, computed directly (not accumulated).
    pub fn start(&self, k: u32) -> SimTime {
        SimTime::from_secs(f64::from(k) * self.epoch_secs)
    }

    /// Exclusive end of epoch `k`, clipped to the horizon. This is also the
    /// boundary at which a controller acts on epoch `k`'s arrivals.
    pub fn end(&self, k: u32) -> SimTime {
        let raw = f64::from(k + 1) * self.epoch_secs;
        SimTime::from_secs(raw.min(self.horizon_secs))
    }

    /// Iterate `(k, start, end)` over every epoch in order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, SimTime, SimTime)> + '_ {
        (0..self.epochs).map(|k| (k, self.start(k), self.end(k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple_horizon_splits_evenly() {
        let tl = EpochTimeline::over_horizon(60.0, 300.0).expect("valid");
        assert_eq!(tl.len(), 5);
        assert_eq!(tl.start(0), SimTime::ZERO);
        assert_eq!(tl.end(4).as_secs(), 300.0);
        assert_eq!(tl.start(3).as_secs(), 180.0);
    }

    #[test]
    fn partial_final_epoch_is_clipped_not_dropped() {
        let tl = EpochTimeline::over_horizon(60.0, 130.0).expect("valid");
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.end(2).as_secs(), 130.0);
        assert_eq!(tl.start(2).as_secs(), 120.0);
    }

    #[test]
    fn boundaries_are_computed_not_accumulated() {
        // 0.1 is not representable in binary; accumulation would drift.
        let tl = EpochTimeline::over_horizon(0.1, 10.0).expect("valid");
        let direct = tl.start(73).as_secs();
        assert_eq!(direct, 73.0 * 0.1);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(EpochTimeline::over_horizon(0.0, 100.0).is_none());
        assert!(EpochTimeline::over_horizon(-1.0, 100.0).is_none());
        assert!(EpochTimeline::over_horizon(60.0, 0.0).is_none());
        assert!(EpochTimeline::over_horizon(f64::NAN, 100.0).is_none());
        assert!(EpochTimeline::over_horizon(60.0, f64::INFINITY).is_none());
    }

    #[test]
    fn iter_yields_contiguous_windows() {
        let tl = EpochTimeline::over_horizon(45.0, 100.0).expect("valid");
        let windows: Vec<_> = tl.iter().collect();
        assert_eq!(windows.len(), 3);
        for pair in windows.windows(2) {
            assert_eq!(pair[0].2, pair[1].1, "end of k must equal start of k+1");
        }
        assert_eq!(windows[2].2.as_secs(), 100.0);
    }
}
