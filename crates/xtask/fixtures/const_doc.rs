//! simlint fixture: `const-doc` provenance checks (2 violations), linted as
//! if it were `crates/platform/src/profile.rs`.

/// Cold-start scaling coefficient for the AWS curve (Fig. 4).
pub const CITED: f64 = 0.52;

/// The citation may sit on any line of a multi-line doc block — here the
/// second: this value is the dof = 14 critical value of Table 1.
pub const CITED_ON_LATER_LINE: f64 = 4.075;

pub const UNDOCUMENTED: f64 = 1.0;

/// Prose without any provenance marker.
pub const WRONG_DOC: u32 = 14;

const PRIVATE_CONSTS_NEED_NO_CITATION: u32 = 3;
