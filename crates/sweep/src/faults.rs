//! The fault-scenario axis: named fault/retry configurations for a grid.
//!
//! A [`FaultScenario`] pairs a [`FaultSpec`] (or a deferred
//! "provider default" that resolves per platform cell) with the
//! [`RetryPolicy`] governing in-burst retries. Every sweep has this axis;
//! the default single value is [`FaultScenario::none`], which reproduces
//! the exact fault-free timelines of pre-fault sweeps — zero rates take no
//! RNG lane draws at all, so enabling the axis cannot shift legacy output.
//!
//! Scenarios are plain data with a stable `label` that becomes part of the
//! [`crate::CellKey`] (and so of the deterministic render order). The
//! textual grammar understood by [`FaultScenario::parse`] is what the CLI's
//! `--faults` flag accepts:
//!
//! ```text
//! none                                  fault-free (the default)
//! default                               each platform's calibrated rates
//! crash=0.01                            explicit per-lane rates...
//! crash=0.01,straggler=0.05,attempts=5  ...with optional retry knobs
//! ```
//!
//! Keys: `crash`, `provision`, `ship-stall`, `ship-stall-factor`,
//! `straggler`, `straggler-factor` (fault processes) and `attempts`,
//! `budget`, `rounds` (retry policy). Unset fault rates stay zero; unset
//! retry knobs keep [`RetryPolicy::default`]. `;` is accepted as a key
//! separator interchangeably with `,`, so a multi-key scenario can sit
//! inside the CLI's comma-separated `--faults` scenario list.

use propack_platform::{FaultSpec, RetryPolicy, ServerlessPlatform};

use crate::spec::SweepError;

/// How a scenario's fault processes are determined.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultScenarioSpec {
    /// A fixed [`FaultSpec`], identical on every platform cell.
    Explicit(FaultSpec),
    /// Resolved per cell from
    /// [`ServerlessPlatform::default_faults`] — each provider's calibrated
    /// rates (a cloud preset and an on-prem cluster fault differently).
    ProviderDefault,
}

/// One point on the fault-scenario axis.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// Stable label used in cell keys and rendered output.
    pub label: String,
    /// Fault processes (explicit or per-provider).
    pub spec: FaultScenarioSpec,
    /// Retry/backoff policy applied to every burst run under this scenario.
    pub retry: RetryPolicy,
}

impl FaultScenario {
    /// The fault-free scenario — the axis default, byte-identical to
    /// pre-fault sweep output.
    pub fn none() -> Self {
        FaultScenario {
            label: "none".to_string(),
            spec: FaultScenarioSpec::Explicit(FaultSpec::none()),
            retry: RetryPolicy::no_retries(),
        }
    }

    /// Each platform's own calibrated fault rates, with the default retry
    /// policy.
    pub fn provider_default() -> Self {
        FaultScenario {
            label: "default".to_string(),
            spec: FaultScenarioSpec::ProviderDefault,
            retry: RetryPolicy::default(),
        }
    }

    /// An explicit scenario under a caller-chosen label.
    pub fn explicit(label: impl Into<String>, spec: FaultSpec, retry: RetryPolicy) -> Self {
        FaultScenario {
            label: label.into(),
            spec: FaultScenarioSpec::Explicit(spec),
            retry,
        }
    }

    /// Whether this scenario injects no faults on any platform.
    pub fn is_none(&self) -> bool {
        matches!(&self.spec, FaultScenarioSpec::Explicit(s) if s.is_none())
    }

    /// The concrete fault processes for one platform cell.
    pub fn resolve(&self, platform: &dyn ServerlessPlatform) -> FaultSpec {
        match &self.spec {
            FaultScenarioSpec::Explicit(spec) => *spec,
            FaultScenarioSpec::ProviderDefault => platform.default_faults(),
        }
    }

    /// Check the scenario describes a valid fault/retry configuration.
    pub fn validate(&self) -> Result<(), SweepError> {
        if let FaultScenarioSpec::Explicit(spec) = &self.spec {
            if let Some((field, value)) = spec.invalid_field() {
                return Err(SweepError::InvalidValue {
                    what: "fault scenario",
                    value: format!("{}: {field} = {value}", self.label),
                });
            }
        }
        if self.retry.max_attempts == 0 {
            return Err(SweepError::InvalidValue {
                what: "fault scenario",
                value: format!("{}: attempts must be >= 1", self.label),
            });
        }
        if self.retry.max_rounds == 0 {
            return Err(SweepError::InvalidValue {
                what: "fault scenario",
                value: format!("{}: rounds must be >= 1", self.label),
            });
        }
        Ok(())
    }

    /// Parse the `--faults` grammar (see module docs). The normalized input
    /// (whitespace stripped) becomes the scenario label.
    pub fn parse(input: &str) -> Result<FaultScenario, SweepError> {
        let label: String = input.chars().filter(|c| !c.is_whitespace()).collect();
        match label.as_str() {
            "" => Err(invalid(input, "empty scenario")),
            "none" => Ok(FaultScenario::none()),
            "default" => Ok(FaultScenario::provider_default()),
            _ => {
                let mut spec = FaultSpec::none();
                let mut retry = RetryPolicy::default();
                for part in label.split([',', ';']) {
                    let (key, value) = part
                        .split_once('=')
                        .ok_or_else(|| invalid(part, "expected key=value"))?;
                    match key {
                        "crash" => spec.crash_rate = number(part, value)?,
                        "provision" => spec.provision_failure_rate = number(part, value)?,
                        "ship-stall" => spec.ship_stall_rate = number(part, value)?,
                        "ship-stall-factor" => spec.ship_stall_factor = number(part, value)?,
                        "straggler" => spec.straggler_rate = number(part, value)?,
                        "straggler-factor" => spec.straggler_factor = number(part, value)?,
                        "attempts" => retry.max_attempts = integer(part, value)?,
                        "budget" => retry.retry_budget = integer(part, value)?,
                        "rounds" => retry.max_rounds = integer(part, value)?,
                        _ => return Err(invalid(part, "unknown key")),
                    }
                }
                let scenario = FaultScenario {
                    label,
                    spec: FaultScenarioSpec::Explicit(spec),
                    retry,
                };
                scenario.validate()?;
                Ok(scenario)
            }
        }
    }
}

fn invalid(part: &str, why: &str) -> SweepError {
    SweepError::InvalidValue {
        what: "fault scenario",
        value: format!("`{part}` ({why})"),
    }
}

fn number(part: &str, value: &str) -> Result<f64, SweepError> {
    value
        .parse::<f64>()
        .map_err(|_| invalid(part, "not a number"))
}

fn integer(part: &str, value: &str) -> Result<u32, SweepError> {
    value
        .parse::<u32>()
        .map_err(|_| invalid(part, "not a non-negative integer"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_platform::{CloudPlatform, PlatformProfile};

    #[test]
    fn none_and_default_are_keywords() {
        let none = FaultScenario::parse("none").unwrap();
        assert!(none.is_none());
        assert_eq!(none.label, "none");
        let default = FaultScenario::parse("default").unwrap();
        assert_eq!(default.spec, FaultScenarioSpec::ProviderDefault);
        assert!(!default.is_none());
    }

    #[test]
    fn explicit_scenarios_parse_rates_and_retry_knobs() {
        let sc = FaultScenario::parse("crash=0.01, straggler=0.05, attempts=5").unwrap();
        assert_eq!(sc.label, "crash=0.01,straggler=0.05,attempts=5");
        match sc.spec {
            FaultScenarioSpec::Explicit(spec) => {
                assert_eq!(spec.crash_rate, 0.01);
                assert_eq!(spec.straggler_rate, 0.05);
                assert_eq!(spec.provision_failure_rate, 0.0);
            }
            other => panic!("expected explicit spec, got {other:?}"),
        }
        assert_eq!(sc.retry.max_attempts, 5);
        assert_eq!(sc.retry.retry_budget, RetryPolicy::default().retry_budget);
    }

    #[test]
    fn provider_default_resolves_per_platform() {
        let sc = FaultScenario::provider_default();
        let aws = CloudPlatform::new(PlatformProfile::aws_lambda());
        let resolved = sc.resolve(&aws);
        assert!(resolved.crash_rate > 0.0);
        assert!(resolved.provision_failure_rate > 0.0);
    }

    #[test]
    fn bad_inputs_are_rejected_with_the_offending_part() {
        for bad in [
            "",
            "crash",
            "crash=x",
            "warp=0.1",
            "crash=1.5",
            "straggler=0.1,straggler-factor=0.5",
            "attempts=0",
            "rounds=0",
            "attempts=-3",
        ] {
            assert!(FaultScenario::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn validate_catches_hand_built_out_of_domain_specs() {
        let sc = FaultScenario::explicit(
            "bad",
            FaultSpec::none().with_crash_rate(2.0),
            RetryPolicy::default(),
        );
        assert!(sc.validate().is_err());
        assert!(FaultScenario::none().validate().is_ok());
    }
}
