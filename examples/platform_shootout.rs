//! Strategy shootout: no packing vs serial batching vs staggering vs Pywren
//! vs ProPack, across AWS / Google / Azure / FuncX.
//!
//! ```sh
//! cargo run --release --example platform_shootout
//! ```
//!
//! Reproduces the paper's comparative story (§1, §4, Figs. 18–19, 21) in
//! one table: packing is the only technique that attacks the quadratic
//! scheduling term, on every platform.

use propack_repro::baselines::{NoPacking, Pywren, SerialBatching, Staggered, Strategy};
use propack_repro::funcx::FuncXPlatform;
use propack_repro::platform::PlatformBuilder;
use propack_repro::platform::ServerlessPlatform;
use propack_repro::propack::optimizer::Objective;
use propack_repro::propack::propack::{ProPackConfig, Propack};
use propack_repro::workloads::sort::MapReduceSort;
use propack_repro::workloads::Workload;

fn run_on(platform: &dyn ServerlessPlatform, c: u32) {
    let work = MapReduceSort::default().profile();
    println!("\n=== {} (Sort, C = {c}) ===", platform.name());
    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "strategy", "service (s)", "expense ($)", "degree"
    );

    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(NoPacking),
        Box::new(SerialBatching { batch_size: c / 4 }),
        Box::new(Staggered {
            wave_size: c / 10,
            gap_secs: 30.0,
        }),
        Box::new(Pywren::default()),
    ];
    for s in &strategies {
        let o = s.run(platform, &work, c, 77).expect("strategy run");
        println!(
            "{:<28} {:>12.0} {:>12.2} {:>8}",
            o.strategy,
            o.total_service_secs(),
            o.expense_usd,
            o.packing_degree
        );
    }

    let pp = Propack::build(platform, &work, &ProPackConfig::default()).expect("build");
    let out = pp
        .execute(platform, c, Objective::default(), 77)
        .expect("propack run");
    println!(
        "{:<28} {:>12.0} {:>12.2} {:>8}",
        "ProPack",
        out.report.total_service_time(),
        out.expense_with_overhead_usd(),
        out.plan.packing_degree
    );
}

fn main() {
    let c = 2000;
    run_on(&PlatformBuilder::aws().build(), c);
    run_on(&PlatformBuilder::google().build(), c);
    run_on(&PlatformBuilder::azure().build(), c);
    run_on(&FuncXPlatform::default(), c);
    println!(
        "\nPacking wins everywhere because only it reduces the *number* of \
         placements the control plane must make."
    );
}
