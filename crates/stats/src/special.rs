//! Special functions needed by the χ² machinery: `ln Γ(x)` via the Lanczos
//! approximation and the regularized lower incomplete gamma `P(a, x)`
//! (series expansion for `x < a + 1`, continued fraction otherwise).
//!
//! These are textbook implementations (Numerical Recipes §6.1–6.2 style)
//! accurate to ~1e-12 over the ranges used here (degrees of freedom ≤ 200).

use crate::{Result, StatsError};

/// Lanczos coefficients for g = 7, n = 9 (Boost/GSL standard set).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Uses the reflection formula for `x < 0.5` and the Lanczos approximation
/// elsewhere. Accuracy is better than 1e-12 for the arguments used by the χ²
/// test (half-integer degrees of freedom up to a few hundred).
pub fn ln_gamma(x: f64) -> Result<f64> {
    if !x.is_finite() || x <= 0.0 {
        return Err(StatsError::Domain("ln_gamma requires x > 0"));
    }
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
        let sin_pix = (std::f64::consts::PI * x).sin();
        // simlint: allow(float-eq): "pole detection: only exactly-zero sin(pi*x) divides by zero"
        if sin_pix == 0.0 {
            return Err(StatsError::Domain("ln_gamma pole"));
        }
        return Ok(std::f64::consts::PI.ln() - sin_pix.ln() - ln_gamma(1.0 - x)?);
    }
    let xm1 = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (xm1 + i as f64);
    }
    let t = xm1 + LANCZOS_G + 0.5;
    Ok(0.5 * (2.0 * std::f64::consts::PI).ln() + (xm1 + 0.5) * t.ln() - t + acc.ln())
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0` and `P(a, ∞) = 1`. For the χ² distribution with `k` degrees
/// of freedom, `CDF(x) = P(k/2, x/2)`.
pub fn gamma_p(a: f64, x: f64) -> Result<f64> {
    if !a.is_finite() || a <= 0.0 {
        return Err(StatsError::Domain("gamma_p requires a > 0"));
    }
    if !x.is_finite() || x < 0.0 {
        return Err(StatsError::Domain("gamma_p requires x >= 0"));
    }
    // simlint: allow(float-eq): "P(a, 0) = 0 exactly; any positive x takes the series/fraction path"
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        Ok(1.0 - gamma_q_continued_fraction(a, x)?)
    }
}

/// Regularized *upper* incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> Result<f64> {
    Ok(1.0 - gamma_p(a, x)?)
}

/// Series representation, convergent (and fast) for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> Result<f64> {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let ln_ga = ln_gamma(a)?;
    let mut ap = a;
    let mut term = 1.0 / a;
    let mut sum = term;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            let log_prefix = a * x.ln() - x - ln_ga;
            return Ok((sum * log_prefix.exp()).clamp(0.0, 1.0));
        }
    }
    Err(StatsError::Domain("gamma_p series failed to converge"))
}

/// Modified Lentz continued fraction for `Q(a, x)`, convergent for `x ≥ a + 1`.
fn gamma_q_continued_fraction(a: f64, x: f64) -> Result<f64> {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let ln_ga = ln_gamma(a)?;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            let log_prefix = a * x.ln() - x - ln_ga;
            return Ok((h * log_prefix.exp()).clamp(0.0, 1.0));
        }
    }
    Err(StatsError::Domain(
        "gamma_q continued fraction failed to converge",
    ))
}

/// Error function, via `P(1/2, x²)`; used by tests as an independent probe of
/// the incomplete-gamma implementation.
pub fn erf(x: f64) -> Result<f64> {
    let p = gamma_p(0.5, x * x)?;
    Ok(if x >= 0.0 { p } else { -p })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0_f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert_close(ln_gamma(n as f64).unwrap(), fact.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        assert_close(
            ln_gamma(0.5).unwrap(),
            std::f64::consts::PI.sqrt().ln(),
            1e-12,
        );
        // Γ(3/2) = sqrt(π)/2
        assert_close(
            ln_gamma(1.5).unwrap(),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_gamma_rejects_non_positive() {
        assert!(ln_gamma(0.0).is_err());
        assert!(ln_gamma(-3.0).is_err());
        assert!(ln_gamma(f64::NAN).is_err());
    }

    #[test]
    fn gamma_p_boundaries() {
        assert_eq!(gamma_p(2.0, 0.0).unwrap(), 0.0);
        assert!(gamma_p(2.0, 1e6).unwrap() > 1.0 - 1e-12);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x} (exponential distribution CDF).
        for &x in &[0.1, 0.5, 1.0, 2.5, 10.0] {
            assert_close(gamma_p(1.0, x).unwrap(), 1.0 - (-x_f(x)).exp(), 1e-12);
        }
        fn x_f(x: f64) -> f64 {
            x
        }
    }

    #[test]
    fn gamma_p_q_complement() {
        for &a in &[0.5, 1.0, 7.0, 50.0] {
            for &x in &[0.2, 1.0, 5.0, 60.0] {
                let p = gamma_p(a, x).unwrap();
                let q = gamma_q(a, x).unwrap();
                assert_close(p + q, 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn erf_known_values() {
        assert_close(erf(0.0).unwrap(), 0.0, 1e-15);
        // erf(1) ≈ 0.8427007929497149
        assert_close(erf(1.0).unwrap(), 0.842_700_792_949_714_9, 1e-10);
        assert_close(erf(-1.0).unwrap(), -0.842_700_792_949_714_9, 1e-10);
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..200 {
            let x = i as f64 * 0.25;
            let p = gamma_p(7.0, x).unwrap();
            assert!(p >= prev, "P(7,{x}) decreased");
            prev = p;
        }
    }
}
