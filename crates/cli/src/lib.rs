//! Library half of the `propack` CLI: argument parsing and command
//! execution, separated from `main` so every path is unit-testable.
//!
//! Parsing is table-driven: every subcommand is one [`Subcommand`] row
//! declaring its flags, and all rows share one flag parser (no per-command
//! positional parsing). Commands:
//!
//! ```text
//! propack sweep    --apps <a,b> [--platforms <p,..>] [--concurrency <C,..>]
//!                  [--policies <pol,..>] [--seeds <s,..>] [--faults <f,..>]
//!                  [--keepalive <k,..>] [--threads <n>] [--bench-out <file>]
//!                  [--compare-serial] [--name <id>]
//! propack replay   [--trace <file.csv> | --arrivals <gen>] [--epoch <s>]
//!                  [--controller <c,..>] [--keepalive <k>] [--faults <f>]
//!                  [--seed <s>] [--threads <n>] [--compare-serial]
//!                  [--out <file>]
//! propack workflow [--apps <a,..>] [--shapes <sh,..>] [--platforms <p,..>]
//!                  [--concurrency <C,..>] [--policies <pol,..>]
//!                  [--seeds <s,..>] [--faults <f,..>] [--keepalive <k,..>]
//!                  [--threads <n>] [--compare-serial] [--out <file>]
//! propack figures  [--fig <fig01,fig21,..|all>] [--json]
//! propack validate --app <name> -c <C> [--platform <p>] [--seed <s>]
//! propack help
//! ```
//!
//! The single-cell commands of earlier releases (`plan`, `run`, `compare`)
//! are gone: a single cell is a 1×1 grid, so `propack sweep` covers them
//! with identical numbers. Typing one prints the sweep equivalent.
//!
//! Apps are the five paper benchmarks (`video`, `sort`, `stateless`,
//! `smith-waterman`, `xapian`); platforms are `aws`, `google`, `azure`,
//! `funcx`; policies are `no-packing`, `pywren`, `fixed:<P>`, `propack`,
//! `propack:<objective>`; keep-alive scenarios are `cold`, `fixed:<secs>`,
//! `histogram[:<bin>,<pct>,<max>]`, `pagurus[:<ttl>]`.

use std::collections::{BTreeMap, BTreeSet};

use propack_fleet::{synthetic_fleet, FleetEngine, FleetSpec, SyntheticFleetConfig, TenantSpec};
use propack_funcx::FuncXPlatform;
use propack_model::cache::ModelCache;
use propack_model::optimizer::Objective;
use propack_model::propack::{ProPackConfig, Propack};
use propack_model::validate::validate_models;
use propack_platform::PlatformBuilder;
use propack_platform::{ServerlessPlatform, WorkProfile};
use propack_replay::{ArrivalTrace, Controller, ReplayEngine, ReplaySpec};
use propack_stats::chi2::ChiSquareTest;
use propack_sweep::{
    bench_json, fleet_bench_json, replay_bench_json, timed_fleet, timed_replay,
    workflow_bench_json, FaultScenario, KeepAliveScenario, PackingPolicy, PlatformAxis, ReplayGrid,
    RunTiming, SweepReport, SweepRunner, SweepSpec,
};
use propack_workloads::Benchmarks;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run a declarative experiment grid on the parallel sweep engine.
    Sweep(SweepArgs),
    /// Replay a trace-driven arrival stream under online controllers.
    Replay(ReplayArgs),
    /// Replay a synthetic multi-tenant fleet on the sharded engine.
    Fleet(FleetArgs),
    /// Replay DAG workflows (the sweep grid's workflow-shape axis).
    Workflow(WorkflowArgs),
    /// Regenerate paper figures/tables by experiment id.
    Figures(FiguresArgs),
    /// Replay the §2.4 χ² model-validation protocol for one app.
    Validate(ValidateArgs),
    /// List known applications.
    Apps,
    /// List known platforms.
    Platforms,
    /// Print usage.
    Help,
}

/// Arguments of `propack sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Sweep name (used in the report header and `BENCH_sweep.json`).
    pub name: String,
    /// Benchmark keys (comma list).
    pub apps: Vec<String>,
    /// Platform keys (comma list).
    pub platforms: Vec<String>,
    /// Concurrency levels (comma list).
    pub concurrency: Vec<u32>,
    /// Policy keys (comma list).
    pub policies: Vec<String>,
    /// Seeds (comma list).
    pub seeds: Vec<u64>,
    /// Fault scenarios (comma list of `none`, `default`, or
    /// `key=value[;key=value..]` specs — see `propack_sweep::FaultScenario`).
    pub faults: Vec<String>,
    /// Keep-alive scenarios (comma list of `cold`, `fixed:<secs>`,
    /// `histogram[:<bin>,<pct>,<max>]`, `pagurus[:<ttl>]` — see
    /// `propack_sweep::KeepAliveScenario`).
    pub keepalive: Vec<String>,
    /// Worker threads; 0 = one per available core.
    pub threads: usize,
    /// Write `BENCH_sweep.json` here.
    pub bench_out: Option<String>,
    /// Also run serially and verify byte-identical output + speedup.
    pub compare_serial: bool,
}

/// Arguments of `propack replay`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayArgs {
    /// Benchmark key executed per arrival.
    pub app: String,
    /// Platform key.
    pub platform: String,
    /// CSV trace file (`app,timestamp,count` rows); `None` with no
    /// `--arrivals` means the bundled diurnal sample.
    pub trace: Option<String>,
    /// Which app to replay from a multi-app trace file.
    pub trace_app: Option<String>,
    /// Synthetic generator spec (`poisson:<rate>`,
    /// `diurnal:<mean>,<amplitude>,<period>`, `burst:<rate>,<on_s>,<off_s>`).
    pub arrivals: Option<String>,
    /// Horizon for synthetic generators, seconds.
    pub horizon: Option<f64>,
    /// Epoch (control window) width, seconds.
    pub epoch_secs: f64,
    /// Controller keys (comma list: `no-packing`, `fixed:<P>`, `oracle`,
    /// `propack[:<forecaster>]`).
    pub controllers: Vec<String>,
    /// Objective key for the planning controllers.
    pub objective: String,
    /// Per-epoch tail-latency QoS bound, seconds.
    pub qos: Option<f64>,
    /// Fault scenario (single `--faults` spec, same grammar as sweep).
    pub faults: String,
    /// Keep-alive scenario the replay's warm pool runs under (single
    /// `--keepalive` spec, same grammar as the sweep axis).
    pub keepalive: String,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for the `--compare-serial` sweep cross-check;
    /// 0 = one per available core.
    pub threads: usize,
    /// Also run the controllers through the sweep grid serially and in
    /// parallel and require byte-identical output.
    pub compare_serial: bool,
    /// Shadow each epoch with the oracle plan and report the
    /// controller-vs-oracle service / expense regret.
    pub regret: bool,
    /// Write `BENCH_replay.json` here.
    pub out: Option<String>,
}

/// Arguments of `propack fleet`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetArgs {
    /// Applications in the synthetic fleet (each app carries 1..=max_funcs
    /// functions, and every (app, function) pair is one tenant).
    pub apps: u32,
    /// Distinct function profiles tenants are drawn from.
    pub profiles: u32,
    /// Maximum functions per application.
    pub max_funcs: u32,
    /// Fleet-wide invocation budget over the horizon.
    pub invocations: f64,
    /// Trace horizon, seconds.
    pub horizon: f64,
    /// Epoch (control window) width, seconds.
    pub epoch_secs: f64,
    /// Controller keys (comma list); each runs one full fleet pass.
    pub controllers: Vec<String>,
    /// Platform key.
    pub platform: String,
    /// Objective key for the planning controllers.
    pub objective: String,
    /// Per-epoch tail-latency QoS bound, seconds.
    pub qos: Option<f64>,
    /// Fault scenario (single `--faults` spec, same grammar as sweep).
    pub faults: String,
    /// Keep-alive scenario for the shared warm pool.
    pub keepalive: String,
    /// Base seed (fleet generator + warm pool).
    pub seed: u64,
    /// Shared fleet: servers.
    pub servers: u32,
    /// Shared fleet: microVM slots per server.
    pub slots: u32,
    /// Fluid-kernel cohort floor; `None` keeps the exact event kernel.
    pub fluid: Option<u32>,
    /// Worker threads for the parallel burst phase; 0 = one per core.
    pub threads: usize,
    /// Also run serially and require byte-identical output.
    pub compare_serial: bool,
    /// Write `BENCH_fleet.json` here.
    pub out: Option<String>,
}

/// Arguments of `propack workflow`.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowArgs {
    /// Grid name (used in the report header and `BENCH_workflow.json`).
    pub name: String,
    /// Benchmark keys (comma list) supplying the leaf work profiles.
    pub apps: Vec<String>,
    /// Workflow shapes (comma list: `task`, `map[:N]`, `seq-map`,
    /// `diamond`, `mixed:cpu+io` — see `propack_workflow::known_shapes`).
    pub shapes: Vec<String>,
    /// Platform keys (comma list).
    pub platforms: Vec<String>,
    /// Fan-out widths (comma list; the sweep's concurrency axis).
    pub concurrency: Vec<u32>,
    /// Map-stage packing policies (comma list; `pywren` is rejected —
    /// it has no workflow equivalent).
    pub policies: Vec<String>,
    /// Seeds (comma list).
    pub seeds: Vec<u64>,
    /// Fault scenarios (comma list, sweep grammar).
    pub faults: Vec<String>,
    /// Keep-alive scenarios (comma list, sweep grammar).
    pub keepalive: Vec<String>,
    /// Worker threads; 0 = one per available core.
    pub threads: usize,
    /// Write `BENCH_workflow.json` here (switches to the thread-ladder
    /// bench methodology).
    pub out: Option<String>,
    /// Also run serially and verify byte-identical output + speedup.
    pub compare_serial: bool,
}

/// Arguments of `propack figures`.
#[derive(Debug, Clone, PartialEq)]
pub struct FiguresArgs {
    /// Experiment ids (`fig01`, `tab01`, …); empty = all, in paper order.
    pub ids: Vec<String>,
    /// Emit JSON tables instead of aligned text.
    pub json: bool,
}

/// Arguments of `propack validate`.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateArgs {
    /// Benchmark key.
    pub app: String,
    /// Concurrency level to validate at.
    pub concurrency: u32,
    /// Platform key.
    pub platform: String,
    /// RNG seed.
    pub seed: u64,
}

/// Parse errors with user-facing messages.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------------------
// The subcommand table and its shared flag parser.
// ---------------------------------------------------------------------------

/// Flags collected by the shared parser: `--flag value` pairs plus bare
/// switches, with aliases already canonicalized.
#[derive(Debug, Default)]
pub struct FlagSet {
    values: BTreeMap<String, String>,
    switches: BTreeSet<String>,
}

impl FlagSet {
    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn has(&self, key: &str) -> bool {
        self.switches.contains(key)
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, ParseError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|e| ParseError(format!("bad {key}: {e}"))),
        }
    }

    /// A comma-separated list flag, trimmed, empty items dropped.
    fn list(&self, key: &str) -> Option<Vec<String>> {
        self.get(key).map(|raw| {
            raw.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
    }

    fn parsed_list<T: std::str::FromStr>(&self, key: &str) -> Result<Option<Vec<T>>, ParseError>
    where
        T::Err: std::fmt::Display,
    {
        match self.list(key) {
            None => Ok(None),
            Some(items) => items
                .iter()
                .map(|s| {
                    s.parse()
                        .map_err(|e| ParseError(format!("bad {key} value '{s}': {e}")))
                })
                .collect::<Result<Vec<T>, ParseError>>()
                .map(Some),
        }
    }
}

/// Flag aliases shared by every subcommand: `(alias, canonical, note)`.
/// A `Some` note marks the alias deprecated.
const FLAG_ALIASES: &[(&str, &str, Option<&str>)] = &[("-c", "--concurrency", None)];

/// The one flag parser every subcommand shares: canonicalize aliases, then
/// accept exactly the declared value flags and switches.
fn parse_flags(
    args: &[String],
    value_flags: &[&str],
    switch_flags: &[&str],
    notes: &mut Vec<String>,
) -> Result<FlagSet, ParseError> {
    let mut flags = FlagSet::default();
    let mut it = args.iter();
    while let Some(raw) = it.next() {
        let mut canonical = raw.as_str();
        for (alias, target, note) in FLAG_ALIASES {
            if raw == alias {
                canonical = target;
                if let Some(note) = note {
                    notes.push(note.to_string());
                }
            }
        }
        if switch_flags.contains(&canonical) {
            flags.switches.insert(trim_dashes(canonical));
        } else if value_flags.contains(&canonical) {
            let value = it
                .next()
                .ok_or_else(|| ParseError(format!("{canonical} needs a value")))?;
            flags.values.insert(trim_dashes(canonical), value.clone());
        } else {
            return Err(ParseError(format!("unknown flag {raw}")));
        }
    }
    Ok(flags)
}

fn trim_dashes(flag: &str) -> String {
    flag.trim_start_matches('-').to_string()
}

/// One row of the subcommand table.
struct Subcommand {
    name: &'static str,
    usage: &'static str,
    value_flags: &'static [&'static str],
    switch_flags: &'static [&'static str],
    /// Printed to stderr when the subcommand is used (deprecation path).
    note: Option<&'static str>,
    build: fn(&FlagSet) -> Result<Command, ParseError>,
}

const SUBCOMMANDS: &[Subcommand] = &[
    Subcommand {
        name: "sweep",
        usage: "sweep    --apps <a,..> [--platforms aws,google,azure,funcx] [--concurrency <C,..>] [--policies no-packing,pywren,fixed:<P>,propack[:<obj>]] [--seeds <s,..>] [--faults none,default,crash=<r>[;straggler=<r>;..]] [--keepalive cold,fixed:<secs>,histogram[:<bin>,<pct>,<max>],pagurus[:<ttl>]] [--threads <n>] [--bench-out <file>] [--compare-serial] [--name <id>]",
        value_flags: &[
            "--name",
            "--apps",
            "--platforms",
            "--concurrency",
            "--policies",
            "--seeds",
            "--faults",
            "--keepalive",
            "--threads",
            "--bench-out",
        ],
        switch_flags: &["--compare-serial"],
        note: None,
        build: build_sweep,
    },
    Subcommand {
        name: "replay",
        usage: "replay   [--app <a>] [--trace <file.csv> | --arrivals poisson:<rate>|diurnal:<mean>,<amp>,<period>|burst:<rate>,<on_s>,<off_s>] [--trace-app <name>] [--horizon <s>] [--epoch <s>] [--controller no-packing,fixed:<P>,oracle,propack[:<forecaster>]] [--platform <p>] [--objective <o>] [--qos <s>] [--faults <spec>] [--keepalive <k>] [--seed <s>] [--threads <n>] [--compare-serial] [--regret] [--out <file>]",
        value_flags: &[
            "--app",
            "--trace",
            "--trace-app",
            "--arrivals",
            "--horizon",
            "--epoch",
            "--controller",
            "--platform",
            "--objective",
            "--qos",
            "--faults",
            "--keepalive",
            "--seed",
            "--threads",
            "--out",
        ],
        switch_flags: &["--compare-serial", "--regret"],
        note: None,
        build: build_replay,
    },
    Subcommand {
        name: "fleet",
        usage: "fleet    [--apps <n>] [--profiles <n>] [--max-funcs <n>] [--invocations <n>] [--horizon <s>] [--epoch <s>] [--controller no-packing,fixed:<P>,oracle,propack[:<forecaster>]] [--platform <p>] [--objective <o>] [--qos <s>] [--faults <spec>] [--keepalive <k>] [--seed <s>] [--servers <n>] [--slots <n>] [--fluid <min-cohort>] [--threads <n>] [--compare-serial] [--out <file>]",
        value_flags: &[
            "--apps",
            "--profiles",
            "--max-funcs",
            "--invocations",
            "--horizon",
            "--epoch",
            "--controller",
            "--platform",
            "--objective",
            "--qos",
            "--faults",
            "--keepalive",
            "--seed",
            "--servers",
            "--slots",
            "--fluid",
            "--threads",
            "--out",
        ],
        switch_flags: &["--compare-serial"],
        note: None,
        build: build_fleet,
    },
    Subcommand {
        name: "workflow",
        usage: "workflow [--apps <a,..>] [--shapes task,map[:N],seq-map,diamond,mixed:cpu+io] [--platforms aws,google,azure,funcx] [--concurrency <C,..>] [--policies no-packing,fixed:<P>,propack[:<obj>]] [--seeds <s,..>] [--faults <f,..>] [--keepalive <k,..>] [--threads <n>] [--compare-serial] [--out <file>] [--name <id>]",
        value_flags: &[
            "--name",
            "--apps",
            "--shapes",
            "--platforms",
            "--concurrency",
            "--policies",
            "--seeds",
            "--faults",
            "--keepalive",
            "--threads",
            "--out",
        ],
        switch_flags: &["--compare-serial"],
        note: None,
        build: build_workflow,
    },
    Subcommand {
        name: "figures",
        usage: "figures  [--fig fig01,fig21,..|all] [--json]",
        value_flags: &["--fig"],
        switch_flags: &["--json"],
        note: None,
        build: build_figures,
    },
    Subcommand {
        name: "validate",
        usage: "validate --app <name> -c <C> [--platform <p>] [--seed <s>]",
        value_flags: &["--app", "--concurrency", "--platform", "--seed"],
        switch_flags: &[],
        note: None,
        build: build_validate,
    },
    Subcommand {
        name: "apps",
        usage: "apps",
        value_flags: &[],
        switch_flags: &[],
        note: None,
        build: |_| Ok(Command::Apps),
    },
    Subcommand {
        name: "platforms",
        usage: "platforms",
        value_flags: &[],
        switch_flags: &[],
        note: None,
        build: |_| Ok(Command::Platforms),
    },
    Subcommand {
        name: "help",
        usage: "help",
        value_flags: &[],
        switch_flags: &[],
        note: None,
        build: |_| Ok(Command::Help),
    },
];

fn build_sweep(flags: &FlagSet) -> Result<Command, ParseError> {
    let apps = flags
        .list("apps")
        .ok_or_else(|| ParseError("--apps is required (see `propack apps`)".into()))?;
    Ok(Command::Sweep(SweepArgs {
        name: flags.get("name").unwrap_or("cli-sweep").to_string(),
        apps,
        platforms: flags
            .list("platforms")
            .unwrap_or_else(|| vec!["aws".into()]),
        concurrency: flags
            .parsed_list("concurrency")?
            .unwrap_or_else(|| vec![100, 1000]),
        policies: flags
            .list("policies")
            .unwrap_or_else(|| vec!["no-packing".into(), "pywren".into(), "propack".into()]),
        seeds: flags.parsed_list("seeds")?.unwrap_or_else(|| vec![42]),
        faults: flags.list("faults").unwrap_or_else(|| vec!["none".into()]),
        keepalive: flags
            .list("keepalive")
            .unwrap_or_else(|| vec!["cold".into()]),
        threads: flags.parsed("threads")?.unwrap_or(0),
        bench_out: flags.get("bench-out").map(str::to_string),
        compare_serial: flags.has("compare-serial"),
    }))
}

fn build_replay(flags: &FlagSet) -> Result<Command, ParseError> {
    Ok(Command::Replay(ReplayArgs {
        app: flags.get("app").unwrap_or("sort").to_string(),
        platform: flags.get("platform").unwrap_or("aws").to_string(),
        trace: flags.get("trace").map(str::to_string),
        trace_app: flags.get("trace-app").map(str::to_string),
        arrivals: flags.get("arrivals").map(str::to_string),
        horizon: flags.parsed("horizon")?,
        epoch_secs: flags.parsed("epoch")?.unwrap_or(60.0),
        controllers: flags
            .list("controller")
            .unwrap_or_else(|| vec!["propack:ewma".into()]),
        objective: flags.get("objective").unwrap_or("service").to_string(),
        qos: flags.parsed("qos")?,
        faults: flags.get("faults").unwrap_or("none").to_string(),
        keepalive: flags.get("keepalive").unwrap_or("cold").to_string(),
        seed: flags.parsed("seed")?.unwrap_or(42),
        threads: flags.parsed("threads")?.unwrap_or(0),
        compare_serial: flags.has("compare-serial"),
        regret: flags.has("regret"),
        out: flags.get("out").map(str::to_string),
    }))
}

fn build_fleet(flags: &FlagSet) -> Result<Command, ParseError> {
    Ok(Command::Fleet(FleetArgs {
        apps: flags.parsed("apps")?.unwrap_or(100),
        profiles: flags.parsed("profiles")?.unwrap_or(5),
        max_funcs: flags.parsed("max-funcs")?.unwrap_or(3),
        invocations: flags.parsed("invocations")?.unwrap_or(100_000.0),
        horizon: flags.parsed("horizon")?.unwrap_or(86_400.0),
        epoch_secs: flags.parsed("epoch")?.unwrap_or(60.0),
        controllers: flags
            .list("controller")
            .unwrap_or_else(|| vec!["propack:ewma".into()]),
        platform: flags.get("platform").unwrap_or("aws").to_string(),
        objective: flags.get("objective").unwrap_or("service").to_string(),
        qos: flags.parsed("qos")?,
        faults: flags.get("faults").unwrap_or("none").to_string(),
        keepalive: flags.get("keepalive").unwrap_or("cold").to_string(),
        seed: flags.parsed("seed")?.unwrap_or(42),
        servers: flags.parsed("servers")?.unwrap_or(2_000),
        slots: flags.parsed("slots")?.unwrap_or(16),
        fluid: flags.parsed("fluid")?,
        threads: flags.parsed("threads")?.unwrap_or(0),
        compare_serial: flags.has("compare-serial"),
        out: flags.get("out").map(str::to_string),
    }))
}

fn build_workflow(flags: &FlagSet) -> Result<Command, ParseError> {
    Ok(Command::Workflow(WorkflowArgs {
        name: flags.get("name").unwrap_or("cli-workflow").to_string(),
        apps: flags.list("apps").unwrap_or_else(|| vec!["sort".into()]),
        shapes: flags.list("shapes").unwrap_or_else(|| {
            vec![
                "task".into(),
                "seq-map".into(),
                "diamond".into(),
                "mixed:cpu+io".into(),
            ]
        }),
        platforms: flags
            .list("platforms")
            .unwrap_or_else(|| vec!["aws".into()]),
        concurrency: flags
            .parsed_list("concurrency")?
            .unwrap_or_else(|| vec![200]),
        policies: flags
            .list("policies")
            .unwrap_or_else(|| vec!["no-packing".into(), "propack".into()]),
        seeds: flags.parsed_list("seeds")?.unwrap_or_else(|| vec![42]),
        faults: flags.list("faults").unwrap_or_else(|| vec!["none".into()]),
        keepalive: flags
            .list("keepalive")
            .unwrap_or_else(|| vec!["cold".into()]),
        threads: flags.parsed("threads")?.unwrap_or(0),
        out: flags.get("out").map(str::to_string),
        compare_serial: flags.has("compare-serial"),
    }))
}

fn build_figures(flags: &FlagSet) -> Result<Command, ParseError> {
    let ids = match flags.list("fig") {
        None => Vec::new(),
        Some(ids) if ids.iter().any(|i| i == "all") => Vec::new(),
        Some(ids) => ids,
    };
    Ok(Command::Figures(FiguresArgs {
        ids,
        json: flags.has("json"),
    }))
}

fn build_validate(flags: &FlagSet) -> Result<Command, ParseError> {
    Ok(Command::Validate(ValidateArgs {
        app: require_app(flags)?,
        concurrency: require_concurrency(flags)?,
        platform: flags.get("platform").unwrap_or("aws").to_string(),
        seed: flags.parsed("seed")?.unwrap_or(42),
    }))
}

fn require_app(flags: &FlagSet) -> Result<String, ParseError> {
    flags
        .get("app")
        .map(str::to_string)
        .filter(|a| !a.is_empty())
        .ok_or_else(|| ParseError("--app is required".into()))
}

fn require_concurrency(flags: &FlagSet) -> Result<u32, ParseError> {
    match flags.parsed::<u32>("concurrency")? {
        Some(c) if c >= 1 => Ok(c),
        _ => Err(ParseError("--concurrency must be ≥ 1".into())),
    }
}

/// Single-cell commands of earlier releases, now removed in favor of 1×1
/// sweep grids (kept as a list so the error can name the replacement).
const REMOVED_COMMANDS: &[&str] = &["plan", "run", "compare"];

/// Parse an argument vector (without the binary name), returning the
/// command plus any deprecation notes the invocation triggered.
pub fn parse_with_notes(args: &[String]) -> Result<(Command, Vec<String>), ParseError> {
    let Some(cmd) = args.first() else {
        return Ok((Command::Help, Vec::new()));
    };
    let name = match cmd.as_str() {
        "--help" | "-h" => "help",
        other => other,
    };
    let def = SUBCOMMANDS.iter().find(|d| d.name == name).ok_or_else(|| {
        // The removed single-cell commands get a pointed error: a single
        // cell is a 1×1 grid, so `sweep` reproduces them exactly.
        if REMOVED_COMMANDS.contains(&name) {
            ParseError(format!(
                "`{name}` was removed; run the cell as a 1×1 grid instead: \
                 `propack sweep --apps <app> --concurrency <C> --policies propack[:<obj>]`"
            ))
        } else {
            ParseError(format!("unknown command {cmd}; try `propack help`"))
        }
    })?;
    let mut notes = Vec::new();
    if let Some(note) = def.note {
        notes.push(note.to_string());
    }
    let flags = parse_flags(&args[1..], def.value_flags, def.switch_flags, &mut notes)?;
    Ok(((def.build)(&flags)?, notes))
}

/// Parse an argument vector (without the binary name); deprecation notes
/// go to stderr.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let (command, notes) = parse_with_notes(args)?;
    for note in notes {
        eprintln!("note: {note}");
    }
    Ok(command)
}

// ---------------------------------------------------------------------------
// Key resolution (shared by every subcommand).
// ---------------------------------------------------------------------------

/// Resolve an application key to its work profile.
pub fn resolve_app(key: &str) -> Result<WorkProfile, ParseError> {
    let canonical = key.to_ascii_lowercase();
    for bench in Benchmarks::all() {
        let name = bench.name().to_ascii_lowercase().replace(' ', "-");
        if name == canonical || name.starts_with(&canonical) {
            return Ok(bench.profile());
        }
    }
    Err(ParseError(format!(
        "unknown app '{key}'; see `propack apps`"
    )))
}

/// Resolve a platform key.
pub fn resolve_platform(key: &str) -> Result<Box<dyn ServerlessPlatform>, ParseError> {
    Ok(match key.to_ascii_lowercase().as_str() {
        "aws" | "lambda" => Box::new(PlatformBuilder::aws().build()),
        "google" | "gcf" => Box::new(PlatformBuilder::google().build()),
        "azure" => Box::new(PlatformBuilder::azure().build()),
        "funcx" => Box::new(FuncXPlatform::default()),
        other => return Err(ParseError(format!("unknown platform '{other}'"))),
    })
}

/// Resolve a platform key to a [`Sync`] platform handle. The fleet engine
/// shares one platform across its burst workers, so unlike
/// [`resolve_platform`] the trait object carries the `Sync` bound.
pub fn resolve_shared_platform(
    key: &str,
) -> Result<Box<dyn ServerlessPlatform + Sync>, ParseError> {
    Ok(match key.to_ascii_lowercase().as_str() {
        "aws" | "lambda" => Box::new(PlatformBuilder::aws().build()),
        "google" | "gcf" => Box::new(PlatformBuilder::google().build()),
        "azure" => Box::new(PlatformBuilder::azure().build()),
        "funcx" => Box::new(FuncXPlatform::default()),
        other => return Err(ParseError(format!("unknown platform '{other}'"))),
    })
}

/// Resolve a platform key to a sweep axis value.
pub fn resolve_platform_axis(key: &str) -> Result<PlatformAxis, ParseError> {
    Ok(match key.to_ascii_lowercase().as_str() {
        "aws" | "lambda" => PlatformAxis::Aws,
        "google" | "gcf" => PlatformAxis::Google,
        "azure" => PlatformAxis::Azure,
        "funcx" => PlatformAxis::FuncX,
        other => return Err(ParseError(format!("unknown platform '{other}'"))),
    })
}

/// Resolve an objective key.
pub fn resolve_objective(key: &str) -> Result<Objective, ParseError> {
    Ok(match key.to_ascii_lowercase().as_str() {
        "joint" => Objective::default(),
        "service" | "service-time" => Objective::ServiceTime,
        "expense" | "cost" => Objective::Expense,
        other => {
            // `joint:0.7` sets an explicit service weight. Out-of-range
            // weights are an error, never silently clamped — a user who
            // typed `joint:1.5` meant something, and it wasn't `joint:1`.
            if let Some(w) = other.strip_prefix("joint:") {
                let w_s: f64 = w
                    .parse()
                    .map_err(|e| ParseError(format!("bad weight: {e}")))?;
                let objective = Objective::Joint { w_s };
                objective
                    .validate()
                    .map_err(|e| ParseError(e.to_string()))?;
                objective
            } else {
                return Err(ParseError(format!("unknown objective '{other}'")));
            }
        }
    })
}

/// Resolve a packing-policy key (`no-packing`, `pywren`, `fixed:<P>`,
/// `propack`, `propack:<objective>`).
pub fn resolve_policy(key: &str) -> Result<PackingPolicy, ParseError> {
    let canonical = key.to_ascii_lowercase();
    match canonical.as_str() {
        "no-packing" | "nopacking" | "none" | "baseline" => Ok(PackingPolicy::NoPacking),
        "pywren" => Ok(PackingPolicy::Pywren),
        "propack" => Ok(PackingPolicy::propack_default()),
        other => {
            if let Some(p) = other
                .strip_prefix("fixed:")
                .or_else(|| other.strip_prefix("fixed-"))
            {
                let degree: u32 = p
                    .parse()
                    .map_err(|e| ParseError(format!("bad packing degree '{p}': {e}")))?;
                Ok(PackingPolicy::Fixed(degree))
            } else if let Some(objective) = other.strip_prefix("propack:") {
                Ok(PackingPolicy::Propack {
                    objective: resolve_objective(objective)?,
                })
            } else {
                Err(ParseError(format!("unknown policy '{key}'")))
            }
        }
    }
}

/// Build a [`SweepSpec`] from parsed `propack sweep` arguments.
pub fn build_sweep_spec(args: &SweepArgs) -> Result<SweepSpec, ParseError> {
    let workloads = args
        .apps
        .iter()
        .map(|a| resolve_app(a))
        .collect::<Result<Vec<_>, _>>()?;
    let platforms = args
        .platforms
        .iter()
        .map(|p| resolve_platform_axis(p))
        .collect::<Result<Vec<_>, _>>()?;
    let policies = args
        .policies
        .iter()
        .map(|p| resolve_policy(p))
        .collect::<Result<Vec<_>, _>>()?;
    let faults = args
        .faults
        .iter()
        .map(|f| FaultScenario::parse(f).map_err(|e| ParseError(e.to_string())))
        .collect::<Result<Vec<_>, _>>()?;
    let keepalive = args
        .keepalive
        .iter()
        .map(|k| KeepAliveScenario::parse(k).map_err(|e| ParseError(e.to_string())))
        .collect::<Result<Vec<_>, _>>()?;
    let spec = SweepSpec::new(args.name.clone())
        .platforms(platforms)
        .workloads(workloads)
        .concurrency(args.concurrency.iter().copied())
        .policies(policies)
        .seeds(args.seeds.iter().copied())
        .faults(faults)
        .keepalive(keepalive);
    spec.validate().map_err(|e| ParseError(e.to_string()))?;
    Ok(spec)
}

/// Build a [`SweepSpec`] from parsed `propack workflow` arguments: the
/// classic grid axes plus the workflow-shape axis.
pub fn build_workflow_spec(args: &WorkflowArgs) -> Result<SweepSpec, ParseError> {
    let workloads = args
        .apps
        .iter()
        .map(|a| resolve_app(a))
        .collect::<Result<Vec<_>, _>>()?;
    let platforms = args
        .platforms
        .iter()
        .map(|p| resolve_platform_axis(p))
        .collect::<Result<Vec<_>, _>>()?;
    let policies = args
        .policies
        .iter()
        .map(|p| resolve_policy(p))
        .collect::<Result<Vec<_>, _>>()?;
    let faults = args
        .faults
        .iter()
        .map(|f| FaultScenario::parse(f).map_err(|e| ParseError(e.to_string())))
        .collect::<Result<Vec<_>, _>>()?;
    let keepalive = args
        .keepalive
        .iter()
        .map(|k| KeepAliveScenario::parse(k).map_err(|e| ParseError(e.to_string())))
        .collect::<Result<Vec<_>, _>>()?;
    let spec = SweepSpec::new(args.name.clone())
        .platforms(platforms)
        .workloads(workloads)
        .concurrency(args.concurrency.iter().copied())
        .policies(policies)
        .seeds(args.seeds.iter().copied())
        .faults(faults)
        .keepalive(keepalive)
        .workflows(args.shapes.iter().cloned());
    spec.validate().map_err(|e| ParseError(e.to_string()))?;
    Ok(spec)
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

/// Execute a parsed command, writing human-readable output to `out`.
/// Host-timing summaries and deprecation notes go to stderr, never `out`.
pub fn execute(
    cmd: Command,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        Command::Help => {
            writeln!(
                out,
                "propack — pack concurrent serverless functions faster and cheaper"
            )?;
            writeln!(out, "usage:")?;
            for def in SUBCOMMANDS {
                writeln!(out, "  propack {}", def.usage)?;
            }
            writeln!(
                out,
                "apps: video sort stateless-cost smith-waterman xapian; platforms: aws google azure funcx"
            )?;
        }
        Command::Apps => {
            for bench in Benchmarks::all() {
                let p = bench.profile();
                writeln!(
                    out,
                    "{:<16} mem {:.2} GB, isolated {:.0}s, max degree {}",
                    bench.name().to_ascii_lowercase().replace(' ', "-"),
                    p.mem_gb,
                    p.base_exec_secs,
                    p.max_packing_degree(10.0)
                )?;
            }
        }
        Command::Platforms => {
            for key in ["aws", "google", "azure", "funcx"] {
                let p = resolve_platform(key)?;
                let lim = p.limits();
                writeln!(
                    out,
                    "{:<8} {} ({} GB / {} cores per instance)",
                    key,
                    p.name(),
                    lim.mem_gb,
                    lim.cores
                )?;
            }
        }
        Command::Sweep(sa) => run_sweep(&sa, out)?,
        Command::Replay(ra) => run_replay(&ra, out)?,
        Command::Fleet(fa) => run_fleet(&fa, out)?,
        Command::Workflow(wa) => run_workflow_grid(&wa, out)?,
        Command::Figures(fa) => {
            let ids: Vec<String> = if fa.ids.is_empty() {
                propack_bench::ALL_EXPERIMENTS
                    .iter()
                    .map(|s| s.to_string())
                    .collect()
            } else {
                fa.ids.clone()
            };
            for id in &ids {
                let tables = propack_bench::run_experiment(id).ok_or_else(|| {
                    ParseError(format!(
                        "unknown experiment id '{id}'; known ids: {}",
                        propack_bench::ALL_EXPERIMENTS.join(", ")
                    ))
                })?;
                for table in tables {
                    if fa.json {
                        writeln!(out, "{}", table.to_json())?;
                    } else {
                        writeln!(out, "{}", table.render())?;
                    }
                }
            }
        }
        Command::Validate(va) => {
            let work = resolve_app(&va.app)?;
            let platform = resolve_platform(&va.platform)?;
            let pp = Propack::build(platform.as_ref(), &work, &ProPackConfig::default())?;
            let report = validate_models(
                platform.as_ref(),
                &pp.model,
                &work,
                va.concurrency,
                ChiSquareTest::paper_default(),
                va.seed,
            )?;
            writeln!(
                out,
                "χ² validation of {} on {} at C={} ({} packing degrees)",
                pp.work.name, pp.platform_name, va.concurrency, report.degrees_evaluated
            )?;
            for (label, gof) in [("service", report.service), ("expense", report.expense)] {
                writeln!(
                    out,
                    "{label:<8} statistic {:.3} vs critical {:.3} (dof {}) → {}",
                    gof.statistic,
                    gof.critical_value,
                    gof.dof,
                    if gof.accepted { "accepted" } else { "REJECTED" }
                )?;
            }
            writeln!(
                out,
                "models {}",
                if report.accepted() {
                    "ACCEPTED"
                } else {
                    "REJECTED"
                }
            )?;
        }
    }
    Ok(())
}

/// Thread ladder for `--bench-out` runs: serial anchor plus the scaling
/// points CI trends over time.
const BENCH_THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

/// `propack sweep`: run the grid (optionally serial-first for the
/// determinism + speedup comparison), render deterministically to `out`,
/// and emit timing to stderr / `BENCH_sweep.json`.
///
/// With `--bench-out`, the run switches to the benchmark methodology: one
/// untimed warmup run (so allocator and page-cache state do not pollute the
/// first timed point), then a timed run at each thread count in
/// [`BENCH_THREAD_LADDER`]; every run's render must be byte-identical, and
/// all four timings land in `BENCH_sweep.json`.
fn run_sweep(
    sa: &SweepArgs,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let spec = build_sweep_spec(sa)?;
    let threads = resolve_thread_count(sa.threads);
    if let Some(path) = &sa.bench_out {
        return run_grid_bench(&spec, path, bench_json, out);
    }
    run_grid(&spec, threads, sa.compare_serial, out)
}

/// `propack workflow`: the same grid machinery as `propack sweep`, with the
/// workflow-shape axis populated; `--out` writes `BENCH_workflow.json`
/// (per-(shape, policy) groups for the `cargo xtask benchdiff` gate).
fn run_workflow_grid(
    wa: &WorkflowArgs,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let spec = build_workflow_spec(wa)?;
    let threads = resolve_thread_count(wa.threads);
    if let Some(path) = &wa.out {
        return run_grid_bench(&spec, path, workflow_bench_json, out);
    }
    run_grid(&spec, threads, wa.compare_serial, out)
}

/// `--threads 0` means one worker per available core.
fn resolve_thread_count(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// Run one grid (optionally serial-first for the determinism + speedup
/// comparison) and render deterministically to `out`.
fn run_grid(
    spec: &SweepSpec,
    threads: usize,
    compare_serial: bool,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut runs = Vec::new();
    let mut serial_render = None;
    if compare_serial && threads > 1 {
        let serial = SweepRunner::new().run(spec)?;
        eprintln!("{}", serial.timing_line());
        runs.push(RunTiming {
            threads: serial.threads,
            wall_secs: serial.wall_secs,
        });
        serial_render = Some(serial.render());
    }

    let report = SweepRunner::new().threads(threads).run(spec)?;
    eprintln!("{}", report.timing_line());
    runs.push(RunTiming {
        threads: report.threads,
        wall_secs: report.wall_secs,
    });

    let outputs_identical = serial_render.map(|s| s == report.render());
    match outputs_identical {
        Some(true) => {
            if let Some(speedup) = propack_sweep::speedup(&runs) {
                eprintln!("serial and parallel output identical; speedup {speedup:.2}x");
            }
        }
        Some(false) => {
            return Err(Box::new(ParseError(
                "serial and parallel sweep output diverged — determinism bug".into(),
            )));
        }
        None => {}
    }

    out.write_all(report.render().as_bytes())?;
    Ok(())
}

/// The `--bench-out`/`--out` methodology: warmup, then the full thread
/// ladder with a byte-identity check across every render. `compose` picks
/// the JSON dialect (`bench_json` for sweeps, `workflow_bench_json` for
/// workflow grids).
fn run_grid_bench(
    spec: &SweepSpec,
    bench_path: &str,
    compose: fn(&SweepReport, &[RunTiming], Option<bool>) -> String,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    // Warmup: full serial run, result discarded, never timed.
    let _ = SweepRunner::new().threads(1).run(spec)?;

    let mut runs = Vec::new();
    let mut first_render: Option<String> = None;
    let mut last = None;
    for &t in &BENCH_THREAD_LADDER {
        let report = SweepRunner::new().threads(t).run(spec)?;
        eprintln!("{}", report.timing_line());
        runs.push(RunTiming {
            threads: report.threads,
            wall_secs: report.wall_secs,
        });
        let render = report.render();
        match &first_render {
            None => first_render = Some(render),
            Some(first) if *first != render => {
                return Err(Box::new(ParseError(format!(
                    "sweep output at {t} thread(s) diverged from serial — determinism bug"
                ))));
            }
            Some(_) => {}
        }
        last = Some(report);
    }
    let report = last.ok_or_else(|| ParseError("empty bench ladder".into()))?;
    if let Some(speedup) = propack_sweep::speedup(&runs) {
        eprintln!("all renders identical across the thread ladder; best speedup {speedup:.2}x");
    }

    out.write_all(report.render().as_bytes())?;
    std::fs::write(bench_path, compose(&report, &runs, Some(true)))?;
    eprintln!("wrote {bench_path}");
    Ok(())
}

/// Resolve a replay controller key.
pub fn resolve_controller(key: &str) -> Result<Controller, ParseError> {
    Controller::parse(key).map_err(ParseError)
}

/// Resolve the arrival trace of a `propack replay` invocation: a CSV file
/// (`--trace`), a synthetic generator (`--arrivals`), or — with neither —
/// the bundled diurnal sample.
fn resolve_trace(ra: &ReplayArgs) -> Result<ArrivalTrace, Box<dyn std::error::Error>> {
    let from_file =
        |text: &str, origin: &str| -> Result<ArrivalTrace, Box<dyn std::error::Error>> {
            let traces = ArrivalTrace::load_csv(text)?;
            match &ra.trace_app {
                Some(app) => Ok(ArrivalTrace::select(&traces, app)?.clone()),
                None if traces.len() == 1 => Ok(traces.into_iter().next().expect("one trace")),
                None => {
                    let apps: Vec<&str> = traces.iter().map(|t| t.name()).collect();
                    Err(Box::new(ParseError(format!(
                        "{origin} holds {} apps ({}); pick one with --trace-app",
                        traces.len(),
                        apps.join(", ")
                    ))))
                }
            }
        };
    match (&ra.trace, &ra.arrivals) {
        (Some(_), Some(_)) => Err(Box::new(ParseError(
            "--trace and --arrivals are mutually exclusive".into(),
        ))),
        (Some(path), None) => from_file(&std::fs::read_to_string(path)?, path),
        (None, Some(spec)) => {
            // Synthetic horizons default to the bundled sample's 24 minutes.
            let horizon = ra.horizon.unwrap_or(1440.0);
            Ok(resolve_arrivals(spec, &ra.app, horizon, ra.seed)?)
        }
        (None, None) => {
            let traces = ArrivalTrace::bundled_diurnal()?;
            let app = ra.trace_app.as_deref().unwrap_or("sort");
            Ok(ArrivalTrace::select(&traces, app)?.clone())
        }
    }
}

/// Parse a synthetic generator spec for `--arrivals`.
fn resolve_arrivals(
    spec: &str,
    name: &str,
    horizon: f64,
    seed: u64,
) -> Result<ArrivalTrace, ParseError> {
    let bad_params =
        |what: &str, spec: &str| ParseError(format!("bad --arrivals '{spec}': expected {what}"));
    let floats = |body: &str, n: usize, what: &str| -> Result<Vec<f64>, ParseError> {
        let vals: Vec<f64> = body
            .split(',')
            .map(|v| v.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|_| bad_params(what, spec))?;
        if vals.len() == n {
            Ok(vals)
        } else {
            Err(bad_params(what, spec))
        }
    };
    let trace = if let Some(body) = spec.strip_prefix("poisson:") {
        let v = floats(body, 1, "poisson:<rate_per_sec>")?;
        ArrivalTrace::poisson(name, v[0], horizon, seed)
    } else if let Some(body) = spec.strip_prefix("diurnal:") {
        let v = floats(body, 3, "diurnal:<mean_rate>,<amplitude>,<period_secs>")?;
        ArrivalTrace::diurnal(name, v[0], v[1], v[2], horizon, seed)
    } else if let Some(body) = spec.strip_prefix("burst:") {
        let v = floats(body, 3, "burst:<on_rate>,<on_secs>,<off_secs>")?;
        ArrivalTrace::burst_train(name, v[0], v[1], v[2], horizon, seed)
    } else {
        return Err(ParseError(format!(
            "unknown --arrivals generator '{spec}'; use poisson:, diurnal:, or burst:"
        )));
    };
    trace.map_err(|e| ParseError(e.to_string()))
}

/// `propack replay`: replay the trace under each controller, render every
/// per-epoch report deterministically to `out`, and emit host timing to
/// stderr / `BENCH_replay.json`.
///
/// `--compare-serial` routes the identical controller grid through the
/// sweep engine's seventh axis at one and many threads and requires
/// byte-identical renders. `--out` follows the `BENCH_sweep.json`
/// methodology: one untimed warmup pass, then two timed passes whose
/// renders must match (the second pass supplies the repeat timings).
fn run_replay(
    ra: &ReplayArgs,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let work = resolve_app(&ra.app)?;
    let platform = resolve_platform(&ra.platform)?;
    let trace = resolve_trace(ra)?;
    let objective = resolve_objective(&ra.objective)?;
    let scenario = FaultScenario::parse(&ra.faults).map_err(|e| ParseError(e.to_string()))?;
    let keepalive =
        KeepAliveScenario::parse(&ra.keepalive).map_err(|e| ParseError(e.to_string()))?;
    let controllers = ra
        .controllers
        .iter()
        .map(|c| resolve_controller(c))
        .collect::<Result<Vec<_>, _>>()?;
    if controllers.is_empty() {
        return Err(Box::new(ParseError(
            "--controller needs at least one controller".into(),
        )));
    }

    let engine = ReplayEngine::new(ReplaySpec {
        epoch_secs: ra.epoch_secs,
        seed: ra.seed,
        objective,
        qos_secs: ra.qos,
        faults: scenario.resolve(platform.as_ref()),
        retry: scenario.retry,
        keepalive: keepalive.policy,
        regret: ra.regret,
        fit_config: ProPackConfig::default(),
    });
    let models = ModelCache::new();

    if ra.compare_serial {
        compare_serial_replay(
            ra,
            &work,
            &trace,
            &scenario,
            &keepalive,
            objective,
            &controllers,
        )?;
    }

    if ra.out.is_some() {
        // Warmup pass: fills the model cache and OS caches, never timed.
        for controller in &controllers {
            engine.run(platform.as_ref(), &work, &trace, controller, &models)?;
        }
    }

    let mut reports = Vec::new();
    let mut runs = Vec::new();
    for controller in &controllers {
        let (report, timing) = timed_replay(
            &engine,
            platform.as_ref(),
            &work,
            &trace,
            controller,
            &models,
        )?;
        eprintln!(
            "timing: {} replayed {} epochs in {:.3}s (fit {:.1} ms)",
            report.controller,
            report.epochs.len(),
            timing.wall_secs,
            report.fit_ms,
        );
        reports.push(report);
        runs.push(timing);
    }
    for (i, report) in reports.iter().enumerate() {
        if i > 0 {
            writeln!(out)?;
        }
        out.write_all(report.render().as_bytes())?;
    }

    if let Some(path) = &ra.out {
        // Second timed pass doubles as the re-run determinism check.
        for (controller, first) in controllers.iter().zip(&reports) {
            let (second, timing) = timed_replay(
                &engine,
                platform.as_ref(),
                &work,
                &trace,
                controller,
                &models,
            )?;
            if second.render() != first.render() {
                return Err(Box::new(ParseError(format!(
                    "replay output for {} diverged between passes — determinism bug",
                    first.controller
                ))));
            }
            runs.push(timing);
        }
        std::fs::write(path, replay_bench_json(&reports, &runs, Some(true)))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// `propack fleet`: generate one synthetic multi-tenant fleet per
/// controller, replay each on the sharded engine, render the per-tenant /
/// per-epoch report deterministically to `out`, and emit host timing to
/// stderr / `BENCH_fleet.json`.
///
/// `--compare-serial` re-runs every pass at `--threads 1` and requires
/// byte-identical renders (the sharded core's contract). `--out` follows
/// the `BENCH_sweep.json` methodology: one untimed warmup pass, then two
/// timed passes whose renders must match.
fn run_fleet(
    fa: &FleetArgs,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let platform = resolve_shared_platform(&fa.platform)?;
    let objective = resolve_objective(&fa.objective)?;
    let scenario = FaultScenario::parse(&fa.faults).map_err(|e| ParseError(e.to_string()))?;
    let keepalive =
        KeepAliveScenario::parse(&fa.keepalive).map_err(|e| ParseError(e.to_string()))?;
    if fa.controllers.is_empty() {
        return Err(Box::new(ParseError(
            "--controller needs at least one controller".into(),
        )));
    }
    let threads = if fa.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        fa.threads
    };

    let spec = |threads: usize| FleetSpec {
        epoch_secs: fa.epoch_secs,
        seed: fa.seed,
        objective,
        qos_secs: fa.qos,
        faults: scenario.resolve(platform.as_ref()),
        retry: scenario.retry,
        keepalive: keepalive.policy,
        fit_config: ProPackConfig::default(),
        servers: fa.servers,
        slots_per_server: fa.slots,
        threads,
        fluid_min_cohort: fa.fluid,
        keep_tenant_epochs: false,
    };

    // One fleet per controller: same apps, profiles, and traces (the
    // generator never consults the controller), differing only in policy.
    let fleets: Vec<Vec<TenantSpec>> = fa
        .controllers
        .iter()
        .map(|key| {
            let controller = resolve_controller(key)?;
            synthetic_fleet(&SyntheticFleetConfig {
                apps: fa.apps,
                seed: fa.seed,
                horizon_secs: fa.horizon,
                profiles: fa.profiles,
                max_funcs_per_app: fa.max_funcs,
                daily_invocations: fa.invocations,
                controller,
            })
            .map_err(|e| ParseError(format!("fleet generation failed: {e}")))
        })
        .collect::<Result<_, _>>()?;

    if fa.compare_serial {
        for (key, tenants) in fa.controllers.iter().zip(&fleets) {
            let serial = FleetEngine::new(spec(1))
                .run(platform.as_ref(), tenants, &ModelCache::new())?
                .render();
            let parallel = FleetEngine::new(spec(threads))
                .run(platform.as_ref(), tenants, &ModelCache::new())?
                .render();
            if serial != parallel {
                return Err(Box::new(ParseError(format!(
                    "fleet output for {key} diverged between --threads 1 and \
                     --threads {threads} — determinism bug"
                ))));
            }
            eprintln!(
                "compare-serial: {key} byte-identical at --threads 1 and --threads {threads} \
                 ({} tenants)",
                tenants.len()
            );
        }
    }

    let engine = FleetEngine::new(spec(threads));
    let models = ModelCache::new();
    if fa.out.is_some() {
        // Warmup pass: fills the model cache and OS caches, never timed.
        for tenants in &fleets {
            engine.run(platform.as_ref(), tenants, &models)?;
        }
    }

    let mut reports = Vec::new();
    let mut timed = Vec::new();
    for tenants in &fleets {
        let (report, timing) = timed_fleet(&engine, platform.as_ref(), tenants, &models)?;
        eprintln!(
            "timing: {} replayed {} tenants x {} epochs ({} invocations) in {:.3}s (fit {:.1} ms)",
            report.controller,
            report.tenants.len(),
            report.epochs.len(),
            report.total_arrivals(),
            timing.wall_secs,
            report.fit_ms,
        );
        reports.push(report);
        timed.push(timing);
    }
    for (i, report) in reports.iter().enumerate() {
        if i > 0 {
            writeln!(out)?;
        }
        out.write_all(report.render().as_bytes())?;
    }

    if let Some(path) = &fa.out {
        // Second timed pass doubles as the re-run determinism check.
        let mut runs = timed.clone();
        for (tenants, first) in fleets.iter().zip(&reports) {
            let (second, timing) = timed_fleet(&engine, platform.as_ref(), tenants, &models)?;
            if second.render() != first.render() {
                return Err(Box::new(ParseError(format!(
                    "fleet output for {} diverged between passes — determinism bug",
                    first.controller
                ))));
            }
            runs.push(timing);
        }
        std::fs::write(path, fleet_bench_json(&reports, &timed, &runs, Some(true)))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// The `--compare-serial` cross-check: the same controllers as a sweep
/// controller axis, serial vs parallel, byte-identical or error.
fn compare_serial_replay(
    ra: &ReplayArgs,
    work: &WorkProfile,
    trace: &ArrivalTrace,
    scenario: &FaultScenario,
    keepalive: &KeepAliveScenario,
    objective: Objective,
    controllers: &[Controller],
) -> Result<(), Box<dyn std::error::Error>> {
    let mut grid = ReplayGrid::new(trace.clone(), ra.epoch_secs).objective(objective);
    if let Some(qos) = ra.qos {
        grid = grid.qos_secs(qos);
    }
    let spec = SweepSpec::new("replay-compare")
        .platforms([resolve_platform_axis(&ra.platform)?])
        .workloads([work.clone()])
        .concurrency([1])
        .policies([PackingPolicy::NoPacking])
        .seeds([ra.seed])
        .faults([scenario.clone()])
        .keepalive([keepalive.clone()])
        .replay(grid)
        .controllers(controllers.to_vec());
    let threads = if ra.threads == 0 {
        std::thread::available_parallelism().map_or(2, |n| n.get())
    } else {
        ra.threads
    }
    .max(2);
    let serial = SweepRunner::new().run(&spec)?;
    let parallel = SweepRunner::new().threads(threads).run(&spec)?;
    if serial.render() != parallel.render() {
        return Err(Box::new(ParseError(
            "serial and parallel replay sweep output diverged — determinism bug".into(),
        )));
    }
    eprintln!(
        "sweep cross-check: {} controller cells byte-identical at 1 and {} thread(s)",
        serial.cells.len(),
        parallel.threads,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_sweep() {
        let cmd = parse(&s(&[
            "sweep",
            "--apps",
            "sort,video",
            "--platforms",
            "aws,google",
            "--concurrency",
            "100,1000",
            "--policies",
            "no-packing,fixed:4,propack:expense",
            "--seeds",
            "1,2",
            "--faults",
            "none,crash=0.01;attempts=5",
            "--keepalive",
            "cold,fixed:60",
            "--threads",
            "4",
            "--bench-out",
            "B.json",
            "--compare-serial",
        ]))
        .unwrap();
        match cmd {
            Command::Sweep(sa) => {
                assert_eq!(sa.apps, vec!["sort", "video"]);
                assert_eq!(sa.platforms, vec!["aws", "google"]);
                assert_eq!(sa.concurrency, vec![100, 1000]);
                assert_eq!(sa.seeds, vec![1, 2]);
                assert_eq!(sa.faults, vec!["none", "crash=0.01;attempts=5"]);
                assert_eq!(sa.keepalive, vec!["cold", "fixed:60"]);
                assert_eq!(sa.threads, 4);
                assert_eq!(sa.bench_out.as_deref(), Some("B.json"));
                assert!(sa.compare_serial);
                let spec = build_sweep_spec(&sa).unwrap();
                assert_eq!(spec.cell_count(), 2 * 2 * 2 * 3 * 2 * 2 * 2);
                assert_eq!(spec.faults[1].label, "crash=0.01;attempts=5");
                assert_eq!(spec.faults[1].retry.max_attempts, 5);
                assert_eq!(spec.keepalive[1].label, "fixed:60");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn bad_keepalive_scenarios_are_rejected() {
        for bad in ["fixed:0", "cold:5", "thermal"] {
            match parse(&s(&["sweep", "--apps", "sort", "--keepalive", bad])).unwrap() {
                Command::Sweep(sa) => {
                    let err = build_sweep_spec(&sa).unwrap_err();
                    assert!(
                        err.0.contains("keep-alive"),
                        "unhelpful error for {bad:?}: {err}"
                    );
                }
                other => panic!("wrong command {other:?}"),
            }
        }
    }

    #[test]
    fn bad_fault_scenarios_are_rejected() {
        for bad in ["crash=1.5", "warp=0.1", "crash"] {
            match parse(&s(&["sweep", "--apps", "sort", "--faults", bad])).unwrap() {
                Command::Sweep(sa) => {
                    let err = build_sweep_spec(&sa).unwrap_err();
                    assert!(
                        err.0.contains("fault scenario"),
                        "unhelpful error for {bad:?}: {err}"
                    );
                }
                other => panic!("wrong command {other:?}"),
            }
        }
    }

    #[test]
    fn sweep_defaults_are_filled_in() {
        match parse(&s(&["sweep", "--apps", "sort"])).unwrap() {
            Command::Sweep(sa) => {
                assert_eq!(sa.platforms, vec!["aws"]);
                assert_eq!(sa.concurrency, vec![100, 1000]);
                assert_eq!(sa.policies.len(), 3);
                assert_eq!(sa.seeds, vec![42]);
                assert_eq!(sa.faults, vec!["none"]);
                assert_eq!(sa.threads, 0); // auto
                assert!(!sa.compare_serial);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&s(&["sweep"])).is_err(), "--apps is required");
    }

    #[test]
    fn parses_figures_and_validate() {
        assert_eq!(
            parse(&s(&["figures", "--fig", "fig01,fig21"])).unwrap(),
            Command::Figures(FiguresArgs {
                ids: vec!["fig01".into(), "fig21".into()],
                json: false,
            })
        );
        assert_eq!(
            parse(&s(&["figures", "--fig", "all", "--json"])).unwrap(),
            Command::Figures(FiguresArgs {
                ids: Vec::new(),
                json: true,
            })
        );
        match parse(&s(&["validate", "--app", "sort", "-c", "500"])).unwrap() {
            Command::Validate(va) => {
                assert_eq!(va.app, "sort");
                assert_eq!(va.concurrency, 500);
                assert_eq!(va.platform, "aws");
                assert_eq!(va.seed, 42);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn removed_single_cell_commands_name_their_replacement() {
        for gone in ["plan", "run", "compare"] {
            let err = parse(&s(&[gone, "--app", "sort", "-c", "100"])).unwrap_err();
            assert!(err.0.contains("was removed"), "{gone}: {err}");
            assert!(err.0.contains("propack sweep"), "{gone}: {err}");
        }
        // `--model` went with them: no subcommand accepts it.
        let err = parse(&s(&["sweep", "--apps", "sort", "--model", "m.json"])).unwrap_err();
        assert!(err.0.contains("unknown flag"), "{err}");
        let (_, notes) = parse_with_notes(&s(&["sweep", "--apps", "sort"])).unwrap();
        assert!(notes.is_empty(), "{notes:?}");
    }

    #[test]
    fn rejects_missing_required_args() {
        assert!(parse(&s(&["validate", "-c", "100"])).is_err());
        assert!(parse(&s(&["validate", "--app", "sort"])).is_err());
        assert!(parse(&s(&["validate", "--app", "sort", "-c", "zero"])).is_err());
        assert!(parse(&s(&["frobnicate"])).is_err());
        assert!(parse(&s(&["validate", "--bogus", "x"])).is_err());
        assert!(parse(&s(&["sweep", "--apps", "sort", "--threads"])).is_err());
        assert!(parse(&s(&["sweep", "--apps", "sort", "--concurrency", "x"])).is_err());
    }

    #[test]
    fn empty_args_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&s(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn resolves_all_apps_and_platforms() {
        for key in [
            "video",
            "sort",
            "stateless-cost",
            "smith-waterman",
            "xapian",
        ] {
            assert!(resolve_app(key).is_ok(), "{key}");
        }
        assert!(resolve_app("nope").is_err());
        for key in ["aws", "google", "azure", "funcx"] {
            assert!(resolve_platform(key).is_ok(), "{key}");
            assert!(resolve_platform_axis(key).is_ok(), "{key}");
        }
        assert!(resolve_platform("ibm").is_err());
        assert!(resolve_platform_axis("ibm").is_err());
    }

    #[test]
    fn resolves_objectives() {
        assert_eq!(
            resolve_objective("joint").unwrap(),
            Objective::Joint { w_s: 0.5 }
        );
        assert_eq!(
            resolve_objective("service").unwrap(),
            Objective::ServiceTime
        );
        assert_eq!(resolve_objective("expense").unwrap(), Objective::Expense);
        assert_eq!(
            resolve_objective("joint:0.7").unwrap(),
            Objective::Joint { w_s: 0.7 }
        );
        assert!(resolve_objective("fastest").is_err());
    }

    #[test]
    fn out_of_range_joint_weights_error_instead_of_clamping() {
        for bad in ["joint:1.5", "joint:-0.1", "joint:nan"] {
            let err = resolve_objective(bad).unwrap_err();
            assert!(
                err.0.contains("must be in [0, 1]"),
                "weight {bad:?} should report its domain, got: {err}"
            );
        }
        // The boundaries themselves are legal.
        assert_eq!(
            resolve_objective("joint:0").unwrap(),
            Objective::Joint { w_s: 0.0 }
        );
        assert_eq!(
            resolve_objective("joint:1").unwrap(),
            Objective::Joint { w_s: 1.0 }
        );
    }

    #[test]
    fn resolves_policies() {
        assert_eq!(
            resolve_policy("no-packing").unwrap(),
            PackingPolicy::NoPacking
        );
        assert_eq!(resolve_policy("pywren").unwrap(), PackingPolicy::Pywren);
        assert_eq!(resolve_policy("fixed:8").unwrap(), PackingPolicy::Fixed(8));
        assert_eq!(resolve_policy("fixed-8").unwrap(), PackingPolicy::Fixed(8));
        assert_eq!(
            resolve_policy("propack").unwrap(),
            PackingPolicy::propack_default()
        );
        assert_eq!(
            resolve_policy("propack:expense").unwrap(),
            PackingPolicy::Propack {
                objective: Objective::Expense
            }
        );
        assert!(resolve_policy("magic").is_err());
        assert!(resolve_policy("fixed:x").is_err());
    }

    #[test]
    fn sweep_command_end_to_end() {
        let dir = std::env::temp_dir().join("propack-cli-sweep-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bench_path = dir.join("BENCH_sweep.json");
        let cmd = Command::Sweep(SweepArgs {
            name: "cli-e2e".into(),
            apps: vec!["sort".into()],
            platforms: vec!["aws".into()],
            concurrency: vec![100, 400],
            policies: vec!["no-packing".into(), "fixed:4".into()],
            seeds: vec![1],
            faults: vec!["none".into(), "crash=0.02".into()],
            keepalive: vec!["cold".into()],
            threads: 2,
            bench_out: Some(bench_path.to_str().unwrap().to_string()),
            compare_serial: true,
        });
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("sweep cli-e2e: 8 cells"), "{text}");
        assert!(text.contains("fixed-4"), "{text}");
        assert!(text.contains("crash=0.02"), "{text}");
        let json = std::fs::read_to_string(&bench_path).unwrap();
        assert!(json.contains("\"outputs_identical\": true"), "{json}");
        assert!(json.contains("\"runs\""), "{json}");
        // The bench methodology reports the full thread ladder…
        for t in BENCH_THREAD_LADDER {
            assert!(json.contains(&format!("\"threads\": {t}")), "{json}");
        }
        // …and the per-cell fit-vs-run wall-time split.
        assert!(json.contains("\"fit_ms\""), "{json}");
        assert!(json.contains("\"run_ms\""), "{json}");
        std::fs::remove_file(&bench_path).ok();
    }

    #[test]
    fn sweep_keepalive_axis_end_to_end() {
        let cmd = parse(&s(&[
            "sweep",
            "--apps",
            "sort",
            "--concurrency",
            "50",
            "--policies",
            "fixed:2",
            "--keepalive",
            "cold,fixed:60",
        ]))
        .unwrap();
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("sweep cli-sweep: 2 cells"), "{text}");
        // Cold lines keep the pre-pool format; warm lines carry the column.
        assert!(text.contains("ka=fixed:60"), "{text}");
        assert!(!text.contains("ka=cold"), "{text}");
    }

    #[test]
    fn parses_workflow_and_fills_defaults() {
        match parse(&s(&[
            "workflow",
            "--apps",
            "sort",
            "--shapes",
            "task,diamond",
            "--concurrency",
            "100",
            "--policies",
            "no-packing,fixed:4",
            "--seeds",
            "7",
            "--threads",
            "2",
            "--compare-serial",
        ]))
        .unwrap()
        {
            Command::Workflow(wa) => {
                assert_eq!(wa.apps, vec!["sort"]);
                assert_eq!(wa.shapes, vec!["task", "diamond"]);
                assert_eq!(wa.concurrency, vec![100]);
                assert_eq!(wa.seeds, vec![7]);
                assert!(wa.compare_serial);
                let spec = build_workflow_spec(&wa).unwrap();
                assert_eq!(spec.cell_count(), 2 * 2);
                assert_eq!(spec.workflows, vec!["task", "diamond"]);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&s(&["workflow"])).unwrap() {
            Command::Workflow(wa) => {
                assert_eq!(wa.apps, vec!["sort"]);
                assert_eq!(
                    wa.shapes,
                    vec!["task", "seq-map", "diamond", "mixed:cpu+io"]
                );
                assert_eq!(wa.concurrency, vec![200]);
                assert_eq!(wa.policies, vec!["no-packing", "propack"]);
                assert_eq!(wa.seeds, vec![42]);
                assert_eq!(wa.threads, 0);
                assert!(wa.out.is_none());
                assert!(!wa.compare_serial);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn workflow_rejects_pywren_and_unknown_shapes() {
        for (flags, needle) in [
            (vec!["--policies", "pywren"], "pywren"),
            (vec!["--shapes", "triangle"], "workflow shape"),
        ] {
            let mut args = vec!["workflow", "--apps", "sort"];
            args.extend(flags);
            match parse(&s(&args)).unwrap() {
                Command::Workflow(wa) => {
                    let err = build_workflow_spec(&wa).unwrap_err();
                    assert!(err.0.contains(needle), "{err}");
                }
                other => panic!("wrong command {other:?}"),
            }
        }
    }

    #[test]
    fn workflow_command_end_to_end() {
        let dir = std::env::temp_dir().join("propack-cli-workflow-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bench_path = dir.join("BENCH_workflow.json");
        let cmd = Command::Workflow(WorkflowArgs {
            name: "wf-e2e".into(),
            apps: vec!["sort".into()],
            shapes: vec!["task".into(), "diamond".into()],
            platforms: vec!["aws".into()],
            concurrency: vec![100],
            policies: vec!["no-packing".into(), "fixed:4".into()],
            seeds: vec![1, 2],
            faults: vec!["none".into()],
            keepalive: vec!["cold".into()],
            threads: 2,
            out: Some(bench_path.to_str().unwrap().to_string()),
            compare_serial: false,
        });
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("sweep wf-e2e: 8 cells"), "{text}");
        assert!(text.contains("wf=task"), "{text}");
        assert!(text.contains("wf=diamond"), "{text}");
        let json = std::fs::read_to_string(&bench_path).unwrap();
        assert!(json.contains("\"bench\": \"workflow\""), "{json}");
        assert!(json.contains("\"outputs_identical\": true"), "{json}");
        assert!(
            json.contains("\"policy\": \"workflow-diamond-fixed-4\""),
            "{json}"
        );
        for t in BENCH_THREAD_LADDER {
            assert!(json.contains(&format!("\"threads\": {t}")), "{json}");
        }
        std::fs::remove_file(&bench_path).ok();
    }

    #[test]
    fn parses_replay() {
        match parse(&s(&[
            "replay",
            "--app",
            "sort",
            "--epoch",
            "120",
            "--controller",
            "fixed:4,oracle,propack:ewma",
            "--faults",
            "crash=0.01",
            "--keepalive",
            "fixed:120",
            "--seed",
            "7",
            "--qos",
            "90",
            "--out",
            "R.json",
            "--compare-serial",
        ]))
        .unwrap()
        {
            Command::Replay(ra) => {
                assert_eq!(ra.app, "sort");
                assert_eq!(ra.epoch_secs, 120.0);
                assert_eq!(ra.controllers, vec!["fixed:4", "oracle", "propack:ewma"]);
                assert_eq!(ra.faults, "crash=0.01");
                assert_eq!(ra.keepalive, "fixed:120");
                assert_eq!(ra.seed, 7);
                assert_eq!(ra.qos, Some(90.0));
                assert_eq!(ra.out.as_deref(), Some("R.json"));
                assert!(ra.compare_serial);
                assert!(ra.trace.is_none() && ra.arrivals.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn replay_defaults_are_filled_in() {
        match parse(&s(&["replay"])).unwrap() {
            Command::Replay(ra) => {
                assert_eq!(ra.app, "sort");
                assert_eq!(ra.platform, "aws");
                assert_eq!(ra.epoch_secs, 60.0);
                assert_eq!(ra.controllers, vec!["propack:ewma"]);
                assert_eq!(ra.objective, "service");
                assert_eq!(ra.faults, "none");
                assert_eq!(ra.keepalive, "cold");
                assert_eq!(ra.seed, 42);
                assert!(!ra.compare_serial);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn resolves_arrival_generators() {
        let p = resolve_arrivals("poisson:0.5", "w", 100.0, 1).unwrap();
        assert!(p.len() > 10);
        let d = resolve_arrivals("diurnal:1.0,0.8,600", "w", 600.0, 1).unwrap();
        assert!(d.len() > 100);
        let b = resolve_arrivals("burst:2.0,10,50", "w", 300.0, 1).unwrap();
        assert!(b.len() > 5);
        for bad in [
            "poisson:x",
            "diurnal:1.0",
            "burst:2.0,10",
            "sawtooth:1",
            "diurnal:1.0,2.0,600",
        ] {
            assert!(resolve_arrivals(bad, "w", 100.0, 1).is_err(), "{bad}");
        }
    }

    #[test]
    fn replay_rejects_conflicting_trace_sources() {
        let ra = ReplayArgs {
            trace: Some("t.csv".into()),
            arrivals: Some("poisson:1".into()),
            ..default_replay_args()
        };
        let err = resolve_trace(&ra).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
    }

    fn default_replay_args() -> ReplayArgs {
        match parse(&s(&["replay"])).unwrap() {
            Command::Replay(ra) => ra,
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn replay_bundled_trace_needs_no_flags_and_selects_sort() {
        let trace = resolve_trace(&default_replay_args()).unwrap();
        assert_eq!(trace.name(), "sort");
        assert!(trace.len() > 1000, "bundled diurnal sample is non-trivial");
        // The other bundled app is reachable with --trace-app.
        let video = resolve_trace(&ReplayArgs {
            trace_app: Some("video".into()),
            ..default_replay_args()
        })
        .unwrap();
        assert_eq!(video.name(), "video");
    }

    #[test]
    fn replay_command_end_to_end() {
        let dir = std::env::temp_dir().join("propack-cli-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bench_path = dir.join("BENCH_replay.json");
        let cmd = Command::Replay(ReplayArgs {
            arrivals: Some("diurnal:1.0,0.8,600".into()),
            horizon: Some(600.0),
            epoch_secs: 100.0,
            controllers: vec!["fixed:4".into(), "propack:ewma".into()],
            threads: 2,
            compare_serial: true,
            regret: true,
            out: Some(bench_path.to_str().unwrap().to_string()),
            ..default_replay_args()
        });
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("controller=fixed-4"), "{text}");
        assert!(text.contains("controller=propack-ewma"), "{text}");
        assert!(text.contains("forecast_mae="), "{text}");
        assert!(text.contains("regret: service_s="), "{text}");
        let json = std::fs::read_to_string(&bench_path).unwrap();
        assert!(json.contains("\"bench\": \"replay\""), "{json}");
        assert!(json.contains("\"outputs_identical\": true"), "{json}");
        assert!(json.contains("\"epoch_run_ms\""), "{json}");
        assert!(json.contains("\"service_regret_secs\""), "{json}");
        assert!(json.contains("\"expense_regret_usd\""), "{json}");
        std::fs::remove_file(&bench_path).ok();
    }

    #[test]
    fn figures_rejects_unknown_ids() {
        let cmd = Command::Figures(FiguresArgs {
            ids: vec!["fig99".into()],
            json: false,
        });
        let mut buf = Vec::new();
        assert!(execute(cmd, &mut buf).is_err());
    }

    #[test]
    fn listing_commands_render() {
        for cmd in [Command::Apps, Command::Platforms, Command::Help] {
            let mut buf = Vec::new();
            execute(cmd, &mut buf).unwrap();
            assert!(!buf.is_empty());
        }
    }

    #[test]
    fn help_lists_every_subcommand() {
        let mut buf = Vec::new();
        execute(Command::Help, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for def in SUBCOMMANDS {
            assert!(
                text.contains(&format!("propack {}", def.name)),
                "{}",
                def.name
            );
        }
    }
}
