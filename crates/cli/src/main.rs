//! The `propack` binary: see `propack help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match propack_cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut out = std::io::stdout();
    if let Err(e) = propack_cli::execute(cmd, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
