//! The multi-tenant fleet engine, pinned end to end: reports render
//! byte-identically at `--threads 1/4/8` and across serial re-runs, tenant
//! input order is irrelevant, and a single-tenant fleet with ample
//! capacity reproduces the solo `ReplayEngine` replay **bit for bit** —
//! same per-epoch rows, same render — including under faults, retries,
//! and a shared warm pool.

use std::sync::Arc;

use propack_repro::fleet::{synthetic_fleet, FleetEngine, FleetSpec, SyntheticFleetConfig};
use propack_repro::platform::{FaultSpec, KeepAlivePolicy, PlatformBuilder, RetryPolicy};
use propack_repro::propack::{cache::ModelCache, ProPackConfig};
use propack_repro::replay::{ArrivalTrace, Controller, ReplayEngine, ReplaySpec};
use propack_repro::workloads::Benchmarks;

fn small_fit() -> ProPackConfig {
    ProPackConfig {
        scaling_levels: vec![10, 20, 40],
        ..ProPackConfig::default()
    }
}

fn azure_style_fleet() -> Vec<propack_repro::fleet::TenantSpec> {
    synthetic_fleet(&SyntheticFleetConfig {
        apps: 15,
        daily_invocations: 900.0,
        horizon_secs: 600.0,
        ..SyntheticFleetConfig::default()
    })
    .expect("synthetic fleet generates")
}

fn fleet_spec(threads: usize) -> FleetSpec {
    FleetSpec {
        epoch_secs: 120.0,
        threads,
        fit_config: small_fit(),
        keepalive: KeepAlivePolicy::FixedKeepAlive { idle_ttl: 120.0 },
        faults: FaultSpec::none().with_crash_rate(0.05),
        retry: RetryPolicy {
            max_rounds: 2,
            ..RetryPolicy::no_retries()
        },
        qos_secs: Some(150.0),
        ..FleetSpec::default()
    }
}

#[test]
fn fleet_renders_byte_identically_across_thread_counts() {
    let platform = PlatformBuilder::aws().build();
    let tenants = azure_style_fleet();
    let run = |threads: usize| {
        FleetEngine::new(fleet_spec(threads))
            .run(&platform, &tenants, &ModelCache::default())
            .expect("fleet replay runs")
            .render()
    };
    let reference = run(1);
    assert!(!reference.contains("ERROR"), "{reference}");
    for threads in [4, 8] {
        assert_eq!(
            reference.as_bytes(),
            run(threads).as_bytes(),
            "threads={threads} fleet output diverged from serial"
        );
    }
    // Serial re-run with a warm model cache is also byte-identical.
    let models = ModelCache::default();
    let warm = |_: usize| {
        FleetEngine::new(fleet_spec(1))
            .run(&platform, &tenants, &models)
            .expect("fleet replay runs")
            .render()
    };
    assert_eq!(reference.as_bytes(), warm(0).as_bytes());
    assert_eq!(reference.as_bytes(), warm(1).as_bytes());
}

#[test]
fn tenant_input_order_is_irrelevant() {
    let platform = PlatformBuilder::aws().build();
    let tenants = azure_style_fleet();
    // A deterministic shuffle: reverse, then rotate.
    let mut shuffled = tenants.clone();
    shuffled.reverse();
    shuffled.rotate_left(tenants.len() / 3);
    let a = FleetEngine::new(fleet_spec(4))
        .run(&platform, &tenants, &ModelCache::default())
        .expect("sorted input runs");
    let b = FleetEngine::new(fleet_spec(4))
        .run(&platform, &shuffled, &ModelCache::default())
        .expect("shuffled input runs");
    assert_eq!(a.render().as_bytes(), b.render().as_bytes());
}

#[test]
fn thousand_tenant_fleet_with_five_profiles_pays_exactly_five_fits() {
    let platform = PlatformBuilder::aws().build();
    let tenants = synthetic_fleet(&SyntheticFleetConfig {
        apps: 1000,
        max_funcs_per_app: 1,
        profiles: 5,
        daily_invocations: 2000.0,
        horizon_secs: 120.0,
        ..SyntheticFleetConfig::default()
    })
    .expect("synthetic fleet generates");
    assert_eq!(tenants.len(), 1000);

    let models = ModelCache::default();
    let report = FleetEngine::new(FleetSpec {
        epoch_secs: 120.0,
        fit_config: small_fit(),
        ..FleetSpec::default()
    })
    .run(&platform, &tenants, &models)
    .expect("fleet replay runs");

    // Identical tenants coalesce onto one fit per distinct profile: 1000
    // cache consults, 5 fits, and a single platform probe campaign (the
    // scaling ladder is application-independent).
    assert_eq!(report.distinct_fits, 5);
    assert_eq!(models.misses(), 5, "one fit per distinct function profile");
    assert_eq!(models.hits(), 995, "every other tenant reuses a fit");
    assert_eq!(
        models.scaling_campaigns(),
        1,
        "one scaling-probe campaign per platform, not per tenant"
    );
}

#[test]
fn single_tenant_fleet_is_bit_identical_to_replay_engine() {
    let platform = PlatformBuilder::aws().build();
    let work = Benchmarks::resolve("sort")
        .expect("sort benchmark")
        .profile();
    let trace = ArrivalTrace::diurnal("sort", 1.0, 0.8, 600.0, 600.0, 7).expect("trace");
    let faults = FaultSpec::none().with_crash_rate(0.05);
    let retry = RetryPolicy {
        max_rounds: 2,
        ..RetryPolicy::no_retries()
    };

    for controller_spec in ["propack:ewma", "fixed:4"] {
        let controller = Controller::parse(controller_spec).expect("controller parses");

        let solo = ReplayEngine::new(ReplaySpec {
            epoch_secs: 100.0,
            seed: 42,
            qos_secs: Some(150.0),
            faults,
            retry,
            keepalive: KeepAlivePolicy::FixedKeepAlive { idle_ttl: 120.0 },
            fit_config: small_fit(),
            ..ReplaySpec::default()
        })
        .run(
            &platform,
            &work,
            &trace,
            &controller,
            &ModelCache::default(),
        )
        .expect("solo replay runs");

        let tenant = propack_repro::fleet::TenantSpec {
            name: trace.name().to_string(),
            workload: Arc::new(work.clone()),
            trace: trace.clone(),
            controller: controller.clone(),
            seed: 42,
        };
        let fleet = FleetEngine::new(FleetSpec {
            epoch_secs: 100.0,
            seed: 42,
            qos_secs: Some(150.0),
            faults,
            retry,
            keepalive: KeepAlivePolicy::FixedKeepAlive { idle_ttl: 120.0 },
            fit_config: small_fit(),
            threads: 4,
            keep_tenant_epochs: true,
            ..FleetSpec::default()
        })
        .run(&platform, &[tenant], &ModelCache::default())
        .expect("single-tenant fleet runs");

        // Ample capacity: admission must be a no-op.
        assert_eq!(fleet.total_throttled(), 0, "{controller_spec}: throttled");
        let reconstructed = fleet
            .tenant_replay_report(0)
            .expect("tenant epochs were kept");
        // Bit identity: every per-epoch field, then the rendered bytes.
        assert_eq!(
            reconstructed.epochs, solo.epochs,
            "{controller_spec}: per-epoch rows diverged"
        );
        assert_eq!(reconstructed, solo, "{controller_spec}: reports diverged");
        assert_eq!(
            reconstructed.render().as_bytes(),
            solo.render().as_bytes(),
            "{controller_spec}: renders diverged"
        );
    }
}
