//! Heterogeneous packing (§5's future-work extension, implemented): one
//! user co-packs two of their applications into shared instances.
//!
//! ```sh
//! cargo run --release --example hetero_packing
//! ```
//!
//! Profiles Video and Sort separately (the homogeneous campaigns ProPack
//! already needs), then plans a mixed fleet analytically and validates the
//! prediction against the platform's mixed-instance mechanism.

use propack_repro::platform::mixed::MixSpec;
use propack_repro::platform::PlatformBuilder;
use propack_repro::platform::ServerlessPlatform;
use propack_repro::propack::hetero::{exec_in_mix, plan_mixed, AppDemand};
use propack_repro::propack::propack::{ProPackConfig, Propack};
use propack_repro::workloads::{sort::MapReduceSort, video::Video, Workload};

fn main() {
    let platform = PlatformBuilder::aws().build();
    let video = Video::default().profile();
    let sort = MapReduceSort::default().profile();

    // Per-app profiling — the same campaigns homogeneous ProPack runs.
    let cfg = ProPackConfig::default();
    let pp_video = Propack::build(&platform, &video, &cfg).expect("profile video");
    let pp_sort = Propack::build(&platform, &sort, &cfg).expect("profile sort");

    let demand_a = AppDemand {
        name: video.name.clone(),
        interference: pp_video.model.interference,
        concurrency: 3000,
        mem_gb: video.mem_gb,
    };
    let demand_b = AppDemand {
        name: sort.name.clone(),
        interference: pp_sort.model.interference,
        concurrency: 2000,
        mem_gb: sort.mem_gb,
    };

    let r = platform.prices().usd_per_gb_sec * platform.limits().mem_gb;
    let plan =
        plan_mixed(&demand_a, &demand_b, &pp_video.model.scaling, 10.0, r).expect("plannable mix");
    println!(
        "mixed plan: {} Video + {} Sort per instance → {} instances",
        plan.n_a, plan.n_b, plan.instances
    );
    println!(
        "predicted: Video ET {:.0}s, Sort ET {:.0}s, service {:.0}s, compute ${:.2}",
        plan.exec_a_secs, plan.exec_b_secs, plan.service_secs, plan.expense_usd
    );

    // Validate against the platform's mixed mechanism.
    let mix = MixSpec::pair((video.clone(), plan.n_a), (sort.clone(), plan.n_b));
    let outcome = platform
        .run_mixed_burst(&mix, plan.instances, 11)
        .expect("mixed burst");
    let measured_a = outcome.per_app[0].exec_summary().mean();
    let measured_b = outcome.per_app[1].exec_summary().mean();
    println!(
        "measured:  Video ET {:.0}s ({:+.1}%), Sort ET {:.0}s ({:+.1}%), bill ${:.2}",
        measured_a,
        100.0 * (measured_a - plan.exec_a_secs) / plan.exec_a_secs,
        measured_b,
        100.0 * (measured_b - plan.exec_b_secs) / plan.exec_b_secs,
        outcome.expense.total_usd()
    );

    // Cross-interference check: each app is slower in the mix than packed
    // alone at its own count, because it absorbs the other's pressure.
    let video_alone = exec_in_mix(
        &demand_a.interference,
        &demand_b.interference,
        plan.n_a,
        0,
        0,
    );
    let sort_alone = exec_in_mix(
        &demand_a.interference,
        &demand_b.interference,
        0,
        plan.n_b,
        1,
    );
    println!(
        "\ncross-interference: Video {:.0}s alone → {:.0}s mixed; Sort {:.0}s alone → {:.0}s mixed",
        video_alone, plan.exec_a_secs, sort_alone, plan.exec_b_secs
    );
}
