//! Packing controllers: how the packing degree is chosen each epoch.
//!
//! Four policies span the design space the replay experiments compare:
//!
//! * `no-packing` — every function gets its own instance (`P = 1`);
//! * `fixed:P` — the one-shot offline plan: a single degree for the whole
//!   trace, chosen before any arrivals are seen;
//! * `propack:<forecaster>` — the online ProPack controller: re-plan `P`
//!   each epoch from a *forecast* of the next epoch's concurrency;
//! * `oracle` — re-plan each epoch from the epoch's *true* concurrency.
//!   The oracle isolates forecast error: it pays the same model error as
//!   `propack:*` but zero forecast error, so the propack-vs-oracle gap is
//!   exactly the price of predicting the future.

use std::fmt;

use crate::forecast::ForecasterKind;

/// A packing-degree policy for the replay engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Controller {
    /// `P = 1` everywhere.
    NoPacking,
    /// A single static degree for every epoch.
    Fixed(u32),
    /// Re-plan per epoch with the epoch's true concurrency (clairvoyant).
    Oracle,
    /// Re-plan per epoch with a forecast of the epoch's concurrency.
    Propack(ForecasterKind),
}

impl Controller {
    /// Parse `no-packing`, `fixed:P` (or `fixed-P`), `oracle`,
    /// `propack[:forecaster[:param]]`.
    pub fn parse(input: &str) -> Result<Self, String> {
        let input = input.trim();
        if input.is_empty() {
            return Err("empty controller spec".to_string());
        }
        if input == "no-packing" {
            return Ok(Controller::NoPacking);
        }
        if input == "oracle" {
            return Ok(Controller::Oracle);
        }
        if let Some(rest) = input
            .strip_prefix("fixed:")
            .or_else(|| input.strip_prefix("fixed-"))
        {
            let p: u32 = rest
                .trim()
                .parse()
                .map_err(|_| format!("fixed degree `{rest}` is not an integer"))?;
            if p == 0 {
                return Err("fixed degree must be at least 1".to_string());
            }
            return Ok(Controller::Fixed(p));
        }
        if input == "propack" {
            return Ok(Controller::Propack(ForecasterKind::Ewma {
                alpha: crate::forecast::Ewma::DEFAULT_ALPHA,
            }));
        }
        if let Some(rest) = input.strip_prefix("propack:") {
            return ForecasterKind::parse(rest).map(Controller::Propack);
        }
        Err(format!(
            "unknown controller `{input}` (expected no-packing, fixed:P, oracle, or propack:<forecaster>)"
        ))
    }

    /// Stable display label used in reports and sweep cell keys, e.g.
    /// `fixed-4`, `propack-ewma`, `propack-window:5`.
    pub fn label(&self) -> String {
        match self {
            Controller::NoPacking => "no-packing".to_string(),
            Controller::Fixed(p) => format!("fixed-{p}"),
            Controller::Oracle => "oracle".to_string(),
            Controller::Propack(kind) => format!("propack-{}", kind.label()),
        }
    }

    /// True when this controller needs a fitted ProPack model.
    pub fn needs_model(&self) -> bool {
        matches!(self, Controller::Oracle | Controller::Propack(_))
    }
}

impl fmt::Display for Controller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_controller_form() {
        assert_eq!(
            Controller::parse("no-packing").expect("parses"),
            Controller::NoPacking
        );
        assert_eq!(
            Controller::parse("fixed:4").expect("parses"),
            Controller::Fixed(4)
        );
        assert_eq!(
            Controller::parse("fixed-7").expect("parses"),
            Controller::Fixed(7)
        );
        assert_eq!(
            Controller::parse("oracle").expect("parses"),
            Controller::Oracle
        );
        assert_eq!(
            Controller::parse("propack").expect("parses"),
            Controller::Propack(ForecasterKind::Ewma { alpha: 0.5 })
        );
        assert_eq!(
            Controller::parse("propack:window:5").expect("parses"),
            Controller::Propack(ForecasterKind::WindowMax { window: 5 })
        );
    }

    #[test]
    fn rejects_junk_specs() {
        for bad in [
            "",
            "fixed:0",
            "fixed:x",
            "propack:holt",
            "packer",
            "oracle:2",
        ] {
            assert!(Controller::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn labels_are_stable_and_model_need_is_explicit() {
        let cases = [
            ("no-packing", "no-packing", false),
            ("fixed:4", "fixed-4", false),
            ("oracle", "oracle", true),
            ("propack:ewma", "propack-ewma", true),
            ("propack:window", "propack-window", true),
        ];
        for (spec, label, needs) in cases {
            let c = Controller::parse(spec).expect("parses");
            assert_eq!(c.label(), label);
            assert_eq!(c.needs_model(), needs, "{spec}");
        }
    }
}
