//! Plain-text / JSON tables: the output format of every repro binary.

use serde::Serialize;

/// One reproduced figure or table: a caption, column headers, and rows.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment id ("fig09").
    pub id: String,
    /// Caption, matching the paper's figure caption in spirit.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes: paper-reported values, observed aggregates.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (panics if the width disagrees with the headers).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut text = String::new();
        text.push_str(&format!("== {} — {}\n", self.id, self.title));
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                out.push_str(&format!("{cell:<width$}  ", width = w));
            }
            format!("  {}\n", out.trim_end())
        };
        text.push_str(&line(&self.headers));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        text.push_str(&format!("  {}\n", "-".repeat(total.min(120))));
        for row in &self.rows {
            text.push_str(&line(row));
        }
        for n in &self.notes {
            text.push_str(&format!("  note: {n}\n"));
        }
        text
    }

    /// Render to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// JSON rendering (one object per table).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serializes")
    }
}

/// Format a float with sensible precision for table cells.
pub fn fmt(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Format dollars.
pub fn usd(v: f64) -> String {
    format!("${v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        feature = "offline-stub",
        ignore = "requires real serde_json (offline stub cannot serialize)"
    )]
    fn table_roundtrip() {
        let mut t = Table::new("fig00", "test", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        assert!(t.to_json().contains("fig00"));
        t.print(); // should not panic
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("fig00", "test", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1234.7), "1235");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(0.1234), "0.123");
        assert_eq!(pct(85.23), "85.2%");
        assert_eq!(usd(12.345), "$12.35");
    }
}
