//! Deterministic fault injection: seeded, replay-stable fault lanes.
//!
//! Real serverless fleets lose instances to crashes, failed cold starts,
//! shipping stalls, and stragglers; the happy-path simulator pretended they
//! don't exist. A [`FaultSpec`] describes the per-stage fault *processes*
//! (rates and severities) and a [`FaultPlan`] turns those processes into
//! concrete draws.
//!
//! Every draw comes from its own named lane of the seeded
//! [`RngStreams`] tree (`fault-crash`, `fault-provision`, `fault-ship`,
//! `fault-straggler`), indexed by `(instance, attempt)`. Two consequences:
//!
//! 1. *Replay stability*: a draw is a pure function of
//!    `(seed, lane, instance, attempt)` — it does not depend on event
//!    ordering, on how many other faults fired, or on the thread count of
//!    the surrounding sweep. The determinism contract (same seed ⇒
//!    bit-identical output at any `--threads`) holds with faults enabled.
//! 2. *Independence under refactoring*: fault lanes never touch the
//!    pre-existing `control-plane` / `exec` streams, so enabling (or
//!    adding) fault draws cannot shift the timeline of a fault-free run.
//!
//! Lane RNG must come from the seeded tree — constructing generators
//! directly in fault code is rejected by `cargo xtask simlint` (rule
//! `fault-rng`); wall-clock or OS-entropy seeding would break replay.

use crate::rng::{lanes, RngStreams};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-stage fault process rates and severities.
///
/// All rates are per-attempt Bernoulli probabilities in `[0, 1]`; factors
/// are multiplicative slowdowns `≥ 1`. The default is fault-free, so every
/// pre-existing burst spec replays its exact historical timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Probability an execution attempt crashes mid-run (the instance dies
    /// after completing a uniformly drawn fraction of its work; the partial
    /// run is billed).
    pub crash_rate: f64,
    /// Probability a cold provision attempt (microVM boot + runtime init)
    /// fails and must be redone.
    pub provision_failure_rate: f64,
    /// Probability a container's shipping transfer stalls.
    pub ship_stall_rate: f64,
    /// Effective slowdown of a stalled shipping transfer (`≥ 1`).
    pub ship_stall_factor: f64,
    /// Probability an instance is a straggler (slow hardware, noisy
    /// neighbour) for its whole lifetime.
    pub straggler_rate: f64,
    /// Execution slowdown of a straggler instance (`≥ 1`).
    pub straggler_factor: f64,
}

impl FaultSpec {
    /// The fault-free scenario (all rates zero) — draws are skipped
    /// entirely, so a fault-free burst takes no lane draws at all.
    pub fn none() -> Self {
        FaultSpec {
            crash_rate: 0.0,
            provision_failure_rate: 0.0,
            ship_stall_rate: 0.0,
            ship_stall_factor: 4.0,
            straggler_rate: 0.0,
            straggler_factor: 3.0,
        }
    }

    /// Whether every fault process is disabled.
    pub fn is_none(&self) -> bool {
        self.crash_rate <= 0.0
            && self.provision_failure_rate <= 0.0
            && self.ship_stall_rate <= 0.0
            && self.straggler_rate <= 0.0
    }

    /// Builder-style crash-rate setter.
    pub fn with_crash_rate(mut self, rate: f64) -> Self {
        self.crash_rate = rate;
        self
    }

    /// Builder-style provision-failure-rate setter.
    pub fn with_provision_failure_rate(mut self, rate: f64) -> Self {
        self.provision_failure_rate = rate;
        self
    }

    /// Builder-style ship-stall setter (rate and slowdown factor).
    pub fn with_ship_stall(mut self, rate: f64, factor: f64) -> Self {
        self.ship_stall_rate = rate;
        self.ship_stall_factor = factor;
        self
    }

    /// Builder-style straggler setter (rate and slowdown factor).
    pub fn with_straggler(mut self, rate: f64, factor: f64) -> Self {
        self.straggler_rate = rate;
        self.straggler_factor = factor;
        self
    }

    /// The first field that is outside its domain, if any: rates must lie
    /// in `[0, 1]` and slowdown factors must be `≥ 1`.
    pub fn invalid_field(&self) -> Option<(&'static str, f64)> {
        let rate_fields = [
            ("crash rate", self.crash_rate),
            ("provision failure rate", self.provision_failure_rate),
            ("ship stall rate", self.ship_stall_rate),
            ("straggler rate", self.straggler_rate),
        ];
        for (name, value) in rate_fields {
            if !(0.0..=1.0).contains(&value) {
                return Some((name, value));
            }
        }
        let factor_fields = [
            ("ship stall factor", self.ship_stall_factor),
            ("straggler factor", self.straggler_factor),
        ];
        for (name, value) in factor_fields {
            if value < 1.0 || value.is_nan() {
                return Some((name, value));
            }
        }
        None
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

/// Retry/timeout/backoff policy for faulted work: capped exponential
/// backoff with a per-instance attempt cap and a per-burst retry budget.
///
/// The simulator consumes this in-burst (a crashed or failed-to-provision
/// instance retries in place); the orchestrator additionally uses it to
/// pace whole-burst resubmission rounds (see `propack-orchestrator`'s
/// `retry` module). When attempts or budget run out, the work is abandoned
/// and reported as a partial completion instead of silently succeeding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum execution/provision attempts per instance (`1` = no
    /// retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, seconds.
    pub backoff_base_secs: f64,
    /// Cap on the exponential backoff, seconds.
    pub backoff_cap_secs: f64,
    /// Total retries one burst may consume across all its instances; once
    /// exhausted, further failures are abandoned immediately.
    pub retry_budget: u32,
    /// Whole-burst resubmission rounds the orchestrator may add on top of
    /// in-burst retries (`1` = never resubmit).
    pub max_rounds: u32,
}

impl RetryPolicy {
    /// Backoff before retrying after the `attempt`-th failure (1-based):
    /// `min(base · 2^(attempt−1), cap)`.
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(30);
        (self.backoff_base_secs * f64::from(1u32 << exp)).min(self.backoff_cap_secs)
    }

    /// A policy that never retries (single attempt, no budget).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_secs: 0.0,
            backoff_cap_secs: 0.0,
            retry_budget: 0,
            max_rounds: 1,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_secs: 0.5,
            backoff_cap_secs: 8.0,
            retry_budget: 1024,
            max_rounds: 2,
        }
    }
}

/// Concrete fault draws for one burst, bound to the burst's seeded RNG
/// tree. See the module docs for the replay-stability argument.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    streams: RngStreams,
    spec: FaultSpec,
}

impl FaultPlan {
    /// Bind `spec`'s fault processes to `streams`' seed.
    pub fn new(streams: &RngStreams, spec: FaultSpec) -> Self {
        FaultPlan {
            streams: streams.clone(),
            spec,
        }
    }

    /// The fault processes this plan draws from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Lane index mixing instance and attempt so each `(instance, attempt)`
    /// pair owns an independent stream.
    fn lane(instance: u32, attempt: u32) -> u64 {
        (u64::from(instance) << 32) | u64::from(attempt)
    }

    /// Does execution attempt `attempt` of `instance` crash? If so, returns
    /// the fraction of the attempt's work completed before the crash
    /// (uniform in `[0.05, 0.95]` — the partial run is billed).
    pub fn crash_point(&self, instance: u32, attempt: u32) -> Option<f64> {
        if self.spec.crash_rate <= 0.0 {
            return None;
        }
        let mut rng = self
            .streams
            .stream_indexed(lanes::FAULT_CRASH, Self::lane(instance, attempt));
        if rng.random::<f64>() < self.spec.crash_rate {
            Some(0.05 + 0.9 * rng.random::<f64>())
        } else {
            None
        }
    }

    /// Does cold-provision attempt `attempt` of `instance` fail?
    pub fn provision_fails(&self, instance: u32, attempt: u32) -> bool {
        if self.spec.provision_failure_rate <= 0.0 {
            return false;
        }
        let mut rng = self
            .streams
            .stream_indexed(lanes::FAULT_PROVISION, Self::lane(instance, attempt));
        rng.random::<f64>() < self.spec.provision_failure_rate
    }

    /// Does `instance`'s shipping transfer stall? Returns the slowdown
    /// factor when it does.
    pub fn ship_stall(&self, instance: u32) -> Option<f64> {
        if self.spec.ship_stall_rate <= 0.0 {
            return None;
        }
        let mut rng = self
            .streams
            .stream_indexed(lanes::FAULT_SHIP, Self::lane(instance, 0));
        if rng.random::<f64>() < self.spec.ship_stall_rate {
            Some(self.spec.ship_stall_factor)
        } else {
            None
        }
    }

    /// Is `instance` a straggler? Returns the execution slowdown factor
    /// when it is (applies to every attempt of the instance).
    pub fn straggler(&self, instance: u32) -> Option<f64> {
        if self.spec.straggler_rate <= 0.0 {
            return None;
        }
        let mut rng = self
            .streams
            .stream_indexed(lanes::FAULT_STRAGGLER, Self::lane(instance, 0));
        if rng.random::<f64>() < self.spec.straggler_rate {
            Some(self.spec.straggler_factor)
        } else {
            None
        }
    }
}

/// Bulk-evaluated fault draws for one burst's cohort: the survivor set,
/// per-attempt crash fractions, and per-instance severity factors, all
/// computed in a single pass over the fault lanes.
///
/// Every entry is produced by the *same pure draw* the per-event path
/// takes ([`FaultPlan::crash_point`] / [`FaultPlan::provision_fails`] /
/// [`FaultPlan::ship_stall`] / [`FaultPlan::straggler`] on the same
/// `(seed, lane, instance, attempt)` tuple), so consuming the batch is
/// bit-identical to re-drawing event by event — the point is that a
/// consumer can now decompose the cohort arithmetically (survivors,
/// retried crashers, abandoned instances) without dispatching per-attempt
/// events or re-constructing a lane stream per attempt.
///
/// Disabled fault processes take zero draws and allocate nothing, exactly
/// like the scalar API: a fault-free spec yields an all-survivor batch
/// with empty chain storage.
#[derive(Debug, Clone, Default)]
pub struct CohortOutcomes {
    /// Per-instance straggler slowdown factor (`None` = not a straggler).
    /// Empty when the straggler process is disabled.
    stragglers: Vec<Option<f64>>,
    /// Per-instance ship-stall slowdown factor. Empty when disabled.
    ship_stalls: Vec<Option<f64>>,
    /// Per-instance count of crashed execution attempts before the first
    /// surviving attempt, capped at `max_attempts`. Empty when the crash
    /// process is disabled.
    crash_counts: Vec<u32>,
    /// Instance-major flat storage of crash fractions: instance `i` owns
    /// `crash_counts[i]` entries starting at `crash_offsets[i]`.
    crash_offsets: Vec<u32>,
    crash_fractions: Vec<f64>,
    /// Per-instance count of failed cold-provision attempts before the
    /// first successful boot, capped at `max_attempts`. Empty when the
    /// provision-failure process is disabled.
    provision_counts: Vec<u32>,
    /// Number of execution attempts each instance may take (the retry
    /// policy's cap), kept so `survives`/chain accessors are total.
    max_attempts: u32,
    /// Total in-burst retries the cohort demands (crash retries plus
    /// cold-provision retries), assuming every one is granted. If this is
    /// within the burst's retry budget, no instance can be starved and the
    /// final retry counters are order-independent sums.
    retry_demand: u64,
}

impl CohortOutcomes {
    /// Straggler factor of `instance` — same draw as
    /// [`FaultPlan::straggler`].
    pub fn straggler(&self, instance: u32) -> Option<f64> {
        self.stragglers.get(instance as usize).copied().flatten()
    }

    /// Ship-stall factor of `instance` — same draw as
    /// [`FaultPlan::ship_stall`].
    pub fn ship_stall(&self, instance: u32) -> Option<f64> {
        self.ship_stalls.get(instance as usize).copied().flatten()
    }

    /// How many execution attempts of `instance` crash before one
    /// survives, capped at the policy's `max_attempts`.
    pub fn crash_count(&self, instance: u32) -> u32 {
        self.crash_counts
            .get(instance as usize)
            .copied()
            .unwrap_or(0)
    }

    /// The crash fractions of `instance`'s failed attempts, in attempt
    /// order — entry `k` is the [`FaultPlan::crash_point`] draw of attempt
    /// `k + 1`.
    pub fn crash_chain(&self, instance: u32) -> &[f64] {
        let i = instance as usize;
        match (self.crash_offsets.get(i), self.crash_counts.get(i)) {
            (Some(&off), Some(&count)) => {
                let (start, end) = (off as usize, off as usize + count as usize);
                self.crash_fractions.get(start..end).unwrap_or(&[])
            }
            _ => &[],
        }
    }

    /// Whether `instance`'s execution phase survives within the attempt
    /// cap (i.e. some attempt `≤ max_attempts` does not crash).
    pub fn survives(&self, instance: u32) -> bool {
        self.crash_count(instance) < self.max_attempts.max(1)
    }

    /// How many cold-provision attempts of `instance` fail before one
    /// boots, capped at the policy's `max_attempts`. Always `0` for
    /// instances the caller declared warm.
    pub fn provision_failures(&self, instance: u32) -> u32 {
        self.provision_counts
            .get(instance as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Whether `instance`'s cold provisioning eventually boots (some
    /// attempt `≤ max_attempts` succeeds).
    pub fn provisions(&self, instance: u32) -> bool {
        self.provision_failures(instance) < self.max_attempts.max(1)
    }

    /// Total retries the cohort demands across every crash and provision
    /// chain, assuming all are granted. Compare against
    /// [`RetryPolicy::retry_budget`]: when the demand fits, grant order
    /// cannot matter (no instance is ever refused), so per-instance chains
    /// are independent of global event interleaving.
    pub fn retry_demand(&self) -> u64 {
        self.retry_demand
    }

    /// The instances whose execution phase survives — the cohort's
    /// survivor set (provision-abandoned instances are excluded).
    pub fn survivors(&self) -> impl Iterator<Item = u32> + '_ {
        let n = self.crash_counts.len().max(self.provision_counts.len()) as u32;
        (0..n).filter(|&i| self.survives(i) && self.provisions(i))
    }
}

impl FaultPlan {
    /// Evaluate every fault draw the burst's execution and provisioning
    /// phases can consume, in one pass: instances `0..instances`, of which
    /// the first `warm_count` are warm (warm containers never provision,
    /// so their provision lanes are never drawn — matching the event
    /// path, which skips the provision stage for them entirely).
    ///
    /// Chains stop at the policy's `max_attempts`; the retry demand
    /// conservatively counts a provision-abandoned instance's crash
    /// retries too (the event path would never take them), so a demand
    /// within budget is a sufficient — not necessary — condition for
    /// order-independence.
    pub fn cohort_outcomes(
        &self,
        instances: u32,
        warm_count: u32,
        retry: &RetryPolicy,
    ) -> CohortOutcomes {
        let m = retry.max_attempts.max(1);
        let n = instances as usize;
        let mut out = CohortOutcomes {
            max_attempts: m,
            ..CohortOutcomes::default()
        };
        // Every draw below goes through `RngStreams::head_indexed{,4}` —
        // the first-block window onto exactly the stream the scalar API
        // (`crash_point` / `provision_fails` / ...) would construct, so the
        // values are bit-identical while the bulk pass skips the full
        // generator setup. Attempt-1 draws (one per instance) run four
        // lanes at a time; the rare chain continuations fall back to one
        // head per `(instance, attempt)` lane.
        if self.spec.straggler_rate > 0.0 {
            out.stragglers = Vec::with_capacity(n);
            self.sweep_heads(lanes::FAULT_STRAGGLER, 0, instances, |_, head| {
                out.stragglers
                    .push(if head.f64_draw(0) < self.spec.straggler_rate {
                        Some(self.spec.straggler_factor)
                    } else {
                        None
                    });
            });
        }
        if self.spec.ship_stall_rate > 0.0 {
            out.ship_stalls = Vec::with_capacity(n);
            self.sweep_heads(lanes::FAULT_SHIP, 0, instances, |_, head| {
                out.ship_stalls
                    .push(if head.f64_draw(0) < self.spec.ship_stall_rate {
                        Some(self.spec.ship_stall_factor)
                    } else {
                        None
                    });
            });
        }
        if self.spec.crash_rate > 0.0 {
            out.crash_offsets = Vec::with_capacity(n);
            out.crash_counts = Vec::with_capacity(n);
            let (offsets, counts, fractions, mut demand) = (
                &mut out.crash_offsets,
                &mut out.crash_counts,
                &mut out.crash_fractions,
                0u64,
            );
            self.sweep_heads(lanes::FAULT_CRASH, 0, instances, |i, head| {
                offsets.push(fractions.len() as u32);
                let mut crashes = 0u32;
                let mut head = head;
                for attempt in 1..=m {
                    if head.f64_draw(0) >= self.spec.crash_rate {
                        break;
                    }
                    fractions.push(0.05 + 0.9 * head.f64_draw(1));
                    crashes += 1;
                    if attempt < m {
                        head = self
                            .streams
                            .head_indexed(lanes::FAULT_CRASH, Self::lane(i, attempt + 1));
                    }
                }
                counts.push(crashes);
                // A crashed attempt is retried unless it was the last
                // permitted one.
                demand += u64::from(crashes.min(m - 1));
            });
            out.retry_demand += demand;
        }
        if self.spec.provision_failure_rate > 0.0 {
            out.provision_counts = vec![0; n];
            let (counts, mut demand) = (&mut out.provision_counts, 0u64);
            self.sweep_heads(lanes::FAULT_PROVISION, warm_count, instances, |i, head| {
                let mut fails = 0u32;
                let mut head = head;
                for attempt in 1..=m {
                    if head.f64_draw(0) >= self.spec.provision_failure_rate {
                        break;
                    }
                    fails += 1;
                    if attempt < m {
                        head = self
                            .streams
                            .head_indexed(lanes::FAULT_PROVISION, Self::lane(i, attempt + 1));
                    }
                }
                counts[i as usize] = fails;
                demand += u64::from(fails.min(m - 1));
            });
            out.retry_demand += demand;
        }
        out
    }

    /// Visit the attempt-1 stream head of every instance in `[from, to)`,
    /// eight lanes at a time, in instance order. Per-instance fault lanes
    /// (straggler, ship-stall) live at attempt index 0; chain lanes (crash,
    /// provision) start at attempt 1 — both use the head at the instance's
    /// *first* draw, so the caller supplies the attempt via [`Self::lane`]
    /// when it continues a chain.
    fn sweep_heads(
        &self,
        name: &'static str,
        from: u32,
        to: u32,
        mut visit: impl FnMut(u32, crate::rng::StreamHead),
    ) {
        let first_attempt = if name == lanes::FAULT_CRASH || name == lanes::FAULT_PROVISION {
            1
        } else {
            0
        };
        let mut i = from;
        while i < to {
            let k = (to - i).min(8);
            let mut indices = [0u64; 8];
            for (j, ix) in indices.iter_mut().enumerate() {
                // Pad short tails by repeating the last lane; the extra
                // heads are computed and dropped.
                let inst = (i + (j as u32).min(k - 1)).min(to - 1);
                *ix = Self::lane(inst, first_attempt);
            }
            // simlint: allow(rng-lane): "lane forwarded from the cohort sweep callers, which each pass a `lanes::FAULT_*` constant"
            let heads = self.streams.head_indexed8(name, indices);
            for j in 0..k {
                visit(i + j, heads[j as usize]);
            }
            i += k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64, spec: FaultSpec) -> FaultPlan {
        FaultPlan::new(&RngStreams::new(seed), spec)
    }

    #[test]
    fn fault_free_spec_never_draws() {
        let p = plan(1, FaultSpec::none());
        for i in 0..64 {
            assert!(p.crash_point(i, 1).is_none());
            assert!(!p.provision_fails(i, 1));
            assert!(p.ship_stall(i).is_none());
            assert!(p.straggler(i).is_none());
        }
        assert!(FaultSpec::none().is_none());
        assert!(!FaultSpec::none().with_crash_rate(0.1).is_none());
    }

    #[test]
    fn draws_are_replay_stable() {
        let spec = FaultSpec::none()
            .with_crash_rate(0.3)
            .with_provision_failure_rate(0.2)
            .with_ship_stall(0.2, 5.0)
            .with_straggler(0.2, 2.5);
        let a = plan(42, spec);
        let b = plan(42, spec);
        for i in 0..256 {
            for attempt in 1..4 {
                assert_eq!(a.crash_point(i, attempt), b.crash_point(i, attempt));
                assert_eq!(a.provision_fails(i, attempt), b.provision_fails(i, attempt));
            }
            assert_eq!(a.ship_stall(i), b.ship_stall(i));
            assert_eq!(a.straggler(i), b.straggler(i));
        }
    }

    #[test]
    fn draws_are_order_independent() {
        // Reading lanes in a different order (as a different event
        // interleaving would) cannot change any individual draw.
        let spec = FaultSpec::none().with_crash_rate(0.5);
        let p = plan(7, spec);
        let forward: Vec<_> = (0..64).map(|i| p.crash_point(i, 1)).collect();
        let backward: Vec<_> = (0..64).rev().map(|i| p.crash_point(i, 1)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn crash_rate_matches_draw_frequency() {
        let p = plan(11, FaultSpec::none().with_crash_rate(0.25));
        let crashes = (0..4000).filter(|&i| p.crash_point(i, 1).is_some()).count();
        let rate = crashes as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "observed crash rate {rate}");
    }

    #[test]
    fn attempts_draw_independently() {
        // With a 50 % crash rate some instances crash on attempt 1 but not
        // attempt 2, and vice versa — attempts are not one shared draw.
        let p = plan(3, FaultSpec::none().with_crash_rate(0.5));
        let differs =
            (0..128).any(|i| p.crash_point(i, 1).is_some() != p.crash_point(i, 2).is_some());
        assert!(differs);
    }

    #[test]
    fn crash_point_is_a_billed_fraction() {
        let p = plan(5, FaultSpec::none().with_crash_rate(1.0));
        for i in 0..64 {
            let frac = p.crash_point(i, 1).unwrap();
            assert!((0.05..=0.95).contains(&frac));
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = RetryPolicy {
            max_attempts: 8,
            backoff_base_secs: 0.5,
            backoff_cap_secs: 3.0,
            retry_budget: 16,
            max_rounds: 1,
        };
        assert_eq!(policy.backoff_secs(1), 0.5);
        assert_eq!(policy.backoff_secs(2), 1.0);
        assert_eq!(policy.backoff_secs(3), 2.0);
        assert_eq!(policy.backoff_secs(4), 3.0); // capped
        assert_eq!(policy.backoff_secs(40), 3.0); // no overflow
    }

    #[test]
    fn invalid_fields_detected() {
        assert!(FaultSpec::none().invalid_field().is_none());
        let bad_rate = FaultSpec::none().with_crash_rate(1.5);
        assert_eq!(bad_rate.invalid_field(), Some(("crash rate", 1.5)));
        let bad_factor = FaultSpec::none().with_straggler(0.1, 0.5);
        assert_eq!(bad_factor.invalid_field(), Some(("straggler factor", 0.5)));
        let negative = FaultSpec::none().with_provision_failure_rate(-0.1);
        assert_eq!(
            negative.invalid_field(),
            Some(("provision failure rate", -0.1))
        );
    }

    #[test]
    fn no_retry_policy_is_single_attempt() {
        let p = RetryPolicy::no_retries();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.retry_budget, 0);
        assert_eq!(p.backoff_secs(1), 0.0);
    }

    #[test]
    fn cohort_outcomes_match_scalar_draws_exactly() {
        let spec = FaultSpec::none()
            .with_crash_rate(0.4)
            .with_provision_failure_rate(0.3)
            .with_ship_stall(0.2, 5.0)
            .with_straggler(0.2, 2.5);
        let p = plan(42, spec);
        let retry = RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        };
        let warm = 16u32;
        let batch = p.cohort_outcomes(128, warm, &retry);
        for i in 0..128u32 {
            assert_eq!(batch.straggler(i), p.straggler(i), "straggler {i}");
            assert_eq!(batch.ship_stall(i), p.ship_stall(i), "ship {i}");
            // The crash chain is exactly the per-attempt draws up to the
            // first survival or the attempt cap.
            let mut expect = Vec::new();
            for attempt in 1..=retry.max_attempts {
                match p.crash_point(i, attempt) {
                    Some(f) => expect.push(f),
                    None => break,
                }
            }
            assert_eq!(batch.crash_chain(i), expect.as_slice(), "chain {i}");
            assert_eq!(batch.crash_count(i), expect.len() as u32);
            assert_eq!(
                batch.survives(i),
                (expect.len() as u32) < retry.max_attempts
            );
            // Warm instances never touch the provision lane.
            if i < warm {
                assert_eq!(batch.provision_failures(i), 0);
            } else {
                let mut fails = 0u32;
                for attempt in 1..=retry.max_attempts {
                    if p.provision_fails(i, attempt) {
                        fails += 1;
                    } else {
                        break;
                    }
                }
                assert_eq!(batch.provision_failures(i), fails, "provision {i}");
                assert_eq!(batch.provisions(i), fails < retry.max_attempts);
            }
        }
    }

    #[test]
    fn cohort_retry_demand_sums_all_chains() {
        let spec = FaultSpec::none()
            .with_crash_rate(0.5)
            .with_provision_failure_rate(0.3);
        let p = plan(7, spec);
        let retry = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let batch = p.cohort_outcomes(200, 0, &retry);
        let mut want = 0u64;
        for i in 0..200u32 {
            want += u64::from(batch.crash_count(i).min(retry.max_attempts - 1));
            want += u64::from(batch.provision_failures(i).min(retry.max_attempts - 1));
        }
        assert_eq!(batch.retry_demand(), want);
        assert!(batch.retry_demand() > 0);
    }

    #[test]
    fn fault_free_cohort_is_all_survivors_with_no_storage() {
        let p = plan(3, FaultSpec::none());
        let batch = p.cohort_outcomes(1000, 0, &RetryPolicy::default());
        assert_eq!(batch.retry_demand(), 0);
        for i in 0..1000 {
            assert!(batch.survives(i));
            assert!(batch.provisions(i));
            assert!(batch.straggler(i).is_none());
            assert!(batch.ship_stall(i).is_none());
            assert!(batch.crash_chain(i).is_empty());
        }
    }

    #[test]
    fn certain_crash_without_retries_abandons_everyone() {
        let p = plan(9, FaultSpec::none().with_crash_rate(1.0));
        let batch = p.cohort_outcomes(32, 0, &RetryPolicy::no_retries());
        assert_eq!(batch.retry_demand(), 0, "single attempt demands nothing");
        for i in 0..32 {
            assert!(!batch.survives(i));
            assert_eq!(batch.crash_count(i), 1);
        }
        assert_eq!(batch.survivors().count(), 0);
    }

    #[test]
    fn survivor_set_excludes_provision_abandoned_instances() {
        let spec = FaultSpec::none().with_provision_failure_rate(0.8);
        let p = plan(13, spec);
        let retry = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let batch = p.cohort_outcomes(64, 0, &retry);
        let survivors: Vec<u32> = batch.survivors().collect();
        assert!(!survivors.is_empty());
        assert!(survivors.len() < 64, "0.8² of instances must abandon");
        for &i in &survivors {
            assert!(batch.provisions(i));
        }
    }
}
