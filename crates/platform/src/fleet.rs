//! The datacenter fleet: the servers the scheduler places instances onto.
//!
//! §1 of the paper describes the mechanism this models: *"Upon function
//! invocation, a scheduling algorithm searches among the running servers of
//! the datacenter to execute the function"*, and later the formed
//! containers *"are shipped to different servers of the datacenter as
//! decided by the scheduling algorithm"*. The fleet is why execution time
//! stays flat in concurrency (Fig. 5a): each microVM gets a dedicated
//! reservation on some server, so co-running bursts do not share cores.
//!
//! [`Fleet`] tracks per-server occupancy, serves least-loaded placement
//! queries (the datacenter search whose bookkeeping cost grows with
//! in-flight placements — the quadratic term's origin), and rejects
//! placements when the datacenter is saturated, giving the simulator a
//! capacity failure mode real clouds express as throttling.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One server's occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Server {
    /// MicroVM slots currently reserved.
    used: u32,
    /// Total microVM slots.
    slots: u32,
}

/// A placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Index of the chosen server.
    pub server: u32,
    /// Reservations held by that server after this placement.
    pub occupancy: u32,
}

/// Datacenter fleet with least-loaded placement.
///
/// Placement is served from a lazy min-heap of `(used, index)` candidates
/// instead of a full scan of the server vector: the scan made every
/// placement O(fleet size), which dominated burst setup at datacenter scale
/// (2 000 servers × thousands of instances per burst). Each mutation of a
/// server's occupancy pushes a fresh candidate; stale candidates — whose
/// recorded occupancy no longer matches the server — are discarded when
/// popped. Since every server's *current* state always has a live candidate
/// in the heap, the first non-stale pop is exactly the
/// `min_by_key((used, index))` the scan computed, so placement decisions
/// (and therefore simulated results) are bit-identical to the scan.
#[derive(Debug, Clone)]
pub struct Fleet {
    servers: Vec<Server>,
    reserved: u64,
    capacity: u64,
    /// Cumulative placements served from warm containers — the warm/cold
    /// split the keep-alive layer reports against.
    warm_placements: u64,
    /// Lazy least-loaded candidates; `Reverse` turns `BinaryHeap`'s max-heap
    /// into the min-heap the (used, index) order needs.
    candidates: BinaryHeap<Reverse<(u32, u32)>>,
}

/// Equality is over occupancy state only: the candidate heap is a cache
/// whose stale-entry content depends on operation history, not state.
impl PartialEq for Fleet {
    fn eq(&self, other: &Self) -> bool {
        self.servers == other.servers && self.reserved == other.reserved
    }
}

impl Fleet {
    /// A fleet of `servers` identical machines with `slots_per_server`
    /// microVM slots each.
    ///
    /// Panics when either dimension is zero.
    pub fn new(servers: u32, slots_per_server: u32) -> Self {
        assert!(
            servers > 0 && slots_per_server > 0,
            "fleet must have capacity"
        );
        Fleet {
            servers: vec![
                Server {
                    used: 0,
                    slots: slots_per_server
                };
                servers as usize
            ],
            reserved: 0,
            capacity: u64::from(servers) * u64::from(slots_per_server),
            warm_placements: 0,
            // All servers start empty; seed one candidate each.
            candidates: (0..servers).map(|i| Reverse((0, i))).collect(),
        }
    }

    /// Total slots across the fleet.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Currently reserved slots.
    pub fn reserved(&self) -> u64 {
        self.reserved
    }

    /// Free slots.
    pub fn free(&self) -> u64 {
        self.capacity - self.reserved
    }

    /// Placements served warm so far (see [`Fleet::place_with`]).
    pub fn warm_placements(&self) -> u64 {
        self.warm_placements
    }

    /// [`Fleet::place`] annotated with the instance's provisioning path:
    /// warm placements reuse a kept-alive container and are tallied
    /// separately, but occupy a slot exactly like cold ones (a warm microVM
    /// is still a reserved microVM).
    pub fn place_with(&mut self, warm: bool) -> Option<Placement> {
        let placement = self.place();
        if warm && placement.is_some() {
            self.warm_placements += 1;
        }
        placement
    }

    /// Reserve a slot on the least-loaded server (ties → lowest index, so
    /// placement is deterministic). Returns `None` when saturated.
    pub fn place(&mut self) -> Option<Placement> {
        if self.reserved == self.capacity {
            return None;
        }
        // Free capacity guarantees a live candidate, so the loop always
        // returns from inside; the trailing `None` is an unreachable
        // fallback kept in place of a panic.
        while let Some(Reverse((used, idx))) = self.candidates.pop() {
            let server = &mut self.servers[idx as usize];
            // Stale candidate: the server's occupancy moved on (or it is
            // full). Its current state has its own candidate; drop this one.
            if server.used != used || server.used >= server.slots {
                continue;
            }
            server.used += 1;
            self.reserved += 1;
            self.candidates.push(Reverse((server.used, idx)));
            return Some(Placement {
                server: idx,
                occupancy: server.used,
            });
        }
        None
    }

    /// Release a previously placed reservation.
    ///
    /// Panics if the server has no reservations (double release).
    pub fn release(&mut self, server: u32) {
        let s = &mut self.servers[server as usize];
        assert!(s.used > 0, "double release on server {server}");
        s.used -= 1;
        self.reserved -= 1;
        self.candidates.push(Reverse((s.used, server)));
    }

    /// Maximum per-server occupancy — a load-balance diagnostic.
    pub fn peak_occupancy(&self) -> u32 {
        self.servers.iter().map(|s| s.used).max().unwrap_or(0)
    }
}

/// Default AWS-scale fleet for burst simulations: ample capacity so
/// commercial-cloud runs never saturate (the paper never observed
/// Lambda-side admission failures), while small test fleets can.
pub fn default_cloud_fleet() -> Fleet {
    Fleet::new(2_000, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_placement_balances() {
        let mut f = Fleet::new(4, 10);
        for i in 0..8 {
            let p = f.place().unwrap();
            assert_eq!(p.server, i % 4, "round-robin from balance");
            assert_eq!(p.occupancy, i / 4 + 1);
        }
        assert_eq!(f.peak_occupancy(), 2);
        assert_eq!(f.reserved(), 8);
    }

    #[test]
    fn saturation_returns_none() {
        let mut f = Fleet::new(2, 3);
        for _ in 0..6 {
            assert!(f.place().is_some());
        }
        assert!(f.place().is_none());
        assert_eq!(f.free(), 0);
    }

    #[test]
    fn release_frees_capacity() {
        let mut f = Fleet::new(1, 2);
        let a = f.place().unwrap();
        let _b = f.place().unwrap();
        assert!(f.place().is_none());
        f.release(a.server);
        assert!(f.place().is_some());
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut f = Fleet::new(1, 1);
        f.release(0);
    }

    #[test]
    fn skewed_fleet_fills_small_servers_last() {
        // With unequal loads, placement always prefers the emptier server.
        let mut f = Fleet::new(2, 4);
        let p1 = f.place().unwrap();
        let p2 = f.place().unwrap();
        assert_ne!(p1.server, p2.server);
        f.release(p1.server);
        let p3 = f.place().unwrap();
        assert_eq!(p3.server, p1.server, "freed server is now least loaded");
    }

    #[test]
    fn warm_placements_are_tallied_but_occupy_slots() {
        let mut f = Fleet::new(2, 2);
        assert!(f.place_with(true).is_some());
        assert!(f.place_with(false).is_some());
        assert!(f.place_with(true).is_some());
        assert_eq!(f.warm_placements(), 2);
        assert_eq!(f.reserved(), 3, "warm placements still reserve slots");
    }

    #[test]
    fn default_fleet_fits_a_5000_burst() {
        let f = default_cloud_fleet();
        assert!(f.capacity() >= 5_000 * 2);
    }
}
